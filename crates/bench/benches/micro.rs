//! Criterion micro-benchmarks of the hot substrates: k-wise hashing,
//! parallel-walk scheduling, path routing, level-0 construction, one
//! routing instance, and an end-to-end MST at fixed size.

use amt_bench::{expander, tau_estimate};
use amt_core::kwise::PartitionHash;
use amt_core::prelude::*;
use amt_core::walks::parallel::{degree_proportional_specs, run_parallel_walks};
use amt_core::walks::route_paths;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_kwise(c: &mut Criterion) {
    let p = PartitionHash::new(8, 3, 16, 42);
    c.bench_function("kwise/leaf_eval_1k_ids", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for id in 0..1000u64 {
                acc ^= p.leaf(black_box(id));
            }
            acc
        })
    });
}

fn bench_walks(c: &mut Criterion) {
    let g = expander(256, 6, 1);
    let specs = degree_proportional_specs(&g, 2, 20);
    c.bench_function("walks/parallel_3k_walks_20_steps", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(7);
            run_parallel_walks(&g, WalkKind::Lazy, black_box(&specs), &mut rng)
                .stats
                .rounds
        })
    });
}

fn bench_path_router(c: &mut Criterion) {
    // 2k tokens over a contended key space.
    let paths: Vec<Vec<u64>> = (0..2000u64)
        .map(|i| (0..8).map(|h| (i * 7 + h * 13) % 512).collect())
        .collect();
    c.bench_function("schedule/route_2k_paths_len8", |b| {
        b.iter(|| route_paths(black_box(&paths), 1).rounds)
    });
}

fn bench_level0(c: &mut Criterion) {
    let g = expander(64, 4, 1);
    let tau = tau_estimate(&g);
    c.bench_function("embedding/hierarchy_build_n64", |b| {
        b.iter(|| {
            let mut cfg = HierarchyConfig::auto(&g, tau, 1);
            cfg.beta = 4;
            cfg.levels = 1;
            Hierarchy::build(black_box(&g), cfg)
                .unwrap()
                .stats
                .total_base_rounds
        })
    });
}

fn bench_routing(c: &mut Criterion) {
    let g = expander(64, 4, 1);
    let mut cfg = HierarchyConfig::auto(&g, tau_estimate(&g), 1);
    cfg.beta = 4;
    cfg.levels = 1;
    let h = Hierarchy::build(&g, cfg).unwrap();
    let reqs: Vec<_> = (0..64u32)
        .map(|i| (NodeId(i), NodeId((5 * i + 3) % 64)))
        .collect();
    c.bench_function("routing/permutation_n64", |b| {
        b.iter(|| {
            HierarchicalRouter::new(&h)
                .route(black_box(&reqs), 2)
                .unwrap()
                .total_base_rounds
        })
    });
}

fn bench_mst(c: &mut Criterion) {
    let g = expander(64, 4, 1);
    let mut rng = StdRng::seed_from_u64(5);
    let wg = WeightedGraph::with_random_weights(g.clone(), 1000, &mut rng);
    let mut cfg = HierarchyConfig::auto(&g, tau_estimate(&g), 1);
    cfg.beta = 4;
    cfg.levels = 1;
    let h = Hierarchy::build(&g, cfg).unwrap();
    let mut group = c.benchmark_group("mst");
    group.sample_size(10);
    group.bench_function("almost_mixing_n64", |b| {
        b.iter(|| {
            AlmostMixingMst::new(&h)
                .run(black_box(&wg), 3)
                .unwrap()
                .rounds
        })
    });
    group.bench_function("kruskal_n64", |b| {
        b.iter(|| reference::kruskal(black_box(&wg)).unwrap().len())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_kwise,
    bench_walks,
    bench_path_router,
    bench_level0,
    bench_routing,
    bench_mst
);
criterion_main!(benches);
