//! A1 — ablations of the design choices DESIGN.md calls out.
//!
//! 1. **Preparation walk on/off** — §3.2's redistribution step exists to
//!    balance packet load across virtual nodes; without it, adversarially
//!    clustered sources overload their parts.
//! 2. **Emulation pricing** — exact store-and-forward vs the paper's
//!    sequential full-round factoring (upper bound): how conservative is
//!    the factored model?
//! 3. **Walk execution** — phase-based accounting (Lemma 2.5) vs actual
//!    CONGEST protocol execution with per-edge queues.

use amt_bench::{expander, scaled_levels, Report};
use amt_core::prelude::*;
use amt_core::routing::{EmulationMode, HierarchicalRouter, RouterConfig};
use amt_core::walks::congest_exec::run_walks_in_congest;
use amt_core::walks::parallel::{degree_proportional_specs, run_parallel_walks};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut report = Report::new("a1_ablations");
    let n = 128usize;
    let g = expander(n, 6, 1);
    let sys = System::builder(&g)
        .seed(1)
        .beta(4)
        .levels(scaled_levels(g.volume(), 4))
        .build()
        .expect("expander");

    println!("# A1.1 — preparation walk ablation (adversarially clustered sources)\n");
    // All packets originate in one small neighborhood and target spread-out
    // destinations: without redistribution their part is overloaded.
    let cluster: Vec<u32> = (0..8u32).collect();
    let mut reqs = Vec::new();
    for (i, &s) in cluster.iter().enumerate() {
        for j in 0..8u32 {
            reqs.push((NodeId(s), NodeId((17 * (i as u32 + 1) + 13 * j) % n as u32)));
        }
    }
    report.header(&["prepare", "rounds (exact)", "delivered"]);
    for prepare in [true, false] {
        let router = HierarchicalRouter::with_config(
            sys.hierarchy(),
            RouterConfig {
                prepare,
                emulation: EmulationMode::Exact,
                ..RouterConfig::for_n(n)
            },
        );
        let out = router.route(&reqs, 3).expect("routable");
        report.row(&[
            prepare.to_string(),
            out.total_base_rounds.to_string(),
            format!("{}/{}", out.delivered, reqs.len()),
        ]);
    }
    println!("\n(the preparation walk spreads the clustered packets across parts;");
    println!(" without it they funnel through a single part's portals and pay the");
    println!(" congestion — prep wins despite its own τ_mix cost, which is the");
    println!(" paper's reason for the redistribution step)\n");

    println!("# A1.2 — emulation pricing: exact vs sequential factoring\n");
    report.header(&["n", "exact rounds", "factored rounds", "factored/exact"]);
    for &nn in &[64usize, 128] {
        let g2 = expander(nn, 6, 1);
        let sys2 = System::builder(&g2)
            .seed(1)
            .beta(4)
            .levels(scaled_levels(g2.volume(), 4))
            .build()
            .expect("expander");
        let reqs2: Vec<_> = (0..nn as u32)
            .map(|i| (NodeId(i), NodeId((5 * i + 3) % nn as u32)))
            .collect();
        let exact = HierarchicalRouter::with_config(
            sys2.hierarchy(),
            RouterConfig {
                emulation: EmulationMode::Exact,
                ..RouterConfig::for_n(nn)
            },
        )
        .route(&reqs2, 2)
        .expect("routable");
        let factored = sys2.route(&reqs2, 2).expect("routable");
        report.row(&[
            nn.to_string(),
            exact.total_base_rounds.to_string(),
            factored.total_base_rounds.to_string(),
            format!(
                "{:.1}×",
                factored.total_base_rounds as f64 / exact.total_base_rounds as f64
            ),
        ]);
    }
    println!("\n(the factored model — each schedule round priced as a full overlay");
    println!(" round, the paper's own emulation argument — is a valid but loose");
    println!(" upper bound; exact expansion shows the real store-and-forward cost)\n");

    println!("# A1.3 — walk accounting vs real protocol execution\n");
    report.header(&["k", "scheduler rounds", "CONGEST protocol rounds", "ratio"]);
    for &k in &[1usize, 4] {
        let specs = degree_proportional_specs(&g, k, 20);
        let sched = run_parallel_walks(&g, WalkKind::Lazy, &specs, &mut StdRng::seed_from_u64(5));
        let proto = run_walks_in_congest(&g, WalkKind::Lazy, &specs, 5).expect("fits budget");
        report.row(&[
            k.to_string(),
            sched.stats.rounds.to_string(),
            proto.metrics.rounds.to_string(),
            format!(
                "{:.2}",
                proto.metrics.rounds as f64 / sched.stats.rounds as f64
            ),
        ]);
    }
    println!("\n(the phase-based accounting used throughout the experiments agrees");
    println!(" with a real message-passing execution within a small constant — the");
    println!(" queue-based protocol can even be faster because it pipelines across");
    println!(" walk steps instead of synchronizing phases)");
    report.finish();
}
