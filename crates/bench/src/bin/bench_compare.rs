//! Regression gate over two `bench_suite` reports.
//!
//! Usage: `bench_compare <baseline.json> <candidate.json> [--skip-wall]
//! [--wall-tolerance PCT] [--wall-floor-ms MS]`
//!
//! Compares every bench the baseline recorded:
//!
//! * **exact** — all `metrics.<bench>` counters (rounds, messages, bits,
//!   max edge congestion, fault counters), all
//!   `profiles.<bench>.<class>` per-class totals, all
//!   `recovery.<bench>` reconvergence statistics (span counts,
//!   time-to-reconverge percentiles), all `shards.<bench>` intra/cross
//!   placement-attribution counters, and all `telemetry.<bench>`
//!   execution-health counters (work totals and gauge high-water marks;
//!   logical values only, by the telemetry contract) must be identical:
//!   the simulator is deterministic, so *any* drift is a behavior change;
//! * **wall-clock** — `phase_timings.wall.<bench>` may regress by at most
//!   the tolerance (default 25%), **and** a regression only counts when
//!   the absolute slowdown reaches the floor (default 5 ms): relative
//!   tolerances are meaningless on sub-millisecond tiers, where scheduler
//!   noise alone exceeds 25%;
//! * **throughput** — `phase_timings.throughput.<bench>` (messages/sec)
//!   may drop by at most the same tolerance, gated only for benches whose
//!   baseline wall-clock is at least the floor (throughput measured over
//!   a sub-floor wall is noise).
//!
//! `--skip-wall` disables both timing-derived checks for cross-machine
//! comparisons (CI compares a committed baseline produced on different
//! hardware, where wall-clock and throughput are not meaningful).
//!
//! Exits nonzero on the first report that cannot be read and after listing
//! every drifted value; prints `ok` per bench otherwise. Benches only
//! present in the candidate are reported informationally and do not fail
//! the gate (the next baseline refresh picks them up).

use amt_bench::report::{parse, validate, Json};
use std::process::ExitCode;

/// Flattens `section.<name>.<key>` (and one level deeper for profiles)
/// into `(path, value)` pairs.
fn scalars(doc: &Json, section: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let Some(Json::Obj(entries)) = doc.get(section) else {
        return out;
    };
    for (name, entry) in entries {
        let Json::Obj(fields) = entry else { continue };
        for (k, v) in fields {
            match v {
                Json::Num(x) => out.push((format!("{section}.{name}.{k}"), *x)),
                Json::Obj(inner) => {
                    for (ik, iv) in inner {
                        if let Json::Num(x) = iv {
                            out.push((format!("{section}.{name}.{k}.{ik}"), *x));
                        }
                    }
                }
                _ => {}
            }
        }
    }
    out
}

fn lookup(pairs: &[(String, f64)], path: &str) -> Option<f64> {
    pairs.iter().find(|(p, _)| p == path).map(|&(_, v)| v)
}

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: cannot read: {e}"))?;
    let doc = parse(&text).map_err(|e| format!("{path}: parse error: {e}"))?;
    validate(&doc).map_err(|e| format!("{path}: schema violation: {e}"))?;
    Ok(doc)
}

/// Gate options, parsed from the CLI (defaults in [`Default`]).
struct Opts {
    skip_wall: bool,
    /// Relative tolerance, percent, for wall-clock and throughput.
    tolerance: f64,
    /// Absolute wall floor in nanoseconds: wall regressions smaller than
    /// this are ignored, and throughput is only gated for benches whose
    /// baseline wall reaches it.
    wall_floor_ns: f64,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            skip_wall: false,
            tolerance: 25.0,
            wall_floor_ns: 5e6,
        }
    }
}

/// Runs the whole gate, returning failure messages (empty = pass) and
/// informational notes.
fn gate(baseline: &Json, candidate: &Json, opts: &Opts) -> (Vec<String>, Vec<String>) {
    let mut failures = Vec::new();
    let mut notes = Vec::new();

    // Deterministic counters: exact equality, baseline drives the key set.
    for section in ["metrics", "profiles", "recovery", "shards", "telemetry"] {
        let base = scalars(baseline, section);
        let cand = scalars(candidate, section);
        for (path, want) in &base {
            match lookup(&cand, path) {
                Some(got) if got == *want => {}
                Some(got) => {
                    failures.push(format!("DRIFT {path}: baseline {want}, candidate {got}"))
                }
                None => failures.push(format!("DRIFT {path}: missing from candidate")),
            }
        }
        for (path, _) in &cand {
            if lookup(&base, path).is_none() {
                notes.push(format!("note: {path} is new in the candidate (not gated)"));
            }
        }
    }

    if opts.skip_wall {
        notes.push("wall-clock and throughput checks skipped (--skip-wall)".into());
        return (failures, notes);
    }

    let base = scalars(baseline, "phase_timings");
    let cand = scalars(candidate, "phase_timings");

    // Wall-clock: per-bench nanoseconds under phase_timings.wall. A
    // regression must exceed BOTH the relative tolerance and the absolute
    // floor — 25% of a 2 ms tier is scheduler noise, not a signal.
    for (path, want) in base
        .iter()
        .filter(|(p, _)| p.starts_with("phase_timings.wall."))
    {
        let Some(got) = lookup(&cand, path) else {
            failures.push(format!("DRIFT {path}: missing from candidate"));
            continue;
        };
        let limit = want * (1.0 + opts.tolerance / 100.0);
        if got > limit && got - want >= opts.wall_floor_ns {
            failures.push(format!(
                "SLOWER {path}: {:.1}ms -> {:.1}ms (> {}% regression and > {:.0}ms floor)",
                want / 1e6,
                got / 1e6,
                opts.tolerance,
                opts.wall_floor_ns / 1e6
            ));
        }
    }

    // Throughput: per-bench messages/sec under phase_timings.throughput,
    // gated as a lower bound — but only where the baseline wall is long
    // enough (>= floor) for the rate to be a measurement rather than noise.
    for (path, want) in base
        .iter()
        .filter(|(p, _)| p.starts_with("phase_timings.throughput."))
    {
        let bench = &path["phase_timings.throughput.".len()..];
        let base_wall = lookup(&base, &format!("phase_timings.wall.{bench}")).unwrap_or(0.0);
        if base_wall < opts.wall_floor_ns {
            continue;
        }
        let Some(got) = lookup(&cand, path) else {
            failures.push(format!("DRIFT {path}: missing from candidate"));
            continue;
        };
        let limit = want * (1.0 - opts.tolerance / 100.0);
        if got < limit {
            failures.push(format!(
                "SLOWER {path}: {:.0} msg/s -> {:.0} msg/s (> {}% throughput drop)",
                want, got, opts.tolerance
            ));
        }
    }

    (failures, notes)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut files = Vec::new();
    let mut opts = Opts::default();
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--skip-wall" => opts.skip_wall = true,
            "--wall-tolerance" => match iter.next().and_then(|t| t.parse::<f64>().ok()) {
                Some(t) if t >= 0.0 => opts.tolerance = t,
                _ => {
                    eprintln!("--wall-tolerance needs a non-negative percentage");
                    return ExitCode::FAILURE;
                }
            },
            "--wall-floor-ms" => match iter.next().and_then(|t| t.parse::<f64>().ok()) {
                Some(t) if t >= 0.0 => opts.wall_floor_ns = t * 1e6,
                _ => {
                    eprintln!("--wall-floor-ms needs a non-negative duration in ms");
                    return ExitCode::FAILURE;
                }
            },
            _ => files.push(a.clone()),
        }
    }
    let [baseline_path, candidate_path] = files.as_slice() else {
        eprintln!(
            "usage: bench_compare <baseline.json> <candidate.json> [--skip-wall] \
             [--wall-tolerance PCT] [--wall-floor-ms MS]"
        );
        return ExitCode::FAILURE;
    };
    let (baseline, candidate) = match (load(baseline_path), load(candidate_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for r in [b, c] {
                if let Err(e) = r {
                    eprintln!("{e}");
                }
            }
            return ExitCode::FAILURE;
        }
    };

    let (failures, notes) = gate(&baseline, &candidate, &opts);
    for n in &notes {
        println!("{n}");
    }
    for f in &failures {
        eprintln!("{f}");
    }
    if !failures.is_empty() {
        eprintln!("bench_compare: {} regression(s)", failures.len());
        ExitCode::FAILURE
    } else {
        println!(
            "bench_compare: ok ({} vs {})",
            baseline_path, candidate_path
        );
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal synthetic report: one bench with metrics, wall, and
    /// throughput entries.
    fn report(rounds: f64, wall_ns: f64, throughput: f64) -> Json {
        parse(&format!(
            r#"{{
                "metrics": {{ "bench_a": {{ "rounds": {rounds} }} }},
                "phase_timings": {{
                    "wall": {{ "bench_a": {wall_ns} }},
                    "throughput": {{ "bench_a": {throughput} }}
                }}
            }}"#
        ))
        .expect("valid synthetic json")
    }

    fn failures(base: &Json, cand: &Json, opts: &Opts) -> Vec<String> {
        gate(base, cand, opts).0
    }

    #[test]
    fn metric_drift_is_exact() {
        let base = report(10.0, 1e9, 1e6);
        let ok = report(10.0, 1e9, 1e6);
        assert!(failures(&base, &ok, &Opts::default()).is_empty());
        let drift = report(11.0, 1e9, 1e6);
        let f = failures(&base, &drift, &Opts::default());
        assert_eq!(f.len(), 1);
        assert!(f[0].contains("metrics.bench_a.rounds"), "{f:?}");
    }

    #[test]
    fn shard_counter_drift_is_exact() {
        let shard_report = |cross: u64| {
            parse(&format!(
                r#"{{
                    "shards": {{
                        "dumbbell/spectral": {{
                            "shards": 4,
                            "intra_messages": 90,
                            "cross_messages": {cross},
                            "intra_bits": 900,
                            "cross_bits": 100,
                            "walk/token": {{ "cross_messages": {cross} }}
                        }}
                    }}
                }}"#
            ))
            .expect("valid synthetic json")
        };
        let base = shard_report(10);
        assert!(failures(&base, &shard_report(10), &Opts::default()).is_empty());
        let f = failures(&base, &shard_report(11), &Opts::default());
        // Both the total and the per-class nested counter drift.
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(
            f.iter()
                .any(|m| m.contains("shards.dumbbell/spectral.cross_messages")),
            "{f:?}"
        );
        assert!(
            f.iter()
                .any(|m| m.contains("shards.dumbbell/spectral.walk/token.cross_messages")),
            "{f:?}"
        );
    }

    #[test]
    fn telemetry_counter_drift_is_exact() {
        let tel_report = |wake_hwm: u64| {
            parse(&format!(
                r#"{{
                    "telemetry": {{
                        "mst/contiguous": {{
                            "rounds": 40,
                            "nodes_stepped": 5000,
                            "messages_staged": 9000,
                            "active_nodes_hwm": 256,
                            "inbox_queued_hwm": 700,
                            "staged_sends_hwm": 700,
                            "wake_queue_hwm": {wake_hwm},
                            "arena_bytes_hwm": 33600
                        }}
                    }}
                }}"#
            ))
            .expect("valid synthetic json")
        };
        let base = tel_report(12);
        assert!(failures(&base, &tel_report(12), &Opts::default()).is_empty());
        let f = failures(&base, &tel_report(13), &Opts::default());
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(
            f[0].contains("telemetry.mst/contiguous.wake_queue_hwm"),
            "{f:?}"
        );
    }

    #[test]
    fn sub_floor_wall_regressions_are_ignored() {
        // 1 ms -> 4 ms is a 300% regression but only 3 ms absolute: below
        // the 5 ms floor, so the old purely-relative gate's flake is gone.
        let base = report(10.0, 1e6, 1e6);
        let cand = report(10.0, 4e6, 1e6);
        assert!(failures(&base, &cand, &Opts::default()).is_empty());
    }

    #[test]
    fn large_wall_regressions_still_fail() {
        // 100 ms -> 200 ms: over tolerance AND over the absolute floor.
        let base = report(10.0, 1e8, 1e6);
        let cand = report(10.0, 2e8, 1e6);
        let f = failures(&base, &cand, &Opts::default());
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].contains("SLOWER phase_timings.wall.bench_a"), "{f:?}");
        // Just inside tolerance passes whatever the absolute delta.
        let cand = report(10.0, 1.2e8, 1e6);
        assert!(failures(&base, &cand, &Opts::default()).is_empty());
    }

    #[test]
    fn floor_is_configurable() {
        let base = report(10.0, 1e6, 1e6);
        let cand = report(10.0, 4e6, 1e6);
        let strict = Opts {
            wall_floor_ns: 1e6,
            ..Opts::default()
        };
        let f = failures(&base, &cand, &strict);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].contains("SLOWER phase_timings.wall"), "{f:?}");
    }

    #[test]
    fn throughput_drops_fail_on_long_benches_only() {
        // Long bench (1 s wall): halved throughput fails the lower bound.
        let base = report(10.0, 1e9, 1_000_000.0);
        let cand = report(10.0, 1e9, 500_000.0);
        let f = failures(&base, &cand, &Opts::default());
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(
            f[0].contains("SLOWER phase_timings.throughput.bench_a"),
            "{f:?}"
        );
        // Within tolerance passes.
        let cand = report(10.0, 1e9, 800_000.0);
        assert!(failures(&base, &cand, &Opts::default()).is_empty());
        // Sub-floor wall (1 ms): the rate is noise, never gated.
        let base = report(10.0, 1e6, 1_000_000.0);
        let cand = report(10.0, 1e6, 1_000.0);
        assert!(failures(&base, &cand, &Opts::default()).is_empty());
    }

    #[test]
    fn skip_wall_skips_both_timing_gates() {
        let base = report(10.0, 1e9, 1_000_000.0);
        let cand = report(10.0, 9e9, 1_000.0);
        let opts = Opts {
            skip_wall: true,
            ..Opts::default()
        };
        assert!(failures(&base, &cand, &opts).is_empty());
        // Determinism drift still fails even with --skip-wall.
        let drifted = report(11.0, 1e9, 1_000_000.0);
        assert_eq!(failures(&base, &drifted, &opts).len(), 1);
    }

    #[test]
    fn missing_benches_fail_and_new_benches_are_notes() {
        let base = report(10.0, 1e9, 1e6);
        let empty = parse(r#"{ "metrics": {} }"#).unwrap();
        let f = failures(&base, &empty, &Opts::default());
        // rounds + wall + throughput all missing.
        assert_eq!(f.len(), 3, "{f:?}");
        // New candidate-only benches are informational, not failures.
        let (f, notes) = gate(&empty, &base, &Opts::default());
        assert!(f.is_empty(), "{f:?}");
        assert!(notes.iter().any(|n| n.contains("new in the candidate")));
    }
}
