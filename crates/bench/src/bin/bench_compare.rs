//! Regression gate over two `bench_suite` reports.
//!
//! Usage: `bench_compare <baseline.json> <candidate.json> [--skip-wall]
//! [--wall-tolerance PCT]`
//!
//! Compares every bench the baseline recorded:
//!
//! * **exact** — all `metrics.<bench>` counters (rounds, messages, bits,
//!   max edge congestion, fault counters), all
//!   `profiles.<bench>.<class>` per-class totals, and all
//!   `recovery.<bench>` reconvergence statistics (span counts,
//!   time-to-reconverge percentiles) must be identical: the simulator is
//!   deterministic, so *any* drift is a behavior change;
//! * **wall-clock** — `phase_timings.wall.<bench>` may regress by at most
//!   the tolerance (default 25%). `--skip-wall` disables this check for
//!   cross-machine comparisons (CI compares a committed baseline produced
//!   on different hardware, where wall-clock is not meaningful).
//!
//! Exits nonzero on the first report that cannot be read and after listing
//! every drifted value; prints `ok` per bench otherwise. Benches only
//! present in the candidate are reported informationally and do not fail
//! the gate (the next baseline refresh picks them up).

use amt_bench::report::{parse, validate, Json};
use std::process::ExitCode;

/// Flattens `section.<name>.<key>` (and one level deeper for profiles)
/// into `(path, value)` pairs.
fn scalars(doc: &Json, section: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let Some(Json::Obj(entries)) = doc.get(section) else {
        return out;
    };
    for (name, entry) in entries {
        let Json::Obj(fields) = entry else { continue };
        for (k, v) in fields {
            match v {
                Json::Num(x) => out.push((format!("{section}.{name}.{k}"), *x)),
                Json::Obj(inner) => {
                    for (ik, iv) in inner {
                        if let Json::Num(x) = iv {
                            out.push((format!("{section}.{name}.{k}.{ik}"), *x));
                        }
                    }
                }
                _ => {}
            }
        }
    }
    out
}

fn lookup(pairs: &[(String, f64)], path: &str) -> Option<f64> {
    pairs.iter().find(|(p, _)| p == path).map(|&(_, v)| v)
}

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: cannot read: {e}"))?;
    let doc = parse(&text).map_err(|e| format!("{path}: parse error: {e}"))?;
    validate(&doc).map_err(|e| format!("{path}: schema violation: {e}"))?;
    Ok(doc)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut files = Vec::new();
    let mut skip_wall = false;
    let mut tolerance = 25.0f64;
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--skip-wall" => skip_wall = true,
            "--wall-tolerance" => match iter.next().and_then(|t| t.parse::<f64>().ok()) {
                Some(t) if t >= 0.0 => tolerance = t,
                _ => {
                    eprintln!("--wall-tolerance needs a non-negative percentage");
                    return ExitCode::FAILURE;
                }
            },
            _ => files.push(a.clone()),
        }
    }
    let [baseline_path, candidate_path] = files.as_slice() else {
        eprintln!("usage: bench_compare <baseline.json> <candidate.json> [--skip-wall] [--wall-tolerance PCT]");
        return ExitCode::FAILURE;
    };
    let (baseline, candidate) = match (load(baseline_path), load(candidate_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for r in [b, c] {
                if let Err(e) = r {
                    eprintln!("{e}");
                }
            }
            return ExitCode::FAILURE;
        }
    };

    let mut failures = 0u32;

    // Deterministic counters: exact equality, baseline drives the key set.
    for section in ["metrics", "profiles", "recovery"] {
        let base = scalars(&baseline, section);
        let cand = scalars(&candidate, section);
        for (path, want) in &base {
            match lookup(&cand, path) {
                Some(got) if got == *want => {}
                Some(got) => {
                    eprintln!("DRIFT {path}: baseline {want}, candidate {got}");
                    failures += 1;
                }
                None => {
                    eprintln!("DRIFT {path}: missing from candidate");
                    failures += 1;
                }
            }
        }
        for (path, _) in &cand {
            if lookup(&base, path).is_none() {
                println!("note: {path} is new in the candidate (not gated)");
            }
        }
    }

    // Wall-clock: per-bench nanoseconds under phase_timings.wall.
    if skip_wall {
        println!("wall-clock check skipped (--skip-wall)");
    } else {
        let base = scalars(&baseline, "phase_timings");
        let cand = scalars(&candidate, "phase_timings");
        for (path, want) in base
            .iter()
            .filter(|(p, _)| p.starts_with("phase_timings.wall."))
        {
            let Some(got) = lookup(&cand, path) else {
                eprintln!("DRIFT {path}: missing from candidate");
                failures += 1;
                continue;
            };
            let limit = want * (1.0 + tolerance / 100.0);
            if got > limit {
                eprintln!(
                    "SLOWER {path}: {:.1}ms -> {:.1}ms (> {tolerance}% regression)",
                    want / 1e6,
                    got / 1e6
                );
                failures += 1;
            }
        }
    }

    if failures > 0 {
        eprintln!("bench_compare: {failures} regression(s)");
        ExitCode::FAILURE
    } else {
        println!(
            "bench_compare: ok ({} vs {})",
            baseline_path, candidate_path
        );
        ExitCode::SUCCESS
    }
}
