//! Canonical bench suite: pinned configurations of the flagship runs,
//! written as a single schema-v5 report for the regression gate.
//!
//! Runs, with fully pinned seeds (so every counter is deterministic):
//!
//! * **e1 MST** — simulator-executed Borůvka on the canonical random
//!   6-regular expander (seed 1, weights seed 2), `n ∈ {256, 1024}`;
//! * **e2 routing** — the `i → 5i+3 mod n` permutation: hierarchical
//!   routing on the n = 256 expander, plus the CONGEST-executed Valiant
//!   bit-fix router on the dim-8 hypercube;
//! * **large tiers** — MST (Borůvka) on the dim-17 hypercube
//!   (n = 131072) and the Margulis–Gabber–Galil expander at m = 316
//!   (n = 99856), plus bit-fix routing of the full permutation on the
//!   dim-17 hypercube — the n ≈ 10⁵ ceiling the active-set engine pays
//!   for, always on and CI-gated. `AMT_BENCH_XL=1` additionally runs the
//!   n ≈ 10⁶ versions (hypercube dim 20, MGG m = 1000, bit-fix dim 20);
//!   those are *not* part of the committed baseline — `bench_compare`
//!   reports candidate-only benches informationally — so the flag can stay
//!   off in CI and the baseline refresh;
//! * **e16 faulty walk** — 256 healing walks on the n = 1024, d = 8
//!   expander under the e16 drop-0.05 / 2-crash plan;
//! * **e17 churn tier** — the same three protocol families under a pinned
//!   nontrivial [`ChurnPlan`] (link flaps plus a crash-restart): churned
//!   healing walks, churned healing Borůvka, and the churned bit-fix
//!   router. Each records a `recovery` section (damage spans and
//!   time-to-reconverge percentiles) alongside the usual counters;
//! * **scaling tier** — a sparse two-class token workload on three pinned
//!   2048-node instances (random 6-regular expander, id-interleaved
//!   dumbbell of two expander halves, heavy-tailed Chung–Lu), stepped at
//!   worker counts {1, 2, 4, 8, 16} under both a contiguous and a spectral
//!   node→shard [`Placement`]. Protocol observables must be byte-identical
//!   across every (threads, placement) configuration — placement is run
//!   configuration, not semantics — so metrics/profiles are recorded once
//!   per instance and wall-clock once per configuration. The recorded
//!   profile is then attributed to both placements at 4 shards (`shards`
//!   report section, schema v4); on the dumbbell the spectral placement
//!   must route a strictly smaller share of messages across shards than
//!   the contiguous one (hard assert). Every run in the tier executes
//!   with [`TelemetryConfig`] attached: the reference run's logical
//!   execution-health counters (work totals and gauge high-water marks)
//!   enter the gated `telemetry` report section (schema v5), and every
//!   (threads, placement) configuration must reproduce them exactly —
//!   telemetry is thread- and placement-invariant by contract (hard
//!   assert). `AMT_BENCH_SCALE_ONLY=1` runs just
//!   this tier — CI uses it to re-validate at `AMT_SIM_THREADS` 1 and 4.
//!
//! Output: `experiments_out/BENCH_<git-describe>.json` (override the stem
//! with a CLI argument, e.g. `bench_suite BENCH_baseline`) carrying rounds,
//! messages, max edge congestion, wall-clock, messages/sec throughput,
//! per-class totals, recovery statistics, and shard-attribution counters
//! for every bench. `bench_compare` diffs two such files and exits nonzero
//! on drift.

use amt_bench::scale::{scale_fleet, scaling_instances};
use amt_bench::{expander, report::git_describe, scaled_levels, Report};
use amt_core::congest::{
    Metrics, PhaseTimings, Placement, ProfileConfig, RunConfig, RunTelemetry, Simulator,
    TelemetryConfig, TrafficProfile,
};
use amt_core::mst::congest_boruvka;
use amt_core::prelude::*;
use amt_core::routing::{route_bitfix_churned_instrumented, route_bitfix_instrumented};
use amt_core::walks::healing::{
    run_walks_healing_churned_instrumented, run_walks_healing_instrumented,
};
use amt_core::walks::WalkSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// The e16 crash schedule: node 0 (the minimum-id fragment leader) first,
/// then high-id nodes, staggered so crashes land mid-run.
fn plan_for(drop: f64, crashes: usize, n: usize, seed: u64) -> FaultPlan {
    let mut plan = FaultPlan::none().seeded(seed).with_drops(drop);
    for c in 0..crashes {
        let node = if c == 0 {
            NodeId(0)
        } else {
            NodeId((n - c) as u32)
        };
        plan = plan.with_crash(node, 5 + 7 * c as u64);
    }
    plan
}

struct Bench {
    report: Report,
    wall: PhaseTimings,
    throughput: PhaseTimings,
}

impl Bench {
    /// Records one bench: its metrics, per-class totals, wall-clock,
    /// messages/sec throughput, and a summary row.
    fn record(
        &mut self,
        name: &'static str,
        metrics: &Metrics,
        profile: Option<&TrafficProfile>,
        wall: std::time::Duration,
    ) {
        self.report.metrics(name, metrics);
        if let Some(p) = profile {
            assert_eq!(p.total_messages(), metrics.messages, "{name}: class sums");
            self.report.profile(name, p);
        }
        self.wall.record_nanos(name, wall.as_nanos() as u64);
        // Messages/sec, recorded as a second `phase_timings` group.
        // `bench_compare` gates it as a lower bound for benches whose wall
        // clears the noise floor — the tentpole's simulated-throughput
        // number, pinned so the round engine can't quietly regress.
        let secs = wall.as_secs_f64();
        let msgs_per_sec = if secs > 0.0 {
            (metrics.messages as f64 / secs) as u64
        } else {
            0
        };
        self.throughput.record_nanos(name, msgs_per_sec);
        self.report.row(&[
            name.to_string(),
            metrics.rounds.to_string(),
            metrics.messages.to_string(),
            metrics.max_edge_congestion.to_string(),
            format!("{:.1}", wall.as_secs_f64() * 1e3),
            msgs_per_sec.to_string(),
        ]);
    }
}

fn main() {
    let stem = std::env::args()
        .nth(1)
        .unwrap_or_else(|| format!("BENCH_{}", git_describe()));
    let mut bench = Bench {
        report: Report::new(&stem),
        wall: PhaseTimings::new(),
        throughput: PhaseTimings::new(),
    };
    let profile_cfg = Some(ProfileConfig::default());
    let scale_only = std::env::var("AMT_BENCH_SCALE_ONLY").is_ok_and(|v| v == "1");
    println!("# Canonical bench suite ({stem})\n");
    bench.report.config("threads", 4u64);
    bench.report.config("scale_only", scale_only);
    bench.report.header(&[
        "bench",
        "rounds",
        "messages",
        "max_edge_congestion",
        "wall_ms",
        "msgs_per_sec",
    ]);
    if scale_only {
        scaling_tier(&mut bench);
        finish(bench);
        return;
    }

    // e1 MST: Borůvka on the canonical expander, n ∈ {256, 1024}.
    for &n in &[256usize, 1024] {
        let g = expander(n, 6, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let wg = WeightedGraph::with_random_weights(g, 1_000_000, &mut rng);
        let t0 = Instant::now();
        let (out, profile) =
            congest_boruvka::run_instrumented(&wg, 3, 4, profile_cfg).expect("connected");
        let wall = t0.elapsed();
        let profile = profile.expect("profiling on");
        // `CongestMstOutcome` has no `Metrics`; reconstruct the comparable
        // counters from the run and its exact profile.
        let metrics = Metrics {
            rounds: out.rounds,
            messages: out.messages,
            bits: profile.total_bits(),
            max_edge_congestion: profile.analyze(1).max_edge_congestion,
            ..Metrics::default()
        };
        let name = if n == 256 {
            "e1_mst_n256"
        } else {
            "e1_mst_n1024"
        };
        bench.record(name, &metrics, Some(&profile), wall);
    }

    // e2 routing, hierarchical: the canonical permutation at n = 256.
    {
        let n = 256usize;
        let g = expander(n, 6, 1);
        let levels = scaled_levels(g.volume(), 4);
        let sys = System::builder(&g)
            .seed(1)
            .beta(4)
            .levels(levels)
            .build()
            .expect("expander");
        let reqs: Vec<(NodeId, NodeId)> = (0..n as u32)
            .map(|i| (NodeId(i), NodeId((5 * i + 3) % n as u32)))
            .collect();
        let t0 = Instant::now();
        let out = sys.route(&reqs, 2).expect("routable");
        let wall = t0.elapsed();
        assert_eq!(out.delivered, reqs.len(), "e2: every packet must arrive");
        // The hierarchy prices rounds by emulation (no simulator run, so no
        // message metrics or profile); rounds is the regression-gated value.
        let metrics = Metrics {
            rounds: out.total_base_rounds,
            ..Metrics::default()
        };
        bench.record("e2_route_hierarchy_n256", &metrics, None, wall);
    }

    // e2 routing, simulator-executed: bit-fix on the dim-8 hypercube.
    {
        let dim = 8u32;
        let n = 1usize << dim;
        let g = generators::hypercube(dim);
        let reqs: Vec<(NodeId, NodeId)> = (0..n as u32)
            .map(|i| (NodeId(i), NodeId((5 * i + 3) % n as u32)))
            .collect();
        let t0 = Instant::now();
        let (out, profile) =
            route_bitfix_instrumented(&g, &reqs, 12, 4, profile_cfg).expect("hypercube");
        let wall = t0.elapsed();
        bench.record("e2_route_bitfix_dim8", &out.metrics, profile.as_ref(), wall);
    }

    // e2 walk engine: the hierarchy build's walk phase in isolation at
    // n = 4096 — the Lemma 2.5 workload (`k·d(v)` walks per node) through
    // the batched engine, plus the reverse and kept-subset replays the
    // embedding pays for (level0's `2·rounds + replay(kept)` pattern).
    // Full builds at this size take minutes; the walk phase alone is what
    // the engine refactors move, so it is what the gate pins.
    {
        let g = expander(4096, 6, 1);
        let specs = amt_core::walks::parallel::degree_proportional_specs(&g, 2, 64);
        let mut rng = StdRng::seed_from_u64(7);
        let t0 = Instant::now();
        let run =
            amt_core::walks::parallel::run_parallel_walks(&g, WalkKind::Lazy, &specs, &mut rng);
        let kept: Vec<usize> = (0..specs.len()).step_by(3).collect();
        let replay = run.replay_rounds(&kept);
        let wall = t0.elapsed();
        let metrics = Metrics {
            rounds: run.stats.rounds + run.reverse_rounds() + replay,
            messages: run.stats.traversals,
            max_edge_congestion: u64::from(
                run.stats.per_step_rounds.iter().copied().max().unwrap_or(0),
            ),
            peak_messages_per_round: u64::from(run.stats.max_node_tokens()),
            ..Metrics::default()
        };
        bench.record("e2_walk_phase_n4096", &metrics, None, wall);
    }

    // Large tiers (ROADMAP item 1): the n ≈ 10⁵ ceiling the active-set
    // engine lifts, always on. AMT_BENCH_XL=1 adds the n ≈ 10⁶ versions,
    // which stay out of the committed baseline (candidate-only benches are
    // informational in `bench_compare`), so the flag is off in CI.
    let xl = std::env::var("AMT_BENCH_XL").is_ok_and(|v| v == "1");

    // Large MST: Borůvka on the dim-17 hypercube and the
    // Margulis–Gabber–Galil expander. Profiling is off here — per-class
    // per-edge attribution over millions of edges would dominate the
    // wall-clock these tiers exist to measure.
    let mut mst_tiers: Vec<(&'static str, Graph)> = vec![
        ("e1_mst_hypercube_n131072", generators::hypercube(17)),
        (
            "e1_mst_margulis_n99856",
            generators::margulis_expander(316).expect("m >= 2"),
        ),
    ];
    if xl {
        mst_tiers.push(("e1_mst_hypercube_n1048576", generators::hypercube(20)));
        mst_tiers.push((
            "e1_mst_margulis_n1000000",
            generators::margulis_expander(1000).expect("m >= 2"),
        ));
    }
    for (name, g) in mst_tiers {
        let mut rng = StdRng::seed_from_u64(2);
        let wg = WeightedGraph::with_random_weights(g, 1_000_000, &mut rng);
        let t0 = Instant::now();
        let (out, _) = congest_boruvka::run_instrumented(&wg, 3, 4, None).expect("connected");
        let wall = t0.elapsed();
        let metrics = Metrics {
            rounds: out.rounds,
            messages: out.messages,
            ..Metrics::default()
        };
        bench.record(name, &metrics, None, wall);
    }

    // Large routing: the full `i → 5i+3 mod n` permutation, bit-fixed on
    // the dim-17 (and, under XL, dim-20) hypercube — one packet per node.
    let mut route_tiers: Vec<(&'static str, u32)> = vec![("e2_route_bitfix_dim17", 17)];
    if xl {
        route_tiers.push(("e2_route_bitfix_dim20", 20));
    }
    for (name, dim) in route_tiers {
        let n = 1usize << dim;
        let g = generators::hypercube(dim);
        let reqs: Vec<(NodeId, NodeId)> = (0..n as u32)
            .map(|i| (NodeId(i), NodeId((5 * i + 3) % n as u32)))
            .collect();
        let t0 = Instant::now();
        let (out, _) = route_bitfix_instrumented(&g, &reqs, 12, 4, None).expect("hypercube");
        let wall = t0.elapsed();
        bench.record(name, &out.metrics, None, wall);
    }

    // e16 faulty walk: the e16 threads-table configuration.
    {
        let g = expander(1024, 8, 16);
        let n = g.len();
        let specs: Vec<WalkSpec> = (0..256)
            .map(|i| WalkSpec {
                start: NodeId((i * 3 % n) as u32),
                steps: 24,
            })
            .collect();
        let plan = plan_for(0.05, 2, n, 11 ^ (2u64) << 8);
        let t0 = Instant::now();
        let (out, _, profile) = run_walks_healing_instrumented(
            &g,
            WalkKind::Lazy,
            &specs,
            11,
            plan,
            4,
            None,
            profile_cfg,
        )
        .expect("valid plan");
        let wall = t0.elapsed();
        bench.record("e16_faulty_walk", &out.metrics, profile.as_ref(), wall);
    }

    // e17 churn tier: the pinned flap + crash-restart schedule. Every
    // counter *and* the recovery timeline are deterministic, so the gate
    // pins reconvergence behaviour, not just message counts.

    // e17 churned walks: flapping links + one restarting node.
    {
        let g = expander(1024, 8, 16);
        let n = g.len();
        let specs: Vec<WalkSpec> = (0..128)
            .map(|i| WalkSpec {
                start: NodeId((i * 3 % n) as u32),
                steps: 24,
            })
            .collect();
        let plan = FaultPlan::none().seeded(21).with_drops(0.01);
        let churn = ChurnPlan::none()
            .seeded(21)
            .with_flaps(0.05, 4)
            .with_restart(NodeId(7), 6, 5);
        let t0 = Instant::now();
        let (out, _, profile) = run_walks_healing_churned_instrumented(
            &g,
            WalkKind::Lazy,
            &specs,
            21,
            plan,
            churn,
            4,
            None,
            profile_cfg,
        )
        .expect("valid plans");
        let wall = t0.elapsed();
        bench.record("e17_churned_walk", &out.metrics, profile.as_ref(), wall);
        bench.report.recovery("e17_churned_walk", &out.timeline);
    }

    // e17 churned MST: healing Borůvka through the same churn family.
    {
        let g = expander(256, 6, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let wg = WeightedGraph::with_random_weights(g, 1_000_000, &mut rng);
        let plan = FaultPlan::none().seeded(9).with_drops(0.01);
        let churn = ChurnPlan::none()
            .seeded(33)
            .with_flaps(0.05, 4)
            .with_restart(NodeId(5), 3, 5);
        let t0 = Instant::now();
        let (out, _, profile) = amt_core::mst::healing::run_healing_churned_instrumented(
            &wg,
            17,
            plan,
            churn,
            4,
            None,
            profile_cfg,
        )
        .expect("survivors stay connected");
        let wall = t0.elapsed();
        bench.record("e17_churned_mst", &out.metrics, profile.as_ref(), wall);
        bench.report.recovery("e17_churned_mst", &out.timeline);
    }

    // e17 churned routing: bit-fix on the dim-8 hypercube with flapping
    // links and a restarting node; lost packets re-inject across epochs.
    {
        let dim = 8u32;
        let n = 1usize << dim;
        let g = generators::hypercube(dim);
        let reqs: Vec<(NodeId, NodeId)> = (0..n as u32)
            .map(|i| (NodeId(i), NodeId((5 * i + 3) % n as u32)))
            .collect();
        let churn = ChurnPlan::none()
            .seeded(17)
            .with_flaps(0.05, 3)
            .with_restart(NodeId(6), 1, 4);
        let t0 = Instant::now();
        let (out, _, profile) =
            route_bitfix_churned_instrumented(&g, &reqs, 12, churn, 4, None, profile_cfg)
                .expect("hypercube");
        let wall = t0.elapsed();
        assert!(
            out.undelivered.is_empty(),
            "e17: flaps alone never isolate a destination for good"
        );
        bench.record("e17_churned_route", &out.metrics, profile.as_ref(), wall);
        bench.report.recovery("e17_churned_route", &out.timeline);
    }

    scaling_tier(&mut bench);
    finish(bench);
}

fn finish(bench: Bench) {
    let Bench {
        mut report,
        wall,
        throughput,
    } = bench;
    report.phase_timings("wall", &wall);
    report.phase_timings("throughput", &throughput);
    println!("\n(all counters are deterministic: compare two suite reports with");
    println!(" `bench_compare <baseline> <candidate>` — exact on rounds/messages/");
    println!(" congestion/per-class totals, shard attribution, and telemetry");
    println!(" gauges, 25% tolerance with a 5 ms floor on wall-clock, and a");
    println!(" lower bound on messages/sec for the long tiers)");
    report.finish();
}

/// One scaling run; `threads: None` leaves the worker count to the run
/// default (`AMT_SIM_THREADS` or available parallelism).
fn scale_run(
    g: &Graph,
    threads: Option<usize>,
    placement: Option<Placement>,
) -> (
    Metrics,
    Vec<u64>,
    TrafficProfile,
    RunTelemetry,
    std::time::Duration,
) {
    let mut sim = Simulator::new(g, scale_fleet(g.len()), 77)
        .expect("fleet size matches")
        .with_profile(ProfileConfig::default())
        // Aggregates and high-water marks only: the tier gates the logical
        // counters, not the per-round series.
        .with_telemetry(TelemetryConfig::default().without_history());
    if let Some(p) = placement {
        sim = sim.with_placement(p);
    }
    let mut cfg = RunConfig::all_done();
    if let Some(t) = threads {
        cfg = cfg.with_threads(t);
    }
    let t0 = Instant::now();
    let metrics = sim.run(&cfg).expect("scaling workload terminates");
    let wall = t0.elapsed();
    let digests = sim.nodes().iter().map(|p| p.digest).collect();
    let profile = sim.take_profile().expect("profiling on");
    let telemetry = sim.take_telemetry().expect("telemetry on");
    (metrics, digests, profile, telemetry, wall)
}

/// The placement-aware scaling tier: three pinned 2048-node instances ×
/// worker counts {1, 2, 4, 8, 16} × {contiguous, spectral} placements.
/// Observables are placement- and thread-invariant (asserted), so metrics
/// and profiles are recorded once per instance; wall-clock is recorded per
/// configuration, and the instance's profile is attributed to both
/// placements at 4 shards for the schema-v4 `shards` section.
fn scaling_tier(bench: &mut Bench) {
    const SHARDS_FOR_SPLIT: usize = 4;
    const SPECTRAL_ITERS: usize = 120;
    let thread_counts = [1usize, 2, 4, 8, 16];

    let instances = scaling_instances();

    struct TierResult {
        name: &'static str,
        wall_rows: Vec<Vec<String>>,
        contiguous: amt_core::congest::ShardSplit,
        spectral: amt_core::congest::ShardSplit,
    }
    let mut results: Vec<TierResult> = Vec::new();

    // The thread- and placement-invariant view of a run's telemetry: the
    // per-shard vectors legitimately reshape with the worker count, but
    // their totals and every gauge high-water mark may not move.
    let invariants = |t: &RunTelemetry| {
        (
            t.rounds,
            t.hwm,
            t.shard_nodes_stepped.iter().sum::<u64>(),
            t.shard_messages_staged.iter().sum::<u64>(),
        )
    };

    for (name, g) in &instances {
        // Reference run at the default worker count: the one whose
        // metrics/profile/telemetry enter the gated report sections.
        let (metrics, digests, profile, telemetry, wall) = scale_run(g, None, None);
        bench.record(name, &metrics, Some(&profile), wall);
        bench.report.telemetry(name, &telemetry);

        let mut wall_rows = Vec::new();
        for &threads in &thread_counts {
            let placements: Vec<(&'static str, Option<Placement>)> = if threads == 1 {
                // Single-worker runs never consult the placement.
                vec![("contiguous", None)]
            } else {
                vec![
                    ("contiguous", Some(Placement::contiguous(g.len(), threads))),
                    (
                        "spectral",
                        Some(Placement::spectral(g, threads, SPECTRAL_ITERS)),
                    ),
                ]
            };
            for (kind, placement) in placements {
                let (m, d, p, t, w) = scale_run(g, Some(threads), placement);
                assert_eq!(
                    (&m, &d, &p),
                    (&metrics, &digests, &profile),
                    "{name}: observables drifted at threads = {threads}, {kind} placement"
                );
                assert_eq!(
                    invariants(&t),
                    invariants(&telemetry),
                    "{name}: telemetry gauges drifted at threads = {threads}, {kind} placement"
                );
                let label: &'static str =
                    Box::leak(format!("{name}_t{threads}_{kind}").into_boxed_str());
                bench.wall.record_nanos(label, w.as_nanos() as u64);
                wall_rows.push(vec![
                    name.to_string(),
                    kind.to_string(),
                    threads.to_string(),
                    format!("{:.1}", w.as_secs_f64() * 1e3),
                ]);
            }
        }

        // Attribute the (placement-independent) profile to both placements
        // at a fixed shard count.
        let contiguous_flags = Placement::contiguous(g.len(), SHARDS_FOR_SPLIT).cross_edge_flags(g);
        let spectral_flags =
            Placement::spectral(g, SHARDS_FOR_SPLIT, SPECTRAL_ITERS).cross_edge_flags(g);
        results.push(TierResult {
            name,
            wall_rows,
            contiguous: profile.shard_split(SHARDS_FOR_SPLIT, &contiguous_flags),
            spectral: profile.shard_split(SHARDS_FOR_SPLIT, &spectral_flags),
        });
    }

    println!("\n## Scaling tier (placement-invariant observables asserted)\n");
    bench.report.section("scaling wall-clock");
    bench
        .report
        .header(&["instance", "placement", "threads", "wall_ms"]);
    for r in &results {
        for row in &r.wall_rows {
            bench.report.row(row);
        }
    }

    println!();
    bench.report.section("shard attribution (4 shards)");
    bench.report.header(&[
        "instance",
        "placement",
        "cross_msgs",
        "intra_msgs",
        "cross_share_pct",
    ]);
    for r in &results {
        for (kind, split) in [("contiguous", &r.contiguous), ("spectral", &r.spectral)] {
            let label: &'static str = Box::leak(format!("{}_{kind}", r.name).into_boxed_str());
            bench.report.shards(label, split);
            bench.report.row(&[
                r.name.to_string(),
                kind.to_string(),
                split.cross_messages.to_string(),
                split.intra_messages.to_string(),
                format!("{:.1}", split.cross_message_share() * 100.0),
            ]);
        }
        if r.name == "scale_dumbbell_n2048" {
            // The tier's acceptance criterion: on the interleaved dumbbell
            // the spectral placement recovers the two halves, so strictly
            // less of the traffic crosses shards than under contiguous
            // striping.
            assert!(
                r.spectral.cross_message_share() < r.contiguous.cross_message_share(),
                "dumbbell: spectral cross-share {:.4} must beat contiguous {:.4}",
                r.spectral.cross_message_share(),
                r.contiguous.cross_message_share()
            );
        }
    }
}
