//! E10 — Lemma 3.4: the routing recursion.
//!
//! (a) Measured hop rounds per recursion depth for a permutation instance
//!     (the `T(m) = 2T(m/β)·O(log² n) + O(log n)` structure).
//! (b) The capacity argument: for every pair of depth-1 parts `(A_i, A_j)`,
//!     the number of packets needing to cross `A_i → A_j` against the
//!     number of `G₀` edges available between them.

use amt_bench::{expander, Report};
use amt_core::embedding::VirtualId;
use amt_core::prelude::*;
use amt_core::routing::{EmulationMode, HierarchicalRouter, RouterConfig};
use amt_core::walks::parallel::{run_parallel_walks, WalkSpec};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn main() {
    let mut report = Report::new("e10_recursion_profile");
    let n = 128usize;
    let g = expander(n, 6, 1);
    let sys = System::builder(&g)
        .seed(1)
        .beta(4)
        .levels(2)
        .build()
        .expect("expander");
    let h = sys.hierarchy();
    let beta = h.cfg().beta;

    println!("# E10a — hop rounds per recursion depth (n = {n}, β = {beta})\n");
    let reqs: Vec<_> = (0..n as u32)
        .map(|i| (NodeId(i), NodeId((5 * i + 3) % n as u32)))
        .collect();
    let router = HierarchicalRouter::with_config(
        h,
        RouterConfig {
            emulation: EmulationMode::Exact,
            ..RouterConfig::for_n(n)
        },
    );
    let out = router.route(&reqs, 2).expect("routable");
    report.header(&["component", "measured rounds"]);
    report.row(&["preparation walks".into(), out.prep_rounds.to_string()]);
    for (d, r) in out.hop_rounds_per_depth.iter().enumerate() {
        report.row(&[format!("hops at depth {d}"), r.to_string()]);
    }
    report.row(&["bottom cliques".into(), out.bottom_rounds.to_string()]);
    report.row(&["total".into(), out.total_base_rounds.to_string()]);
    println!("\n(the recursion's cost concentrates at the deeper levels, whose");
    println!(" emulation stretch is larger — the 2T(m/β)·O(log²n) term; the hop");
    println!(" term itself is the cheap O(log n) part of Lemma 3.4)\n");

    println!("# E10b — inter-part capacity at depth 1 (messages vs G₀ edges)\n");
    // Replicate the preparation step to see where packets sit, then count
    // A_i→A_j demand vs available edges.
    let mut rng = StdRng::seed_from_u64(9);
    let specs: Vec<WalkSpec> = reqs
        .iter()
        .map(|&(s, _)| WalkSpec {
            start: s,
            steps: h.cfg().tau_mix,
        })
        .collect();
    let run = run_parallel_walks(g_ref(&sys), WalkKind::Lazy, &specs, &mut rng);
    let vmap = h.vmap();
    let starts: Vec<u32> = run
        .trajectories()
        .map(|t| {
            let node = t.end();
            vmap.vid(node, rng.random_range(0..vmap.slot_count(node))).0
        })
        .collect();
    let goals: Vec<u32> = reqs
        .iter()
        .map(|&(_, t)| vmap.vid(t, rng.random_range(0..vmap.slot_count(t))).0)
        .collect();
    let parts = h.parts_at(1) as usize;
    let mut demand = vec![vec![0u64; parts]; parts];
    for (s, t) in starts.iter().zip(&goals) {
        let a = h.part_of(VirtualId(*s), 1) as usize;
        let b = h.part_of(VirtualId(*t), 1) as usize;
        if a != b {
            demand[a][b] += 1;
        }
    }
    let mut edges = vec![vec![0u64; parts]; parts];
    for (_, u, v) in h.overlay(0).graph().edges() {
        let a = h.part_of(VirtualId(u.0), 1) as usize;
        let b = h.part_of(VirtualId(v.0), 1) as usize;
        if a != b {
            edges[a][b] += 1;
            edges[b][a] += 1;
        }
    }
    report.header(&["A_i→A_j", "packets", "G₀ edges between", "edges/packets"]);
    for a in 0..parts {
        for b in 0..parts {
            if a != b && (demand[a][b] > 0 || edges[a][b] > 0) {
                report.row(&[
                    format!("{a}→{b}"),
                    demand[a][b].to_string(),
                    edges[a][b].to_string(),
                    if demand[a][b] > 0 {
                        format!("{:.1}", edges[a][b] as f64 / demand[a][b] as f64)
                    } else {
                        "∞".into()
                    },
                ]);
            }
        }
    }
    println!("\n(Lemma 3.4: both quantities are Θ(m·log n/β²) — the edges/packets");
    println!(" ratio must stay bounded below by a constant, so the hop completes");
    println!(" in O(log n) rounds of G₀)");
    report.finish();
}

fn g_ref<'a>(sys: &'a System<'_>) -> &'a Graph {
    sys.hierarchy().base()
}
