//! E11 — §4 coin-flip merging: the component count shrinks by a constant
//! factor per iteration in expectation, so O(log n) iterations suffice.

use amt_bench::{expander, Report};
use amt_core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut report = Report::new("e11_boruvka_iters");
    println!("# E11 — component trajectory of the coin-flip Boruvka (3 seeds each)\n");
    report.header(&[
        "graph",
        "seed",
        "iterations",
        "4·log₂n budget",
        "trajectory",
    ]);
    let mut all_ratios: Vec<f64> = Vec::new();
    let cases: Vec<(&str, Graph)> = vec![
        ("expander n=96 d=6", expander(96, 6, 1)),
        ("expander n=192 d=6", expander(192, 6, 2)),
        ("hypercube d=7", generators::hypercube(7)),
    ];
    for (name, g) in &cases {
        for seed in 0..3u64 {
            let mut rng = StdRng::seed_from_u64(100 + seed);
            let wg = WeightedGraph::with_random_weights(g.clone(), 1_000_000, &mut rng);
            let sys = System::builder(g)
                .seed(seed)
                .beta(4)
                .levels(1)
                .build()
                .expect("connected");
            let out = sys.mst(&wg, seed).expect("connected");
            assert!(reference::verify_mst(&wg, &out.tree_edges));
            let mut traj: Vec<usize> = vec![out.per_iteration[0].components_before];
            for it in &out.per_iteration {
                traj.push(it.components_after);
            }
            for w in traj.windows(2) {
                if w[0] > 1 {
                    all_ratios.push(w[1] as f64 / w[0] as f64);
                }
            }
            let budget = 4 * (g.len() as f64).log2().ceil() as u32;
            assert!(
                out.iterations <= budget,
                "{name} seed {seed}: too many iterations"
            );
            report.row(&[
                name.to_string(),
                seed.to_string(),
                out.iterations.to_string(),
                budget.to_string(),
                traj.iter()
                    .map(|c| c.to_string())
                    .collect::<Vec<_>>()
                    .join("→"),
            ]);
        }
    }
    let avg = all_ratios.iter().sum::<f64>() / all_ratios.len() as f64;
    report.config("seeds_per_graph", 3u64);
    report.config("avg_shrink_factor", avg);
    println!("\naverage per-iteration shrink factor: {avg:.3}");
    println!("(paper: tail→head merges remove a constant expected fraction of");
    println!(" components per iteration; the classical analysis gives factor ≤ 3/4");
    println!(" in expectation, and the measured average sits well below 1)");
    assert!(avg < 0.85, "shrink factor {avg} too weak");
    report.finish();
}
