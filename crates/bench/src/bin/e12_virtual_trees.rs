//! E12 — Lemma 4.1: virtual-tree invariants across Boruvka iterations.
//!
//! (1) depth `O(log² n)`, (2) per-node virtual degree `≤ d_G(v)·O(log n)`,
//! both witnessed per iteration by the algorithm's own instrumentation.

use amt_bench::{expander, Report};
use amt_core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut report = Report::new("e12_virtual_trees");
    println!("# E12 — virtual-tree invariants (Lemma 4.1)\n");
    for &n in &[96usize, 192] {
        let g = expander(n, 6, 1);
        let logn = (n as f64).log2();
        let mut rng = StdRng::seed_from_u64(7);
        let wg = WeightedGraph::with_random_weights(g.clone(), 1_000_000, &mut rng);
        let sys = System::builder(&g)
            .seed(3)
            .beta(4)
            .levels(1)
            .build()
            .expect("expander");
        let out = sys.mst(&wg, 11).expect("connected");
        assert!(reference::verify_mst(&wg, &out.tree_edges));
        println!(
            "## n = {n} (log²n = {:.0}, log n = {logn:.1})\n",
            logn * logn
        );
        report.header(&[
            "iter",
            "comps",
            "max tree depth",
            "depth/log²n",
            "max deg ratio",
            "ratio/log n",
        ]);
        for (i, it) in out.per_iteration.iter().enumerate() {
            assert!(
                f64::from(it.max_tree_depth) <= 4.0 * logn * logn,
                "depth invariant violated at iteration {i}"
            );
            assert!(
                it.max_degree_ratio <= 4.0 * logn,
                "degree invariant violated at iteration {i}"
            );
            report.row(&[
                (i + 1).to_string(),
                format!("{}→{}", it.components_before, it.components_after),
                it.max_tree_depth.to_string(),
                format!("{:.2}", f64::from(it.max_tree_depth) / (logn * logn)),
                format!("{:.2}", it.max_degree_ratio),
                format!("{:.2}", it.max_degree_ratio / logn),
            ]);
        }
        println!();
    }
    println!("(both normalized columns must stay O(1) through all iterations —");
    println!(" the token-wave balancing keeps trees shallow even as components of");
    println!(" wildly different shapes merge)");
    report.finish();
}
