//! E13 — §4 application: min cut via the MST black box.
//!
//! Tree-packing approximation (see DESIGN.md substitution 1) against exact
//! Stoer–Wagner across graph families, with the trees-packed sweep and the
//! measured distributed cost.

use amt_bench::{expander, Report};
use amt_core::mincut::{stoer_wagner, tree_packing_min_cut, MstOracle};
use amt_core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut report = Report::new("e13_mincut");
    println!("# E13 — min cut: tree packing vs exact (centralized oracle)\n");
    report.header(&["graph", "exact", "packed (8 trees)", "ratio", "side ok"]);
    let mut rng = StdRng::seed_from_u64(5);
    let cases: Vec<(&str, Graph)> = vec![
        ("ring n=24", generators::ring(24)),
        ("hypercube d=5", generators::hypercube(5)),
        ("expander n=64 d=6", expander(64, 6, 1)),
        (
            "dumbbell 2×32, 3 bridges",
            generators::dumbbell_expanders(32, 4, 3, &mut rng).unwrap(),
        ),
        (
            "barbell 2×K12 + path 4",
            generators::barbell(12, 4).unwrap(),
        ),
        (
            "pref. attachment n=80",
            generators::preferential_attachment(80, 3, &mut rng).unwrap(),
        ),
    ];
    for (name, g) in &cases {
        let caps = vec![1u64; g.edge_count()];
        let (exact, _) = stoer_wagner(g, &caps).expect("n ≥ 2");
        let r = tree_packing_min_cut(g, &caps, 8, &MstOracle::Centralized).expect("connected");
        let mut in_s = vec![false; g.len()];
        for v in &r.side {
            in_s[v.index()] = true;
        }
        let realized: u64 = g
            .edges()
            .filter(|&(_, u, v)| in_s[u.index()] != in_s[v.index()])
            .map(|(e, _, _)| caps[e.index()])
            .sum();
        assert!(r.value >= exact, "{name}: approximation below exact");
        assert!(
            r.value <= 2 * exact.max(1),
            "{name}: beyond the 2-approx guarantee"
        );
        report.row(&[
            name.to_string(),
            exact.to_string(),
            r.value.to_string(),
            format!("{:.2}", r.value as f64 / exact.max(1) as f64),
            (realized == r.value).to_string(),
        ]);
    }
    println!("\n(paper claims (1+ε) with its full-version machinery; our");
    println!(" 1-respecting evaluation guarantees (2+ε) and measures near-exact on");
    println!(" every family — the bottleneck cuts are found exactly)\n");

    println!("## trees sweep on the dumbbell (how fast the packing converges)\n");
    let mut rng = StdRng::seed_from_u64(6);
    let g = generators::dumbbell_expanders(32, 4, 3, &mut rng).unwrap();
    let caps = vec![1u64; g.edge_count()];
    let (exact, _) = stoer_wagner(&g, &caps).expect("n ≥ 2");
    report.header(&["trees", "cut found", "ratio"]);
    for &t in &[1u32, 2, 4, 8, 16] {
        let r = tree_packing_min_cut(&g, &caps, t, &MstOracle::Centralized).expect("connected");
        report.row(&[
            t.to_string(),
            r.value.to_string(),
            format!("{:.2}", r.value as f64 / exact as f64),
        ]);
    }

    println!("\n## distributed oracle cost (one row, n = 48)\n");
    let g = expander(48, 4, 2);
    let caps = vec![1u64; g.edge_count()];
    let sys = System::builder(&g)
        .seed(2)
        .beta(4)
        .levels(1)
        .build()
        .expect("expander");
    let r = sys.min_cut(&caps, 3, 7).expect("packable");
    let (exact, _) = stoer_wagner(&g, &caps).expect("n ≥ 2");
    report.header(&["trees", "cut", "exact", "measured rounds", "rounds/tree"]);
    report.row(&[
        r.trees_packed.to_string(),
        r.value.to_string(),
        exact.to_string(),
        r.rounds.to_string(),
        format!("{}", r.rounds / u64::from(r.trees_packed)),
    ]);
    println!("\n(each packed tree = one distributed-MST invocation; total cost is");
    println!(" trees × the Theorem 1.1 bound, exactly the paper's black-box claim)\n");

    println!("## Karger skeleton sampling (the [32, 57] sparsification step)\n");
    report.header(&[
        "graph",
        "exact λ",
        "estimate",
        "p accepted",
        "skeleton m / m",
    ]);
    let mut rng = StdRng::seed_from_u64(9);
    for (name, g) in [
        ("complete K96", generators::complete(96)),
        ("hypercube d=7", generators::hypercube(7)),
        ("regular n=96 d=16", expander(96, 16, 3)),
    ] {
        let caps = vec![1u64; g.edge_count()];
        let (exact, _) = stoer_wagner(&g, &caps).expect("n ≥ 2");
        let r = amt_core::mincut::karger_estimate(&g, 0.4, &mut rng).expect("connected");
        report.row(&[
            name.to_string(),
            exact.to_string(),
            format!("{:.1}", r.estimate),
            format!("{:.3}", r.p),
            format!("{}/{}", r.skeleton_edges, g.edge_count()),
        ]);
    }
    println!("\n(sampling with p = Θ(log n/(ε²λ)) preserves the min cut within");
    println!(" (1±ε) — the estimates bracket the exact values while examining a");
    println!(" fraction of the edges on dense inputs)");
    report.finish();
}
