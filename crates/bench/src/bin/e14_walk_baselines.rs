//! E14 — characterizing the naive walk-router baseline: per-packet cost
//! tracks the hitting time, which blows up on slow-mixing graphs — the
//! quantitative reason the paper routes over an embedded structure instead
//! of letting packets wander.

use amt_bench::{expander, tau_estimate, Report};
use amt_core::prelude::*;
use amt_core::routing::baseline;
use amt_core::walks::times;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut report = Report::new("e14_walk_baselines");
    println!("# E14 — walk-router cost vs hitting time across families\n");
    report.header(&[
        "graph",
        "τ est.",
        "mean hit time",
        "walk-router rounds/packet",
        "delivered",
    ]);
    let mut rng = StdRng::seed_from_u64(7);
    let cases: Vec<(&str, Graph)> = vec![
        ("expander n=128 d=6", expander(128, 6, 1)),
        ("hypercube d=7", generators::hypercube(7)),
        ("torus 12×12", generators::torus_2d(12, 12)),
        (
            "dumbbell 2×64, 2 bridges",
            generators::dumbbell_expanders(64, 6, 2, &mut rng).unwrap(),
        ),
        ("ring n=128", generators::ring(128)),
    ];
    for (name, g) in &cases {
        let n = g.len() as u32;
        let tau = tau_estimate(g);
        // Hitting time averaged over a few random pairs.
        let mut rng = StdRng::seed_from_u64(3);
        let mut hit = 0.0;
        let pairs = 6;
        for i in 0..pairs {
            hit += times::empirical_hitting_time(
                g,
                NodeId((i * 13) % n),
                NodeId((i * 29 + n / 2) % n),
                40,
                2_000_000,
                &mut rng,
            );
        }
        hit /= f64::from(pairs);
        let reqs: Vec<_> = (0..n)
            .map(|i| (NodeId(i), NodeId((i + n / 2) % n)))
            .collect();
        let out = baseline::random_walk_route(g, &reqs, 2_000_000, &mut rng);
        report.row(&[
            name.to_string(),
            tau.to_string(),
            format!("{hit:.0}"),
            format!("{:.1}", out.rounds as f64 / reqs.len() as f64),
            format!("{}/{}", out.delivered, reqs.len()),
        ]);
    }
    println!("\n(the walk router's cost follows the hitting time — Θ(m/d)·polylog on");
    println!(" expanders but Θ(n²) on rings and bottleneck graphs; the paper's");
    println!(" router depends on τ_mix instead, which is exponentially smaller on");
    println!(" the slow-hitting families with good local structure)");
    report.finish();
}
