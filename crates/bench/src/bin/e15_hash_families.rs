//! E15 — hash-family comparison: the paper's Θ(log n)-wise polynomial vs
//! simple tabulation, on the two axes the partition cares about —
//! balls-in-bins uniformity and evaluation cost.

use amt_bench::Report;
use amt_core::kwise::{KWiseHash, TabulationHash};
use std::time::Instant;

fn spread(counts: &[u64]) -> f64 {
    let avg = counts.iter().sum::<u64>() as f64 / counts.len() as f64;
    counts.iter().map(|&c| c as f64).fold(0.0, f64::max) / avg
}

fn main() {
    let mut report = Report::new("e15_hash_families");
    let m = 12_000u64; // ids to place
    let buckets = 64u64;
    println!("# E15 — hash families: {m} ids into {buckets} buckets, 3 seeds each\n");
    report.header(&[
        "family",
        "seed",
        "max/avg bucket load",
        "eval ns/id (approx)",
    ]);
    for seed in 0..3u64 {
        // Polynomial k-wise (k = 16), the paper's construction.
        let h = KWiseHash::from_seed(16, seed);
        let mut counts = vec![0u64; buckets as usize];
        let t0 = Instant::now();
        for id in 0..m {
            counts[(h.eval(id) % buckets) as usize] += 1;
        }
        let poly_ns = t0.elapsed().as_nanos() as f64 / m as f64;
        report.row(&[
            "poly k=16".into(),
            seed.to_string(),
            format!("{:.3}", spread(&counts)),
            format!("{poly_ns:.0}"),
        ]);
        // Simple tabulation.
        let t = TabulationHash::from_seed(seed);
        let mut counts = vec![0u64; buckets as usize];
        let t0 = Instant::now();
        for id in 0..m {
            counts[t.bucket(id, buckets) as usize] += 1;
        }
        let tab_ns = t0.elapsed().as_nanos() as f64 / m as f64;
        report.row(&[
            "tabulation".into(),
            seed.to_string(),
            format!("{:.3}", spread(&counts)),
            format!("{tab_ns:.0}"),
        ]);
    }
    println!("\n(both families give the near-uniform spread property (P1) needs;");
    println!(" tabulation evaluates in a handful of XORs where the degree-15");
    println!(" polynomial pays 16 modular multiplications — the practical swap a");
    println!(" deployment would make, with the broadcast seed unchanged)");
    report.finish();
}
