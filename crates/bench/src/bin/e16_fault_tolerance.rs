//! E16 — fault tolerance of the self-healing walk and MST protocols.
//!
//! Sweeps message-drop rate × crash count on an expander and a barbell
//! (two expanders joined by a thin bridge), running the ARQ-backed healing
//! variants of the parallel walks and the Borůvka MST. For each cell the
//! table reports the measured rounds, the fault counters, the healing work
//! (walk re-issues/re-routes, MST phase restarts), and whether the result
//! stayed correct: every walk from a surviving start finishes, and the tree
//! equals Kruskal on the surviving induced subgraph.
//!
//! Scheduled crashes always start with node 0 — the minimum id, i.e. the
//! implicit leader of its MST fragment (labels are minimum ids) — so the
//! "fragment-leader loss degrades to a phase restart, not a hang" path is
//! exercised in every crashing cell.

use amt_bench::{expander, Report};
use amt_core::congest::PhaseTimings;
use amt_core::mst::{healing as mst_healing, reference, MstError};
use amt_core::prelude::*;
use amt_core::walks::{run_walks_healing, run_walks_healing_threaded, WalkKind, WalkSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;

/// Crash schedule: node 0 (the minimum-id fragment leader) first, then
/// high-id nodes, staggered a few rounds apart so crashes land mid-phase.
fn plan_for(drop: f64, crashes: usize, n: usize, seed: u64) -> FaultPlan {
    let mut plan = FaultPlan::none().seeded(seed).with_drops(drop);
    for c in 0..crashes {
        let node = if c == 0 {
            NodeId(0)
        } else {
            NodeId((n - c) as u32)
        };
        plan = plan.with_crash(node, 5 + 7 * c as u64);
    }
    plan
}

/// Kruskal over the surviving induced subgraph in canonical order.
fn survivor_mst_weight(wg: &WeightedGraph, dead: &[NodeId]) -> u64 {
    let g = wg.graph();
    let gone: HashSet<NodeId> = dead.iter().copied().collect();
    let mut edges: Vec<EdgeId> = g
        .edges()
        .filter(|(_, u, v)| !gone.contains(u) && !gone.contains(v))
        .map(|(e, _, _)| e)
        .collect();
    edges.sort_by_key(|&e| (wg.weight(e), e.0));
    let mut uf = reference::UnionFind::new(g.len());
    let mut total = 0;
    for e in edges {
        let (u, v) = g.endpoints(e);
        if uf.union(u.index(), v.index()) {
            total += wg.weight(e);
        }
    }
    total
}

fn run_case(report: &mut Report, name: &str, g: &Graph, walk_steps: u32, seed: u64) {
    println!("\n## {name} (n = {}, m = {})\n", g.len(), g.edge_count());
    report.header(&[
        "drop",
        "crashes",
        "walk rounds",
        "reissued/rerouted",
        "walks ok",
        "mst rounds",
        "restarts",
        "msg faults",
        "mst ok",
    ]);
    let n = g.len();
    let mut rng = StdRng::seed_from_u64(seed);
    let wg = WeightedGraph::with_random_weights(g.clone(), 4000, &mut rng);
    let specs: Vec<WalkSpec> = (0..n.min(256))
        .map(|i| WalkSpec {
            start: NodeId((i * 3 % n) as u32),
            steps: walk_steps,
        })
        .collect();
    for &drop in &[0.0, 0.01, 0.05] {
        for &crashes in &[0usize, 1, 2] {
            let plan = plan_for(drop, crashes, n, seed ^ (crashes as u64) << 8);
            let walks = run_walks_healing(g, WalkKind::Lazy, &specs, seed, plan.clone()).unwrap();
            report.metrics(
                &format!("{name} drop={drop:.2} crashes={crashes} walks"),
                &walks.metrics,
            );
            let crashed: HashSet<u32> = plan.crashes.iter().map(|c| c.node.0).collect();
            let live_specs = specs.iter().filter(|s| !crashed.contains(&s.start.0));
            let walks_ok = specs
                .iter()
                .zip(&walks.endpoints)
                .all(|(s, e)| crashed.contains(&s.start.0) || e.is_some())
                && live_specs.count() > 0;

            let (mst_cell, restarts, faults, mst_ok) =
                match mst_healing::run_healing(&wg, seed ^ 0xE16, plan) {
                    Ok(out) => {
                        let want = survivor_mst_weight(&wg, &out.crashed_nodes);
                        (
                            out.rounds.to_string(),
                            out.phase_restarts.to_string(),
                            out.metrics.message_faults().to_string(),
                            out.total_weight == want,
                        )
                    }
                    // A crash that disconnects the survivors makes the MST
                    // instance infeasible; failing fast with context is the
                    // correct degradation, not an error of the protocol.
                    Err(MstError::Congest(e)) => {
                        (format!("n/a ({e})"), "-".into(), "-".into(), true)
                    }
                    Err(e) => (format!("FAILED: {e}"), "-".into(), "-".into(), false),
                };
            report.row(&[
                format!("{drop:.2}"),
                crashes.to_string(),
                walks.metrics.rounds.to_string(),
                format!("{}/{}", walks.reissued, walks.rerouted),
                if walks_ok { "yes".into() } else { "NO".into() },
                mst_cell,
                restarts,
                faults,
                if mst_ok { "yes".into() } else { "NO".into() },
            ]);
            assert!(walks_ok, "{name}: a surviving walk failed to finish");
            assert!(mst_ok, "{name}: healed MST diverged from the survivor MST");
        }
    }
}

fn main() {
    let mut report = Report::new("e16_fault_tolerance");
    println!("# E16 — fault injection: drop-rate × crash-count sweep\n");
    println!("Self-healing walks (custody ARQ + epoch re-issue) and Borůvka MST");
    println!("(reliable floods + phase restarts) under the deterministic fault");
    println!("plan; node 0 — the minimum-id fragment leader — is always the");
    println!("first scheduled crash.");

    let mut rng = StdRng::seed_from_u64(16);
    run_case(
        &mut report,
        "expander n=1024 d=8",
        &expander(1024, 8, 16),
        24,
        11,
    );
    run_case(
        &mut report,
        "barbell 2×128 d=8, 4 bridges",
        &generators::dumbbell_expanders(128, 8, 4, &mut rng).unwrap(),
        24,
        13,
    );

    println!("\nEvery cell is checked in-process: surviving walks all finish, and");
    println!("the healed tree's weight equals Kruskal on the surviving subgraph.");
    println!("Crashing node 0 mid-run forces fragment-leader loss; the restart");
    println!("counter shows it degrades to re-flooding, never a hang.");

    threads_table(&mut report);
    report.finish();
}

/// Wall-clock vs simulator threads on the faulty path (the E1 table's
/// counterpart): message-identity fault keying makes the fault stream a
/// pure function of message identity, so the healing protocols produce
/// byte-identical outcomes at every thread count — checked per row.
fn threads_table(report: &mut Report) {
    println!("\n## Wall-clock vs simulator threads (faulty path, expander n = 1024");
    println!("## d = 8, drop = 0.05, 2 crashes)\n");
    println!(
        "hardware: {} core(s) available to this process\n",
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    );
    report.header(&[
        "workload",
        "threads",
        "wall_ms",
        "speedup",
        "rounds",
        "identical",
    ]);
    let g = expander(1024, 8, 16);
    let n = g.len();
    let mut rng = StdRng::seed_from_u64(17);
    let wg = WeightedGraph::with_random_weights(g.clone(), 4000, &mut rng);
    let specs: Vec<WalkSpec> = (0..256)
        .map(|i| WalkSpec {
            start: NodeId((i * 3 % n) as u32),
            steps: 24,
        })
        .collect();
    let plan = plan_for(0.05, 2, n, 11 ^ (2u64) << 8);

    let mut walks_base: Option<(f64, amt_core::walks::HealedWalkRun)> = None;
    let mut mst_base: Option<(f64, mst_healing::HealedMstOutcome)> = None;
    // Walls from this sweep and a repeat sweep; compared at the end with
    // the tolerance-based `PhaseTimings::close_to` (its `Eq` is vacuous).
    let mut sweep = PhaseTimings::new();
    let mut resweep = PhaseTimings::new();
    for &threads in &[1usize, 2, 4, 8] {
        let t0 = std::time::Instant::now();
        let walks =
            run_walks_healing_threaded(&g, WalkKind::Lazy, &specs, 11, plan.clone(), threads)
                .unwrap();
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = std::time::Instant::now();
        run_walks_healing_threaded(&g, WalkKind::Lazy, &specs, 11, plan.clone(), threads).unwrap();
        let ms2 = t1.elapsed().as_secs_f64() * 1e3;
        let walks_label: &'static str = Box::leak(format!("walks_t{threads}").into_boxed_str());
        sweep.record_nanos(walks_label, (ms * 1e6) as u64);
        resweep.record_nanos(walks_label, (ms2 * 1e6) as u64);
        let (speedup, identical) = match &walks_base {
            None => (1.0, true),
            Some((base_ms, base)) => (
                base_ms / ms,
                walks.endpoints == base.endpoints && walks.metrics == base.metrics,
            ),
        };
        report.row(&[
            "healing walks".into(),
            threads.to_string(),
            format!("{ms:.1}"),
            format!("{speedup:.2}x"),
            walks.metrics.rounds.to_string(),
            identical.to_string(),
        ]);
        assert!(identical, "healing walks diverged at {threads} threads");
        if walks_base.is_none() {
            walks_base = Some((ms, walks));
        }

        let t0 = std::time::Instant::now();
        let mst = mst_healing::run_healing_with(&wg, 11 ^ 0xE16, plan.clone(), threads).unwrap();
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = std::time::Instant::now();
        mst_healing::run_healing_with(&wg, 11 ^ 0xE16, plan.clone(), threads).unwrap();
        let ms2 = t1.elapsed().as_secs_f64() * 1e3;
        let mst_label: &'static str = Box::leak(format!("mst_t{threads}").into_boxed_str());
        sweep.record_nanos(mst_label, (ms * 1e6) as u64);
        resweep.record_nanos(mst_label, (ms2 * 1e6) as u64);
        let (speedup, identical) = match &mst_base {
            None => (1.0, true),
            Some((base_ms, base)) => (
                base_ms / ms,
                mst.tree_edges == base.tree_edges && mst.metrics == base.metrics,
            ),
        };
        report.row(&[
            "healing boruvka".into(),
            threads.to_string(),
            format!("{ms:.1}"),
            format!("{speedup:.2}x"),
            mst.rounds.to_string(),
            identical.to_string(),
        ]);
        assert!(identical, "healing boruvka diverged at {threads} threads");
        if mst_base.is_none() {
            mst_base = Some((ms, mst));
        }
    }
    println!("\n(the `identical` column is the faulty-path determinism contract:");
    println!(" outcome, metrics, and fault counters are byte-identical at every");
    println!(" thread count because fault verdicts are keyed on message identity,");
    println!(" not arrival order)");
    println!(
        "(wall repeatability: a second identical sweep agrees to within a\n\
         10x factor on every cell: {} — compared via PhaseTimings::close_to,\n\
         since `==` on wall timings is intentionally vacuous)",
        sweep.close_to(&resweep, 0.9)
    );
}
