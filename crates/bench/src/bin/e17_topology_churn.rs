//! E17 — topology churn soak: sustained damage, self-healing, and
//! recovery SLOs.
//!
//! Drives the three healing protocol families (parallel walks, Borůvka
//! MST, bit-fix routing) through deterministic [`ChurnPlan`]s — link
//! flaps, crash-restarts with state loss, and permanent edge cuts — and
//! checks, per cell:
//!
//! * **correctness under sustained damage** — every walk finishes, the
//!   healed tree equals Kruskal on the surviving graph minus permanently
//!   cut edges, and every routable packet is delivered;
//! * **graceful degradation** — cutting every bridge of a dumbbell makes
//!   the MST driver fail fast with [`CongestError::Partitioned`] (never
//!   the round cap), and isolating a routing destination parks its
//!   packets as an explicit degraded outcome instead of livelocking;
//! * **recovery SLOs** — each cell reports its damage-span count and
//!   time-to-reconverge percentiles (p50/p95/max rounds from damage to
//!   the next completed phase/epoch), and the soak asserts the
//!   distributions are nonzero wherever churn actually bit;
//! * **determinism** — one pinned cell per family re-runs at simulator
//!   threads {1, 2, 4, 8} and must be byte-identical (outcome, metrics,
//!   and recovery timeline), because churn verdicts are pure functions of
//!   `(churn seed, round, edge)`.
//!
//! `--smoke` (or `E17_SMOKE=1`) shrinks the sweep for CI: smaller graphs,
//! one flap cell, threads {1, 4}.

use amt_bench::{expander, Report};
use amt_core::congest::CongestError;
use amt_core::mst::{healing as mst_healing, reference, MstError};
use amt_core::prelude::*;
use amt_core::routing::{route_bitfix_churned, MAX_ROUTE_EPOCHS};
use amt_core::walks::{run_walks_healing_churned, WalkSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;

/// Kruskal over the surviving induced subgraph minus permanently cut
/// edges, in canonical order — the reference the healed tree must match.
fn survivor_mst_weight(wg: &WeightedGraph, dead: &[NodeId], cut: &[EdgeId]) -> u64 {
    let g = wg.graph();
    let gone: HashSet<NodeId> = dead.iter().copied().collect();
    let cut: HashSet<EdgeId> = cut.iter().copied().collect();
    let mut edges: Vec<EdgeId> = g
        .edges()
        .filter(|(e, u, v)| !gone.contains(u) && !gone.contains(v) && !cut.contains(e))
        .map(|(e, _, _)| e)
        .collect();
    edges.sort_by_key(|&e| (wg.weight(e), e.0));
    let mut uf = reference::UnionFind::new(g.len());
    let mut total = 0;
    for e in edges {
        let (u, v) = g.endpoints(e);
        if uf.union(u.index(), v.index()) {
            total += wg.weight(e);
        }
    }
    total
}

/// One row of the recovery-SLO summary: name, damage spans, and the
/// time-to-reconverge percentiles off the cell's [`RecoveryTimeline`].
fn slo_row(report: &mut Report, name: &str, t: &amt_core::congest::RecoveryTimeline, ok: bool) {
    let ttr = t.time_to_reconverge();
    report.recovery(name, t);
    report.row(&[
        name.to_string(),
        t.spans().len().to_string(),
        t.open_count().to_string(),
        ttr.p50.to_string(),
        ttr.p95.to_string(),
        ttr.max.to_string(),
        if ok { "yes".into() } else { "NO".into() },
    ]);
}

/// The flap × restart sweep: healing walks and healing Borůvka on one
/// expander, with correctness checked in-process per cell.
#[allow(clippy::too_many_lines)]
fn churn_sweep(report: &mut Report, n: usize, walks: usize, flaps: &[f64], restarts: &[usize]) {
    println!("\n## Sustained churn: flap-rate × restart sweep (expander n = {n})\n");
    report.header(&[
        "cell", "spans", "open", "ttr_p50", "ttr_p95", "ttr_max", "ok",
    ]);
    let g = expander(n, 6, 1);
    let mut rng = StdRng::seed_from_u64(17);
    let wg = WeightedGraph::with_random_weights(g.clone(), 4000, &mut rng);
    let specs: Vec<WalkSpec> = (0..walks)
        .map(|i| WalkSpec {
            start: NodeId((i * 3 % n) as u32),
            steps: 24,
        })
        .collect();
    for &flap in flaps {
        for &restarts in restarts {
            let mut churn = ChurnPlan::none()
                .seeded(0xE17 ^ (restarts as u64) << 8 ^ (flap * 1000.0) as u64)
                .with_flaps(flap, 4);
            for r in 0..restarts {
                churn = churn.with_restart(NodeId((7 + 11 * r) as u32), 3 + 5 * r as u64, 5);
            }
            let plan = FaultPlan::none().seeded(31).with_drops(0.01);

            let walk_out = run_walks_healing_churned(
                &g,
                WalkKind::Lazy,
                &specs,
                21,
                plan.clone(),
                churn.clone(),
                4,
            )
            .expect("valid plans");
            let walks_ok = walk_out.endpoints.iter().all(Option::is_some);
            let name = format!("walks flap={flap:.2} restarts={restarts}");
            report.metrics(&name, &walk_out.metrics);
            slo_row(report, &name, &walk_out.timeline, walks_ok);
            assert!(walks_ok, "{name}: a walk failed to finish under churn");

            let mst_out = mst_healing::run_healing_churned(&wg, 5, plan, churn, 4)
                .expect("survivors stay connected");
            let want = survivor_mst_weight(&wg, &mst_out.crashed_nodes, &[]);
            let mst_ok = mst_out.total_weight == want;
            let name = format!("mst flap={flap:.2} restarts={restarts}");
            report.metrics(&name, &mst_out.metrics);
            slo_row(report, &name, &mst_out.timeline, mst_ok);
            assert!(mst_ok, "{name}: healed tree diverged from the survivor MST");
            // Churn must actually bite, and the SLO must be measurable:
            // flaps open damage spans, and every span closes by the end.
            assert!(
                !mst_out.timeline.spans().is_empty()
                    && mst_out.timeline.time_to_reconverge().max >= 1,
                "{name}: no measurable damage-to-reconvergence span"
            );
            assert_eq!(mst_out.timeline.open_count(), 0, "{name}: unhealed span");
        }
    }
}

/// Bit-fix routing on the hypercube under flaps and a restart: every
/// packet must be delivered (flaps never isolate a destination for good).
fn route_cells(report: &mut Report, dim: u32, flaps: &[f64]) {
    println!("\n## Churned routing: bit-fix on the dim-{dim} hypercube\n");
    report.header(&[
        "cell", "spans", "open", "ttr_p50", "ttr_p95", "ttr_max", "ok",
    ]);
    let n = 1usize << dim;
    let g = generators::hypercube(dim);
    let reqs: Vec<(NodeId, NodeId)> = (0..n as u32)
        .map(|i| (NodeId(i), NodeId((5 * i + 3) % n as u32)))
        .collect();
    for &flap in flaps {
        let churn = ChurnPlan::none()
            .seeded(0x17 ^ (flap * 1000.0) as u64)
            .with_flaps(flap, 3)
            .with_restart(NodeId(6), 1, 4);
        let out = route_bitfix_churned(&g, &reqs, 12, churn, 4).expect("hypercube");
        let ok = out.undelivered.is_empty() && !out.degraded();
        let name = format!("route flap={flap:.2}");
        report.metrics(&name, &out.metrics);
        slo_row(report, &name, &out.timeline, ok);
        assert!(ok, "{name}: a routable packet went undelivered");
    }
}

/// Permanent-cut cells: a mid-run cut on the expander re-heals around the
/// lost edge; cutting every dumbbell bridge fails fast with `Partitioned`;
/// isolating a routing destination degrades instead of livelocking.
fn cut_cells(report: &mut Report, n: usize) {
    println!("\n## Permanent cuts: re-heal, partition fast-fail, degraded routing\n");
    report.header(&[
        "cell", "spans", "open", "ttr_p50", "ttr_p95", "ttr_max", "ok",
    ]);

    // A mid-run cut of edge 0 on the expander: the tree re-heals to the
    // survivor MST without that edge.
    {
        let g = expander(n, 6, 1);
        let mut rng = StdRng::seed_from_u64(17);
        let wg = WeightedGraph::with_random_weights(g, 4000, &mut rng);
        let churn = ChurnPlan::none().seeded(7).with_edge_cut(EdgeId(0), 4);
        let out = mst_healing::run_healing_churned(&wg, 5, FaultPlan::none(), churn, 4)
            .expect("one cut edge never disconnects an expander");
        let want = survivor_mst_weight(&wg, &[], &[EdgeId(0)]);
        let ok = out.total_weight == want;
        report.metrics("mst cut-edge", &out.metrics);
        slo_row(report, "mst cut-edge", &out.timeline, ok);
        assert!(ok, "cut-edge cell: tree kept (or missed) the cut edge");
    }

    // The dumbbell of the healing test suite: cutting both of node 4's
    // bridge edges splits the graph into three components, and the driver
    // must say so instead of spinning to the round cap.
    {
        let g = Graph::from_edges(
            9,
            &[
                (0, 1),
                (1, 2),
                (2, 0),
                (2, 4),
                (4, 6),
                (5, 6),
                (6, 7),
                (7, 5),
                (3, 0),
                (8, 5),
            ],
        )
        .unwrap();
        let wg = WeightedGraph::with_random_weights(g, 100, &mut StdRng::seed_from_u64(49));
        let churn = ChurnPlan::none()
            .seeded(4)
            .with_edge_cut(EdgeId(3), 2)
            .with_edge_cut(EdgeId(4), 2);
        let err = mst_healing::run_healing_churned(&wg, 1, FaultPlan::none(), churn, 4)
            .expect_err("cutting every bridge must partition");
        let ok = matches!(
            err,
            MstError::Congest(CongestError::Partitioned { components: 3, .. })
        );
        report.row(&[
            "mst cut-bridges".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            if ok { "yes".into() } else { "NO".into() },
        ]);
        assert!(ok, "expected Partitioned {{ components: 3 }}, got {err:?}");
        println!("cut-bridges cell: failed fast with `{err}`");
    }

    // Isolating node 0 of a small hypercube: packets for it park as an
    // explicit degraded outcome after the epoch cap; everything else
    // still arrives.
    {
        let g = generators::hypercube(3);
        let mut churn = ChurnPlan::none().seeded(3);
        for (e, u, v) in g.edges() {
            if u == NodeId(0) || v == NodeId(0) {
                churn = churn.with_edge_cut(e, 0);
            }
        }
        let reqs: Vec<(NodeId, NodeId)> = (1..8).map(|i| (NodeId(i), NodeId(i % 2))).collect();
        let out = route_bitfix_churned(&g, &reqs, 9, churn, 4).expect("valid plan");
        let ok = out.degraded()
            && out.epochs == MAX_ROUTE_EPOCHS
            && reqs
                .iter()
                .zip(&out.endpoints)
                .all(|(&(_, t), e)| (t == NodeId(0)) == e.is_none());
        report.metrics("route isolated-dest", &out.metrics);
        slo_row(report, "route isolated-dest", &out.timeline, ok);
        assert!(
            ok,
            "isolation cell: expected exactly the dest-0 packets parked"
        );
        println!(
            "isolated-dest cell: degraded after {} epochs, {} packet(s) parked",
            out.epochs,
            out.undelivered.len()
        );
    }
}

/// The determinism contract under churn: one pinned cell per family,
/// byte-identical (outcome, metrics, recovery timeline) at every thread
/// count.
fn threads_table(report: &mut Report, n: usize, walks: usize, thread_counts: &[usize]) {
    println!("\n## Byte-identical replay vs simulator threads (churned path)\n");
    report.header(&["workload", "threads", "rounds", "identical"]);
    let g = expander(n, 6, 1);
    let mut rng = StdRng::seed_from_u64(17);
    let wg = WeightedGraph::with_random_weights(g.clone(), 4000, &mut rng);
    let specs: Vec<WalkSpec> = (0..walks)
        .map(|i| WalkSpec {
            start: NodeId((i * 3 % n) as u32),
            steps: 24,
        })
        .collect();
    let plan = FaultPlan::none().seeded(31).with_drops(0.01);
    let churn = ChurnPlan::none()
        .seeded(0xE17)
        .with_flaps(0.05, 4)
        .with_restart(NodeId(7), 3, 5);
    let rg = generators::hypercube(6);
    let reqs: Vec<(NodeId, NodeId)> = (0..64u32)
        .map(|i| (NodeId(i), NodeId((5 * i + 3) % 64)))
        .collect();

    let mut walk_base = None;
    let mut mst_base = None;
    let mut route_base = None;
    for &threads in thread_counts {
        let w = run_walks_healing_churned(
            &g,
            WalkKind::Lazy,
            &specs,
            21,
            plan.clone(),
            churn.clone(),
            threads,
        )
        .unwrap();
        let identical = walk_base.get_or_insert_with(|| w.clone()) == &w;
        report.row(&[
            "churned walks".into(),
            threads.to_string(),
            w.metrics.rounds.to_string(),
            identical.to_string(),
        ]);
        assert!(identical, "churned walks diverged at {threads} threads");

        let m =
            mst_healing::run_healing_churned(&wg, 5, plan.clone(), churn.clone(), threads).unwrap();
        let identical = mst_base.get_or_insert_with(|| m.clone()) == &m;
        report.row(&[
            "churned boruvka".into(),
            threads.to_string(),
            m.metrics.rounds.to_string(),
            identical.to_string(),
        ]);
        assert!(identical, "churned boruvka diverged at {threads} threads");

        let r = route_bitfix_churned(&rg, &reqs, 12, churn.clone(), threads).unwrap();
        let identical = route_base.get_or_insert_with(|| r.clone()) == &r;
        report.row(&[
            "churned bit-fix".into(),
            threads.to_string(),
            r.metrics.rounds.to_string(),
            identical.to_string(),
        ]);
        assert!(identical, "churned bit-fix diverged at {threads} threads");
    }
    println!("\n(`identical` compares the full outcome structs — endpoints/tree,");
    println!(" metrics, churn counters, and the recovery timeline — because churn");
    println!(" verdicts are keyed on (seed, round, edge), not on arrival order)");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke")
        || std::env::var("E17_SMOKE").is_ok_and(|v| v == "1");
    let mut report = Report::new("e17_topology_churn");
    println!("# E17 — topology churn soak: self-healing under sustained damage\n");
    println!("Deterministic churn plans (flaps, crash-restarts, permanent cuts)");
    println!("against the healing walks, healing Borůvka, and the churned bit-fix");
    println!("router; every cell is checked in-process and reports its recovery");
    println!("SLOs (damage spans, time-to-reconverge percentiles).");
    if smoke {
        println!("\n(smoke mode: reduced sweep for CI)");
    }
    report.config("smoke", u64::from(smoke));

    if smoke {
        churn_sweep(&mut report, 128, 32, &[0.05], &[1]);
        route_cells(&mut report, 6, &[0.05]);
        cut_cells(&mut report, 128);
        threads_table(&mut report, 128, 32, &[1, 4]);
    } else {
        churn_sweep(&mut report, 256, 128, &[0.02, 0.05, 0.10], &[0, 1, 2]);
        route_cells(&mut report, 8, &[0.02, 0.05, 0.10]);
        cut_cells(&mut report, 256);
        threads_table(&mut report, 256, 128, &[1, 2, 4, 8]);
    }

    println!("\nEvery cell passed its in-process check: walks finish, trees match");
    println!("Kruskal on the surviving graph minus permanent cuts, routable");
    println!("packets arrive, disconnection fails fast as `Partitioned`, and the");
    println!("churned path replays byte-identically at every thread count.");
    report.finish();
}
