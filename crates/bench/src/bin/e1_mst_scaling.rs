//! E1 — Theorem 1.1: MST in `τ_mix · 2^O(√(log n log log n))` rounds.
//!
//! Sweeps the network size over random-regular expanders and reports the
//! measured rounds of the paper's algorithm against the CONGEST baselines,
//! plus the τ_mix-dependence on slow-mixing controls at fixed `n`. Every
//! tree is verified against Kruskal.

use amt_bench::{expander, loglog_slope, paper_growth, scaled_levels, tau_estimate, Report};
use amt_core::congest::{Distribution, PhaseTimings, ProfileConfig};
use amt_core::mst::{congest_boruvka, gkp};
use amt_core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut report = Report::new("e1_mst_scaling");
    report.config("family", "random 6-regular expander");
    report.config("beta", 4u64);
    println!("# E1 — MST rounds vs n (random 6-regular expanders, seed 1)\n");
    println!("constants: β=4, depth=1–2, overlay_degree=log n, level0_walks=2·log n\n");
    report.header(&[
        "n",
        "depth",
        "tau",
        "amt_rounds",
        "instances",
        "rnds/inst/tau",
        "gkp",
        "boruvka",
        "D+sqrt(n)",
        "2^sqrt_ref",
        "ok",
    ]);
    let mut prev: Option<(usize, f64)> = None;
    let mut slopes = Vec::new();
    for &n in &[32usize, 64, 128, 256] {
        let g = expander(n, 6, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let wg = WeightedGraph::with_random_weights(g.clone(), 1_000_000, &mut rng);
        let tau = tau_estimate(&g);
        let levels = scaled_levels(g.volume(), 4);
        let sys = System::builder(&g)
            .seed(1)
            .beta(4)
            .levels(levels)
            .build()
            .expect("expander");
        let amt = sys.mst(&wg, 3).expect("connected");
        let ok_amt = reference::verify_mst(&wg, &amt.tree_edges);
        let gk = gkp::run(&wg, 3).expect("connected");
        let bo = congest_boruvka::run(&wg, 3).expect("connected");
        report.phase_timings(&format!("gkp_n{n}"), &gk.wall);
        report.phase_timings(&format!("boruvka_n{n}"), &bo.wall);
        let ok = ok_amt && gk.tree_edges == amt.tree_edges && bo.tree_edges == amt.tree_edges;
        let d = amt_core::graphs::traversal::diameter_double_sweep(&g, NodeId(0)).unwrap();
        // Per-instance cost normalized by τ: the Theorem 1.2 quantity the
        // MST multiplies by its polylog number of routing instances.
        let norm = amt.rounds as f64 / f64::from(amt.routing_instances.max(1)) / f64::from(tau);
        report.row(&[
            n.to_string(),
            levels.to_string(),
            tau.to_string(),
            amt.rounds.to_string(),
            amt.routing_instances.to_string(),
            format!("{norm:.2}"),
            gk.rounds.to_string(),
            bo.rounds.to_string(),
            format!("{:.0}", d as f64 + (n as f64).sqrt()),
            format!("{:.0}", paper_growth(n)),
            ok.to_string(),
        ]);
        if let Some((pn, py)) = prev {
            slopes.push(loglog_slope(pn, py, n, norm));
        }
        prev = Some((n, norm));
    }
    println!(
        "\nlog-log slopes of rounds/instance/τ between consecutive n: {:?}",
        slopes.iter().map(|s| format!("{s:.2}")).collect::<Vec<_>>()
    );
    println!("(paper: per routing instance the cost is τ·2^O(√(log n log log n)) —");
    println!(" subpolynomial; the MST multiplies it by O(log³ n) instances. Depth");
    println!(" increments of the partition tree show up as steps in the raw rounds.)\n");

    println!("## τ_mix-dependence at n = 128 (expander vs dumbbell controls)\n");
    report.header(&["graph", "tau_mix", "amt_rounds", "amt/tau", "ok"]);
    let mut rng = StdRng::seed_from_u64(4);
    let cases: Vec<(&str, Graph)> = vec![
        ("6-regular expander", expander(128, 6, 1)),
        (
            "dumbbell 2×64, 8 bridges",
            generators::dumbbell_expanders(64, 6, 8, &mut rng).unwrap(),
        ),
        (
            "dumbbell 2×64, 2 bridges",
            generators::dumbbell_expanders(64, 6, 2, &mut rng).unwrap(),
        ),
    ];
    for (name, g) in cases {
        let tau = tau_estimate(&g);
        let mut rng = StdRng::seed_from_u64(5);
        let wg = WeightedGraph::with_random_weights(g.clone(), 1_000_000, &mut rng);
        let levels = scaled_levels(g.volume(), 4);
        let sys = System::builder(&g)
            .seed(2)
            .beta(4)
            .levels(levels)
            .build()
            .expect("connected");
        let amt = sys.mst(&wg, 6).expect("connected");
        let ok = reference::verify_mst(&wg, &amt.tree_edges);
        report.row(&[
            name.to_string(),
            tau.to_string(),
            amt.rounds.to_string(),
            format!("{:.0}", amt.rounds as f64 / f64::from(tau)),
            ok.to_string(),
        ]);
    }
    println!("\n(paper: rounds scale linearly with τ_mix at fixed n — the amt/tau");
    println!(" column should stay within a constant factor across the three rows)");

    println!("\n## Wall-clock vs simulator threads (Boruvka, largest config n = 256,");
    println!("## plus a 6-regular n = 1024 stress instance)\n");
    println!(
        "hardware: {} core(s) available to this process\n",
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    );
    report.header(&["n", "threads", "wall_ms", "speedup", "rounds", "identical"]);
    // Two full timing sweeps: walls land in `PhaseTimings`, whose `Eq` is
    // deliberately vacuous — the repeatability check below goes through the
    // tolerance-based `close_to` instead.
    let mut sweep = PhaseTimings::new();
    let mut resweep = PhaseTimings::new();
    for &n in &[256usize, 1024] {
        let g = expander(n, 6, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let wg = WeightedGraph::with_random_weights(g, 1_000_000, &mut rng);
        // Untimed warm-up: the very first run pays one-time costs (page
        // faults, allocator growth) that would skew the repeatability
        // comparison below.
        congest_boruvka::run_with(&wg, 3, 1).expect("connected");
        let mut baseline: Option<(f64, congest_boruvka::CongestMstOutcome)> = None;
        for &threads in &[1usize, 2, 4, 8] {
            let t0 = std::time::Instant::now();
            let out = congest_boruvka::run_with(&wg, 3, threads).expect("connected");
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            let t1 = std::time::Instant::now();
            let out2 = congest_boruvka::run_with(&wg, 3, threads).expect("connected");
            let ms2 = t1.elapsed().as_secs_f64() * 1e3;
            assert!(
                out2.tree_edges == out.tree_edges && out2.rounds == out.rounds,
                "n = {n}: repeat run diverged at {threads} threads"
            );
            let label: &'static str = Box::leak(format!("n{n}_t{threads}").into_boxed_str());
            sweep.record_nanos(label, (ms * 1e6) as u64);
            resweep.record_nanos(label, (ms2 * 1e6) as u64);
            let (speedup, identical) = match &baseline {
                None => (1.0, true),
                Some((base_ms, base_out)) => (
                    base_ms / ms,
                    out.tree_edges == base_out.tree_edges
                        && out.rounds == base_out.rounds
                        && out.messages == base_out.messages,
                ),
            };
            report.row(&[
                n.to_string(),
                threads.to_string(),
                format!("{ms:.1}"),
                format!("{speedup:.2}x"),
                out.rounds.to_string(),
                identical.to_string(),
            ]);
            if baseline.is_none() {
                baseline = Some((ms, out));
            }
        }
    }
    println!("\n(the `identical` column is the determinism contract: outcome and");
    println!(" metrics are byte-identical for every thread count; speedup tracks");
    println!(" the hardware parallelism actually available)");
    println!(
        "(wall repeatability: a second identical sweep agrees to within a\n\
         10x factor on every cell: {} — compared via PhaseTimings::close_to,\n\
         since `==` on wall timings is intentionally vacuous)",
        sweep.close_to(&resweep, 0.9)
    );

    round_distribution_table(&mut report);
    report.finish();
}

/// Round-level load distributions (p50/p95/max messages and bits per round)
/// of the n = 256 Borůvka run, per traffic class and in total — the
/// round-level detail the scalar rounds/messages columns above average out.
fn round_distribution_table(report: &mut Report) {
    println!("\n## Round-level load distribution (Borůvka n = 256, per traffic class)\n");
    let g = expander(256, 6, 1);
    let mut rng = StdRng::seed_from_u64(2);
    let wg = WeightedGraph::with_random_weights(g, 1_000_000, &mut rng);
    let (_, profile) = congest_boruvka::run_instrumented(&wg, 3, 4, Some(ProfileConfig::default()))
        .expect("connected");
    let profile = profile.expect("profiling on");
    report.section("round distributions");
    report.header(&[
        "class", "msg p50", "msg p95", "msg max", "bit p50", "bit p95", "bit max",
    ]);
    let mut per_round: std::collections::BTreeMap<u64, (u64, u64)> = Default::default();
    for s in &profile.per_class {
        for t in &s.timeline {
            let e = per_round.entry(t.round).or_default();
            e.0 += t.messages;
            e.1 += t.bits;
        }
        // A class that registered but was never active has an empty
        // timeline and therefore no order statistics: skip its row rather
        // than print fabricated zeros.
        let (Some(msgs), Some(bits)) = (
            Distribution::try_of(s.timeline.iter().map(|t| t.messages)),
            Distribution::try_of(s.timeline.iter().map(|t| t.bits)),
        ) else {
            continue;
        };
        report.row(&[
            s.class.to_string(),
            msgs.p50.to_string(),
            msgs.p95.to_string(),
            msgs.max.to_string(),
            bits.p50.to_string(),
            bits.p95.to_string(),
            bits.max.to_string(),
        ]);
    }
    if let (Some(msgs), Some(bits)) = (
        Distribution::try_of(per_round.values().map(|&(m, _)| m)),
        Distribution::try_of(per_round.values().map(|&(_, b)| b)),
    ) {
        report.row(&[
            "(total)".to_string(),
            msgs.p50.to_string(),
            msgs.p95.to_string(),
            msgs.max.to_string(),
            bits.p50.to_string(),
            bits.p95.to_string(),
            bits.max.to_string(),
        ]);
    }
    report.profile("boruvka_n256", &profile);
    println!("\n(nearest-rank percentiles over the rounds each class was active in;");
    println!(" the p95/max spread shows the bursty flood fronts a mean would hide)");
}
