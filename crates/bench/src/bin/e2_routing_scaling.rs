//! E2 — Theorem 1.2: permutation routing in
//! `τ_mix · 2^O(√(log n log log n))` rounds.
//!
//! Sweeps `n` on expanders and routes a fixed permutation; reports measured
//! rounds (both emulation pricings), the baselines, and the per-node-load
//! sweep of the footnote-3 phase splitting.

use amt_bench::{expander, loglog_slope, paper_growth, scaled_levels, tau_estimate, Report};
use amt_core::prelude::*;
use amt_core::routing::{baseline, EmulationMode, HierarchicalRouter, RouterConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn permutation(n: usize) -> Vec<(NodeId, NodeId)> {
    // i → 5i + 3 mod n is a permutation whenever gcd(5, n) = 1.
    (0..n as u32)
        .map(|i| (NodeId(i), NodeId((5 * i + 3) % n as u32)))
        .collect()
}

fn main() {
    let mut report = Report::new("e2_routing_scaling");
    report.config("family", "random 6-regular expander");
    report.config("beta", 4u64);
    println!("# E2 — permutation routing rounds vs n (random 6-regular, seed 1)\n");
    report.header(&[
        "n",
        "depth",
        "tau",
        "exact_rounds",
        "exact/tau",
        "factored",
        "sp_ref",
        "walk_ref",
        "2^sqrt_ref",
        "delivered",
    ]);
    let mut prev: Option<(usize, f64)> = None;
    let mut slopes = Vec::new();
    for &n in &[32usize, 64, 128, 256, 512] {
        let g = expander(n, 6, 1);
        let tau = tau_estimate(&g);
        let levels = scaled_levels(g.volume(), 4);
        let sys = System::builder(&g)
            .seed(1)
            .beta(4)
            .levels(levels)
            .build()
            .expect("expander");
        let reqs = permutation(n);
        let factored = sys.route(&reqs, 2).expect("routable");
        let exact_router = HierarchicalRouter::with_config(
            sys.hierarchy(),
            RouterConfig {
                emulation: EmulationMode::Exact,
                ..RouterConfig::for_n(n)
            },
        );
        let exact = exact_router.route(&reqs, 2).expect("routable");
        report.phase_timings(&format!("exact_n{n}"), &exact.wall);
        let sp = baseline::shortest_path_route(&g, &reqs);
        let mut rng = StdRng::seed_from_u64(3);
        let walk = baseline::random_walk_route(&g, &reqs, 200_000, &mut rng);
        let norm = exact.total_base_rounds as f64 / f64::from(tau);
        report.row(&[
            n.to_string(),
            levels.to_string(),
            tau.to_string(),
            exact.total_base_rounds.to_string(),
            format!("{norm:.1}"),
            factored.total_base_rounds.to_string(),
            sp.rounds.to_string(),
            format!("{} ({}/{})", walk.rounds, walk.delivered, reqs.len()),
            format!("{:.0}", paper_growth(n)),
            format!("{}/{}", exact.delivered, reqs.len()),
        ]);
        if let Some((pn, py)) = prev {
            slopes.push(loglog_slope(pn, py, n, norm));
        }
        prev = Some((n, norm));
    }
    println!(
        "\nlog-log slopes of exact_rounds/τ between consecutive n: {:?}",
        slopes.iter().map(|s| format!("{s:.2}")).collect::<Vec<_>>()
    );
    println!("(paper: subpolynomial in n once normalized by τ_mix. At simulation");
    println!(" scale the discrete partition-depth increments — the paper's");
    println!(" k = log_β(m/log m) growing by one — appear as the large slopes; at");
    println!(" fixed depth the slopes stay far below the 0.5 of a √n algorithm.)\n");

    println!("## load sweep at n = 128 (footnote 3: K packets per node split into phases)\n");
    report.header(&[
        "packets/node",
        "phases",
        "exact_rounds",
        "rounds/packet",
        "delivered",
    ]);
    let n = 128usize;
    let g = expander(n, 6, 1);
    let sys = System::builder(&g)
        .seed(1)
        .beta(4)
        .levels(2)
        .build()
        .expect("expander");
    for &per_node in &[1usize, 2, 4, 8] {
        let mut reqs = Vec::new();
        for r in 0..per_node {
            for i in 0..n as u32 {
                reqs.push((NodeId(i), NodeId((5 * i + 3 + r as u32 * 17) % n as u32)));
            }
        }
        let router = HierarchicalRouter::with_config(
            sys.hierarchy(),
            RouterConfig {
                emulation: EmulationMode::Exact,
                load_per_degree: 1.0, // tight promise to expose the splitting
                ..RouterConfig::for_n(n)
            },
        );
        let out = router.route(&reqs, 4).expect("routable");
        report.row(&[
            per_node.to_string(),
            out.phases.to_string(),
            out.total_base_rounds.to_string(),
            format!("{:.1}", out.total_base_rounds as f64 / reqs.len() as f64),
            format!("{}/{}", out.delivered, reqs.len()),
        ]);
    }
    println!("\n(paper: K packets per node cost K × the single-instance bound — the");
    println!(" rounds/packet column should stay roughly flat as the load grows)");
    report.finish();
}
