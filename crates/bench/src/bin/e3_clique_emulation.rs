//! E3 — Theorem 1.3 and its Erdős–Rényi corollary: clique emulation.
//!
//! All-to-all routing on `G(n, p)` for a `p` sweep at fixed `n`, comparing
//! the measured rounds with the `Ω(n/h(G))` cut lower bound, the corollary
//! shape `O(1/p + log n)`, and the Balliu et al. bound `O(min{1/p², np})`
//! that the paper improves on.

use amt_bench::Report;
use amt_core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut report = Report::new("e3_clique_emulation");
    let n = 48usize;
    println!("# E3 — clique emulation on G(n = {n}, p): one message per ordered pair\n");
    report.header(&[
        "p",
        "m",
        "phases",
        "rounds",
        "n/h lower bnd",
        "1/p+log n",
        "Balliu min(1/p²,np)",
        "rounds-vs-p trend",
    ]);
    let mut prev: Option<u64> = None;
    for &p in &[0.15f64, 0.25, 0.4, 0.6, 0.8] {
        let mut rng = StdRng::seed_from_u64(11);
        let g = generators::connected_erdos_renyi(n, p, 100, &mut rng).expect("above threshold");
        let sys = System::builder(&g)
            .seed(11)
            .beta(4)
            .levels(1)
            .build()
            .expect("dense ER");
        let out = sys.emulate_clique(3).expect("routable");
        assert_eq!(out.messages, n * (n - 1));
        let shape = 1.0 / p + (n as f64).log2();
        let balliu = (1.0 / (p * p)).min(n as f64 * p);
        let trend = match prev {
            Some(pr) if out.routing.total_base_rounds < pr => "↓ (improves with p)",
            Some(_) => "↑",
            None => "-",
        };
        report.row(&[
            format!("{p:.2}"),
            g.edge_count().to_string(),
            out.routing.phases.to_string(),
            out.routing.total_base_rounds.to_string(),
            format!("{:.1}", out.cut_lower_bound),
            format!("{shape:.1}"),
            format!("{balliu:.1}"),
            trend.to_string(),
        ]);
        prev = Some(out.routing.total_base_rounds);
    }
    println!("\n(paper shape: rounds fall as p grows, tracking 1/p + log n up to the");
    println!(" generic router's polylog overhead; the cut bound n/h is the floor.");
    println!(" Balliu et al.'s 1/p² grows much faster as p shrinks — the paper's");
    println!(" improvement is exactly that gap.)");

    println!("\n## n sweep at p = 0.4\n");
    report.header(&["n", "rounds", "rounds/n", "n/h lower bnd"]);
    for &n in &[24usize, 32, 48, 64] {
        let mut rng = StdRng::seed_from_u64(13);
        let g = generators::connected_erdos_renyi(n, 0.4, 100, &mut rng).expect("dense");
        let sys = System::builder(&g)
            .seed(13)
            .beta(4)
            .levels(1)
            .build()
            .expect("dense ER");
        let out = sys.emulate_clique(5).expect("routable");
        report.row(&[
            n.to_string(),
            out.routing.total_base_rounds.to_string(),
            format!("{:.1}", out.routing.total_base_rounds as f64 / n as f64),
            format!("{:.1}", out.cut_lower_bound),
        ]);
    }
    println!("\n(all-to-all is Θ(n) messages per node, so rounds/n normalizes the");
    println!(" workload growth; the paper's bound is Õ(n/h) = Õ(1/p) per clique round)");
    report.finish();
}
