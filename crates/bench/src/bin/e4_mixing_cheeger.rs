//! E4 — Lemma 2.3: `τ̄_mix ≤ 8·Δ²/h(G)² · ln n`, plus calibration of the
//! spectral mixing-time estimate against the exact Definition 2.1 value.

use amt_bench::Report;
use amt_core::graphs::expansion;
use amt_core::prelude::*;
use amt_core::walks::mixing::{cheeger_bound, mixing_time_exact, mixing_time_spectral};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut report = Report::new("e4_mixing_cheeger");
    println!("# E4 — Lemma 2.3 Cheeger bound (2Δ-regular walk, exact h by enumeration)\n");
    report.header(&[
        "graph",
        "n",
        "Δ",
        "h(G)",
        "exact τ̄_mix",
        "Cheeger bound",
        "bound/exact",
    ]);
    let mut rng = StdRng::seed_from_u64(5);
    let cases: Vec<(&str, Graph)> = vec![
        ("complete K12", generators::complete(12)),
        ("hypercube d=4", generators::hypercube(4)),
        ("ring n=16", generators::ring(16)),
        ("torus 4×4", generators::torus_2d(4, 4)),
        (
            "random 4-regular",
            generators::random_regular(16, 4, &mut rng).unwrap(),
        ),
        ("barbell 2×K6", generators::barbell(6, 0).unwrap()),
        ("lollipop K8+tail8", generators::lollipop(8, 8).unwrap()),
    ];
    for (name, g) in &cases {
        let h = expansion::edge_expansion_exact(g).expect("n ≤ 24");
        let exact = mixing_time_exact(g, WalkKind::DeltaRegular, 200_000).expect("connected");
        let bound = cheeger_bound(g, h);
        assert!(
            f64::from(exact) <= bound,
            "{name}: Lemma 2.3 violated ({exact} > {bound:.0})"
        );
        report.row(&[
            name.to_string(),
            g.len().to_string(),
            g.max_degree().to_string(),
            format!("{h:.3}"),
            exact.to_string(),
            format!("{bound:.0}"),
            format!("{:.1}", bound / f64::from(exact)),
        ]);
    }
    println!("\n(Lemma 2.3 holds on every row: exact ≤ bound; the bound is loose by");
    println!(" the usual Cheeger quadratic slack, worst on high-conductance graphs)\n");

    println!("## spectral estimate vs exact τ_mix (lazy walk, Definition 2.1)\n");
    report.header(&["graph", "exact τ_mix", "spectral est.", "est./exact"]);
    let mut rng = StdRng::seed_from_u64(6);
    let cases: Vec<(&str, Graph)> = vec![
        (
            "random 4-regular n=64",
            generators::random_regular(64, 4, &mut rng).unwrap(),
        ),
        (
            "random 6-regular n=128",
            generators::random_regular(128, 6, &mut rng).unwrap(),
        ),
        ("hypercube d=6", generators::hypercube(6)),
        ("ring n=64", generators::ring(64)),
        ("torus 8×8", generators::torus_2d(8, 8)),
    ];
    for (name, g) in &cases {
        let exact = mixing_time_exact(g, WalkKind::Lazy, 200_000).expect("connected");
        let est = mixing_time_spectral(g, WalkKind::Lazy, 800).expect("connected");
        assert!(
            est >= exact,
            "{name}: spectral estimate must upper-bound exact"
        );
        report.row(&[
            name.to_string(),
            exact.to_string(),
            est.to_string(),
            format!("{:.2}", f64::from(est) / f64::from(exact)),
        ]);
    }
    println!("\n(the spectral estimate — used to size the level-0 walks on large");
    println!(" graphs — upper-bounds the exact value within a small constant)");
    report.finish();
}
