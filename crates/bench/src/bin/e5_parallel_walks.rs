//! E5 — Lemmas 2.4/2.5: parallel random walks.
//!
//! With `k·d(v)` walks of length `T` started per node: per-node token peaks
//! must stay `O(k·d(v) + log n)` (Lemma 2.4) and measured scheduling rounds
//! must stay `O((k + log n)·T)` (Lemma 2.5).

use amt_bench::{expander, Report};
use amt_core::prelude::*;
use amt_core::walks::parallel::{degree_proportional_specs, run_parallel_walks};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut report = Report::new("e5_parallel_walks");
    let n = 256usize;
    let d = 6usize;
    let g = expander(n, d, 1);
    let logn = (n as f64).log2();
    println!("# E5 — parallel walks on a random {d}-regular graph, n = {n}\n");

    println!("## k sweep at T = 30 (Lemma 2.4 + 2.5)\n");
    report.header(&[
        "k",
        "walks",
        "rounds",
        "rounds/((k+log n)T)",
        "max tokens@node",
        "peak/(k·d+log n)",
    ]);
    let t_len = 30u32;
    for &k in &[1usize, 2, 4, 8, 16] {
        let mut rng = StdRng::seed_from_u64(7);
        let specs = degree_proportional_specs(&g, k, t_len);
        let run = run_parallel_walks(&g, WalkKind::Lazy, &specs, &mut rng);
        let bound25 = (k as f64 + logn) * f64::from(t_len);
        let bound24 = k as f64 * d as f64 + logn;
        let peak = run.stats.max_node_tokens() as f64;
        assert!(
            run.stats.rounds as f64 <= 4.0 * bound25,
            "Lemma 2.5 constant blown"
        );
        assert!(peak <= 5.0 * bound24, "Lemma 2.4 constant blown");
        report.row(&[
            k.to_string(),
            specs.len().to_string(),
            run.stats.rounds.to_string(),
            format!("{:.2}", run.stats.rounds as f64 / bound25),
            format!("{peak}"),
            format!("{:.2}", peak / bound24),
        ]);
    }
    println!("\n(both normalized columns must stay O(1) across the k sweep — the");
    println!(" Lemma 2.4/2.5 constants; rounds/((k+log n)T) should *fall* towards");
    println!(" the kT lower bound as k passes log n)\n");

    println!("## T sweep at k = 4 (cost linear in walk length)\n");
    report.header(&["T", "rounds", "rounds/T"]);
    for &t_len in &[10u32, 20, 40, 80] {
        let mut rng = StdRng::seed_from_u64(8);
        let specs = degree_proportional_specs(&g, 4, t_len);
        let run = run_parallel_walks(&g, WalkKind::Lazy, &specs, &mut rng);
        report.row(&[
            t_len.to_string(),
            run.stats.rounds.to_string(),
            format!("{:.2}", run.stats.rounds as f64 / f64::from(t_len)),
        ]);
    }
    println!("\n(rounds/T flat ⇒ the scheduler's per-step cost is independent of T,");
    println!(" exactly the phase structure of Lemma 2.5)\n");

    println!("## correlated walks (the paper's end-of-§2 optimization for k = o(log n))\n");
    report.header(&[
        "k",
        "independent rounds",
        "correlated rounds",
        "speedup",
        "corr/(2kT)",
    ]);
    let t_len = 30u32;
    for &k in &[1usize, 2, 4, 8] {
        let mut rng1 = StdRng::seed_from_u64(9);
        let specs = degree_proportional_specs(&g, k, t_len);
        let ind = run_parallel_walks(&g, WalkKind::Lazy, &specs, &mut rng1);
        let mut rng2 = StdRng::seed_from_u64(9);
        let cor =
            amt_core::walks::parallel::run_correlated_walks(&g, WalkKind::Lazy, &specs, &mut rng2);
        // With laziness only ~half the tokens move per step, so the
        // round-robin load is ≈ ⌈k/2⌉ per direction; 2kT normalizes.
        report.row(&[
            k.to_string(),
            ind.stats.rounds.to_string(),
            cor.stats.rounds.to_string(),
            format!("{:.1}×", ind.stats.rounds as f64 / cor.stats.rounds as f64),
            format!(
                "{:.2}",
                cor.stats.rounds as f64 / (2.0 * k as f64 * f64::from(t_len))
            ),
        ]);
    }
    println!("\n(independent walks pay the additive log n of Lemma 2.5; correlating");
    println!(" the edge assignment — round-robin over a random permutation, which");
    println!(" preserves each token's marginal kernel — removes it, reaching the");
    println!(" k·T lower bound. The speedup is largest at k = 1 and fades once");
    println!(" k ≳ log n, exactly as the paper's remark predicts.)");
    report.finish();
}
