//! E6 — §3.1.1: the level-0 overlay `G₀`.
//!
//! Validates that the walk-built overlay behaves like an Erdős–Rényi
//! random graph on the `2m` virtual nodes (degree concentration, connected,
//! expander) and measures the cost of emulating one `G₀` round in base
//! rounds (the paper claims `τ_mix · poly log n`).

use amt_bench::{expander, scaled_levels, tau_estimate, Report};
use amt_core::graphs::expansion;
use amt_core::prelude::*;

fn main() {
    let mut report = Report::new("e6_level0_overlay");
    println!("# E6 — level-0 overlay G₀ (walk-embedded ER graph on 2m virtual nodes)\n");
    report.header(&[
        "n",
        "vnodes",
        "G0 edges",
        "deg min/avg/max",
        "connected",
        "G0 spectral gap",
        "full-round cost",
        "cost/(τ·log²n)",
    ]);
    for &n in &[32usize, 64, 128, 256] {
        let g = expander(n, 6, 1);
        let tau = tau_estimate(&g);
        let sys = System::builder(&g)
            .seed(1)
            .beta(4)
            .levels(scaled_levels(g.volume(), 4))
            .build()
            .expect("expander");
        let h = sys.hierarchy();
        let ov = h.overlay(0);
        let og = ov.graph();
        let degs: Vec<usize> = og.nodes().map(|v| og.degree(v)).collect();
        let avg = degs.iter().sum::<usize>() as f64 / degs.len() as f64;
        let gap = expansion::spectral_gap_lazy(og, 400).unwrap_or(0.0);
        let logn = (n as f64).log2();
        let norm = h.full_round_cost(0) as f64 / (f64::from(tau) * logn * logn);
        report.row(&[
            n.to_string(),
            h.vnodes().to_string(),
            og.edge_count().to_string(),
            format!(
                "{}/{avg:.1}/{}",
                degs.iter().min().unwrap(),
                degs.iter().max().unwrap()
            ),
            og.is_connected().to_string(),
            format!("{gap:.3}"),
            h.full_round_cost(0).to_string(),
            format!("{norm:.2}"),
        ]);
    }
    println!("\n(paper: G₀ is an ER-like expander — degrees concentrate near");
    println!(" 2·overlay_degree, the overlay is connected with a constant spectral");
    println!(" gap, and one G₀ round costs τ_mix·polylog base rounds: the last");
    println!(" normalized column must stay O(1) as n grows)\n");

    println!("## walk-path statistics (the embedded edges)\n");
    report.header(&["n", "τ est.", "path len avg", "path len max", "avg/τ"]);
    for &n in &[32usize, 64, 128, 256] {
        let g = expander(n, 6, 1);
        let tau = tau_estimate(&g);
        let sys = System::builder(&g)
            .seed(1)
            .beta(4)
            .levels(scaled_levels(g.volume(), 4))
            .build()
            .expect("expander");
        let (avg, max) = sys.hierarchy().overlay(0).path_length_stats();
        report.row(&[
            n.to_string(),
            tau.to_string(),
            format!("{avg:.1}"),
            max.to_string(),
            format!("{:.2}", avg / f64::from(tau)),
        ]);
    }
    println!("\n(every overlay edge is a τ_mix-step lazy walk; about half the steps");
    println!(" are lazy stays, so avg/τ ≈ 0.5)");
    report.finish();
}
