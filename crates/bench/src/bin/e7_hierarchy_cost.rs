//! E7 — Lemmas 3.1/3.2: per-level emulation factors and the β trade-off.
//!
//! (a) Each round of `G_p` must emulate in `O(log² n)` rounds of `G_{p−1}`
//!     — we report the measured factor per level.
//! (b) Construction cost vs β: the paper picks β = 2^Θ(√(log n log log n))
//!     to balance per-level cost (∝ β) against depth (∝ log n / log β); we
//!     sweep β and locate the crossover.

use amt_bench::{expander, Report};
use amt_core::prelude::*;
use amt_core::routing::{EmulationMode, HierarchicalRouter, RouterConfig};

fn main() {
    let mut report = Report::new("e7_hierarchy_cost");
    let n = 128usize;
    let g = expander(n, 6, 1);
    let logn = (n as f64).log2();

    println!("# E7a — per-level emulation factors (n = {n}, β = 4, depth = 2)\n");
    let sys = System::builder(&g)
        .seed(1)
        .beta(4)
        .levels(2)
        .build()
        .expect("expander");
    let h = sys.hierarchy();
    report.config("n", n as u64);
    report.phase_timings("hierarchy_build", &h.stats.wall);
    report.header(&[
        "level",
        "edges",
        "full-round base cost",
        "factor vs level below",
        "factor/log²n",
    ]);
    for level in 0..=h.depth() {
        let cost = h.full_round_cost(level);
        let factor = if level == 0 {
            cost as f64
        } else {
            cost as f64 / h.full_round_cost(level - 1) as f64
        };
        report.row(&[
            level.to_string(),
            h.overlay(level).graph().edge_count().to_string(),
            cost.to_string(),
            format!("{factor:.1}"),
            format!("{:.2}", factor / (logn * logn)),
        ]);
    }
    println!("\n(Lemma 3.1: each factor-vs-below is the measured 'one round of G_p in");
    println!(" rounds of G_(p−1)' — the factor/log²n column must stay O(1))\n");

    println!("# E7b — β sweep at n = {n}: construction cost vs routing cost\n");
    report.header(&[
        "β",
        "depth",
        "build rounds",
        "route rounds (exact)",
        "build+32×route",
    ]);
    let reqs: Vec<_> = (0..n as u32)
        .map(|i| (NodeId(i), NodeId((5 * i + 3) % n as u32)))
        .collect();
    let mut best: Option<(u32, u64)> = None;
    for &beta in &[2u32, 4, 8, 16] {
        // Depth chosen so bottom parts stay near log n.
        let vn = g.volume() as f64;
        let levels = ((vn / logn).log2() / f64::from(beta).log2())
            .round()
            .max(1.0) as u32;
        let levels = levels.min(3);
        let sys = match System::builder(&g)
            .seed(1)
            .beta(beta)
            .levels(levels)
            .build()
        {
            Ok(s) => s,
            Err(e) => {
                report.row(&[
                    beta.to_string(),
                    levels.to_string(),
                    format!("infeasible: {e}"),
                    "-".into(),
                    "-".into(),
                ]);
                continue;
            }
        };
        let router = HierarchicalRouter::with_config(
            sys.hierarchy(),
            RouterConfig {
                emulation: EmulationMode::Exact,
                ..RouterConfig::for_n(n)
            },
        );
        let out = router.route(&reqs, 2).expect("routable");
        let amortized = sys.build_rounds() + 32 * out.total_base_rounds;
        report.row(&[
            beta.to_string(),
            levels.to_string(),
            sys.build_rounds().to_string(),
            out.total_base_rounds.to_string(),
            amortized.to_string(),
        ]);
        if best.is_none_or(|(_, b)| amortized < b) {
            best = Some((beta, amortized));
        }
    }
    if let Some((beta, _)) = best {
        println!("\nbest amortized β at this n: {beta}");
    }
    println!("\n(paper: larger β means fewer levels (cheaper routing stretch) but");
    println!(" more walks per level (costlier construction); the optimum sits at");
    println!(" β = 2^Θ(√(log n log log n)) — a small power of two at this n)");
    report.finish();
}
