//! E8 — §3.1.2 property (P1): the Θ(log n)-wise independent hash partition
//! is near-uniform at every level, matching fully random placement.

use amt_bench::Report;
use amt_core::kwise::PartitionHash;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn spread(counts: &[u64]) -> (u64, f64, u64) {
    let min = counts.iter().copied().min().unwrap_or(0);
    let max = counts.iter().copied().max().unwrap_or(0);
    let avg = counts.iter().sum::<u64>() as f64 / counts.len().max(1) as f64;
    (min, avg, max)
}

fn main() {
    let mut report = Report::new("e8_partition_uniformity");
    let m = 6000u64; // virtual nodes of a ~1000-node degree-6 network
    let beta = 4u32;
    let levels = 3u32;
    println!("# E8 — partition uniformity: {m} ids into β = {beta}, depth = {levels}\n");
    println!("## k-wise independent hash (k = 16), 3 seeds\n");
    report.header(&["seed", "depth", "parts", "part size min/avg/max", "max/avg"]);
    for seed in 0..3u64 {
        let p = PartitionHash::new(beta, levels, 16, seed);
        for depth in 1..=levels {
            let parts = p.parts_at(depth) as usize;
            let mut counts = vec![0u64; parts];
            for id in 0..m {
                counts[p.part_at(id, depth) as usize] += 1;
            }
            let (min, avg, max) = spread(&counts);
            assert!(
                (max as f64) < 2.0 * avg && (min as f64) > 0.4 * avg,
                "property (P1) violated at seed {seed} depth {depth}"
            );
            report.row(&[
                seed.to_string(),
                depth.to_string(),
                parts.to_string(),
                format!("{min}/{avg:.0}/{max}"),
                format!("{:.2}", max as f64 / avg),
            ]);
        }
    }

    println!("\n## fully random placement baseline (same shape check)\n");
    report.header(&["seed", "depth", "part size min/avg/max", "max/avg"]);
    for seed in 0..3u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let leaves = (0..levels).fold(1u64, |a, _| a * u64::from(beta));
        let assignment: Vec<u64> = (0..m).map(|_| rng.random_range(0..leaves)).collect();
        for depth in 1..=levels {
            let shift = levels - depth;
            let parts = (0..depth).fold(1u64, |a, _| a * u64::from(beta)) as usize;
            let mut counts = vec![0u64; parts];
            for &leaf in &assignment {
                let mut v = leaf;
                for _ in 0..shift {
                    v /= u64::from(beta);
                }
                counts[v as usize] += 1;
            }
            let (min, avg, max) = spread(&counts);
            report.row(&[
                seed.to_string(),
                depth.to_string(),
                format!("{min}/{avg:.0}/{max}"),
                format!("{:.2}", max as f64 / avg),
            ]);
        }
    }
    println!("\n(paper: Θ(log n)-wise independence suffices for the limited-");
    println!(" independence Chernoff bounds — the k-wise max/avg spread must match");
    println!(" the fully random baseline row for row, and it does, while costing");
    println!(" only Θ(log² n) shared random bits instead of Θ(m log m))");
    report.finish();
}
