//! E9 — Lemma 3.3: portals.
//!
//! Reports portal coverage (every node knows a portal towards every
//! non-empty sibling part), the measured construction rounds per depth,
//! and the *uniformity property*: the portals assigned to the members of a
//! part are spread (near-)uniformly over its boundary nodes.

use amt_bench::{expander, Report};
use amt_core::embedding::VirtualId;
use amt_core::prelude::*;
use std::collections::HashMap;

fn main() {
    let mut report = Report::new("e9_portals");
    let n = 128usize;
    let g = expander(n, 6, 1);
    let sys = System::builder(&g)
        .seed(1)
        .beta(4)
        .levels(2)
        .build()
        .expect("expander");
    let h = sys.hierarchy();
    let beta = h.cfg().beta;

    println!(
        "# E9 — portals on n = {n}, β = {beta}, depth = {}\n",
        h.depth()
    );
    println!("## coverage and construction cost\n");
    report.header(&[
        "depth",
        "entries needed",
        "filled",
        "fill %",
        "construction base rounds",
    ]);
    for p in 1..=h.depth() {
        let mut needed = 0u64;
        let mut filled = 0u64;
        for vid in 0..h.vnodes() as u32 {
            let my = h.part_of(VirtualId(vid), p);
            let parent = my / u64::from(beta);
            for j in 0..beta {
                let target = parent * u64::from(beta) + u64::from(j);
                if target == my || h.members(p, target).is_empty() {
                    continue;
                }
                needed += 1;
                if h.portal(p, VirtualId(vid), j).is_some() {
                    filled += 1;
                }
            }
        }
        report.row(&[
            p.to_string(),
            needed.to_string(),
            filled.to_string(),
            format!("{:.2}", 100.0 * filled as f64 / needed.max(1) as f64),
            h.stats.portal_base_rounds[(p - 1) as usize].to_string(),
        ]);
    }
    println!(
        "\nuniform-boundary fallbacks used during construction: {}",
        h.stats.portal_fallbacks
    );
    println!("(paper: every node learns a portal towards every sibling — fill %");
    println!(" must be ~100; walk discovery covers most entries, the rest fall back");
    println!(" to a uniform boundary sample with identical distribution)\n");

    println!("## uniformity of portal choice (depth 1, largest sibling pair)\n");
    // For each (part, sibling label), gather the multiset of assigned
    // portals; uniformity means max frequency close to count/boundary size.
    let p = 1u32;
    let mut by_pair: HashMap<(u64, u32), Vec<u32>> = HashMap::new();
    for vid in 0..h.vnodes() as u32 {
        let my = h.part_of(VirtualId(vid), p);
        for j in 0..beta {
            if let Some(e) = h.portal(p, VirtualId(vid), j) {
                by_pair.entry((my, j)).or_default().push(e.portal.0);
            }
        }
    }
    report.header(&[
        "part→label",
        "sources",
        "distinct portals",
        "max share",
        "uniform share",
    ]);
    let mut pairs: Vec<_> = by_pair.iter().collect();
    pairs.sort_by_key(|(_, v)| std::cmp::Reverse(v.len()));
    for (&(part, j), portals) in pairs.into_iter().take(6) {
        let mut freq: HashMap<u32, usize> = HashMap::new();
        for &t in portals {
            *freq.entry(t).or_insert(0) += 1;
        }
        let distinct = freq.len();
        let max_share = *freq.values().max().unwrap() as f64 / portals.len() as f64;
        report.row(&[
            format!("{part}→{j}"),
            portals.len().to_string(),
            distinct.to_string(),
            format!("{max_share:.3}"),
            format!("{:.3}", 1.0 / distinct as f64),
        ]);
    }
    println!("\n(paper's uniformity property: each source's portal is an independent");
    println!(" ~uniform boundary node — max share should sit near the uniform share,");
    println!(" never concentrate on one portal)");
    report.finish();
}
