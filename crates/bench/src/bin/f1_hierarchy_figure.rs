//! F1 — the Figure 1 analog: a structural rendering of a built hierarchy.
//!
//! The paper's only figure sketches the nested balls `A_i ⊃ B_{ji} ⊃ …`
//! with one random graph per ball. This binary prints the same picture for
//! an actual built structure: the partition tree with per-part sizes, the
//! per-level random graphs, and the emulation factors between levels.

use amt_bench::{expander, Report};
use amt_core::embedding::VirtualId;
use amt_core::prelude::*;

fn main() {
    let mut report = Report::new("f1_hierarchy_figure");
    let n = 96usize;
    let g = expander(n, 6, 1);
    let sys = System::builder(&g)
        .seed(1)
        .beta(4)
        .levels(2)
        .build()
        .expect("expander");
    let h = sys.hierarchy();
    let beta = h.cfg().beta;

    println!(
        "# F1 — hierarchy structure (n = {n}, 2m = {} virtual nodes, β = {beta}, depth = {})\n",
        h.vnodes(),
        h.depth()
    );

    println!("## the nested partition (sizes per ball)\n");
    for part in 0..h.parts_at(1) {
        let a = h.members(1, part);
        println!("A_{part}  [{} virtual nodes]", a.len());
        for child in 0..u64::from(beta) {
            let b_idx = part * u64::from(beta) + child;
            let b = h.members(2, b_idx);
            if !b.is_empty() {
                let bar = "█".repeat((b.len() / 2).max(1));
                println!("  ├─ B_{child}{part}  {:>3} nodes  {bar}", b.len());
            }
        }
    }

    println!("\n## one random graph per ball (per-level overlays)\n");
    report.header(&[
        "level",
        "graph on",
        "edges",
        "deg min/max",
        "embedded path avg/max",
        "1 round costs (base)",
    ]);
    for level in 0..=h.depth() {
        let ov = h.overlay(level);
        let og = ov.graph();
        let degs: Vec<usize> = og
            .nodes()
            .map(|v| og.degree(v))
            .filter(|&d| d > 0)
            .collect();
        let (avg, max) = ov.path_length_stats();
        let what = match level {
            0 => "all 2m virtual nodes".to_string(),
            l if l == h.depth() => format!("{} bottom cliques", h.parts_at(l)),
            l => format!("{} balls at depth {l}", h.parts_at(l)),
        };
        report.row(&[
            level.to_string(),
            what,
            og.edge_count().to_string(),
            format!(
                "{}/{}",
                degs.iter().min().copied().unwrap_or(0),
                degs.iter().max().copied().unwrap_or(0)
            ),
            format!("{avg:.1}/{max}"),
            h.full_round_cost(level).to_string(),
        ]);
    }

    println!("\n## portals (the arrows between sibling balls)\n");
    report.header(&["depth", "portal entries", "fallbacks used"]);
    for p in 1..=h.depth() {
        let mut filled = 0u64;
        for vid in 0..h.vnodes() as u32 {
            for j in 0..beta {
                if h.portal(p, VirtualId(vid), j).is_some() {
                    filled += 1;
                }
            }
        }
        report.row(&[
            p.to_string(),
            filled.to_string(),
            h.stats.portal_fallbacks.to_string(),
        ]);
    }
    println!(
        "\nshared randomness: {} hash-seed bits, broadcast in {} measured rounds",
        h.partition().seed_bits(),
        h.stats.seed_broadcast_rounds
    );
    println!(
        "total construction: {} measured base rounds",
        h.stats.total_base_rounds
    );
    report.finish();
}
