//! Traffic-class congestion profiles of the flagship runs.
//!
//! Profiles the simulator-executed protocols — clean and healing Borůvka
//! MST, Valiant bit-fix permutation routing, and healing walks — with the
//! traffic-class profiler (`Simulator::with_profile`): per-class totals,
//! the top-10 hot edges with per-class attribution, the ack/retransmit
//! share of the healing runs versus their clean counterparts, per-class
//! round-level distributions (p50/p95/max), and an ASCII heatmap of the
//! per-class load over the edge-id space. The hierarchy MST/router is
//! priced by recursive emulation rather than executed on the simulator, so
//! profiling attaches to the CONGEST-executed protocols.
//!
//! Everything printed is also recorded into
//! `experiments_out/profile_run.json` (report schema v2, `profiles`
//! section).

use amt_bench::{expander, Report};
use amt_core::congest::{class, Distribution, ProfileConfig, TraceConfig, TrafficProfile};
use amt_core::mst::{congest_boruvka, run_healing_instrumented};
use amt_core::prelude::*;
use amt_core::routing::route_bitfix_instrumented;
use amt_core::walks::healing::run_walks_healing_instrumented;
use amt_core::walks::parallel::degree_proportional_specs;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Share (in %) of a profile's messages carried by the ARQ overhead
/// classes (acks + retransmissions, walk and reliable-link alike).
fn overhead_share(p: &TrafficProfile) -> f64 {
    let overhead: u64 = [
        class::REL_ACK,
        class::REL_RETRANSMIT,
        class::WALK_CUSTODY,
        class::WALK_RETRANSMIT,
    ]
    .iter()
    .filter_map(|c| p.stats(c))
    .map(|s| s.messages)
    .sum();
    let total = p.total_messages();
    if total == 0 {
        0.0
    } else {
        100.0 * overhead as f64 / total as f64
    }
}

fn class_totals_rows(report: &mut Report, run: &str, p: &TrafficProfile) {
    let total = p.total_messages().max(1);
    for s in &p.per_class {
        report.row(&[
            run.to_string(),
            s.class.to_string(),
            s.messages.to_string(),
            s.bits.to_string(),
            format!("{:.1}", 100.0 * s.messages as f64 / total as f64),
        ]);
    }
}

fn hot_edge_rows(report: &mut Report, run: &str, p: &TrafficProfile, top_k: usize) {
    for (rank, h) in p.analyze(top_k).top_edges.iter().enumerate() {
        let breakdown = h
            .per_class
            .iter()
            .map(|(c, m)| format!("{c}={m}"))
            .collect::<Vec<_>>()
            .join(" ");
        report.row(&[
            run.to_string(),
            (rank + 1).to_string(),
            h.edge.to_string(),
            h.messages.to_string(),
            h.bits.to_string(),
            breakdown,
        ]);
    }
}

/// Per-class round distributions from the profile's own timelines.
fn distribution_rows(report: &mut Report, run: &str, p: &TrafficProfile) {
    for s in &p.per_class {
        // No statistics for an empty timeline (class registered but never
        // active): skip the row instead of printing fabricated zeros.
        let (Some(msgs), Some(bits)) = (
            Distribution::try_of(s.timeline.iter().map(|t| t.messages)),
            Distribution::try_of(s.timeline.iter().map(|t| t.bits)),
        ) else {
            continue;
        };
        report.row(&[
            run.to_string(),
            s.class.to_string(),
            msgs.p50.to_string(),
            msgs.p95.to_string(),
            msgs.max.to_string(),
            bits.p50.to_string(),
            bits.p95.to_string(),
            bits.max.to_string(),
        ]);
    }
}

fn main() {
    let mut report = Report::new("profile_run");
    let profile_cfg = Some(ProfileConfig::default());
    println!("# Traffic-class congestion profiles (top-10 hot edges, reliability tax)\n");

    // ---- MST: clean vs healing Borůvka on the canonical expander ----
    let n = 256usize;
    let g = expander(n, 6, 1);
    let mut rng = StdRng::seed_from_u64(2);
    let wg = WeightedGraph::with_random_weights(g.clone(), 1_000_000, &mut rng);
    report.config("mst_n", n);
    report.config("mst_family", "random 6-regular expander, seed 1");

    let (clean, clean_profile) =
        congest_boruvka::run_instrumented(&wg, 3, 4, profile_cfg).expect("connected");
    let clean_profile = clean_profile.expect("profiling on");

    let plan = FaultPlan::none()
        .seeded(7)
        .with_drops(0.05)
        .with_crash(NodeId(0), 10);
    let (healing, _, healing_profile) =
        run_healing_instrumented(&wg, 3, plan, 4, None, profile_cfg).expect("connected survivors");
    let healing_profile = healing_profile.expect("profiling on");
    assert_eq!(healing_profile.total_messages(), healing.metrics.messages);
    assert_eq!(healing_profile.total_bits(), healing.metrics.bits);

    println!("## MST class totals — clean Borůvka vs healing Borůvka (drop 5%, leader crash)\n");
    report.section("mst class totals");
    report.header(&["run", "class", "messages", "bits", "share%"]);
    class_totals_rows(&mut report, "clean", &clean_profile);
    class_totals_rows(&mut report, "healing", &healing_profile);

    let clean_tax = overhead_share(&clean_profile);
    let healing_tax = overhead_share(&healing_profile);
    println!("\nack/retransmit share of all messages: clean {clean_tax:.1}% vs healing {healing_tax:.1}%");
    println!("(the reliability tax the ARQ layer pays for surviving drops and crashes)\n");
    report.config("mst_clean_overhead_pct", format!("{clean_tax:.2}"));
    report.config("mst_healing_overhead_pct", format!("{healing_tax:.2}"));

    println!("## MST hot edges (top 10, per-class attribution)\n");
    report.section("mst hot edges");
    report.header(&["run", "rank", "edge", "messages", "bits", "per-class"]);
    hot_edge_rows(&mut report, "clean", &clean_profile, 10);
    hot_edge_rows(&mut report, "healing", &healing_profile, 10);

    println!("\nclean heatmap (bits per edge-id bucket):\n");
    print!("{}", clean_profile.heatmap(64));
    println!("\nhealing heatmap (bits per edge-id bucket):\n");
    print!("{}", healing_profile.heatmap(64));

    println!("\n## MST round-level distributions (per class, messages and bits per round)\n");
    report.section("mst round distributions");
    report.header(&[
        "run", "class", "msg p50", "msg p95", "msg max", "bit p50", "bit p95", "bit max",
    ]);
    distribution_rows(&mut report, "clean", &clean_profile);
    distribution_rows(&mut report, "healing", &healing_profile);

    report.metrics("mst_healing", &healing.metrics);
    report.profile("mst_clean", &clean_profile);
    report.profile("mst_healing", &healing_profile);
    println!(
        "\nclean: {} rounds, {} msgs; healing: {} rounds, {} msgs, {} restart(s)\n",
        clean.rounds,
        clean.messages,
        healing.rounds,
        healing.metrics.messages,
        healing.phase_restarts
    );

    // ---- Routing: Valiant bit-fix permutation on the hypercube ----
    let dim = 8u32;
    let hn = 1usize << dim;
    let hg = generators::hypercube(dim);
    let reqs: Vec<(NodeId, NodeId)> = (0..hn as u32)
        .map(|i| (NodeId(i), NodeId((5 * i + 3) % hn as u32)))
        .collect();
    let (route, route_profile) =
        route_bitfix_instrumented(&hg, &reqs, 12, 4, profile_cfg).expect("hypercube");
    let route_profile = route_profile.expect("profiling on");
    assert_eq!(route_profile.total_messages(), route.metrics.messages);
    report.config("route_n", hn);
    report.config("route_family", format!("hypercube dim {dim}"));

    println!("## Routing (bit-fix over hypercube dim {dim}): portal vs payload split\n");
    report.section("routing class totals");
    report.header(&["run", "class", "messages", "bits", "share%"]);
    class_totals_rows(&mut report, "bitfix", &route_profile);
    let analysis = route_profile.analyze(10);
    println!(
        "\nportal share of the hottest edge: {:.1}% (payload {:.1}%), max congestion {}\n",
        100.0 * analysis.class_share_of_max(class::ROUTE_PORTAL),
        100.0 * analysis.class_share_of_max(class::ROUTE_PAYLOAD),
        analysis.max_edge_congestion
    );
    report.section("routing hot edges");
    report.header(&["run", "rank", "edge", "messages", "bits", "per-class"]);
    hot_edge_rows(&mut report, "bitfix", &route_profile, 10);
    report.metrics("route_bitfix", &route.metrics);
    report.profile("route_bitfix", &route_profile);

    // ---- Healing walks: token vs custody vs retransmit ----
    let wg_graph = expander(n, 6, 1);
    let specs = degree_proportional_specs(&wg_graph, 1, 20);
    let plan = FaultPlan::none()
        .seeded(4)
        .with_drops(0.03)
        .with_crash(NodeId(9), 5);
    let (walks, walk_traces, walk_profile) = run_walks_healing_instrumented(
        &wg_graph,
        WalkKind::Lazy,
        &specs,
        6,
        plan,
        4,
        Some(TraceConfig::default()),
        profile_cfg,
    )
    .expect("valid plan");
    let walk_profile = walk_profile.expect("profiling on");
    assert_eq!(walk_profile.total_messages(), walks.metrics.messages);

    println!("\n## Healing walks: class totals and per-epoch round distributions\n");
    report.section("walk class totals");
    report.header(&["run", "class", "messages", "bits", "share%"]);
    class_totals_rows(&mut report, "healing walks", &walk_profile);
    println!(
        "\nwalk ARQ overhead (custody + retransmit): {:.1}% of all messages, {} epoch(s), {} reissued\n",
        overhead_share(&walk_profile),
        walks.epochs,
        walks.reissued
    );

    report.section("walk epoch distributions");
    report.header(&[
        "epoch", "rounds", "msg p50", "msg p95", "msg max", "bit p50", "bit p95", "bit max",
    ]);
    for (i, trace) in walk_traces.iter().enumerate() {
        let msgs = trace.messages_per_round_distribution();
        let bits = trace.bits_per_round_distribution();
        report.row(&[
            i.to_string(),
            trace.samples.len().to_string(),
            msgs.p50.to_string(),
            msgs.p95.to_string(),
            msgs.max.to_string(),
            bits.p50.to_string(),
            bits.p95.to_string(),
            bits.max.to_string(),
        ]);
        report.timeline(&format!("walk_epoch_{i}"), trace);
    }
    report.metrics("healing_walks", &walks.metrics);
    report.profile("healing_walks", &walk_profile);

    println!("\n(per-class totals sum exactly to each run's Metrics — asserted in-process;");
    println!(" the profiler is off by default and leaves unprofiled runs byte-identical)");
    report.finish();
}
