//! Execution-health analysis of the scaling-tier workload (E18): per-shard
//! straggler attribution, gauge distributions, and a shard-wall heatmap,
//! driven by the `amt_congest::telemetry` layer.
//!
//! For every scaling-tier instance × worker count × {contiguous, spectral}
//! placement, the run executes with telemetry history on and prints:
//!
//! * a per-shard table — nodes stepped, messages staged, host wall, and
//!   each shard's share of the total wall — labelled by the placement's
//!   id spans ([`Placement::shard_labels`]);
//! * the whole-run straggler **imbalance factor** (`max / mean` of the
//!   per-shard wall totals) plus the p50/p95/max of the per-round factor;
//! * wake-queue / staged-send / active-set depth distributions;
//! * an ASCII heatmap of shard wall per round (shards × round buckets).
//!
//! Protocol observables must be byte-identical to a telemetry-off run —
//! asserted here against a plain reference run, not just trusted. One
//! configuration per instance also streams NDJSON round records
//! ([`TelemetryConfig::stream_to`]) and reports the line count.
//!
//! The counters of one reference run per instance are written as a
//! schema-v5 `SIM_HEALTH.json` report so CI's `validate_report` covers
//! the telemetry section end-to-end.
//!
//! Flags: `--smoke` shrinks the sweep to the dumbbell instance at 4
//! workers (CI). `--force-failure` instead drives the workload into a
//! [`CongestError`] under a tight round cap, then parses the
//! auto-written `flightrec_*.json` post-mortem back and checks the
//! retained final-K-round window.

use amt_bench::report::{parse, Json};
use amt_bench::scale::{scale_fleet, scaling_instances};
use amt_bench::Report;
use amt_core::congest::{
    Distribution, Metrics, Placement, RunConfig, RunTelemetry, Simulator, TelemetryConfig,
};
use amt_core::prelude::*;

const SPECTRAL_ITERS: usize = 120;
const SEED: u64 = 77;

fn report_dir() -> String {
    std::env::var("AMT_REPORT_DIR").unwrap_or_else(|_| "experiments_out".into())
}

/// One telemetry-off reference run: the observables every telemetry-on
/// configuration must reproduce byte-for-byte.
fn reference_run(g: &Graph, threads: usize) -> (Metrics, Vec<u64>) {
    let mut sim = Simulator::new(g, scale_fleet(g.len()), SEED).expect("fleet size matches");
    let m = sim
        .run(&RunConfig::all_done().with_threads(threads))
        .expect("scaling workload terminates");
    (m, sim.nodes().iter().map(|p| p.digest).collect())
}

/// One telemetry-on run under an explicit placement.
fn health_run(
    g: &Graph,
    threads: usize,
    placement: Placement,
    cfg: TelemetryConfig,
) -> (Metrics, Vec<u64>, RunTelemetry) {
    let mut sim = Simulator::new(g, scale_fleet(g.len()), SEED)
        .expect("fleet size matches")
        .with_placement(placement)
        .with_telemetry(cfg);
    let m = sim
        .run(&RunConfig::all_done().with_threads(threads))
        .expect("scaling workload terminates");
    let digests = sim.nodes().iter().map(|p| p.digest).collect();
    let t = sim.take_telemetry().expect("telemetry on");
    (m, digests, t)
}

fn fmt_ms(nanos: u64) -> String {
    format!("{:.2}", nanos as f64 / 1e6)
}

fn fmt_dist(d: Option<Distribution>) -> String {
    match d {
        Some(d) => format!("p50 {} / p95 {} / max {}", d.p50, d.p95, d.max),
        None => "(no history)".to_string(),
    }
}

/// Per-shard attribution table for one run.
fn shard_table(labels: &[String], t: &RunTelemetry) {
    let total_wall: u64 = t.shard_wall_nanos.iter().sum();
    amt_bench::header(&["shard", "nodes_stepped", "msgs_staged", "wall_ms", "wall_%"]);
    for s in 0..t.shards {
        let wall = t.shard_wall_nanos[s];
        let share = if total_wall == 0 {
            0.0
        } else {
            100.0 * wall as f64 / total_wall as f64
        };
        amt_bench::row(&[
            labels.get(s).cloned().unwrap_or_else(|| format!("s{s}")),
            t.shard_nodes_stepped[s].to_string(),
            t.shard_messages_staged[s].to_string(),
            fmt_ms(wall),
            format!("{share:.1}"),
        ]);
    }
}

/// ASCII heatmap of per-shard wall over the run: one row per shard, rounds
/// bucketed to at most `cols` columns, intensity normalized to the hottest
/// (shard, bucket) cell.
fn wall_heatmap(t: &RunTelemetry, cols: usize) {
    const RAMP: &[u8] = b" .:-=+*#%@";
    let rounds = t.history.len();
    if rounds == 0 || t.shards == 0 {
        println!("  (no history recorded)");
        return;
    }
    let bucket = rounds.div_ceil(cols);
    let ncols = rounds.div_ceil(bucket);
    // cell[s][c] = max wall of shard s over the c-th round bucket.
    let mut cell = vec![vec![0u64; ncols]; t.shards];
    for (r, h) in t.history.iter().enumerate() {
        for s in &h.shards {
            let row = &mut cell[s.shard as usize][r / bucket];
            *row = (*row).max(s.wall_nanos);
        }
    }
    let hottest = cell.iter().flatten().copied().max().unwrap_or(0).max(1);
    println!(
        "  shard wall heatmap ({rounds} rounds x {} shards, {bucket} round(s)/col, '@' = {} ms)",
        t.shards,
        fmt_ms(hottest)
    );
    for (s, row) in cell.iter().enumerate() {
        let line: String = row
            .iter()
            .map(|&w| {
                let idx = (w as u128 * (RAMP.len() - 1) as u128 / hottest as u128) as usize;
                RAMP[idx] as char
            })
            .collect();
        println!("  s{s:<3} |{line}|");
    }
}

/// The main sweep: health analysis over the scaling tier.
fn analyze(smoke: bool) {
    let thread_counts: &[usize] = if smoke { &[4] } else { &[2, 4, 8] };
    let mut instances = scaling_instances();
    if smoke {
        // The dumbbell is the instance with real placement structure —
        // the one whose imbalance story EXPERIMENTS.md is about.
        instances.retain(|(name, _)| *name == "scale_dumbbell_n2048");
    }

    let mut report = Report::new("SIM_HEALTH");
    report.config("smoke", smoke);
    report.config("seed", SEED);

    for (name, g) in &instances {
        println!("\n## {name} (n = {}, m = {})\n", g.len(), g.edge_count());
        let (ref_metrics, ref_digests) = reference_run(g, thread_counts[0]);
        report.metrics(name, &ref_metrics);
        let mut reference_recorded = false;

        for &threads in thread_counts {
            for kind in ["contiguous", "spectral"] {
                let placement = match kind {
                    "contiguous" => Placement::contiguous(g.len(), threads),
                    _ => Placement::spectral(g, threads, SPECTRAL_ITERS),
                };
                let labels = placement.shard_labels();
                let run_id = format!("{name}_t{threads}_{kind}");
                let mut cfg = TelemetryConfig::default().with_run_id(&run_id);
                // One streamed configuration per instance is enough to
                // exercise the NDJSON path end-to-end.
                let stream_path =
                    (threads == thread_counts[0] && kind == "contiguous").then(|| {
                        std::path::PathBuf::from(report_dir()).join(format!("{run_id}.ndjson"))
                    });
                if let Some(p) = &stream_path {
                    cfg = cfg.stream_to(p.clone());
                }
                let (m, digests, t) = health_run(g, threads, placement, cfg);
                // The telemetry layer's whole contract: enabling it moves
                // no observable bit.
                assert_eq!(
                    (&m, &digests),
                    (&ref_metrics, &ref_digests),
                    "{run_id}: telemetry-on observables drifted from the plain run"
                );
                if !reference_recorded {
                    report.telemetry(name, &t);
                    reference_recorded = true;
                }

                println!("### {run_id}\n");
                shard_table(&labels, &t);
                println!(
                    "  run imbalance {:.3} (max/mean shard wall); per-round x1000: {}",
                    t.imbalance(),
                    fmt_dist(t.round_imbalance_milli_distribution())
                );
                println!(
                    "  wake queue   {}\n  staged sends {}\n  active nodes {}",
                    fmt_dist(t.wake_queue_distribution()),
                    fmt_dist(t.staged_distribution()),
                    fmt_dist(t.active_distribution())
                );
                wall_heatmap(&t, 64);
                if let Some(p) = &stream_path {
                    let lines = std::fs::read_to_string(p)
                        .map(|s| s.lines().count())
                        .unwrap_or(0);
                    assert_eq!(
                        lines as u64,
                        t.rounds + 1,
                        "NDJSON stream must carry one record per executed round"
                    );
                    println!("  streamed {lines} NDJSON records to {}", p.display());
                }
                println!();
            }
        }
    }
    report.finish();
    println!("telemetry-on observables matched the plain reference on every configuration");
}

/// Drives the workload into `RoundLimitExceeded` under a tight round cap,
/// then parses the auto-written flight-recorder dump back and checks the
/// retained window covers the final rounds.
fn force_failure() {
    const CAP: u64 = 12;
    const FLIGHT: usize = 8;
    let g = amt_bench::expander(512, 6, 1);
    let run_id = "sim_health_forced";
    let mut sim = Simulator::new(&g, scale_fleet(g.len()), SEED)
        .expect("fleet size matches")
        .with_telemetry(
            TelemetryConfig::default()
                .with_run_id(run_id)
                .with_flight_capacity(FLIGHT),
        );
    let err = sim
        .run(&RunConfig {
            max_rounds: CAP,
            ..RunConfig::all_done()
        })
        .expect_err("the beacon schedule cannot finish in 12 rounds");
    println!("run failed as intended: {err}");
    let t = sim.telemetry().expect("telemetry survives the abort");
    assert_eq!(t.rounds, CAP, "every capped round must be recorded");

    let path = std::path::PathBuf::from(report_dir()).join(format!("flightrec_{run_id}.json"));
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("flight dump missing at {}: {e}", path.display()));
    let doc = parse(&text).expect("flight dump must be valid JSON");
    assert_eq!(doc.get("run_id"), Some(&Json::Str(run_id.into())));
    let reason = match doc.get("reason") {
        Some(Json::Str(s)) => s.clone(),
        other => panic!("dump reason must be a string, got {other:?}"),
    };
    let frames = match doc.get("frames") {
        Some(Json::Arr(frames)) => frames,
        other => panic!("dump frames must be an array, got {other:?}"),
    };
    assert_eq!(frames.len(), FLIGHT, "ring keeps exactly the last K rounds");
    let frame_round = |f: &Json| match f.get("sample").and_then(|s| s.get("round")) {
        Some(Json::Num(r)) => *r as u64,
        other => panic!("frame round must be numeric, got {other:?}"),
    };
    let first = frame_round(&frames[0]);
    let last = frame_round(frames.last().expect("non-empty"));
    assert_eq!(
        (first, last),
        (CAP - (FLIGHT as u64 - 1), CAP),
        "retained window must end at the final executed round"
    );

    println!("post-mortem {}: reason `{reason}`", path.display());
    amt_bench::header(&["frame", "round", "active", "staged", "imbalance"]);
    for (i, f) in frames.iter().enumerate() {
        let health = f.get("health").expect("frame health");
        let num = |k: &str| match health.get(k) {
            Some(Json::Num(v)) => *v as u64,
            other => panic!("health.{k} must be numeric, got {other:?}"),
        };
        let imb = match health.get("imbalance") {
            Some(Json::Str(s)) => s.clone(),
            Some(Json::Num(v)) => format!("{v:.4}"),
            other => panic!("health.imbalance missing: {other:?}"),
        };
        amt_bench::row(&[
            i.to_string(),
            frame_round(f).to_string(),
            num("active_nodes").to_string(),
            num("staged_sends").to_string(),
            imb,
        ]);
    }
    println!("flight-recorder dump parsed back clean: last {FLIGHT} of {CAP} rounds retained");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    if args.iter().any(|a| a == "--force-failure") {
        force_failure();
    } else {
        analyze(smoke);
    }
}
