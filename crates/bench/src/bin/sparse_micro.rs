//! Sparse-phase microbenchmark: active-set engine vs full-sweep reference.
//!
//! One courier token hops around a 100 000-node ring for ~2000 rounds, so
//! at any instant exactly one node has mail — activity is 0.001% of the
//! network. The full-sweep reference still steps all 100 000 nodes every
//! round (the O(n · rounds) bug ROADMAP item 1 names); the active-set
//! engine steps only the courier's current holder, making the round loop
//! cost O(activity). Both runs must produce byte-identical [`Metrics`],
//! and the sparse run must be at least 10× faster — asserted, so the CI
//! step that runs this binary is itself a regression gate on the engine.

use amt_core::congest::{Ctx, Metrics, Protocol, RunConfig, Simulator};
use amt_core::prelude::*;
use std::time::{Duration, Instant};

const RING: usize = 100_000;
const HOPS: u32 = 2_000;

/// Forwards a hop-counted token in its direction of travel. A node with an
/// empty inbox does nothing at all — no RNG draws, no sends, no state —
/// so the protocol is skip-safe and opts into the active-set engine.
struct Courier;

impl Protocol for Courier {
    type Message = u32;

    const SPARSE_AWARE: bool = true;

    fn init(&mut self, ctx: &mut Ctx<'_, u32>) {
        if ctx.node() == NodeId(0) {
            ctx.send(0, HOPS);
        }
    }

    fn round(&mut self, ctx: &mut Ctx<'_, u32>, inbox: &[(usize, u32)]) {
        for &(port, hops) in inbox {
            if hops > 0 {
                // Keep travelling away from the sender: out the other port.
                ctx.send(1 - port, hops - 1);
            }
        }
    }
}

fn run(full_sweep: bool) -> (Metrics, Duration) {
    let g = generators::ring(RING);
    let mut sim = Simulator::new(&g, (0..RING).map(|_| Courier).collect(), 1).unwrap();
    let cfg = RunConfig::default()
        .with_threads(1)
        .with_full_sweep(full_sweep);
    let t0 = Instant::now();
    let metrics = sim.run(&cfg).unwrap();
    (metrics, t0.elapsed())
}

fn main() {
    println!("# sparse_micro — 1 courier token, ring n = {RING}, {HOPS} hops\n");
    let (sparse, sparse_wall) = run(false);
    let (full, full_wall) = run(true);
    assert_eq!(
        sparse, full,
        "active-set engine must be byte-identical to the full sweep"
    );
    assert_eq!(sparse.messages, u64::from(HOPS) + 1, "one message per hop");

    let rps = |m: &Metrics, w: Duration| m.rounds as f64 / w.as_secs_f64();
    println!(
        "full sweep : {:>8.1} ms  ({:>12.0} rounds/s)",
        full_wall.as_secs_f64() * 1e3,
        rps(&full, full_wall)
    );
    println!(
        "active set : {:>8.1} ms  ({:>12.0} rounds/s)",
        sparse_wall.as_secs_f64() * 1e3,
        rps(&sparse, sparse_wall)
    );
    let speedup = full_wall.as_secs_f64() / sparse_wall.as_secs_f64();
    println!("speedup    : {speedup:>8.1}x  (metrics byte-identical)");
    assert!(
        speedup >= 10.0,
        "expected >= 10x on 0.001% activity, got {speedup:.1}x"
    );
}
