//! Validates experiment report JSON files against the report schema.
//!
//! Usage: `validate_report [FILE...]` — with no arguments, validates every
//! `*.json` under `experiments_out/` (or `AMT_REPORT_DIR`), except
//! `flightrec_*.json` flight-recorder dumps, which are post-mortems with
//! their own shape (still checked to parse as JSON). Exits non-zero on the
//! first unparsable or schema-invalid file; CI runs this over the
//! artifacts it uploads.

use amt_bench::report::{parse, validate};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut files: Vec<PathBuf> = std::env::args().skip(1).map(PathBuf::from).collect();
    if files.is_empty() {
        let dir = std::env::var("AMT_REPORT_DIR").unwrap_or_else(|_| "experiments_out".into());
        match std::fs::read_dir(&dir) {
            Ok(entries) => {
                for entry in entries.flatten() {
                    let path = entry.path();
                    if path.extension().is_some_and(|e| e == "json") {
                        files.push(path);
                    }
                }
                files.sort();
            }
            Err(e) => {
                eprintln!("cannot read report dir {dir}: {e}");
                return ExitCode::FAILURE;
            }
        }
        if files.is_empty() {
            eprintln!("no report files found in {dir}");
            return ExitCode::FAILURE;
        }
    }

    for path in &files {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{}: cannot read: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        let doc = match parse(&text) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("{}: parse error: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        // Flight-recorder dumps are crash post-mortems, not reports: they
        // must be well-formed JSON but follow their own schema.
        let is_flightrec = path
            .file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.starts_with("flightrec_"));
        if is_flightrec {
            println!("{}: ok (flight-recorder dump, parse only)", path.display());
            continue;
        }
        if let Err(e) = validate(&doc) {
            eprintln!("{}: schema violation: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("{}: ok", path.display());
    }
    ExitCode::SUCCESS
}
