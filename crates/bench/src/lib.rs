//! Shared support for the experiment binaries.
//!
//! Every experiment in DESIGN.md §5 is a binary under `src/bin/` named
//! after its experiment id (`e1_mst_scaling`, …, `f1_hierarchy_figure`).
//! Each prints a self-contained table to stdout; EXPERIMENTS.md records the
//! paper-claim vs measured discussion.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;
pub mod scale;

pub use report::Report;

use amt_core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Prints a markdown-style table row.
pub fn row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Prints a markdown-style header plus separator.
pub fn header(cells: &[&str]) {
    println!("| {} |", cells.join(" | "));
    println!(
        "|{}|",
        cells.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
}

/// Standard expander family used across experiments: a random `d`-regular
/// graph on `n` nodes, deterministic in `seed`.
pub fn expander(n: usize, d: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    generators::random_regular(n, d, &mut rng).expect("valid regular parameters")
}

/// The spectral mixing-time estimate (Definition 2.1 deviation), clamped.
pub fn tau_estimate(g: &Graph) -> u32 {
    mixing::mixing_time_spectral(g, WalkKind::Lazy, 500)
        .unwrap_or((4 * g.len()) as u32)
        .min((8 * g.len()) as u32)
}

/// A standard small hierarchy configuration for experiments: β and depth
/// explicit, logarithmic degrees, practical constants (stated in the
/// experiment output).
pub fn experiment_config(g: &Graph, beta: u32, levels: u32, seed: u64) -> HierarchyConfig {
    let mut cfg = HierarchyConfig::auto(g, tau_estimate(g), seed);
    cfg.beta = beta;
    cfg.levels = levels;
    cfg
}

/// β/depth choice per virtual-node count used by the scaling experiments
/// (keeps bottom parts near `Θ(log n)` as the paper prescribes).
pub fn scaled_beta_levels(n_virtual: usize) -> (u32, u32) {
    amt_core::kwise::paper_parameters(n_virtual)
}

/// Depth policy used by the scaling experiments: keeps expected bottom
/// parts near 16 virtual nodes (`Θ(log n)` at these sizes), growing with
/// the virtual-node count exactly as the paper's `k = log_β(m / log m)`.
pub fn scaled_levels(vnodes: usize, beta: u32) -> u32 {
    let target = (vnodes as f64 / 16.0).max(2.0);
    (target.log2() / f64::from(beta).log2())
        .round()
        .clamp(1.0, 4.0) as u32
}

/// The `2^√(log n · log log n)` reference curve of the paper's bounds.
pub fn paper_growth(n: usize) -> f64 {
    let ln = (n.max(4) as f64).log2();
    2f64.powf((ln * ln.log2().max(1.0)).sqrt())
}

/// Log-log slope between consecutive measurements — the growth-rate
/// indicator reported by the scaling experiments.
pub fn loglog_slope(n0: usize, y0: f64, n1: usize, y1: f64) -> f64 {
    ((y1.max(1.0) / y0.max(1.0)).ln()) / ((n1 as f64 / n0 as f64).ln())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expander_is_reproducible_and_regular() {
        let a = expander(32, 4, 1);
        let b = expander(32, 4, 1);
        assert_eq!(a, b);
        assert!(a.nodes().all(|v| a.degree(v) == 4));
    }

    #[test]
    fn growth_curve_is_monotone_and_subpolynomial() {
        let g1 = paper_growth(1 << 10);
        let g2 = paper_growth(1 << 20);
        assert!(g2 > g1);
        // Far below any fixed power: n^0.5 at n = 2^20 is 1024.
        assert!(g2 < 1024.0, "2^sqrt(log n log log n) = {g2}");
    }

    #[test]
    fn slope_of_linear_data_is_one() {
        let s = loglog_slope(100, 100.0, 200, 200.0);
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn experiment_config_validates() {
        let g = expander(64, 4, 3);
        let cfg = experiment_config(&g, 4, 1, 3);
        assert!(cfg.validate(&g).is_ok());
    }
}
