//! Machine-readable run reports (`experiments_out/<id>.json`).
//!
//! Every experiment binary routes its stdout tables through a [`Report`]:
//! the table printing is byte-identical to the old free-function output,
//! and on [`Report::finish`] everything the run printed — plus recorded
//! config, [`Metrics`], [`PhaseTimings`], and optional [`RunTrace`]
//! timeline summaries — is serialized as schema-versioned JSON under
//! `experiments_out/` (override with `AMT_REPORT_DIR`). CI runs one binary,
//! validates its output with the `validate_report` binary, and uploads the
//! directory as an artifact.
//!
//! The crate has no serde (vendored deps only), so this module carries its
//! own minimal JSON value type with an encoder, a recursive-descent parser,
//! and a structural schema check ([`validate`]). The parser exists so the
//! validator can check *files on disk* — what CI consumes — rather than
//! in-memory values that never saw the encoder.

use amt_congest::{
    Metrics, PhaseTimings, RecoveryTimeline, RunTelemetry, RunTrace, ShardSplit, TrafficProfile,
};
use std::path::PathBuf;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Schema version written to every report file. Bump when a required key is
/// added, removed, or changes shape.
///
/// Version history:
/// * **1** — config / tables / metrics / phase_timings / timelines.
/// * **2** — adds the required `profiles` section: per-run traffic-class
///   totals (`profiles.<name>.<class>.{messages,bits}`) recorded with
///   [`Report::profile`].
/// * **3** — adds the required `recovery` section: per-run recovery-SLO
///   summaries of a [`RecoveryTimeline`]
///   (`recovery.<name>.{spans,open,ttr_p50,ttr_p95,ttr_max}`) recorded
///   with [`Report::recovery`]; `metrics.<name>` additionally carries the
///   churn counters `lost_to_churn` and `restarts`.
/// * **4** — adds the required `shards` section: per-placement intra/cross
///   shard traffic attribution of a [`ShardSplit`]
///   (`shards.<name>.{shards,intra_messages,cross_messages,intra_bits,
///   cross_bits}` plus one nested `shards.<name>.<class>.{…}` object per
///   traffic class) recorded with [`Report::shards`].
/// * **5** — adds the required `telemetry` section: execution-health
///   counters of a [`RunTelemetry`]
///   (`telemetry.<name>.{rounds,nodes_stepped,messages_staged,
///   active_nodes_hwm,inbox_queued_hwm,staged_sends_hwm,wake_queue_hwm,
///   arena_bytes_hwm}`) recorded with [`Report::telemetry`]; timeline
///   entries additionally carry `edge_load_stride` and, whenever snapshots
///   were recorded, a `final_snapshot_round` that must equal `rounds` (the
///   final-round-snapshot guarantee).
pub const SCHEMA_VERSION: u64 = 5;

/// Oldest schema version [`validate`] still accepts; committed version-1
/// artifacts stay valid (they simply predate the `profiles` section).
pub const MIN_SCHEMA_VERSION: u64 = 1;

/// A JSON value (object keys keep insertion order for stable diffs).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (always encoded from/decoded to `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::Num(f64::from(v))
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl Json {
    /// Renders the value as pretty-printed JSON (2-space indent, trailing
    /// newline).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                // JSON has no NaN/Inf; clamp to null like serde_json does.
                if x.is_finite() {
                    if *x == x.trunc() && x.abs() < 9e15 {
                        out.push_str(&format!("{}", *x as i64));
                    } else {
                        out.push_str(&format!("{x}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }

    /// Looks up `key` if this value is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a message with a byte offset on malformed input or trailing
/// garbage.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\n' || b == b'\t' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", char::from(b), self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| "invalid \\u code point".to_string())?,
                            );
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                }
                Some(_) => {
                    // Consume one full UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    if (c as u32) < 0x20 {
                        return Err(format!("raw control char at byte {}", self.pos));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }
}

// ---------------------------------------------------------------------------
// Schema validation
// ---------------------------------------------------------------------------

/// Structurally validates a parsed report against the schema. Every version
/// in [`MIN_SCHEMA_VERSION`]`..=`[`SCHEMA_VERSION`] is accepted; the
/// `profiles` section is required (and checked) from version 2 on.
///
/// # Errors
///
/// Returns the first violation found (path and reason).
pub fn validate(root: &Json) -> Result<(), String> {
    let Json::Obj(_) = root else {
        return Err("root must be an object".to_string());
    };
    let version = match root.get("schema_version") {
        Some(Json::Num(v))
            if *v >= MIN_SCHEMA_VERSION as f64
                && *v <= SCHEMA_VERSION as f64
                && *v == v.trunc() =>
        {
            *v as u64
        }
        Some(other) => {
            return Err(format!(
                "schema_version must be in {MIN_SCHEMA_VERSION}..={SCHEMA_VERSION}, got {other:?}"
            ))
        }
        None => return Err("missing schema_version".to_string()),
    };
    match root.get("experiment") {
        Some(Json::Str(s)) if !s.is_empty() => {}
        _ => return Err("experiment must be a non-empty string".to_string()),
    }
    match root.get("git_describe") {
        Some(Json::Str(_)) => {}
        _ => return Err("git_describe must be a string".to_string()),
    }
    for key in ["created_unix", "wall_seconds"] {
        match root.get(key) {
            Some(Json::Num(v)) if *v >= 0.0 => {}
            _ => return Err(format!("{key} must be a non-negative number")),
        }
    }
    let Some(Json::Obj(config)) = root.get("config") else {
        return Err("config must be an object".to_string());
    };
    for (k, v) in config {
        match v {
            Json::Num(_) | Json::Str(_) | Json::Bool(_) => {}
            _ => return Err(format!("config.{k} must be a scalar")),
        }
    }
    let Some(Json::Arr(tables)) = root.get("tables") else {
        return Err("tables must be an array".to_string());
    };
    for (i, t) in tables.iter().enumerate() {
        match t.get("title") {
            Some(Json::Str(s)) if !s.is_empty() => {}
            _ => return Err(format!("tables[{i}].title must be a non-empty string")),
        }
        let Some(Json::Arr(columns)) = t.get("columns") else {
            return Err(format!("tables[{i}].columns must be an array"));
        };
        if !columns.iter().all(|c| matches!(c, Json::Str(_))) {
            return Err(format!("tables[{i}].columns must contain strings"));
        }
        let Some(Json::Arr(rows)) = t.get("rows") else {
            return Err(format!("tables[{i}].rows must be an array"));
        };
        for (j, r) in rows.iter().enumerate() {
            let Json::Arr(cells) = r else {
                return Err(format!("tables[{i}].rows[{j}] must be an array"));
            };
            if cells.len() != columns.len() {
                return Err(format!(
                    "tables[{i}].rows[{j}] has {} cells for {} columns",
                    cells.len(),
                    columns.len()
                ));
            }
            if !cells.iter().all(|c| matches!(c, Json::Str(_))) {
                return Err(format!("tables[{i}].rows[{j}] must contain strings"));
            }
        }
    }
    for section in ["metrics", "phase_timings", "timelines"] {
        let Some(Json::Obj(entries)) = root.get(section) else {
            return Err(format!("{section} must be an object"));
        };
        for (name, entry) in entries {
            let Json::Obj(fields) = entry else {
                return Err(format!("{section}.{name} must be an object"));
            };
            for (k, v) in fields {
                if !matches!(v, Json::Num(_)) {
                    return Err(format!("{section}.{name}.{k} must be a number"));
                }
            }
        }
    }
    if version >= 5 {
        // Final-round-snapshot guarantee: a timeline that recorded strided
        // snapshots must say which round closed the series, and it must be
        // the run's final round.
        if let Some(Json::Obj(timelines)) = root.get("timelines") {
            for (name, entry) in timelines {
                let snapshots = match entry.get("snapshots") {
                    Some(Json::Num(v)) => *v,
                    _ => 0.0,
                };
                if snapshots > 0.0 {
                    match (entry.get("final_snapshot_round"), entry.get("rounds")) {
                        (Some(Json::Num(last)), Some(Json::Num(rounds))) if last == rounds => {}
                        (Some(Json::Num(last)), Some(Json::Num(rounds))) => {
                            return Err(format!(
                                "timelines.{name}: final snapshot at round {last} but the run \
                                 ended at round {rounds}"
                            ))
                        }
                        _ => {
                            return Err(format!(
                                "timelines.{name}: snapshots recorded but no \
                                 final_snapshot_round (required from schema 5)"
                            ))
                        }
                    }
                }
            }
        }
        let Some(Json::Obj(telemetry)) = root.get("telemetry") else {
            return Err("telemetry must be an object (required from schema 5)".to_string());
        };
        for (name, entry) in telemetry {
            let Json::Obj(fields) = entry else {
                return Err(format!("telemetry.{name} must be an object"));
            };
            for key in [
                "rounds",
                "nodes_stepped",
                "messages_staged",
                "active_nodes_hwm",
                "inbox_queued_hwm",
                "staged_sends_hwm",
                "wake_queue_hwm",
                "arena_bytes_hwm",
            ] {
                match entry.get(key) {
                    Some(Json::Num(v)) if *v >= 0.0 => {}
                    _ => {
                        return Err(format!(
                            "telemetry.{name}.{key} must be a non-negative number"
                        ))
                    }
                }
            }
            for (k, v) in fields {
                if !matches!(v, Json::Num(_)) {
                    return Err(format!("telemetry.{name}.{k} must be a number"));
                }
            }
        }
    }
    if version >= 2 {
        let Some(Json::Obj(profiles)) = root.get("profiles") else {
            return Err("profiles must be an object (required from schema 2)".to_string());
        };
        for (name, entry) in profiles {
            let Json::Obj(classes) = entry else {
                return Err(format!("profiles.{name} must be an object"));
            };
            for (class, totals) in classes {
                let Json::Obj(fields) = totals else {
                    return Err(format!("profiles.{name}.{class} must be an object"));
                };
                for (k, v) in fields {
                    if !matches!(v, Json::Num(_)) {
                        return Err(format!("profiles.{name}.{class}.{k} must be a number"));
                    }
                }
            }
        }
    }
    if version >= 4 {
        let Some(Json::Obj(shards)) = root.get("shards") else {
            return Err("shards must be an object (required from schema 4)".to_string());
        };
        for (name, entry) in shards {
            let Json::Obj(fields) = entry else {
                return Err(format!("shards.{name} must be an object"));
            };
            for key in [
                "shards",
                "intra_messages",
                "cross_messages",
                "intra_bits",
                "cross_bits",
            ] {
                match entry.get(key) {
                    Some(Json::Num(v)) if *v >= 0.0 => {}
                    _ => return Err(format!("shards.{name}.{key} must be a non-negative number")),
                }
            }
            for (k, v) in fields {
                match v {
                    Json::Num(_) => {}
                    // Per-traffic-class nested split.
                    Json::Obj(inner) => {
                        for (ik, iv) in inner {
                            if !matches!(iv, Json::Num(_)) {
                                return Err(format!("shards.{name}.{k}.{ik} must be a number"));
                            }
                        }
                    }
                    _ => {
                        return Err(format!(
                            "shards.{name}.{k} must be a number or per-class object"
                        ))
                    }
                }
            }
        }
    }
    if version >= 3 {
        let Some(Json::Obj(recovery)) = root.get("recovery") else {
            return Err("recovery must be an object (required from schema 3)".to_string());
        };
        for (name, entry) in recovery {
            let Json::Obj(fields) = entry else {
                return Err(format!("recovery.{name} must be an object"));
            };
            for key in ["spans", "open", "ttr_p50", "ttr_p95", "ttr_max"] {
                match entry.get(key) {
                    Some(Json::Num(v)) if *v >= 0.0 => {}
                    _ => {
                        return Err(format!(
                            "recovery.{name}.{key} must be a non-negative number"
                        ))
                    }
                }
            }
            for (k, v) in fields {
                if !matches!(v, Json::Num(_)) {
                    return Err(format!("recovery.{name}.{k} must be a number"));
                }
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Report recorder
// ---------------------------------------------------------------------------

#[derive(Clone, Debug, Default)]
struct Table {
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

/// Records an experiment run while mirroring its tables to stdout, then
/// writes the schema-versioned JSON report.
///
/// Table output through [`Report::header`] / [`Report::row`] is
/// byte-identical to the old `amt_bench::header` / `amt_bench::row` free
/// functions, so switching a binary over never changes its stdout.
pub struct Report {
    experiment: String,
    started: Instant,
    next_title: Option<String>,
    tables: Vec<Table>,
    config: Vec<(String, Json)>,
    metrics: Vec<(String, Json)>,
    phase_timings: Vec<(String, Json)>,
    timelines: Vec<(String, Json)>,
    profiles: Vec<(String, Json)>,
    recovery: Vec<(String, Json)>,
    shards: Vec<(String, Json)>,
    telemetry: Vec<(String, Json)>,
}

impl Report {
    /// Starts a report for the experiment id (the binary name, e.g.
    /// `"e11_boruvka_iters"`).
    pub fn new(experiment: &str) -> Report {
        Report {
            experiment: experiment.to_string(),
            started: Instant::now(),
            next_title: None,
            tables: Vec::new(),
            config: Vec::new(),
            metrics: Vec::new(),
            phase_timings: Vec::new(),
            timelines: Vec::new(),
            profiles: Vec::new(),
            recovery: Vec::new(),
            shards: Vec::new(),
            telemetry: Vec::new(),
        }
    }

    /// Names the next table opened by [`Report::header`] (otherwise tables
    /// are titled `table-1`, `table-2`, …). Prints nothing.
    pub fn section(&mut self, title: &str) {
        self.next_title = Some(title.to_string());
    }

    /// Records a configuration scalar (graph size, seed, sweep bounds, …).
    pub fn config(&mut self, key: &str, value: impl Into<Json>) {
        self.config.push((key.to_string(), value.into()));
    }

    /// Prints a markdown-style header plus separator (exactly like the
    /// `header` free function) and opens a new table in the report.
    pub fn header(&mut self, cells: &[&str]) {
        println!("| {} |", cells.join(" | "));
        println!(
            "|{}|",
            cells.iter().map(|_| "---").collect::<Vec<_>>().join("|")
        );
        let title = self
            .next_title
            .take()
            .unwrap_or_else(|| format!("table-{}", self.tables.len() + 1));
        self.tables.push(Table {
            title,
            columns: cells.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        });
    }

    /// Prints a markdown-style row (exactly like the `row` free function)
    /// and records it into the table opened by the last [`Report::header`].
    ///
    /// # Panics
    ///
    /// Panics if called before any [`Report::header`], or with a cell count
    /// that does not match the open table's columns — both are experiment
    /// bugs that would emit a schema-invalid report.
    pub fn row(&mut self, cells: &[String]) {
        println!("| {} |", cells.join(" | "));
        let table = self
            .tables
            .last_mut()
            .expect("Report::row before Report::header");
        assert_eq!(
            cells.len(),
            table.columns.len(),
            "row width does not match the open table"
        );
        table.rows.push(cells.to_vec());
    }

    /// Records a named [`Metrics`] (all counters, field by field).
    pub fn metrics(&mut self, name: &str, m: &Metrics) {
        self.metrics.push((
            name.to_string(),
            Json::Obj(vec![
                ("rounds".into(), m.rounds.into()),
                ("messages".into(), m.messages.into()),
                ("bits".into(), m.bits.into()),
                (
                    "peak_messages_per_round".into(),
                    m.peak_messages_per_round.into(),
                ),
                ("max_edge_congestion".into(), m.max_edge_congestion.into()),
                ("dropped".into(), m.dropped.into()),
                ("corrupted".into(), m.corrupted.into()),
                ("delayed".into(), m.delayed.into()),
                ("lost_to_crash".into(), m.lost_to_crash.into()),
                ("crashed".into(), m.crashed.into()),
                ("lost_to_churn".into(), m.lost_to_churn.into()),
                ("restarts".into(), m.restarts.into()),
            ]),
        ));
    }

    /// Records named wall-clock phase timings (one key per phase label,
    /// value in nanoseconds).
    pub fn phase_timings(&mut self, name: &str, t: &PhaseTimings) {
        self.phase_timings.push((
            name.to_string(),
            Json::Obj(
                t.entries()
                    .iter()
                    .map(|&(label, ns)| (label.to_string(), ns.into()))
                    .collect(),
            ),
        ));
    }

    /// Records a named [`RunTrace`] timeline summary (scalar aggregates of
    /// the per-round samples and event/snapshot stream sizes).
    pub fn timeline(&mut self, name: &str, trace: &RunTrace) {
        let m = trace.reconstruct_metrics();
        let mut fields: Vec<(String, Json)> = vec![
            ("rounds".into(), m.rounds.into()),
            ("samples".into(), trace.samples.len().into()),
            ("events".into(), trace.events.len().into()),
            ("snapshots".into(), trace.snapshots.len().into()),
            ("edge_load_stride".into(), trace.edge_load_stride.into()),
            ("messages".into(), m.messages.into()),
            ("bits".into(), m.bits.into()),
            (
                "peak_messages_per_round".into(),
                m.peak_messages_per_round.into(),
            ),
        ];
        // Schema 5 pins the final-round-snapshot guarantee: when the run
        // recorded any snapshots, the last one must be at the final round,
        // and the validator checks `final_snapshot_round == rounds`.
        if let Some(last) = trace.snapshots.last() {
            fields.push(("final_snapshot_round".into(), last.round.into()));
        }
        self.timelines.push((name.to_string(), Json::Obj(fields)));
    }

    /// Records a named [`TrafficProfile`] as per-class message/bit totals
    /// (the `profiles` section, schema version 2).
    pub fn profile(&mut self, name: &str, p: &TrafficProfile) {
        self.profiles.push((
            name.to_string(),
            Json::Obj(
                p.per_class
                    .iter()
                    .map(|s| {
                        (
                            s.class.to_string(),
                            Json::Obj(vec![
                                ("messages".into(), s.messages.into()),
                                ("bits".into(), s.bits.into()),
                            ]),
                        )
                    })
                    .collect(),
            ),
        ));
    }

    /// Records a named [`RecoveryTimeline`] as recovery-SLO scalars: closed
    /// span count, spans still open at run end, and the nearest-rank
    /// time-to-reconverge percentiles (the `recovery` section, schema
    /// version 3).
    pub fn recovery(&mut self, name: &str, t: &RecoveryTimeline) {
        let ttr = t.time_to_reconverge();
        self.recovery.push((
            name.to_string(),
            Json::Obj(vec![
                ("spans".into(), t.spans().len().into()),
                ("open".into(), t.open_count().into()),
                ("ttr_p50".into(), ttr.p50.into()),
                ("ttr_p95".into(), ttr.p95.into()),
                ("ttr_max".into(), ttr.max.into()),
            ]),
        ));
    }

    /// Records a named [`ShardSplit`] — intra- vs cross-shard counters of a
    /// recorded traffic profile under one node→shard placement, in total
    /// and per traffic class (the `shards` section, schema version 4).
    /// Counters only: derived ratios are for readers to compute, so the
    /// regression gate compares exact integers.
    pub fn shards(&mut self, name: &str, split: &ShardSplit) {
        let mut fields: Vec<(String, Json)> = vec![
            ("shards".into(), split.shards.into()),
            ("intra_messages".into(), split.intra_messages.into()),
            ("cross_messages".into(), split.cross_messages.into()),
            ("intra_bits".into(), split.intra_bits.into()),
            ("cross_bits".into(), split.cross_bits.into()),
        ];
        for c in &split.per_class {
            fields.push((
                c.class.to_string(),
                Json::Obj(vec![
                    ("intra_messages".into(), c.intra_messages.into()),
                    ("cross_messages".into(), c.cross_messages.into()),
                    ("intra_bits".into(), c.intra_bits.into()),
                    ("cross_bits".into(), c.cross_bits.into()),
                ]),
            ));
        }
        self.shards.push((name.to_string(), Json::Obj(fields)));
    }

    /// Records a named [`RunTelemetry`] as execution-health counters (the
    /// `telemetry` section, schema version 5). Logical counters only — per
    /// the telemetry contract they are thread-count- and
    /// placement-invariant, so the regression gate compares exact integers
    /// across worker counts. Per-shard wall-clock detail (straggler
    /// attribution, imbalance) is host measurement and deliberately stays
    /// out of the report; it lives in `sim_health` output, flight-recorder
    /// dumps, and the NDJSON stream.
    pub fn telemetry(&mut self, name: &str, t: &RunTelemetry) {
        self.telemetry.push((
            name.to_string(),
            Json::Obj(vec![
                ("rounds".into(), t.rounds.into()),
                (
                    "nodes_stepped".into(),
                    t.shard_nodes_stepped.iter().sum::<u64>().into(),
                ),
                (
                    "messages_staged".into(),
                    t.shard_messages_staged.iter().sum::<u64>().into(),
                ),
                ("active_nodes_hwm".into(), t.hwm.active_nodes.into()),
                ("inbox_queued_hwm".into(), t.hwm.inbox_queued.into()),
                ("staged_sends_hwm".into(), t.hwm.staged_sends.into()),
                ("wake_queue_hwm".into(), t.hwm.wake_queue.into()),
                ("arena_bytes_hwm".into(), t.hwm.arena_bytes.into()),
            ]),
        ));
    }

    fn to_json(&self) -> Json {
        let created = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map_or(0, |d| d.as_secs());
        Json::Obj(vec![
            ("schema_version".into(), SCHEMA_VERSION.into()),
            ("experiment".into(), self.experiment.clone().into()),
            ("git_describe".into(), git_describe().into()),
            ("created_unix".into(), created.into()),
            (
                "wall_seconds".into(),
                self.started.elapsed().as_secs_f64().into(),
            ),
            ("config".into(), Json::Obj(self.config.clone())),
            (
                "tables".into(),
                Json::Arr(
                    self.tables
                        .iter()
                        .map(|t| {
                            Json::Obj(vec![
                                ("title".into(), t.title.clone().into()),
                                (
                                    "columns".into(),
                                    Json::Arr(t.columns.iter().cloned().map(Json::Str).collect()),
                                ),
                                (
                                    "rows".into(),
                                    Json::Arr(
                                        t.rows
                                            .iter()
                                            .map(|r| {
                                                Json::Arr(
                                                    r.iter().cloned().map(Json::Str).collect(),
                                                )
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("metrics".into(), Json::Obj(self.metrics.clone())),
            (
                "phase_timings".into(),
                Json::Obj(self.phase_timings.clone()),
            ),
            ("timelines".into(), Json::Obj(self.timelines.clone())),
            ("profiles".into(), Json::Obj(self.profiles.clone())),
            ("recovery".into(), Json::Obj(self.recovery.clone())),
            ("shards".into(), Json::Obj(self.shards.clone())),
            ("telemetry".into(), Json::Obj(self.telemetry.clone())),
        ])
    }

    /// Writes `experiments_out/<experiment>.json` (directory overridable
    /// via `AMT_REPORT_DIR`), prints the path, and returns it.
    ///
    /// # Panics
    ///
    /// Panics if the report fails its own schema validation (a bug in this
    /// module) or the file cannot be written.
    pub fn finish(self) -> PathBuf {
        let json = self.to_json();
        // The emitted document must satisfy the schema the validator
        // enforces on CI; round-trip through the parser so the check covers
        // the encoder too.
        let round_tripped = parse(&json.render()).expect("emitted report must parse back");
        validate(&round_tripped).expect("emitted report must be schema-valid");
        let dir = std::env::var("AMT_REPORT_DIR").unwrap_or_else(|_| "experiments_out".into());
        std::fs::create_dir_all(&dir)
            .unwrap_or_else(|e| panic!("cannot create report dir {dir}: {e}"));
        let path = PathBuf::from(dir).join(format!("{}.json", self.experiment));
        std::fs::write(&path, json.render())
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        println!("\nreport: {}", path.display());
        path
    }
}

/// `git describe --always --dirty --tags` of the working tree, or
/// `"unknown"` outside a repository. Stamped into every report; the bench
/// suite also uses it to name its `BENCH_<describe>.json` artifact.
pub fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty", "--tags"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> Report {
        let mut r = Report::new("unit_test");
        r.config("n", 64u64);
        r.config("kind", "expander");
        r.config("strict", true);
        r.section("sweep");
        r.header(&["k", "rounds"]);
        r.row(&["1".into(), "10".into()]);
        r.row(&["2".into(), "17".into()]);
        r.metrics(
            "run",
            &Metrics {
                rounds: 10,
                messages: 40,
                bits: 400,
                ..Default::default()
            },
        );
        let mut t = PhaseTimings::new();
        t.record_nanos("prep", 1234);
        r.phase_timings("router", &t);
        r.timeline("run", &RunTrace::default());
        let mut traced = RunTrace {
            edge_load_stride: 2,
            ..RunTrace::default()
        };
        traced.samples.push(amt_congest::RoundSample {
            round: 3,
            messages: 5,
            bits: 50,
            ..Default::default()
        });
        traced.snapshots.push(amt_congest::trace::EdgeLoadSnapshot {
            round: 2,
            load: vec![1, 2],
        });
        traced.snapshots.push(amt_congest::trace::EdgeLoadSnapshot {
            round: 3,
            load: vec![2, 3],
        });
        r.timeline("snapshotted", &traced);
        let mut tp = TrafficProfile::empty(2);
        tp.per_class.push(amt_congest::ClassStats {
            class: amt_congest::class::WALK_TOKEN,
            messages: 3,
            bits: 30,
            timeline: Vec::new(),
            edge_messages: vec![2, 1],
            edge_bits: vec![20, 10],
        });
        r.profile("run", &tp);
        r.shards("run", &tp.shard_split(2, &[true, false]));
        let mut tl = RecoveryTimeline::new();
        tl.record_damage(3);
        tl.record_recovery(10);
        tl.record_damage(20);
        r.recovery("run", &tl);
        let telemetry = RunTelemetry {
            shards: 2,
            rounds: 10,
            hwm: amt_congest::GaugeHighWater {
                active_nodes: 64,
                inbox_queued: 32,
                staged_sends: 48,
                wake_queue: 4,
                arena_bytes: 4096,
            },
            shard_nodes_stepped: vec![30, 34],
            shard_messages_staged: vec![17, 23],
            ..RunTelemetry::default()
        };
        r.telemetry("run", &telemetry);
        r
    }

    #[test]
    fn report_round_trips_and_validates() {
        let json = sample_report().to_json();
        let text = json.render();
        let parsed = parse(&text).expect("parses");
        assert_eq!(parsed, json);
        validate(&parsed).expect("schema-valid");
        // Spot-check recorded structure survived the round trip.
        assert_eq!(
            parsed.get("experiment"),
            Some(&Json::Str("unit_test".into()))
        );
        let tables = match parsed.get("tables") {
            Some(Json::Arr(t)) => t,
            other => panic!("tables: {other:?}"),
        };
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].get("title"), Some(&Json::Str("sweep".into())));
        let totals = parsed
            .get("profiles")
            .and_then(|p| p.get("run"))
            .and_then(|r| r.get("walk/token"))
            .expect("profiles section survives the round trip");
        assert_eq!(totals.get("messages"), Some(&Json::Num(3.0)));
        assert_eq!(totals.get("bits"), Some(&Json::Num(30.0)));
        let rec = parsed
            .get("recovery")
            .and_then(|r| r.get("run"))
            .expect("recovery section survives the round trip");
        assert_eq!(rec.get("spans"), Some(&Json::Num(1.0)));
        assert_eq!(rec.get("open"), Some(&Json::Num(1.0)));
        assert_eq!(rec.get("ttr_max"), Some(&Json::Num(7.0)));
        let sh = parsed
            .get("shards")
            .and_then(|s| s.get("run"))
            .expect("shards section survives the round trip");
        assert_eq!(sh.get("shards"), Some(&Json::Num(2.0)));
        assert_eq!(sh.get("cross_messages"), Some(&Json::Num(2.0)));
        assert_eq!(sh.get("intra_messages"), Some(&Json::Num(1.0)));
        let class = sh
            .get("walk/token")
            .expect("per-class split survives the round trip");
        assert_eq!(class.get("cross_bits"), Some(&Json::Num(20.0)));
        let tel = parsed
            .get("telemetry")
            .and_then(|t| t.get("run"))
            .expect("telemetry section survives the round trip");
        assert_eq!(tel.get("nodes_stepped"), Some(&Json::Num(64.0)));
        assert_eq!(tel.get("messages_staged"), Some(&Json::Num(40.0)));
        assert_eq!(tel.get("arena_bytes_hwm"), Some(&Json::Num(4096.0)));
        let snap = parsed
            .get("timelines")
            .and_then(|t| t.get("snapshotted"))
            .expect("snapshotted timeline survives the round trip");
        assert_eq!(snap.get("edge_load_stride"), Some(&Json::Num(2.0)));
        assert_eq!(snap.get("final_snapshot_round"), Some(&Json::Num(3.0)));
    }

    #[test]
    fn validator_is_version_aware_about_profiles() {
        let good = sample_report().to_json();
        let Json::Obj(pairs) = &good else {
            unreachable!()
        };

        // A version-1 document legitimately has no profiles section.
        let mut v1: Vec<_> = pairs
            .iter()
            .filter(|(k, _)| {
                k != "profiles" && k != "recovery" && k != "shards" && k != "telemetry"
            })
            .cloned()
            .collect();
        v1[0].1 = Json::Num(1.0);
        validate(&Json::Obj(v1.clone())).expect("v1 without profiles is valid");

        // The same document claiming version 2 must carry the section.
        let mut v2_missing = v1;
        v2_missing[0].1 = Json::Num(2.0);
        assert!(validate(&Json::Obj(v2_missing)).is_err());

        // Future versions are rejected until the validator learns them.
        let mut future = pairs.clone();
        future[0].1 = Json::Num((SCHEMA_VERSION + 1) as f64);
        assert!(validate(&Json::Obj(future)).is_err());

        // A malformed class entry is caught.
        let mut bad = pairs.clone();
        for (k, v) in &mut bad {
            if k == "profiles" {
                *v = Json::Obj(vec![(
                    "run".into(),
                    Json::Obj(vec![("walk/token".into(), "lots".into())]),
                )]);
            }
        }
        assert!(validate(&Json::Obj(bad)).is_err());
    }

    #[test]
    fn validator_is_version_aware_about_recovery() {
        let good = sample_report().to_json();
        let Json::Obj(pairs) = &good else {
            unreachable!()
        };

        // A version-2 document legitimately has no recovery section.
        let mut v2: Vec<_> = pairs
            .iter()
            .filter(|(k, _)| k != "recovery")
            .cloned()
            .collect();
        v2[0].1 = Json::Num(2.0);
        validate(&Json::Obj(v2.clone())).expect("v2 without recovery is valid");

        // The same document claiming version 3 must carry the section.
        let mut v3_missing = v2;
        v3_missing[0].1 = Json::Num(3.0);
        assert!(validate(&Json::Obj(v3_missing)).is_err());

        // A recovery entry missing a required percentile is caught.
        let mut bad = pairs.clone();
        for (k, v) in &mut bad {
            if k == "recovery" {
                *v = Json::Obj(vec![(
                    "run".into(),
                    Json::Obj(vec![("spans".into(), 1u64.into())]),
                )]);
            }
        }
        assert!(validate(&Json::Obj(bad)).is_err());
    }

    #[test]
    fn validator_is_version_aware_about_shards() {
        let good = sample_report().to_json();
        let Json::Obj(pairs) = &good else {
            unreachable!()
        };

        // A version-3 document legitimately has no shards section.
        let mut v3: Vec<_> = pairs
            .iter()
            .filter(|(k, _)| k != "shards")
            .cloned()
            .collect();
        v3[0].1 = Json::Num(3.0);
        validate(&Json::Obj(v3.clone())).expect("v3 without shards is valid");

        // The same document claiming version 4 must carry the section.
        let mut v4_missing = v3;
        v4_missing[0].1 = Json::Num(4.0);
        assert!(validate(&Json::Obj(v4_missing)).is_err());

        // A shards entry missing a required counter is caught.
        let mut bad = pairs.clone();
        for (k, v) in &mut bad {
            if k == "shards" {
                *v = Json::Obj(vec![(
                    "run".into(),
                    Json::Obj(vec![("shards".into(), 4u64.into())]),
                )]);
            }
        }
        assert!(validate(&Json::Obj(bad)).is_err());

        // A malformed per-class entry is caught.
        let mut bad_class = pairs.clone();
        for (k, v) in &mut bad_class {
            if k == "shards" {
                *v = Json::Obj(vec![(
                    "run".into(),
                    Json::Obj(vec![
                        ("shards".into(), 2u64.into()),
                        ("intra_messages".into(), 1u64.into()),
                        ("cross_messages".into(), 2u64.into()),
                        ("intra_bits".into(), 10u64.into()),
                        ("cross_bits".into(), 20u64.into()),
                        (
                            "walk/token".into(),
                            Json::Obj(vec![("cross_messages".into(), "lots".into())]),
                        ),
                    ]),
                )]);
            }
        }
        assert!(validate(&Json::Obj(bad_class)).is_err());
    }

    #[test]
    fn validator_is_version_aware_about_telemetry() {
        let good = sample_report().to_json();
        let Json::Obj(pairs) = &good else {
            unreachable!()
        };

        // A version-4 document legitimately has no telemetry section.
        let mut v4: Vec<_> = pairs
            .iter()
            .filter(|(k, _)| k != "telemetry")
            .cloned()
            .collect();
        v4[0].1 = Json::Num(4.0);
        validate(&Json::Obj(v4.clone())).expect("v4 without telemetry is valid");

        // The same document claiming version 5 must carry the section.
        let mut v5_missing = v4;
        v5_missing[0].1 = Json::Num(5.0);
        assert!(validate(&Json::Obj(v5_missing)).is_err());

        // A telemetry entry missing a required gauge is caught.
        let mut bad = pairs.clone();
        for (k, v) in &mut bad {
            if k == "telemetry" {
                *v = Json::Obj(vec![(
                    "run".into(),
                    Json::Obj(vec![("rounds".into(), 10u64.into())]),
                )]);
            }
        }
        assert!(validate(&Json::Obj(bad)).is_err());
    }

    #[test]
    fn validator_enforces_final_snapshot_round_from_v5() {
        let good = sample_report().to_json();
        let Json::Obj(pairs) = &good else {
            unreachable!()
        };

        // A snapshotted timeline whose last snapshot is not the final round
        // violates the PR 5 guarantee — rejected at schema 5...
        let mut torn = pairs.clone();
        for (k, v) in &mut torn {
            if k == "timelines" {
                *v = Json::Obj(vec![(
                    "run".into(),
                    Json::Obj(vec![
                        ("rounds".into(), 10u64.into()),
                        ("snapshots".into(), 2u64.into()),
                        ("final_snapshot_round".into(), 8u64.into()),
                    ]),
                )]);
            }
        }
        assert!(validate(&Json::Obj(torn.clone())).is_err());

        // ...as is one that recorded snapshots but never said where the
        // series ended.
        let mut silent = pairs.clone();
        for (k, v) in &mut silent {
            if k == "timelines" {
                *v = Json::Obj(vec![(
                    "run".into(),
                    Json::Obj(vec![
                        ("rounds".into(), 10u64.into()),
                        ("snapshots".into(), 2u64.into()),
                    ]),
                )]);
            }
        }
        assert!(validate(&Json::Obj(silent)).is_err());

        // Pre-5 artifacts predate the key; the same shape claiming v4 is
        // untouched by the check.
        let mut v4 = torn;
        v4[0].1 = Json::Num(4.0);
        let v4: Vec<_> = v4.into_iter().filter(|(k, _)| k != "telemetry").collect();
        validate(&Json::Obj(v4)).expect("v4 is exempt from the snapshot check");
    }

    #[test]
    fn validator_rejects_structural_damage() {
        let good = sample_report().to_json();
        let Json::Obj(pairs) = &good else {
            unreachable!()
        };

        // Missing a required key.
        let missing: Vec<_> = pairs
            .iter()
            .filter(|(k, _)| k != "metrics")
            .cloned()
            .collect();
        assert!(validate(&Json::Obj(missing)).is_err());

        // Wrong schema version.
        let mut wrong_version = pairs.clone();
        wrong_version[0].1 = Json::Num(99.0);
        assert!(validate(&Json::Obj(wrong_version)).is_err());

        // Ragged table row.
        let mut ragged = pairs.clone();
        for (k, v) in &mut ragged {
            if k == "tables" {
                *v = Json::Arr(vec![Json::Obj(vec![
                    ("title".into(), "t".into()),
                    ("columns".into(), Json::Arr(vec!["a".into(), "b".into()])),
                    (
                        "rows".into(),
                        Json::Arr(vec![Json::Arr(vec!["only-one".into()])]),
                    ),
                ])]);
            }
        }
        assert!(validate(&Json::Obj(ragged)).is_err());

        // Non-numeric metric field.
        let mut bad_metric = pairs.clone();
        for (k, v) in &mut bad_metric {
            if k == "metrics" {
                *v = Json::Obj(vec![(
                    "m".into(),
                    Json::Obj(vec![("rounds".into(), "ten".into())]),
                )]);
            }
        }
        assert!(validate(&Json::Obj(bad_metric)).is_err());
    }

    #[test]
    fn parser_handles_escapes_and_rejects_garbage() {
        let tricky = Json::Obj(vec![(
            "k\"ey\\".into(),
            Json::Str("line1\nline2\tβ → done \u{1}".into()),
        )]);
        let text = tricky.render();
        assert_eq!(parse(&text).expect("parses"), tricky);

        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("01a").is_err());
        assert_eq!(
            parse(" [1, -2.5e3] ").unwrap(),
            Json::Arr(vec![Json::Num(1.0), Json::Num(-2500.0)])
        );
    }

    #[test]
    fn numbers_encode_integers_exactly() {
        assert_eq!(Json::Num(5.0).render(), "5\n");
        assert_eq!(Json::Num(2.5).render(), "2.5\n");
        assert_eq!(Json::Num(f64::NAN).render(), "null\n");
    }
}
