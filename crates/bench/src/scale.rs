//! The scaling-tier workload shared by `bench_suite` (which gates its
//! counters) and `sim_health` (which analyzes its execution health).
//!
//! A `SPARSE_AWARE` mix of mail-driven random token forwarding (class
//! `scale/token`) and timer-driven beacon bursts (class `scale/beacon`).
//! Only a fraction of nodes is active in any round, so the threaded
//! stepper's placement decides how much of the traffic crosses shard
//! boundaries without changing a single observable bit.

use amt_core::congest::{Ctx, Protocol, TrafficClass};
use amt_core::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// One node of the scaling-tier workload; see the module docs.
pub struct ScaleNode {
    beacons_left: u32,
    next_fire: u64,
    /// Order-sensitive digest of everything this node received — the
    /// cheapest observable that catches any cross-thread reordering.
    pub digest: u64,
}

impl Protocol for ScaleNode {
    type Message = u32;

    const SPARSE_AWARE: bool = true;
    const TRAFFIC_CLASS: TrafficClass = "scale/token";

    fn init(&mut self, ctx: &mut Ctx<'_, u32>) {
        // Chung–Lu instances may contain isolated nodes — they launch
        // nothing (and can never receive anything).
        let degree = ctx.degree();
        if ctx.node().index() % 5 == 0 && degree > 0 {
            let port = ctx.rng().random_range(0..degree);
            ctx.send(port, 12);
        }
        if self.beacons_left > 0 {
            self.next_fire = ctx.round() + 6;
            ctx.wake_in(6);
        }
    }

    fn round(&mut self, ctx: &mut Ctx<'_, u32>, inbox: &[(usize, u32)]) {
        let degree = ctx.degree();
        // (port, hops, is_beacon); beacons are staged last so a token wins
        // the one-message-per-port dedup deterministically.
        let mut staged: Vec<(usize, u32, bool)> = Vec::new();
        for &(port, hops) in inbox {
            self.digest = self
                .digest
                .wrapping_mul(1_000_003)
                .wrapping_add(((port as u64) << 32) | (u64::from(hops) + 1));
            if hops > 0 && ctx.rng().random_bool(0.8) {
                staged.push((ctx.rng().random_range(0..degree), hops - 1, false));
            }
        }
        if self.beacons_left > 0 && ctx.round() == self.next_fire {
            self.beacons_left -= 1;
            for port in 0..degree {
                staged.push((port, 3, true));
            }
            if self.beacons_left > 0 {
                self.next_fire = ctx.round() + 6;
                ctx.wake_in(6);
            }
        }
        staged.sort_by_key(|&(p, _, _)| p);
        staged.dedup_by_key(|&mut (p, _, _)| p);
        for (port, hops, beacon) in staged {
            if beacon {
                ctx.send_classed(port, hops, "scale/beacon");
            } else {
                ctx.send(port, hops);
            }
        }
    }

    fn is_done(&self) -> bool {
        self.beacons_left == 0
    }
}

/// The pinned fleet: every 32nd node carries three beacon bursts.
pub fn scale_fleet(n: usize) -> Vec<ScaleNode> {
    (0..n)
        .map(|v| ScaleNode {
            beacons_left: if v % 32 == 0 { 3 } else { 0 },
            next_fire: 0,
            digest: 0,
        })
        .collect()
}

/// The dumbbell generator lays its two expander halves out contiguously
/// (ids `0..k` and `k..2k`), which a contiguous placement splits for free.
/// Interleaving the ids (`v < k → 2v`, else `2(v−k)+1`) makes contiguous
/// sharding the worst case while a spectral placement can still recover
/// the halves — the shape the scaling tier's acceptance assert is about.
pub fn interleaved_dumbbell(k: usize, d: usize, bridges: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = generators::dumbbell_expanders(k, d, bridges, &mut rng).expect("valid dumbbell");
    let relabel = |v: usize| if v < k { 2 * v } else { 2 * (v - k) + 1 };
    let mut b = GraphBuilder::new(2 * k);
    for (_, u, v) in g.edges() {
        b.add_edge(relabel(u.index()), relabel(v.index()));
    }
    b.build()
}

/// The three pinned 2048-node scaling-tier instances: random 6-regular
/// expander, id-interleaved dumbbell of two expander halves, heavy-tailed
/// Chung–Lu.
pub fn scaling_instances() -> Vec<(&'static str, Graph)> {
    let chung_lu = {
        let weights: Vec<f64> = (0..2048).map(|v| 8.0 / ((v + 1) as f64).sqrt()).collect();
        let mut rng = StdRng::seed_from_u64(6);
        generators::chung_lu(&weights, &mut rng).expect("valid weights")
    };
    vec![
        ("scale_expander_n2048", crate::expander(2048, 6, 1)),
        ("scale_dumbbell_n2048", interleaved_dumbbell(1024, 6, 4, 5)),
        ("scale_chunglu_n2048", chung_lu),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instances_are_pinned_and_sized() {
        let a = scaling_instances();
        let b = scaling_instances();
        assert_eq!(a.len(), 3);
        for ((name_a, g_a), (name_b, g_b)) in a.iter().zip(&b) {
            assert_eq!(name_a, name_b);
            assert_eq!(g_a, g_b, "{name_a} not reproducible");
            assert_eq!(g_a.len(), 2048);
        }
    }

    #[test]
    fn fleet_terminates_deterministically() {
        let g = crate::expander(128, 4, 9);
        let mut sim = amt_core::congest::Simulator::new(&g, scale_fleet(g.len()), 77)
            .expect("fleet size matches");
        let m = sim
            .run(&amt_core::congest::RunConfig::all_done())
            .expect("terminates");
        assert!(m.rounds > 0 && m.messages > 0);
    }
}
