//! Deterministic topology churn for the simulator.
//!
//! Where [`crate::faults`] perturbs individual *messages*, a [`ChurnPlan`]
//! perturbs the *topology itself* over time: edges go down and come back on
//! per-edge schedules (explicit intervals, periodic outages, or
//! Poisson-like flapping driven by a counter PRF), and nodes crash-*restart*
//! — they go offline for a bounded number of rounds, lose their volatile
//! state, and rejoin (see [`crate::Protocol::on_restart`]).
//!
//! The same determinism discipline as the fault layer applies, and for the
//! same reason (the multi-threaded executor): every churn verdict is a pure
//! function of `(churn seed, round, edge)` or `(plan, round, node)` —
//! whether an edge is up in round `r` never depends on sampling order,
//! thread count, or node-visit order. A trivial plan (see
//! [`ChurnPlan::is_trivial`]) leaves every run bit-for-bit identical to a
//! churn-free run.
//!
//! Churn semantics, applied at the coordinator's merge alongside fault
//! sampling:
//!
//! * a message staged over a **down edge** is lost ([`Metrics::lost_to_churn`],
//!   with a [`ChurnKind::MessageLost`] event);
//! * a message whose **destination is offline** in the staging round is
//!   lost the same way (its crash-restart loses the inbox anyway);
//! * a fault-**delayed** message whose destination or edge is down when the
//!   delay elapses is lost;
//! * an **offline node** executes no protocol steps and counts as done; at
//!   the first round after the outage the executor calls
//!   [`crate::Protocol::on_restart`] instead of `round` so the protocol can
//!   model state loss. The node's RNG stream survives the outage
//!   (determinism: draws stay a function of `(seed, node, draw index)`).
//!
//! Protocols observe link state through [`crate::Ctx::link_up`] and route
//! around dead edges; the healing drivers in `amt-walks` / `amt-mst` use
//! epoch- and phase-level retry with capped exponential backoff on top.

use amt_graphs::{EdgeId, NodeId};

use crate::faults::{splitmix, unit};
use crate::{CongestError, Metrics, Result};

/// One explicit edge-outage schedule.
///
/// The edge is down in `[first_down, first_down + down_for)` and, when
/// `period > 0`, again in every later window shifted by a multiple of
/// `period`. `down_for == u64::MAX` with `period == 0` is a permanent cut
/// from `first_down` on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EdgeOutage {
    /// The edge this schedule applies to.
    pub edge: EdgeId,
    /// First round (global clock, see [`ChurnPlan::round_offset`]) in which
    /// the edge is down.
    pub first_down: u64,
    /// Rounds per outage (`u64::MAX` = never comes back).
    pub down_for: u64,
    /// Repetition period (`0` = a single outage).
    pub period: u64,
}

/// One scheduled crash-restart: `node` goes offline at the start of
/// `round`, stays down for `down_for` rounds, and rejoins with state loss
/// at `round + down_for`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RestartEvent {
    /// The node that restarts.
    pub node: NodeId,
    /// First round (global clock) of the outage.
    pub round: u64,
    /// Rounds offline (≥ 1).
    pub down_for: u64,
}

/// Declarative topology-churn configuration for one simulator run.
///
/// Constructed with [`ChurnPlan::none`] plus the `with_*` builders; an
/// all-zero plan is treated exactly like no plan at all. All schedules are
/// expressed on a *global clock*: multi-phase drivers re-run the simulator
/// with [`ChurnPlan::at_offset`] so the same plan describes one continuous
/// timeline across epochs and phases.
#[derive(Clone, Debug, PartialEq)]
pub struct ChurnPlan {
    /// Seed of the churn PRF (independent of the protocol RNG and of the
    /// fault PRF).
    pub seed: u64,
    /// Per-window probability that any given edge is down for a whole flap
    /// window (Poisson-like flapping; `0` disables).
    pub flap_prob: f64,
    /// Flap window length in rounds (each edge resamples its up/down state
    /// once per window; `0` disables flapping).
    pub flap_len: u64,
    /// Explicit per-edge outage schedules.
    pub outages: Vec<EdgeOutage>,
    /// Scheduled crash-restarts.
    pub restarts: Vec<RestartEvent>,
    /// Added to the executor's local round number before every verdict, so
    /// a driver that re-runs the simulator per phase keeps the plan's
    /// global timeline (mirrors the fault layer's per-phase seed shifting).
    pub round_offset: u64,
}

impl ChurnPlan {
    /// The empty plan: no churn, costs nothing observable.
    pub fn none() -> Self {
        ChurnPlan {
            seed: 0,
            flap_prob: 0.0,
            flap_len: 0,
            outages: Vec::new(),
            restarts: Vec::new(),
            round_offset: 0,
        }
    }

    /// Sets the churn PRF seed.
    pub fn seeded(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables PRF-driven flapping: every edge is down with probability `p`
    /// in each window of `window` rounds.
    ///
    /// A combination that can never fire (`p == 0` or `window == 0`) is
    /// normalized to `(0.0, 0)` so equivalent plans compare equal and pick
    /// the same executor path (the [`crate::FaultPlan::with_delays`]
    /// convention).
    pub fn with_flaps(mut self, p: f64, window: u64) -> Self {
        if p == 0.0 || window == 0 {
            self.flap_prob = 0.0;
            self.flap_len = 0;
        } else {
            self.flap_prob = p;
            self.flap_len = window;
        }
        self
    }

    /// Schedules an explicit edge outage (see [`EdgeOutage`]).
    pub fn with_edge_outage(mut self, edge: EdgeId, first_down: u64, down_for: u64) -> Self {
        self.outages.push(EdgeOutage {
            edge,
            first_down,
            down_for,
            period: 0,
        });
        self
    }

    /// Schedules a periodic edge outage: down for `down_for` rounds out of
    /// every `period`, starting at `first_down`.
    pub fn with_periodic_outage(
        mut self,
        edge: EdgeId,
        first_down: u64,
        down_for: u64,
        period: u64,
    ) -> Self {
        self.outages.push(EdgeOutage {
            edge,
            first_down,
            down_for,
            period,
        });
        self
    }

    /// Cuts `edge` permanently from round `from` on.
    pub fn with_edge_cut(mut self, edge: EdgeId, from: u64) -> Self {
        self.outages.push(EdgeOutage {
            edge,
            first_down: from,
            down_for: u64::MAX,
            period: 0,
        });
        self
    }

    /// Schedules a crash-restart of `node` at `round`, offline for
    /// `down_for` rounds.
    pub fn with_restart(mut self, node: NodeId, round: u64, down_for: u64) -> Self {
        self.restarts.push(RestartEvent {
            node,
            round,
            down_for,
        });
        self
    }

    /// The same plan with its global clock advanced by `offset` rounds:
    /// every verdict for local round `r` is taken at `r + offset`.
    pub fn at_offset(mut self, offset: u64) -> Self {
        self.round_offset = offset;
        self
    }

    /// `true` when the plan can never change the topology (treated as no
    /// plan at all).
    ///
    /// The `flap_len` guard covers plans whose fields were set directly,
    /// bypassing the normalizing [`ChurnPlan::with_flaps`] builder.
    pub fn is_trivial(&self) -> bool {
        (self.flap_prob == 0.0 || self.flap_len == 0)
            && self.outages.is_empty()
            && self.restarts.is_empty()
    }

    /// The round from which `edge` is *permanently* down, if any schedule
    /// cuts it for good (periodic and PRF-flapped outages are transient).
    /// Drivers use this to distinguish "route around it later" from
    /// "partitioned for good".
    pub fn edge_cut_round(&self, edge: EdgeId) -> Option<u64> {
        self.outages
            .iter()
            .filter(|o| o.edge == edge && o.period == 0 && o.down_for == u64::MAX)
            .map(|o| o.first_down)
            .min()
    }

    /// Checks probabilities and schedule targets against a graph with `n`
    /// nodes and `m` edges.
    ///
    /// # Errors
    ///
    /// [`CongestError::FaultPlanInvalid`] naming the offending field.
    pub fn validate(&self, n: usize, m: usize) -> Result<()> {
        if !(0.0..=1.0).contains(&self.flap_prob) {
            return Err(CongestError::FaultPlanInvalid {
                reason: format!("flap_prob = {} is not a probability", self.flap_prob),
            });
        }
        if self.flap_prob > 0.0 && self.flap_len == 0 {
            return Err(CongestError::FaultPlanInvalid {
                reason: "flap_prob > 0 requires flap_len >= 1".into(),
            });
        }
        for o in &self.outages {
            if o.edge.index() >= m {
                return Err(CongestError::FaultPlanInvalid {
                    reason: format!("outage edge {} out of range for {m} edges", o.edge),
                });
            }
            if o.down_for == 0 {
                return Err(CongestError::FaultPlanInvalid {
                    reason: format!("outage on edge {} has down_for = 0", o.edge),
                });
            }
            if o.period > 0 && o.down_for >= o.period {
                return Err(CongestError::FaultPlanInvalid {
                    reason: format!(
                        "periodic outage on edge {} never comes up (down_for {} >= period {})",
                        o.edge, o.down_for, o.period
                    ),
                });
            }
        }
        for r in &self.restarts {
            if r.node.index() >= n {
                return Err(CongestError::FaultPlanInvalid {
                    reason: format!("restart target {} out of range for {n} nodes", r.node),
                });
            }
            if r.down_for == 0 {
                return Err(CongestError::FaultPlanInvalid {
                    reason: format!("restart of node {} has down_for = 0", r.node),
                });
            }
        }
        Ok(())
    }

    /// Precomputes the per-run schedule tables (the churn analogue of
    /// [`crate::FaultPlan`]'s `crash_rounds` normalization): per-edge
    /// explicit outage lists and per-node merged offline intervals, computed
    /// once and shared read-only with the executor's workers.
    pub(crate) fn normalize(&self, n: usize, m: usize) -> ChurnSchedule {
        let mut per_edge: Vec<Vec<(u64, u64, u64)>> = vec![Vec::new(); m];
        for o in &self.outages {
            per_edge[o.edge.index()].push((o.first_down, o.down_for, o.period));
        }
        for entries in &mut per_edge {
            entries.sort_unstable();
        }
        // Merge overlapping node outages so "rejoins at r" is unambiguous.
        let mut raw: Vec<Vec<(u64, u64)>> = vec![Vec::new(); n];
        for r in &self.restarts {
            raw[r.node.index()].push((r.round, r.round.saturating_add(r.down_for)));
        }
        let node_outages = raw
            .into_iter()
            .map(|mut iv| {
                iv.sort_unstable();
                let mut merged: Vec<(u64, u64)> = Vec::with_capacity(iv.len());
                for (d, u) in iv {
                    match merged.last_mut() {
                        Some(last) if d <= last.1 => last.1 = last.1.max(u),
                        _ => merged.push((d, u)),
                    }
                }
                merged
            })
            .collect();
        ChurnSchedule {
            seed: self.seed,
            flap_prob: self.flap_prob,
            flap_len: self.flap_len,
            offset: self.round_offset,
            per_edge,
            node_outages,
        }
    }
}

/// One PRF word as a pure function of `(churn seed, flap window, edge)` —
/// the same splitmix-chain construction as the fault layer's
/// `message_draw`, with its own odd multipliers so the two streams never
/// collide even under equal seeds.
fn flap_draw(seed: u64, window: u64, edge: u64) -> u64 {
    let mut z = splitmix(seed ^ 0xD6E8_FEB8_6659_FD93);
    z = splitmix(z ^ window.wrapping_mul(0xC2B2_AE3D_27D4_EB4F));
    splitmix(z ^ edge.wrapping_mul(0x9E6C_63D0_876A_339B))
}

/// The normalized, read-only schedule one run consults. All methods are
/// pure functions of `(schedule, round, id)`; the executor's workers share
/// it by reference.
#[derive(Debug)]
pub(crate) struct ChurnSchedule {
    seed: u64,
    flap_prob: f64,
    flap_len: u64,
    offset: u64,
    /// `(first_down, down_for, period)` entries per edge id, sorted.
    per_edge: Vec<Vec<(u64, u64, u64)>>,
    /// Merged, sorted `[down, up)` offline intervals per node id.
    node_outages: Vec<Vec<(u64, u64)>>,
}

impl ChurnSchedule {
    /// Whether `edge` is down in local round `round`.
    pub(crate) fn edge_down(&self, round: u64, edge: usize) -> bool {
        let g = round + self.offset;
        if self.flap_len > 0
            && unit(flap_draw(self.seed, g / self.flap_len, edge as u64)) < self.flap_prob
        {
            return true;
        }
        self.per_edge[edge]
            .iter()
            .any(|&(first, down_for, period)| {
                if g < first {
                    return false;
                }
                let rel = g - first;
                if period == 0 {
                    rel < down_for
                } else {
                    rel % period < down_for
                }
            })
    }

    /// Whether `v` is offline in local round `round`.
    pub(crate) fn node_down(&self, round: u64, v: usize) -> bool {
        let g = round + self.offset;
        self.node_outages[v].iter().any(|&(d, u)| d <= g && g < u)
    }

    /// Whether `v` rejoins exactly at local round `round` (its outage ended
    /// at the global round `round` maps to). The executor calls
    /// [`crate::Protocol::on_restart`] in this round.
    pub(crate) fn rejoining(&self, round: u64, v: usize) -> bool {
        let g = round + self.offset;
        g > 0 && self.node_outages[v].iter().any(|&(_, u)| u == g)
    }

    /// Nodes offline in local round `round`.
    pub(crate) fn down_count(&self, round: u64) -> u64 {
        (0..self.node_outages.len())
            .filter(|&v| self.node_down(round, v))
            .count() as u64
    }

    /// Edge ids whose up/down state can ever change (all edges when
    /// flapping is on, else just the explicitly scheduled ones).
    fn tracked_edges(&self) -> Vec<u32> {
        if self.flap_len > 0 {
            (0..self.per_edge.len() as u32).collect()
        } else {
            (0..self.per_edge.len() as u32)
                .filter(|&e| !self.per_edge[e as usize].is_empty())
                .collect()
        }
    }

    /// Node ids with at least one scheduled outage.
    fn tracked_nodes(&self) -> Vec<u32> {
        (0..self.node_outages.len() as u32)
            .filter(|&v| !self.node_outages[v as usize].is_empty())
            .collect()
    }

    /// `(local_round, node)` pairs at which a node *enters* an outage —
    /// i.e. the first local round `r` with [`Self::node_down`]`(r, v)` true
    /// for that interval. Used by the active-set engine to retire offline
    /// nodes from its liveness counter without polling every node each
    /// round. Outages already in progress at local round 0 report round 0;
    /// intervals entirely before local time (or empty) are dropped.
    pub(crate) fn down_events(&self) -> Vec<(u64, u32)> {
        let mut out = Vec::new();
        for (v, outages) in self.node_outages.iter().enumerate() {
            for &(d, u) in outages {
                if u <= self.offset || d >= u {
                    continue;
                }
                out.push((d.saturating_sub(self.offset), v as u32));
            }
        }
        out
    }

    /// `(local_round, node)` pairs at which [`Self::rejoining`] fires —
    /// exactly the rounds where the executor runs
    /// [`crate::Protocol::on_restart`]. Used by the active-set engine to
    /// wake rejoining nodes. Mirrors `rejoining` precisely: an interval
    /// whose `up` lands at or before local round 0 never fires (round 0 is
    /// `init`'s, in both engines).
    pub(crate) fn rejoin_events(&self) -> Vec<(u64, u32)> {
        let mut out = Vec::new();
        for (v, outages) in self.node_outages.iter().enumerate() {
            for &(_, u) in outages {
                if u <= self.offset {
                    continue;
                }
                out.push((u - self.offset, v as u32));
            }
        }
        out
    }
}

/// What one churn transition or loss did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChurnKind {
    /// An edge went down at the start of this round.
    EdgeDown {
        /// The edge that went down.
        edge: EdgeId,
    },
    /// An edge came back up at the start of this round.
    EdgeUp {
        /// The edge that recovered.
        edge: EdgeId,
    },
    /// A node went offline (crash-restart outage began).
    NodeDown {
        /// The node that went offline.
        node: NodeId,
    },
    /// A node rejoined after an outage (with state loss; counted in
    /// [`Metrics::restarts`]).
    NodeRejoin {
        /// The node that rejoined.
        node: NodeId,
    },
    /// A staged or delay-released message was lost to a down edge or an
    /// offline destination; `node`/`port` identify the sender.
    MessageLost {
        /// The sending node.
        node: NodeId,
        /// The sending port.
        port: usize,
    },
}

/// One churn transition or loss, for the run's churn-event log.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChurnEvent {
    /// Round in which the transition took effect (local clock).
    pub round: u64,
    /// What happened.
    pub kind: ChurnKind,
}

/// How the executor consults topology churn, round by round and message by
/// message. The churn-free path uses the inert [`NoChurn`] implementation,
/// which monomorphizes every hook call away; the churned path uses
/// [`ChurnState`]. Verdict methods take `&self`: pure functions of the
/// plan's timeline, never of sampling order.
pub(crate) trait ChurnHook {
    /// Emits up/down transition events for this round and accounts node
    /// rejoins in `metrics.restarts`.
    fn begin_round(&mut self, round: u64, metrics: &mut Metrics);

    /// Whether `v` is offline in `round`.
    fn node_down(&self, round: u64, v: usize) -> bool;

    /// Whether `edge` is down in `round`.
    fn edge_down(&self, round: u64, edge: usize) -> bool;

    /// Accounts one message lost to churn and logs the event.
    fn record_loss(&mut self, round: u64, src: usize, port: usize, metrics: &mut Metrics);

    /// Nodes offline in `round` (for the availability timeline).
    fn down_count(&self, round: u64) -> u64;
}

/// The churn hook of the churn-free path: the topology never changes. All
/// methods are trivially inlinable, so the unified engine compiled against
/// `NoChurn` is the exact static-topology executor.
pub(crate) struct NoChurn;

impl ChurnHook for NoChurn {
    fn begin_round(&mut self, _round: u64, _metrics: &mut Metrics) {}

    fn node_down(&self, _round: u64, _v: usize) -> bool {
        false
    }

    fn edge_down(&self, _round: u64, _edge: usize) -> bool {
        false
    }

    fn record_loss(&mut self, _round: u64, _src: usize, _port: usize, _metrics: &mut Metrics) {
        unreachable!("NoChurn never loses a message")
    }

    fn down_count(&self, _round: u64) -> u64 {
        0
    }
}

/// Runtime churn state borrowed by one `Simulator::run` invocation: the
/// normalized schedule, the previous round's up/down view (for transition
/// events), and the event log. The verdicts themselves are stateless
/// schedule lookups.
pub(crate) struct ChurnState<'p> {
    sched: &'p ChurnSchedule,
    /// Edges that can ever change state, in id order.
    tracked_edges: Vec<u32>,
    /// Nodes with scheduled outages, in id order.
    tracked_nodes: Vec<u32>,
    edge_was_down: Vec<bool>,
    node_was_down: Vec<bool>,
    pub(crate) events: Vec<ChurnEvent>,
}

impl<'p> ChurnState<'p> {
    pub(crate) fn new(sched: &'p ChurnSchedule) -> Self {
        let tracked_edges = sched.tracked_edges();
        let tracked_nodes = sched.tracked_nodes();
        ChurnState {
            edge_was_down: vec![false; tracked_edges.len()],
            node_was_down: vec![false; tracked_nodes.len()],
            tracked_edges,
            tracked_nodes,
            sched,
            events: Vec::new(),
        }
    }
}

impl ChurnHook for ChurnState<'_> {
    /// Diffs this round's topology against the previous round's, logging
    /// every transition in (edges, then nodes, ascending id) order — a
    /// deterministic stream whatever the worker-thread count.
    fn begin_round(&mut self, round: u64, metrics: &mut Metrics) {
        for (i, &e) in self.tracked_edges.iter().enumerate() {
            let down = self.sched.edge_down(round, e as usize);
            if down != self.edge_was_down[i] {
                self.edge_was_down[i] = down;
                let edge = EdgeId(e);
                self.events.push(ChurnEvent {
                    round,
                    kind: if down {
                        ChurnKind::EdgeDown { edge }
                    } else {
                        ChurnKind::EdgeUp { edge }
                    },
                });
            }
        }
        for (i, &v) in self.tracked_nodes.iter().enumerate() {
            let down = self.sched.node_down(round, v as usize);
            if down != self.node_was_down[i] {
                self.node_was_down[i] = down;
                let node = NodeId(v);
                if down {
                    self.events.push(ChurnEvent {
                        round,
                        kind: ChurnKind::NodeDown { node },
                    });
                } else {
                    metrics.restarts += 1;
                    self.events.push(ChurnEvent {
                        round,
                        kind: ChurnKind::NodeRejoin { node },
                    });
                }
            }
        }
    }

    fn node_down(&self, round: u64, v: usize) -> bool {
        self.sched.node_down(round, v)
    }

    fn edge_down(&self, round: u64, edge: usize) -> bool {
        self.sched.edge_down(round, edge)
    }

    fn record_loss(&mut self, round: u64, src: usize, port: usize, metrics: &mut Metrics) {
        metrics.lost_to_churn += 1;
        self.events.push(ChurnEvent {
            round,
            kind: ChurnKind::MessageLost {
                node: NodeId::from(src),
                port,
            },
        });
    }

    fn down_count(&self, round: u64) -> u64 {
        self.sched.down_count(round)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_plan_detection() {
        assert!(ChurnPlan::none().is_trivial());
        assert!(ChurnPlan::none().seeded(9).is_trivial());
        // Flapping without a window (or probability) can never fire.
        assert!(ChurnPlan::none().with_flaps(0.5, 0).is_trivial());
        assert!(ChurnPlan::none().with_flaps(0.0, 10).is_trivial());
        assert!(!ChurnPlan::none().with_flaps(0.5, 10).is_trivial());
        assert!(!ChurnPlan::none()
            .with_edge_outage(EdgeId(0), 3, 2)
            .is_trivial());
        assert!(!ChurnPlan::none().with_restart(NodeId(1), 5, 4).is_trivial());
    }

    #[test]
    fn builders_normalize_zero_effect_flaps() {
        assert_eq!(ChurnPlan::none().with_flaps(0.5, 0), ChurnPlan::none());
        assert_eq!(ChurnPlan::none().with_flaps(0.0, 9), ChurnPlan::none());
        let live = ChurnPlan::none().with_flaps(0.25, 8);
        assert_eq!((live.flap_prob, live.flap_len), (0.25, 8));
    }

    #[test]
    fn validation_rejects_bad_plans() {
        let e = ChurnPlan::none()
            .with_flaps(1.5, 4)
            .validate(4, 4)
            .unwrap_err();
        assert!(e.to_string().contains("flap_prob"));
        let e = ChurnPlan::none()
            .with_edge_outage(EdgeId(9), 0, 1)
            .validate(4, 4)
            .unwrap_err();
        assert!(e.to_string().contains("out of range"));
        let e = ChurnPlan::none()
            .with_periodic_outage(EdgeId(0), 0, 5, 5)
            .validate(4, 4)
            .unwrap_err();
        assert!(e.to_string().contains("never comes up"));
        let e = ChurnPlan::none()
            .with_restart(NodeId(9), 0, 2)
            .validate(4, 4)
            .unwrap_err();
        assert!(e.to_string().contains("out of range"));
        let e = ChurnPlan::none()
            .with_restart(NodeId(0), 0, 0)
            .validate(4, 4)
            .unwrap_err();
        assert!(e.to_string().contains("down_for = 0"));
        // Direct field assignment bypasses the normalizing builder; the
        // validator still rejects the inconsistent combination.
        let mut p = ChurnPlan::none();
        p.flap_prob = 0.5;
        assert!(p.validate(4, 4).is_err());
    }

    #[test]
    fn explicit_outages_follow_their_schedule() {
        let plan = ChurnPlan::none()
            .with_edge_outage(EdgeId(1), 5, 3)
            .with_periodic_outage(EdgeId(2), 2, 2, 10);
        let s = plan.normalize(4, 4);
        // One-shot: down exactly in [5, 8).
        let downs: Vec<u64> = (0..12).filter(|&r| s.edge_down(r, 1)).collect();
        assert_eq!(downs, vec![5, 6, 7]);
        // Periodic: down in [2, 4), [12, 14), ...
        let downs: Vec<u64> = (0..25).filter(|&r| s.edge_down(r, 2)).collect();
        assert_eq!(downs, vec![2, 3, 12, 13, 22, 23]);
        // Unscheduled edges never move.
        assert!((0..25).all(|r| !s.edge_down(r, 0)));
    }

    #[test]
    fn permanent_cuts_never_recover() {
        let plan = ChurnPlan::none().with_edge_cut(EdgeId(3), 7);
        assert_eq!(plan.edge_cut_round(EdgeId(3)), Some(7));
        assert_eq!(plan.edge_cut_round(EdgeId(0)), None);
        // Periodic/transient schedules are not cuts.
        let transient = ChurnPlan::none().with_edge_outage(EdgeId(3), 7, 100);
        assert_eq!(transient.edge_cut_round(EdgeId(3)), None);
        let s = plan.normalize(4, 4);
        assert!(!s.edge_down(6, 3));
        assert!((7..1000).all(|r| s.edge_down(r, 3)));
    }

    #[test]
    fn node_outages_merge_and_rejoin_once() {
        let plan = ChurnPlan::none()
            .with_restart(NodeId(2), 4, 3)
            .with_restart(NodeId(2), 6, 4); // overlaps: merged to [4, 10)
        let s = plan.normalize(4, 2);
        let downs: Vec<u64> = (0..14).filter(|&r| s.node_down(r, 2)).collect();
        assert_eq!(downs, (4..10).collect::<Vec<_>>());
        let rejoins: Vec<u64> = (0..14).filter(|&r| s.rejoining(r, 2)).collect();
        assert_eq!(rejoins, vec![10]);
        assert_eq!(s.down_count(5), 1);
        assert_eq!(s.down_count(11), 0);
    }

    #[test]
    fn down_and_rejoin_events_mirror_the_predicates() {
        let plan = ChurnPlan::none()
            .with_restart(NodeId(2), 4, 3)
            .with_restart(NodeId(2), 6, 4) // merged with the above to [4, 10)
            .with_restart(NodeId(0), 1, 2);
        let s = plan.normalize(4, 2);
        assert_eq!(s.down_events(), vec![(1, 0), (4, 2)]);
        assert_eq!(s.rejoin_events(), vec![(3, 0), (10, 2)]);
        // The events are exactly the predicates' firing rounds.
        for v in 0..4usize {
            for r in 0..16u64 {
                assert_eq!(
                    s.rejoin_events().contains(&(r, v as u32)),
                    s.rejoining(r, v),
                    "rejoin mismatch at round {r}, node {v}"
                );
                assert_eq!(
                    s.down_events().contains(&(r, v as u32)),
                    s.node_down(r, v) && (r == 0 || !s.node_down(r - 1, v)),
                    "down-entry mismatch at round {r}, node {v}"
                );
            }
        }
    }

    #[test]
    fn down_and_rejoin_events_respect_the_offset() {
        // [10, 12) seen from offset 9: down in local rounds 1–2, rejoin 3.
        let s = ChurnPlan::none()
            .with_restart(NodeId(1), 10, 2)
            .at_offset(9)
            .normalize(2, 1);
        assert_eq!(s.down_events(), vec![(1, 1)]);
        assert_eq!(s.rejoin_events(), vec![(3, 1)]);
        // An outage already in progress at local round 0 enters at round 0.
        let s = ChurnPlan::none()
            .with_restart(NodeId(0), 2, 10)
            .at_offset(5)
            .normalize(2, 1);
        assert!(s.node_down(0, 0));
        assert_eq!(s.down_events(), vec![(0, 0)]);
        assert_eq!(s.rejoin_events(), vec![(7, 0)]);
        // An outage entirely before local time never fires either event.
        let s = ChurnPlan::none()
            .with_restart(NodeId(0), 2, 3)
            .at_offset(20)
            .normalize(2, 1);
        assert!(s.down_events().is_empty());
        assert!(s.rejoin_events().is_empty());
        // An outage whose rejoin lands exactly at local round 0: the raw
        // predicate fires, but round 0 dispatches `init` in every engine
        // (shadowing `on_restart`), so the event list omits it by design.
        let s = ChurnPlan::none()
            .with_restart(NodeId(0), 2, 3)
            .at_offset(5)
            .normalize(2, 1);
        assert!(s.rejoining(0, 0));
        assert!(s.down_events().is_empty());
        assert!(s.rejoin_events().is_empty());
    }

    #[test]
    fn flap_verdicts_are_pure_functions_of_identity() {
        let plan = ChurnPlan::none().seeded(11).with_flaps(0.3, 5);
        let s = plan.normalize(8, 16);
        let keys: Vec<(u64, usize)> = (0..60).flat_map(|r| (0..16).map(move |e| (r, e))).collect();
        let forward: Vec<bool> = keys.iter().map(|&(r, e)| s.edge_down(r, e)).collect();
        let reversed: Vec<bool> = keys.iter().rev().map(|&(r, e)| s.edge_down(r, e)).collect();
        assert_eq!(
            forward,
            reversed.into_iter().rev().collect::<Vec<_>>(),
            "verdicts must not depend on sampling order"
        );
        // Non-degenerate: both states occur across 960 samples.
        assert!(forward.contains(&true));
        assert!(forward.contains(&false));
        // State is constant within a window and keyed by the window index.
        for e in 0..16 {
            for w in 0..12u64 {
                let states: Vec<bool> = (w * 5..(w + 1) * 5).map(|r| s.edge_down(r, e)).collect();
                assert!(states.windows(2).all(|p| p[0] == p[1]));
            }
        }
        // Distinct seeds give distinct flap streams.
        let other = ChurnPlan::none()
            .seeded(12)
            .with_flaps(0.3, 5)
            .normalize(8, 16);
        assert!(keys
            .iter()
            .any(|&(r, e)| s.edge_down(r, e) != other.edge_down(r, e)));
    }

    #[test]
    fn offset_shifts_the_global_clock() {
        let plan = ChurnPlan::none().with_edge_outage(EdgeId(0), 10, 2);
        let shifted = plan.clone().at_offset(9).normalize(2, 1);
        let plain = plan.normalize(2, 1);
        for r in 0..8 {
            assert_eq!(shifted.edge_down(r, 0), plain.edge_down(r + 9, 0));
        }
        let restart = ChurnPlan::none().with_restart(NodeId(1), 10, 2);
        let shifted = restart.at_offset(9).normalize(2, 1);
        assert!(shifted.node_down(1, 1) && shifted.node_down(2, 1));
        assert!(shifted.rejoining(3, 1));
    }

    #[test]
    fn churn_state_logs_transitions_in_id_order() {
        let plan = ChurnPlan::none()
            .with_edge_outage(EdgeId(1), 2, 2)
            .with_restart(NodeId(0), 2, 3);
        let sched = plan.normalize(3, 3);
        let mut st = ChurnState::new(&sched);
        let mut m = Metrics::default();
        for r in 0..7 {
            st.begin_round(r, &mut m);
        }
        assert_eq!(
            st.events,
            vec![
                ChurnEvent {
                    round: 2,
                    kind: ChurnKind::EdgeDown { edge: EdgeId(1) }
                },
                ChurnEvent {
                    round: 2,
                    kind: ChurnKind::NodeDown { node: NodeId(0) }
                },
                ChurnEvent {
                    round: 4,
                    kind: ChurnKind::EdgeUp { edge: EdgeId(1) }
                },
                ChurnEvent {
                    round: 5,
                    kind: ChurnKind::NodeRejoin { node: NodeId(0) }
                },
            ]
        );
        assert_eq!(m.restarts, 1);
        assert_eq!(m.lost_to_churn, 0);
        st.record_loss(3, 2, 1, &mut m);
        assert_eq!(m.lost_to_churn, 1);
        assert_eq!(
            st.events.last(),
            Some(&ChurnEvent {
                round: 3,
                kind: ChurnKind::MessageLost {
                    node: NodeId(2),
                    port: 1
                }
            })
        );
    }
}
