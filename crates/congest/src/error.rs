//! Error type for simulator violations.

use amt_graphs::NodeId;
use std::fmt;

/// Violations of the CONGEST model or simulator limits.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum CongestError {
    /// A node attempted to send two messages over the same port in one round.
    DuplicateSend {
        /// The offending node.
        node: NodeId,
        /// The port (index into the node's adjacency list).
        port: usize,
    },
    /// A node attempted to send on a port `>= degree`.
    PortOutOfRange {
        /// The offending node.
        node: NodeId,
        /// The requested port.
        port: usize,
        /// The node's degree.
        degree: usize,
    },
    /// A message exceeded the per-message bit budget.
    MessageTooWide {
        /// Encoded width of the message in bits.
        bits: usize,
        /// The configured budget in bits.
        budget: usize,
    },
    /// The protocol did not terminate within the configured round cap.
    RoundLimitExceeded {
        /// The configured cap.
        max_rounds: u64,
    },
    /// The protocol vector length did not match the number of graph nodes.
    NodeCountMismatch {
        /// Nodes in the graph.
        graph: usize,
        /// Protocol instances supplied.
        protocols: usize,
    },
    /// A protocol required a node that the fault plan crash-stopped.
    NodeCrashed {
        /// The crashed node.
        node: NodeId,
        /// The round in which the crash was injected.
        round: u64,
        /// The fault-plan seed, for replay.
        seed: u64,
    },
    /// A reliable link exhausted its retransmission budget on one port.
    RetryExhausted {
        /// The sending node.
        node: NodeId,
        /// The port whose peer never acknowledged.
        port: usize,
        /// Transmission attempts made (including the original send).
        attempts: u32,
        /// The round in which the sender gave up.
        round: u64,
        /// The fault-plan seed, for replay.
        seed: u64,
    },
    /// A [`crate::faults::FaultPlan`] failed validation.
    FaultPlanInvalid {
        /// Human-readable description of the offending field.
        reason: String,
    },
    /// A node→shard placement attached via `Simulator::with_placement`
    /// failed validation against the run's graph or worker count.
    PlacementInvalid {
        /// Human-readable description of the mismatch.
        reason: String,
    },
    /// Sustained damage (crashes plus permanent edge cuts) disconnected the
    /// surviving graph; the protocol terminated gracefully instead of
    /// retrying toward an unreachable component until the round cap.
    Partitioned {
        /// Connected components of the surviving graph (≥ 2).
        components: usize,
        /// Accumulated round at which the partition was detected.
        round: u64,
    },
}

impl fmt::Display for CongestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CongestError::DuplicateSend { node, port } => {
                write!(f, "node {node} sent twice on port {port} in one round")
            }
            CongestError::PortOutOfRange { node, port, degree } => {
                write!(f, "node {node} sent on port {port} but has degree {degree}")
            }
            CongestError::MessageTooWide { bits, budget } => {
                write!(
                    f,
                    "message of {bits} bits exceeds the {budget}-bit CONGEST budget"
                )
            }
            CongestError::RoundLimitExceeded { max_rounds } => {
                write!(f, "protocol did not terminate within {max_rounds} rounds")
            }
            CongestError::NodeCountMismatch { graph, protocols } => {
                write!(
                    f,
                    "{protocols} protocol instances supplied for {graph} graph nodes"
                )
            }
            CongestError::NodeCrashed { node, round, seed } => {
                write!(
                    f,
                    "node {node} crash-stopped in round {round} (fault seed {seed})"
                )
            }
            CongestError::RetryExhausted {
                node,
                port,
                attempts,
                round,
                seed,
            } => {
                write!(
                    f,
                    "node {node} gave up on port {port} after {attempts} attempts \
                     in round {round} (fault seed {seed})"
                )
            }
            CongestError::FaultPlanInvalid { reason } => {
                write!(f, "invalid fault plan: {reason}")
            }
            CongestError::PlacementInvalid { reason } => {
                write!(f, "invalid placement: {reason}")
            }
            CongestError::Partitioned { components, round } => {
                write!(
                    f,
                    "surviving graph split into {components} components by round {round}"
                )
            }
        }
    }
}

impl std::error::Error for CongestError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_specifics() {
        let e = CongestError::MessageTooWide {
            bits: 99,
            budget: 64,
        };
        assert!(e.to_string().contains("99"));
        assert!(e.to_string().contains("64"));
    }

    #[test]
    fn fault_errors_name_round_and_seed() {
        let e = CongestError::NodeCrashed {
            node: NodeId(3),
            round: 17,
            seed: 42,
        };
        let s = e.to_string();
        assert!(s.contains("round 17") && s.contains("seed 42"));
        let e = CongestError::RetryExhausted {
            node: NodeId(1),
            port: 2,
            attempts: 8,
            round: 30,
            seed: 7,
        };
        let s = e.to_string();
        assert!(s.contains("8 attempts") && s.contains("round 30") && s.contains("seed 7"));
    }

    #[test]
    fn placement_error_names_the_mismatch() {
        let e = CongestError::PlacementInvalid {
            reason: "placement has 4 shards, run resolved 2 workers".to_string(),
        };
        let s = e.to_string();
        assert!(s.contains("invalid placement") && s.contains("4 shards"));
    }

    #[test]
    fn partitioned_names_components_and_round() {
        let e = CongestError::Partitioned {
            components: 2,
            round: 44,
        };
        let s = e.to_string();
        assert!(s.contains("2 components") && s.contains("round 44"));
    }
}
