//! Error type for simulator violations.

use amt_graphs::NodeId;
use std::fmt;

/// Violations of the CONGEST model or simulator limits.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum CongestError {
    /// A node attempted to send two messages over the same port in one round.
    DuplicateSend {
        /// The offending node.
        node: NodeId,
        /// The port (index into the node's adjacency list).
        port: usize,
    },
    /// A node attempted to send on a port `>= degree`.
    PortOutOfRange {
        /// The offending node.
        node: NodeId,
        /// The requested port.
        port: usize,
        /// The node's degree.
        degree: usize,
    },
    /// A message exceeded the per-message bit budget.
    MessageTooWide {
        /// Encoded width of the message in bits.
        bits: usize,
        /// The configured budget in bits.
        budget: usize,
    },
    /// The protocol did not terminate within the configured round cap.
    RoundLimitExceeded {
        /// The configured cap.
        max_rounds: u64,
    },
    /// The protocol vector length did not match the number of graph nodes.
    NodeCountMismatch {
        /// Nodes in the graph.
        graph: usize,
        /// Protocol instances supplied.
        protocols: usize,
    },
}

impl fmt::Display for CongestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CongestError::DuplicateSend { node, port } => {
                write!(f, "node {node} sent twice on port {port} in one round")
            }
            CongestError::PortOutOfRange { node, port, degree } => {
                write!(f, "node {node} sent on port {port} but has degree {degree}")
            }
            CongestError::MessageTooWide { bits, budget } => {
                write!(f, "message of {bits} bits exceeds the {budget}-bit CONGEST budget")
            }
            CongestError::RoundLimitExceeded { max_rounds } => {
                write!(f, "protocol did not terminate within {max_rounds} rounds")
            }
            CongestError::NodeCountMismatch { graph, protocols } => {
                write!(f, "{protocols} protocol instances supplied for {graph} graph nodes")
            }
        }
    }
}

impl std::error::Error for CongestError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_specifics() {
        let e = CongestError::MessageTooWide { bits: 99, budget: 64 };
        assert!(e.to_string().contains("99"));
        assert!(e.to_string().contains("64"));
    }
}
