//! Deterministic, seed-driven fault injection for the simulator.
//!
//! A [`FaultPlan`] declares *what can go wrong* in one execution: per-message
//! drop/corruption/delay probabilities and a schedule of crash-stop node
//! failures. All randomness is drawn from a dedicated `StdRng` seeded by
//! [`FaultPlan::seed`] — **independent of the protocol RNG** — so
//!
//! * a zero-fault plan leaves every run bit-for-bit identical to a run with
//!   no plan at all (the protocol RNG stream is untouched), and
//! * the same `(graph, protocol seed, fault seed)` triple replays the same
//!   faulty execution, message for message.
//!
//! Fault semantics (applied between staging and delivery, per message):
//!
//! * **drop** — the message silently vanishes;
//! * **corrupt** — exactly one bit of the message's canonical encoding
//!   ([`crate::CongestMessage::encode_bits`]) is flipped; messages without a
//!   canonical encoding, or whose corrupted bits no longer decode, are
//!   dropped instead (a garbled frame the receiver cannot parse);
//! * **delay** — delivery is postponed by a bounded number of extra rounds
//!   drawn uniformly from `1..=max_delay` (adversarial but bounded
//!   asynchrony);
//! * **crash** — from its scheduled round on, the node executes no protocol
//!   steps; messages to and from it are discarded.
//!
//! The paper assumes none of these (pristine synchronous CONGEST); the
//! experiment harness uses this module to measure how far each protocol's
//! guarantees degrade once the assumption is dropped.

use amt_graphs::NodeId;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::{CongestError, Metrics, Result};

/// One scheduled crash-stop failure: `node` stops participating at the
/// start of `round` (it executes no step in that round or later).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashEvent {
    /// The node that fails.
    pub node: NodeId,
    /// The first round in which the node no longer participates.
    pub round: u64,
}

/// Declarative fault configuration for one simulator run.
///
/// Constructed with [`FaultPlan::none`] plus the `with_*` builders; an
/// all-zero plan is treated exactly like no plan at all.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed of the dedicated fault RNG (independent of the protocol RNG).
    pub seed: u64,
    /// Per-message probability of a silent drop.
    pub drop_prob: f64,
    /// Per-message probability of a single-bit corruption.
    pub corrupt_prob: f64,
    /// Per-message probability of a bounded delivery delay.
    pub delay_prob: f64,
    /// Maximum extra rounds a delayed message may wait (delay is uniform in
    /// `1..=max_delay`).
    pub max_delay: u64,
    /// Scheduled crash-stop failures.
    pub crashes: Vec<CrashEvent>,
}

impl FaultPlan {
    /// The empty plan: no faults, costs nothing observable.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            drop_prob: 0.0,
            corrupt_prob: 0.0,
            delay_prob: 0.0,
            max_delay: 0,
            crashes: Vec::new(),
        }
    }

    /// Sets the fault RNG seed.
    pub fn seeded(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the per-message drop probability.
    pub fn with_drops(mut self, p: f64) -> Self {
        self.drop_prob = p;
        self
    }

    /// Sets the per-message single-bit-corruption probability.
    pub fn with_corruption(mut self, p: f64) -> Self {
        self.corrupt_prob = p;
        self
    }

    /// Sets the per-message delay probability and the delay bound.
    pub fn with_delays(mut self, p: f64, max_delay: u64) -> Self {
        self.delay_prob = p;
        self.max_delay = max_delay;
        self
    }

    /// Schedules a crash-stop failure of `node` at `round`.
    pub fn with_crash(mut self, node: NodeId, round: u64) -> Self {
        self.crashes.push(CrashEvent { node, round });
        self
    }

    /// `true` when the plan can never produce a fault (treated as no plan).
    pub fn is_trivial(&self) -> bool {
        self.drop_prob == 0.0
            && self.corrupt_prob == 0.0
            && (self.delay_prob == 0.0 || self.max_delay == 0)
            && self.crashes.is_empty()
    }

    /// Checks probabilities and crash targets against an `n`-node graph.
    ///
    /// # Errors
    ///
    /// [`CongestError::FaultPlanInvalid`] naming the offending field.
    pub fn validate(&self, n: usize) -> Result<()> {
        for (name, p) in [
            ("drop_prob", self.drop_prob),
            ("corrupt_prob", self.corrupt_prob),
            ("delay_prob", self.delay_prob),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(CongestError::FaultPlanInvalid {
                    reason: format!("{name} = {p} is not a probability"),
                });
            }
        }
        if self.delay_prob > 0.0 && self.max_delay == 0 {
            return Err(CongestError::FaultPlanInvalid {
                reason: "delay_prob > 0 requires max_delay >= 1".into(),
            });
        }
        if let Some(c) = self.crashes.iter().find(|c| c.node.index() >= n) {
            return Err(CongestError::FaultPlanInvalid {
                reason: format!("crash target {} out of range for {n} nodes", c.node),
            });
        }
        Ok(())
    }
}

/// What a single injected fault did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The message was silently discarded.
    Dropped,
    /// One bit of the message's encoding was flipped; `delivered` records
    /// whether the corrupted bits still decoded (and were delivered) or the
    /// frame was unparseable (and was discarded).
    Corrupted {
        /// Whether the corrupted message was still delivered.
        delivered: bool,
    },
    /// Delivery was postponed by `by` extra rounds.
    Delayed {
        /// Extra rounds waited beyond the normal one-round latency.
        by: u64,
    },
    /// A previously delayed message was lost because its destination
    /// crash-stopped before the delay elapsed (the matching `Delayed` event
    /// precedes this one; the node/port identify the original sender).
    LostToCrash,
    /// The node crash-stopped.
    Crashed,
}

/// One injected fault, for the experiment harness's degradation curves.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// Round in which the fault was injected.
    pub round: u64,
    /// For message faults, the *sender*; for crashes, the crashed node.
    pub node: NodeId,
    /// Sending port for message faults (0 for crashes).
    pub port: usize,
    /// What happened.
    pub kind: FaultKind,
}

/// Fate of one staged message after fault sampling.
pub(crate) enum Fate {
    Deliver,
    Drop,
    Corrupt,
    Delay(u64),
}

/// Runtime fault state owned by one `Simulator::run` invocation.
pub(crate) struct FaultState {
    plan: FaultPlan,
    rng: StdRng,
    pub(crate) crashed: Vec<bool>,
    pub(crate) events: Vec<FaultEvent>,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan, n: usize) -> Result<Self> {
        plan.validate(n)?;
        let rng = StdRng::seed_from_u64(plan.seed);
        Ok(FaultState {
            plan,
            rng,
            crashed: vec![false; n],
            events: Vec::new(),
        })
    }

    /// Marks nodes whose crash round has arrived; updates `metrics.crashed`.
    pub(crate) fn apply_crashes(&mut self, round: u64, metrics: &mut Metrics) {
        for i in 0..self.plan.crashes.len() {
            let c = self.plan.crashes[i];
            if c.round == round && !self.crashed[c.node.index()] {
                self.crashed[c.node.index()] = true;
                metrics.crashed += 1;
                self.events.push(FaultEvent {
                    round,
                    node: c.node,
                    port: 0,
                    kind: FaultKind::Crashed,
                });
            }
        }
    }

    pub(crate) fn is_crashed(&self, v: usize) -> bool {
        self.crashed[v]
    }

    /// Samples the fate of one staged message (drop, then corrupt, then
    /// delay, in that fixed order).
    pub(crate) fn fate(&mut self) -> Fate {
        if self.plan.drop_prob > 0.0 && self.rng.random_bool(self.plan.drop_prob) {
            return Fate::Drop;
        }
        if self.plan.corrupt_prob > 0.0 && self.rng.random_bool(self.plan.corrupt_prob) {
            return Fate::Corrupt;
        }
        if self.plan.delay_prob > 0.0
            && self.plan.max_delay > 0
            && self.rng.random_bool(self.plan.delay_prob)
        {
            return Fate::Delay(self.rng.random_range(1..=self.plan.max_delay));
        }
        Fate::Deliver
    }

    /// A single-bit flip mask within `width` encoded bits.
    pub(crate) fn flip_mask(&mut self, width: usize) -> u64 {
        let w = width.clamp(1, 64);
        1u64 << self.rng.random_range(0..w as u64)
    }

    pub(crate) fn record(&mut self, round: u64, node: usize, port: usize, kind: FaultKind) {
        self.events.push(FaultEvent {
            round,
            node: NodeId::from(node),
            port,
            kind,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_plan_detection() {
        assert!(FaultPlan::none().is_trivial());
        assert!(FaultPlan::none().seeded(42).is_trivial());
        // A delay probability without a delay budget cannot fire.
        assert!(FaultPlan::none().with_delays(0.5, 0).is_trivial());
        assert!(!FaultPlan::none().with_drops(0.1).is_trivial());
        assert!(!FaultPlan::none().with_corruption(0.1).is_trivial());
        assert!(!FaultPlan::none().with_delays(0.1, 3).is_trivial());
        assert!(!FaultPlan::none().with_crash(NodeId(0), 5).is_trivial());
    }

    #[test]
    fn validation_rejects_bad_plans() {
        let e = FaultPlan::none().with_drops(1.5).validate(4).unwrap_err();
        assert!(e.to_string().contains("drop_prob"));
        let e = FaultPlan::none()
            .with_crash(NodeId(9), 0)
            .validate(4)
            .unwrap_err();
        assert!(e.to_string().contains("out of range"));
        let mut p = FaultPlan::none();
        p.delay_prob = 0.5;
        assert!(p.validate(4).is_err());
        assert!(FaultPlan::none().with_delays(0.5, 2).validate(4).is_ok());
    }

    #[test]
    fn fate_sampling_is_deterministic_in_the_seed() {
        let plan = FaultPlan::none()
            .seeded(7)
            .with_drops(0.3)
            .with_delays(0.3, 4);
        let mut a = FaultState::new(plan.clone(), 8).unwrap();
        let mut b = FaultState::new(plan, 8).unwrap();
        for _ in 0..500 {
            let (fa, fb) = (a.fate(), b.fate());
            let key = |f: &Fate| match f {
                Fate::Deliver => 0u64,
                Fate::Drop => 1,
                Fate::Corrupt => 2,
                Fate::Delay(d) => 3 + d,
            };
            assert_eq!(key(&fa), key(&fb));
        }
    }

    #[test]
    fn flip_masks_stay_in_width() {
        let mut fs = FaultState::new(FaultPlan::none().with_corruption(1.0), 2).unwrap();
        for w in 1..=64 {
            for _ in 0..20 {
                let m = fs.flip_mask(w);
                assert_eq!(m.count_ones(), 1);
                assert!(m.trailing_zeros() < w as u32);
            }
        }
    }

    #[test]
    fn crashes_fire_once_at_their_round() {
        let plan = FaultPlan::none()
            .with_crash(NodeId(2), 3)
            .with_crash(NodeId(2), 3);
        let mut fs = FaultState::new(plan, 4).unwrap();
        let mut m = Metrics::default();
        for r in 0..6 {
            fs.apply_crashes(r, &mut m);
        }
        assert_eq!(m.crashed, 1, "duplicate schedule entries fire once");
        assert!(fs.is_crashed(2));
        assert!(!fs.is_crashed(0));
    }
}
