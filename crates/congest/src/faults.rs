//! Deterministic, seed-driven fault injection for the simulator.
//!
//! A [`FaultPlan`] declares *what can go wrong* in one execution: per-message
//! drop/corruption/delay probabilities and a schedule of crash-stop node
//! failures. All randomness comes from a counter-based PRF (a splitmix64
//! finalizer chain, the same family as the per-node protocol streams) keyed
//! on **message identity** `(fault seed, round, sender, sender port)` —
//! **independent of the protocol RNG** — so
//!
//! * a zero-fault plan leaves every run bit-for-bit identical to a run with
//!   no plan at all (the protocol RNG stream is untouched),
//! * the same `(graph, protocol seed, fault seed)` triple replays the same
//!   faulty execution, message for message, and
//! * the verdict for a message does not depend on how many *other* messages
//!   were sampled before it, so the executor may visit senders in any order
//!   (or on any worker thread) without changing a single fault decision.
//!   This order-independence is what admits the multi-threaded faulty path;
//!   see the determinism contract in [`crate::sim`].
//!
//! Fault semantics (applied between staging and delivery, per message):
//!
//! * **drop** — the message silently vanishes;
//! * **corrupt** — exactly one bit of the message's canonical encoding
//!   ([`crate::CongestMessage::encode_bits`]) is flipped; messages without a
//!   canonical encoding, or whose corrupted bits no longer decode, are
//!   dropped instead (a garbled frame the receiver cannot parse);
//! * **delay** — delivery is postponed by a bounded number of extra rounds
//!   drawn uniformly from `1..=max_delay` (adversarial but bounded
//!   asynchrony);
//! * **crash** — from its scheduled round on, the node executes no protocol
//!   steps; messages to and from it are discarded.
//!
//! The paper assumes none of these (pristine synchronous CONGEST); the
//! experiment harness uses this module to measure how far each protocol's
//! guarantees degrade once the assumption is dropped.

use amt_graphs::NodeId;

use crate::{CongestError, Metrics, Result};

/// One scheduled crash-stop failure: `node` stops participating at the
/// start of `round` (it executes no step in that round or later).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashEvent {
    /// The node that fails.
    pub node: NodeId,
    /// The first round in which the node no longer participates.
    pub round: u64,
}

/// Declarative fault configuration for one simulator run.
///
/// Constructed with [`FaultPlan::none`] plus the `with_*` builders; an
/// all-zero plan is treated exactly like no plan at all. The builders
/// normalize zero-effect knobs (e.g. a delay probability with a zero delay
/// budget) so that equivalent plans compare equal and pick the same
/// executor path.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed of the fault PRF (independent of the protocol RNG).
    pub seed: u64,
    /// Per-message probability of a silent drop.
    pub drop_prob: f64,
    /// Per-message probability of a single-bit corruption.
    pub corrupt_prob: f64,
    /// Per-message probability of a bounded delivery delay.
    pub delay_prob: f64,
    /// Maximum extra rounds a delayed message may wait (delay is uniform in
    /// `1..=max_delay`).
    pub max_delay: u64,
    /// Scheduled crash-stop failures.
    pub crashes: Vec<CrashEvent>,
}

impl FaultPlan {
    /// The empty plan: no faults, costs nothing observable.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            drop_prob: 0.0,
            corrupt_prob: 0.0,
            delay_prob: 0.0,
            max_delay: 0,
            crashes: Vec::new(),
        }
    }

    /// Sets the fault PRF seed.
    pub fn seeded(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the per-message drop probability.
    pub fn with_drops(mut self, p: f64) -> Self {
        self.drop_prob = p;
        self
    }

    /// Sets the per-message single-bit-corruption probability.
    pub fn with_corruption(mut self, p: f64) -> Self {
        self.corrupt_prob = p;
        self
    }

    /// Sets the per-message delay probability and the delay bound.
    ///
    /// A combination that can never fire (`p == 0` or `max_delay == 0`) is
    /// normalized to `(0.0, 0)`, so e.g. `with_delays(0.5, 0)` builds the
    /// same plan as no delay setting at all.
    pub fn with_delays(mut self, p: f64, max_delay: u64) -> Self {
        if p == 0.0 || max_delay == 0 {
            self.delay_prob = 0.0;
            self.max_delay = 0;
        } else {
            self.delay_prob = p;
            self.max_delay = max_delay;
        }
        self
    }

    /// Schedules a crash-stop failure of `node` at `round`.
    pub fn with_crash(mut self, node: NodeId, round: u64) -> Self {
        self.crashes.push(CrashEvent { node, round });
        self
    }

    /// `true` when the plan can never produce a fault (treated as no plan).
    ///
    /// The `max_delay` guard covers plans whose fields were set directly,
    /// bypassing the normalizing [`FaultPlan::with_delays`] builder.
    pub fn is_trivial(&self) -> bool {
        self.drop_prob == 0.0
            && self.corrupt_prob == 0.0
            && (self.delay_prob == 0.0 || self.max_delay == 0)
            && self.crashes.is_empty()
    }

    /// Checks probabilities and crash targets against an `n`-node graph.
    ///
    /// # Errors
    ///
    /// [`CongestError::FaultPlanInvalid`] naming the offending field.
    pub fn validate(&self, n: usize) -> Result<()> {
        for (name, p) in [
            ("drop_prob", self.drop_prob),
            ("corrupt_prob", self.corrupt_prob),
            ("delay_prob", self.delay_prob),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(CongestError::FaultPlanInvalid {
                    reason: format!("{name} = {p} is not a probability"),
                });
            }
        }
        if self.delay_prob > 0.0 && self.max_delay == 0 {
            return Err(CongestError::FaultPlanInvalid {
                reason: "delay_prob > 0 requires max_delay >= 1".into(),
            });
        }
        if let Some(c) = self.crashes.iter().find(|c| c.node.index() >= n) {
            return Err(CongestError::FaultPlanInvalid {
                reason: format!("crash target {} out of range for {n} nodes", c.node),
            });
        }
        Ok(())
    }

    /// The earliest scheduled crash round per node (`u64::MAX` = never).
    ///
    /// A pure function of the plan, shared with the executor's workers so
    /// that "is `v` crashed in round `r`?" needs no mutable state.
    pub(crate) fn crash_rounds(&self, n: usize) -> Vec<u64> {
        let mut rounds = vec![u64::MAX; n];
        for c in &self.crashes {
            let slot = &mut rounds[c.node.index()];
            *slot = (*slot).min(c.round);
        }
        rounds
    }
}

/// What a single injected fault did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The message was silently discarded.
    Dropped,
    /// One bit of the message's encoding was flipped; `delivered` records
    /// whether the corrupted bits still decoded (and were delivered) or the
    /// frame was unparseable (and was discarded).
    Corrupted {
        /// Whether the corrupted message was still delivered.
        delivered: bool,
    },
    /// Delivery was postponed by `by` extra rounds.
    Delayed {
        /// Extra rounds waited beyond the normal one-round latency.
        by: u64,
    },
    /// A previously delayed message was lost because its destination
    /// crash-stopped before the delay elapsed (the matching `Delayed` event
    /// precedes this one; the node/port identify the original sender).
    LostToCrash,
    /// The node crash-stopped.
    Crashed,
}

/// One injected fault, for the experiment harness's degradation curves.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// Round in which the fault was injected.
    pub round: u64,
    /// For message faults, the *sender*; for crashes, the crashed node.
    pub node: NodeId,
    /// Sending port for message faults (0 for crashes).
    pub port: usize,
    /// What happened.
    pub kind: FaultKind,
}

/// Fate of one staged message after fault sampling.
pub(crate) enum Fate {
    Deliver,
    Drop,
    Corrupt,
    Delay(u64),
}

/// SplitMix64 finalizer: the bijective avalanche at the heart of the fault
/// PRF (and of the per-node protocol stream seeds in [`crate::sim`], and of
/// the churn PRF in [`crate::churn`]).
pub(crate) fn splitmix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Domain tags keeping the per-purpose draws of one message independent.
mod draw {
    pub(super) const DROP: u64 = 0;
    pub(super) const CORRUPT: u64 = 1;
    pub(super) const DELAY: u64 = 2;
    pub(super) const DELAY_BY: u64 = 3;
    pub(super) const FLIP: u64 = 4;
}

/// One 64-bit PRF word as a pure function of
/// `(fault seed, round, sender, sender port, purpose)`.
///
/// Each field is absorbed through the finalizer with its own odd multiplier
/// so that nearby keys (adjacent rounds, ports, purposes) land in unrelated
/// parts of the output space. This is the whole fault stream: no draw ever
/// depends on any other message's draws.
fn message_draw(seed: u64, round: u64, src: u64, port: u64, purpose: u64) -> u64 {
    let mut z = splitmix(seed ^ 0x9E37_79B9_7F4A_7C15);
    z = splitmix(z ^ round.wrapping_mul(0xA076_1D64_78BD_642F));
    z = splitmix(z ^ src.wrapping_mul(0xE703_7ED1_A0B4_28DB));
    z = splitmix(z ^ port.wrapping_mul(0x8EBC_6AF0_9C88_C6E3));
    splitmix(z ^ purpose.wrapping_mul(0x5899_65CC_7537_4CC3))
}

/// Maps a PRF word to a uniform `f64` in `[0, 1)` (top 53 bits, the same
/// construction every mainstream generator uses).
pub(crate) fn unit(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// How the executor consults fault injection, round by round and message by
/// message. The clean path uses the inert [`NoFaults`] implementation, which
/// monomorphizes every hook call away; the faulty path uses [`FaultState`].
///
/// The sampling methods take `&self`: a verdict is a pure function of the
/// message's identity, never of sampling order.
pub(crate) trait FaultHook {
    /// Applies start-of-round effects (crash-stops) to `metrics`.
    fn begin_round(&mut self, round: u64, metrics: &mut Metrics);

    /// Whether `v` has crash-stopped at or before the current round.
    fn is_crashed(&self, v: usize) -> bool;

    /// The verdict for the message staged by `src` on `port` this `round`.
    fn fate(&self, round: u64, src: usize, port: usize) -> Fate;

    /// A single-bit flip mask within `width` encoded bits, for the same
    /// message identity that was sentenced to `Fate::Corrupt`.
    fn flip_mask(&self, round: u64, src: usize, port: usize, width: usize) -> u64;

    /// Appends a fault event to the run's log.
    fn record(&mut self, round: u64, node: usize, port: usize, kind: FaultKind);
}

/// The fault hook of the pristine path: nothing ever goes wrong. All methods
/// are trivially inlinable, so the unified engine compiled against `NoFaults`
/// is the exact fault-free executor.
pub(crate) struct NoFaults;

impl FaultHook for NoFaults {
    fn begin_round(&mut self, _round: u64, _metrics: &mut Metrics) {}

    fn is_crashed(&self, _v: usize) -> bool {
        false
    }

    fn fate(&self, _round: u64, _src: usize, _port: usize) -> Fate {
        Fate::Deliver
    }

    fn flip_mask(&self, _round: u64, _src: usize, _port: usize, _width: usize) -> u64 {
        unreachable!("NoFaults never corrupts")
    }

    fn record(&mut self, _round: u64, _node: usize, _port: usize, _kind: FaultKind) {
        unreachable!("NoFaults never records an event")
    }
}

/// Runtime fault state borrowed by one `Simulator::run` invocation.
///
/// Holds only what sampling cannot derive: the borrowed plan, which nodes
/// have crashed so far, and the event log. The message verdicts themselves
/// are stateless PRF evaluations.
pub(crate) struct FaultState<'p> {
    plan: &'p FaultPlan,
    pub(crate) crashed: Vec<bool>,
    pub(crate) events: Vec<FaultEvent>,
}

impl<'p> FaultState<'p> {
    pub(crate) fn new(plan: &'p FaultPlan, n: usize) -> Result<Self> {
        plan.validate(n)?;
        Ok(FaultState {
            plan,
            crashed: vec![false; n],
            events: Vec::new(),
        })
    }
}

impl FaultHook for FaultState<'_> {
    /// Marks nodes whose crash round has arrived; updates `metrics.crashed`.
    fn begin_round(&mut self, round: u64, metrics: &mut Metrics) {
        for i in 0..self.plan.crashes.len() {
            let c = self.plan.crashes[i];
            if c.round == round && !self.crashed[c.node.index()] {
                self.crashed[c.node.index()] = true;
                metrics.crashed += 1;
                self.events.push(FaultEvent {
                    round,
                    node: c.node,
                    port: 0,
                    kind: FaultKind::Crashed,
                });
            }
        }
    }

    fn is_crashed(&self, v: usize) -> bool {
        self.crashed[v]
    }

    /// Samples the fate of one staged message (drop, then corrupt, then
    /// delay, in that fixed order), keyed purely on the message's identity.
    fn fate(&self, round: u64, src: usize, port: usize) -> Fate {
        let (src, port) = (src as u64, port as u64);
        let p = self.plan;
        if p.drop_prob > 0.0
            && unit(message_draw(p.seed, round, src, port, draw::DROP)) < p.drop_prob
        {
            return Fate::Drop;
        }
        if p.corrupt_prob > 0.0
            && unit(message_draw(p.seed, round, src, port, draw::CORRUPT)) < p.corrupt_prob
        {
            return Fate::Corrupt;
        }
        if p.delay_prob > 0.0
            && p.max_delay > 0
            && unit(message_draw(p.seed, round, src, port, draw::DELAY)) < p.delay_prob
        {
            let by = 1 + message_draw(p.seed, round, src, port, draw::DELAY_BY) % p.max_delay;
            return Fate::Delay(by);
        }
        Fate::Deliver
    }

    /// A single-bit flip mask within `width` encoded bits.
    fn flip_mask(&self, round: u64, src: usize, port: usize, width: usize) -> u64 {
        let w = width.clamp(1, 64) as u64;
        let bit = message_draw(self.plan.seed, round, src as u64, port as u64, draw::FLIP) % w;
        1u64 << bit
    }

    fn record(&mut self, round: u64, node: usize, port: usize, kind: FaultKind) {
        self.events.push(FaultEvent {
            round,
            node: NodeId::from(node),
            port,
            kind,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_plan_detection() {
        assert!(FaultPlan::none().is_trivial());
        assert!(FaultPlan::none().seeded(42).is_trivial());
        // A delay probability without a delay budget cannot fire.
        assert!(FaultPlan::none().with_delays(0.5, 0).is_trivial());
        assert!(!FaultPlan::none().with_drops(0.1).is_trivial());
        assert!(!FaultPlan::none().with_corruption(0.1).is_trivial());
        assert!(!FaultPlan::none().with_delays(0.1, 3).is_trivial());
        assert!(!FaultPlan::none().with_crash(NodeId(0), 5).is_trivial());
    }

    #[test]
    fn builders_normalize_zero_effect_knobs() {
        // Zero-effect delay settings build the *same* plan, not merely an
        // equally trivial one — equivalent plans must compare equal so they
        // pick the same executor path.
        assert_eq!(FaultPlan::none().with_delays(0.5, 0), FaultPlan::none());
        assert_eq!(FaultPlan::none().with_delays(0.0, 7), FaultPlan::none());
        assert_eq!(
            FaultPlan::none().with_drops(0.2).with_delays(0.9, 0),
            FaultPlan::none().with_drops(0.2),
        );
        // A live setting is preserved as-is.
        let live = FaultPlan::none().with_delays(0.25, 3);
        assert_eq!((live.delay_prob, live.max_delay), (0.25, 3));
    }

    #[test]
    fn validation_rejects_bad_plans() {
        let e = FaultPlan::none().with_drops(1.5).validate(4).unwrap_err();
        assert!(e.to_string().contains("drop_prob"));
        let e = FaultPlan::none()
            .with_crash(NodeId(9), 0)
            .validate(4)
            .unwrap_err();
        assert!(e.to_string().contains("out of range"));
        // Direct field assignment bypasses the normalizing builder; the
        // validator still rejects the inconsistent combination.
        let mut p = FaultPlan::none();
        p.delay_prob = 0.5;
        assert!(p.validate(4).is_err());
        assert!(FaultPlan::none().with_delays(0.5, 2).validate(4).is_ok());
    }

    fn fate_key(f: &Fate) -> u64 {
        match f {
            Fate::Deliver => 0,
            Fate::Drop => 1,
            Fate::Corrupt => 2,
            Fate::Delay(d) => 3 + d,
        }
    }

    /// The tentpole property: a message's verdict is a pure function of its
    /// identity, so sampling the same messages in any order — or more than
    /// once — yields the same verdicts.
    #[test]
    fn fate_is_a_pure_function_of_message_identity() {
        let plan = FaultPlan::none()
            .seeded(7)
            .with_drops(0.3)
            .with_corruption(0.1)
            .with_delays(0.3, 4);
        let fs = FaultState::new(&plan, 8).unwrap();
        let keys: Vec<(u64, usize, usize)> = (0..6)
            .flat_map(|r| (0..8).flat_map(move |s| (0..4).map(move |p| (r, s, p))))
            .collect();
        let forward: Vec<u64> = keys
            .iter()
            .map(|&(r, s, p)| fate_key(&fs.fate(r, s, p)))
            .collect();
        let reversed: Vec<u64> = keys
            .iter()
            .rev()
            .map(|&(r, s, p)| fate_key(&fs.fate(r, s, p)))
            .collect();
        assert_eq!(
            forward,
            reversed.into_iter().rev().collect::<Vec<_>>(),
            "verdicts must not depend on sampling order"
        );
        // And the stream is non-degenerate: the probabilities above must
        // produce both deliveries and faults over 192 messages.
        assert!(forward.contains(&0));
        assert!(forward.iter().any(|&k| k != 0));
    }

    #[test]
    fn fate_sampling_is_deterministic_in_the_seed() {
        let plan = FaultPlan::none()
            .seeded(7)
            .with_drops(0.3)
            .with_delays(0.3, 4);
        let a = FaultState::new(&plan, 8).unwrap();
        let b = FaultState::new(&plan, 8).unwrap();
        let other = plan.clone().seeded(8);
        let c = FaultState::new(&other, 8).unwrap();
        let mut diverged = false;
        for r in 0..50 {
            for s in 0..8 {
                let (fa, fb, fc) = (a.fate(r, s, 0), b.fate(r, s, 0), c.fate(r, s, 0));
                assert_eq!(fate_key(&fa), fate_key(&fb));
                diverged |= fate_key(&fa) != fate_key(&fc);
            }
        }
        assert!(diverged, "distinct seeds must give distinct fault streams");
    }

    #[test]
    fn flip_masks_stay_in_width() {
        let plan = FaultPlan::none().with_corruption(1.0);
        let fs = FaultState::new(&plan, 2).unwrap();
        for w in 1..=64 {
            for r in 0..20 {
                let m = fs.flip_mask(r, 0, 0, w);
                assert_eq!(m.count_ones(), 1);
                assert!(m.trailing_zeros() < w as u32);
            }
        }
    }

    #[test]
    fn delays_stay_in_bounds() {
        let plan = FaultPlan::none().with_delays(1.0, 5);
        let fs = FaultState::new(&plan, 4).unwrap();
        let mut seen = [false; 6];
        for r in 0..100 {
            for s in 0..4 {
                match fs.fate(r, s, 0) {
                    Fate::Delay(by) => {
                        assert!((1..=5).contains(&by));
                        seen[by as usize] = true;
                    }
                    _ => panic!("delay_prob = 1.0 must always delay"),
                }
            }
        }
        assert!(seen[1..].iter().all(|&s| s), "all delay values must occur");
    }

    #[test]
    fn crashes_fire_once_at_their_round() {
        let plan = FaultPlan::none()
            .with_crash(NodeId(2), 3)
            .with_crash(NodeId(2), 3);
        let mut fs = FaultState::new(&plan, 4).unwrap();
        let mut m = Metrics::default();
        for r in 0..6 {
            fs.begin_round(r, &mut m);
        }
        assert_eq!(m.crashed, 1, "duplicate schedule entries fire once");
        assert!(fs.is_crashed(2));
        assert!(!fs.is_crashed(0));
    }

    #[test]
    fn crash_rounds_take_the_earliest_schedule_entry() {
        let plan = FaultPlan::none()
            .with_crash(NodeId(1), 9)
            .with_crash(NodeId(1), 4)
            .with_crash(NodeId(3), 0);
        assert_eq!(plan.crash_rounds(4), vec![u64::MAX, 4, u64::MAX, 0]);
    }
}
