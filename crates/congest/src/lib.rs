//! Synchronous CONGEST-model simulator.
//!
//! The CONGEST model (the model of the paper) abstracts the network as an
//! `n`-node graph; computation proceeds in synchronous rounds and per round
//! each node may send one `O(log n)`-bit message over each incident edge.
//!
//! This crate provides:
//!
//! * [`Simulator`] — executes a [`Protocol`] (one state machine per node)
//!   round by round, enforcing **one message per directed edge per round**
//!   and a **bit budget** on every message (`O(log n)` with an explicit,
//!   configurable constant), and recording [`Metrics`] (rounds, messages,
//!   bits).
//! * [`primitives`] — classic building blocks implemented *as protocols*,
//!   with honest round counts: flooding broadcast, distributed BFS-tree
//!   construction, convergecast aggregation over a tree, leader election by
//!   max-id flooding, and a pipelined upcast used by the
//!   Garay–Kutten–Peleg-style baseline.
//! * [`faults`] — deterministic, seed-driven fault injection (message drop,
//!   single-bit corruption, bounded delay, crash-stop failures) applied by
//!   the simulator between staging and delivery, plus the
//!   [`ReliableLink`] ack/retransmit sublayer protocols use to survive it.
//! * [`churn`] — deterministic topology churn ([`ChurnPlan`]): edges that
//!   flap up/down on per-edge schedules or a seeded PRF, and nodes that
//!   crash-*restart* with state loss ([`Protocol::on_restart`]) — the
//!   sustained-damage counterpart to the fault layer's one-shot failures.
//!   Protocols observe link state through [`Ctx::link_up`].
//! * [`trace`] — opt-in round-level observability ([`RunTrace`]): per-round
//!   timeline samples, protocol-emitted span events ([`Ctx::trace_event`]),
//!   striding per-edge load snapshots, and the wall-clock [`PhaseTimings`]
//!   type shared by the protocol crates. Disabled by default with zero
//!   overhead; enabling it never changes `Metrics` or protocol outputs.
//! * [`profile`] — opt-in traffic-class attribution ([`TrafficProfile`]):
//!   every delivery is tagged with a [`TrafficClass`] (protocol default or
//!   per-send via [`Ctx::send_classed`]) and aggregated per `(class, round)`
//!   and `(class, edge)`, with hot-edge analysis ([`CongestionProfile`]).
//!   Same zero-cost-when-off contract as [`trace`]; per-class totals sum
//!   exactly to the run's [`Metrics`] and per-edge loads.
//! * [`telemetry`] — opt-in runtime-execution health ([`RunTelemetry`]):
//!   per-shard step wall-times with straggler attribution (imbalance =
//!   max/mean shard wall), engine gauges (active-set occupancy, inbox /
//!   staged-send / wake-queue depth, arena byte high-water marks), a
//!   fixed-capacity flight recorder holding the last K rounds (dumped to
//!   `flightrec_<id>.json` when a run errors), and an optional NDJSON
//!   live-stream sink. Logical counters are thread-count- and
//!   placement-invariant; wall-times are host measurements outside the
//!   determinism contract. Same zero-cost-when-off contract as [`trace`].
//!
//! Determinism: every node owns a private RNG stream derived from
//! `(run seed, node id)` and handed to protocols through [`Ctx::rng`], and
//! staged messages are delivered in `(sender, port)` order — so every run is
//! reproducible from `(graph, seed)` independently of executor visit order
//! or the [`RunConfig::threads`] worker count (see the [`sim`](self)
//! module docs for the full contract).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod message;
mod metrics;
mod sim;

pub mod churn;
pub mod faults;
pub mod primitives;
pub mod profile;
pub mod telemetry;
pub mod trace;

pub use amt_graphs::partitioning::Placement;
pub use churn::{ChurnEvent, ChurnKind, ChurnPlan, EdgeOutage, RestartEvent};
pub use error::CongestError;
pub use faults::{CrashEvent, FaultEvent, FaultKind, FaultPlan};
pub use message::{bits_for_count, bits_for_value, CongestMessage};
pub use metrics::Metrics;
pub use primitives::reliable::{reliable_broadcast, Reliable, ReliableLink};
pub use profile::{
    class, ClassStats, CongestionProfile, HotEdge, ProfileConfig, ShardClassSplit, ShardSplit,
    TrafficClass, TrafficProfile,
};
pub use sim::{Ctx, Protocol, RunConfig, Simulator, StopCondition};
pub use telemetry::{
    dump_flight, render_flight_dump, FlightFrame, FlightRecorder, GaugeHighWater, RoundHealth,
    RunTelemetry, ShardRoundSample, TelemetryConfig,
};
pub use trace::{
    Distribution, PhaseTimings, RecoveryTimeline, RoundSample, RunTrace, TraceConfig, TraceEvent,
};

/// Result alias for simulator operations.
pub type Result<T> = std::result::Result<T, CongestError>;
