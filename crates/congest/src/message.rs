//! Bit-width accounting for CONGEST messages.

/// A message that can cross one edge in one CONGEST round.
///
/// Implementors report their encoded width in bits; the [`crate::Simulator`]
/// checks every sent message against the per-round budget
/// (`budget_factor · ⌈log₂ n⌉` bits). The width should reflect a reasonable
/// wire encoding — e.g. a node id costs `⌈log₂ n⌉` bits, a tag costs
/// `⌈log₂ #variants⌉` bits — not Rust's in-memory layout.
pub trait CongestMessage: Clone + std::fmt::Debug {
    /// Encoded width in bits.
    fn bit_width(&self) -> usize;
}

/// Bits needed to address one of `count` distinct values (at least 1).
///
/// # Examples
///
/// ```
/// use amt_congest::bits_for_count;
/// assert_eq!(bits_for_count(1), 1);
/// assert_eq!(bits_for_count(2), 1);
/// assert_eq!(bits_for_count(1024), 10);
/// assert_eq!(bits_for_count(1025), 11);
/// ```
pub fn bits_for_count(count: usize) -> usize {
    if count <= 2 {
        1
    } else {
        (usize::BITS - (count - 1).leading_zeros()) as usize
    }
}

/// Bits needed to write the value `v` in binary (at least 1).
pub fn bits_for_value(v: u64) -> usize {
    if v < 2 {
        1
    } else {
        (u64::BITS - v.leading_zeros()) as usize
    }
}

impl CongestMessage for u32 {
    fn bit_width(&self) -> usize {
        bits_for_value(u64::from(*self))
    }
}

impl CongestMessage for u64 {
    fn bit_width(&self) -> usize {
        bits_for_value(*self)
    }
}

impl CongestMessage for () {
    fn bit_width(&self) -> usize {
        1
    }
}

impl CongestMessage for bool {
    fn bit_width(&self) -> usize {
        1
    }
}

impl<A: CongestMessage, B: CongestMessage> CongestMessage for (A, B) {
    fn bit_width(&self) -> usize {
        self.0.bit_width() + self.1.bit_width()
    }
}

impl<A: CongestMessage, B: CongestMessage, C: CongestMessage> CongestMessage for (A, B, C) {
    fn bit_width(&self) -> usize {
        self.0.bit_width() + self.1.bit_width() + self.2.bit_width()
    }
}

impl<M: CongestMessage> CongestMessage for Option<M> {
    fn bit_width(&self) -> usize {
        1 + self.as_ref().map_or(0, CongestMessage::bit_width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_for_value_edge_cases() {
        assert_eq!(bits_for_value(0), 1);
        assert_eq!(bits_for_value(1), 1);
        assert_eq!(bits_for_value(2), 2);
        assert_eq!(bits_for_value(255), 8);
        assert_eq!(bits_for_value(256), 9);
    }

    #[test]
    fn composite_widths_add() {
        let m = (3u32, 5u64);
        assert_eq!(m.bit_width(), 2 + 3);
        assert_eq!(Some(7u32).bit_width(), 1 + 3);
        assert_eq!(None::<u32>.bit_width(), 1);
        assert_eq!((true, (), 2u32).bit_width(), 1 + 1 + 2);
    }
}
