//! Bit-width accounting for CONGEST messages.

/// A message that can cross one edge in one CONGEST round.
///
/// Implementors report their encoded width in bits; the [`crate::Simulator`]
/// checks every sent message against the per-round budget
/// (`budget_factor · ⌈log₂ n⌉` bits). The width should reflect a reasonable
/// wire encoding — e.g. a node id costs `⌈log₂ n⌉` bits, a tag costs
/// `⌈log₂ #variants⌉` bits — not Rust's in-memory layout.
///
/// Messages are `Send` so the simulator's multi-threaded round executor can
/// move them between worker shards; plain-data message types get this for
/// free.
pub trait CongestMessage: Clone + std::fmt::Debug + Send {
    /// Encoded width in bits.
    fn bit_width(&self) -> usize;

    /// Canonical wire encoding as the low [`Self::bit_width`] bits of a
    /// `u64`, when the type defines one (and fits in 64 bits).
    ///
    /// The fault layer flips bits in this encoding to model corruption;
    /// types returning `None` are uncorruptible in place, so a corruption
    /// fault degrades to a drop for them.
    fn encode_bits(&self) -> Option<u64> {
        None
    }

    /// Inverse of [`Self::encode_bits`]; `None` when the bits are not a
    /// valid encoding (a garbled frame the receiver must discard, never a
    /// panic).
    fn decode_bits(bits: u64) -> Option<Self> {
        let _ = bits;
        None
    }

    /// The message with `flip_mask` XOR-ed into its canonical encoding, or
    /// `None` when the type has no encoding or the flipped bits no longer
    /// decode.
    fn corrupted(&self, flip_mask: u64) -> Option<Self> {
        Self::decode_bits(self.encode_bits()? ^ flip_mask)
    }
}

/// Bits needed to address one of `count` distinct values (at least 1).
///
/// # Examples
///
/// ```
/// use amt_congest::bits_for_count;
/// assert_eq!(bits_for_count(1), 1);
/// assert_eq!(bits_for_count(2), 1);
/// assert_eq!(bits_for_count(1024), 10);
/// assert_eq!(bits_for_count(1025), 11);
/// ```
pub fn bits_for_count(count: usize) -> usize {
    if count <= 2 {
        1
    } else {
        (usize::BITS - (count - 1).leading_zeros()) as usize
    }
}

/// Bits needed to write the value `v` in binary (at least 1).
pub fn bits_for_value(v: u64) -> usize {
    if v < 2 {
        1
    } else {
        (u64::BITS - v.leading_zeros()) as usize
    }
}

impl CongestMessage for u32 {
    fn bit_width(&self) -> usize {
        bits_for_value(u64::from(*self))
    }
    fn encode_bits(&self) -> Option<u64> {
        Some(u64::from(*self))
    }
    fn decode_bits(bits: u64) -> Option<Self> {
        u32::try_from(bits).ok()
    }
}

impl CongestMessage for u64 {
    fn bit_width(&self) -> usize {
        bits_for_value(*self)
    }
    fn encode_bits(&self) -> Option<u64> {
        Some(*self)
    }
    fn decode_bits(bits: u64) -> Option<Self> {
        Some(bits)
    }
}

impl CongestMessage for () {
    fn bit_width(&self) -> usize {
        1
    }
    fn encode_bits(&self) -> Option<u64> {
        Some(0)
    }
    fn decode_bits(bits: u64) -> Option<Self> {
        (bits == 0).then_some(())
    }
}

impl CongestMessage for bool {
    fn bit_width(&self) -> usize {
        1
    }
    fn encode_bits(&self) -> Option<u64> {
        Some(u64::from(*self))
    }
    fn decode_bits(bits: u64) -> Option<Self> {
        match bits {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }
}

impl<A: CongestMessage, B: CongestMessage> CongestMessage for (A, B) {
    fn bit_width(&self) -> usize {
        self.0.bit_width() + self.1.bit_width()
    }
}

impl<A: CongestMessage, B: CongestMessage, C: CongestMessage> CongestMessage for (A, B, C) {
    fn bit_width(&self) -> usize {
        self.0.bit_width() + self.1.bit_width() + self.2.bit_width()
    }
}

impl<M: CongestMessage> CongestMessage for Option<M> {
    fn bit_width(&self) -> usize {
        1 + self.as_ref().map_or(0, CongestMessage::bit_width)
    }
    fn encode_bits(&self) -> Option<u64> {
        // Presence tag in bit 0, payload above it (payload must leave room
        // for the tag).
        match self {
            None => Some(0),
            Some(m) => {
                let payload = m.encode_bits()?;
                if payload >= 1 << 63 {
                    return None;
                }
                Some(1 | (payload << 1))
            }
        }
    }
    fn decode_bits(bits: u64) -> Option<Self> {
        if bits == 0 {
            Some(None)
        } else if bits & 1 == 1 {
            M::decode_bits(bits >> 1).map(Some)
        } else {
            // Tag says "absent" but payload bits are set: garbled frame.
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_for_value_edge_cases() {
        assert_eq!(bits_for_value(0), 1);
        assert_eq!(bits_for_value(1), 1);
        assert_eq!(bits_for_value(2), 2);
        assert_eq!(bits_for_value(255), 8);
        assert_eq!(bits_for_value(256), 9);
    }

    #[test]
    fn composite_widths_add() {
        let m = (3u32, 5u64);
        assert_eq!(m.bit_width(), 2 + 3);
        assert_eq!(Some(7u32).bit_width(), 1 + 3);
        assert_eq!(None::<u32>.bit_width(), 1);
        assert_eq!((true, (), 2u32).bit_width(), 1 + 1 + 2);
    }

    #[test]
    fn encode_decode_roundtrips() {
        assert_eq!(u64::decode_bits(17u64.encode_bits().unwrap()), Some(17));
        assert_eq!(u32::decode_bits(9u32.encode_bits().unwrap()), Some(9));
        assert_eq!(u32::decode_bits(u64::MAX), None);
        assert_eq!(bool::decode_bits(true.encode_bits().unwrap()), Some(true));
        assert_eq!(bool::decode_bits(2), None);
        assert_eq!(<()>::decode_bits(0), Some(()));
        assert_eq!(<()>::decode_bits(1), None);
        let some = Some(5u32);
        assert_eq!(
            Option::<u32>::decode_bits(some.encode_bits().unwrap()),
            Some(some)
        );
        assert_eq!(
            Option::<u32>::decode_bits(None::<u32>.encode_bits().unwrap()),
            Some(None)
        );
        // Tag bit cleared while payload bits remain set: garbled.
        assert_eq!(Option::<u32>::decode_bits(0b10), None);
    }

    #[test]
    fn corruption_flips_exactly_one_bit_or_garbles() {
        // Flipping a value bit of a u64 yields the XOR-ed value.
        assert_eq!(42u64.corrupted(1), Some(43));
        // Flipping the tag bit of Some(v) garbles the frame.
        assert_eq!(Some(5u32).corrupted(1), None);
        // Tuples have no canonical encoding: corruption degrades to a drop.
        assert_eq!((1u32, 2u32).corrupted(1), None);
        assert_eq!((1u32, 2u32).encode_bits(), None);
    }
}
