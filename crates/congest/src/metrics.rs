//! Round and traffic metrics recorded by the simulator.

/// Communication metrics of one simulated protocol execution.
///
/// All experiment tables in `amt-bench` report the `rounds` field of either
/// this struct or the analogous scheduler statistics in `amt-walks`; rounds
/// are always *measured* from the executed schedule, never derived from a
/// formula.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Synchronous rounds elapsed until termination.
    pub rounds: u64,
    /// Total messages delivered.
    pub messages: u64,
    /// Total bits delivered (sum of encoded message widths).
    pub bits: u64,
    /// Maximum number of messages delivered in any single round.
    pub peak_messages_per_round: u64,
}

impl Metrics {
    /// Merges metrics of two *sequential* executions (rounds add, peaks max).
    pub fn then(self, later: Metrics) -> Metrics {
        Metrics {
            rounds: self.rounds + later.rounds,
            messages: self.messages + later.messages,
            bits: self.bits + later.bits,
            peak_messages_per_round: self.peak_messages_per_round.max(later.peak_messages_per_round),
        }
    }

    /// Average messages per round (0 when no rounds elapsed).
    pub fn avg_messages_per_round(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.messages as f64 / self.rounds as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_merge_adds_rounds() {
        let a = Metrics { rounds: 3, messages: 10, bits: 100, peak_messages_per_round: 6 };
        let b = Metrics { rounds: 2, messages: 4, bits: 40, peak_messages_per_round: 8 };
        let c = a.then(b);
        assert_eq!(c.rounds, 5);
        assert_eq!(c.messages, 14);
        assert_eq!(c.bits, 140);
        assert_eq!(c.peak_messages_per_round, 8);
    }

    #[test]
    fn averages_handle_zero_rounds() {
        assert_eq!(Metrics::default().avg_messages_per_round(), 0.0);
        let m = Metrics { rounds: 4, messages: 10, ..Default::default() };
        assert!((m.avg_messages_per_round() - 2.5).abs() < 1e-12);
    }
}
