//! Round and traffic metrics recorded by the simulator.

/// Communication metrics of one simulated protocol execution.
///
/// All experiment tables in `amt-bench` report the `rounds` field of either
/// this struct or the analogous scheduler statistics in `amt-walks`; rounds
/// are always *measured* from the executed schedule, never derived from a
/// formula.
///
/// # Accounting contract
///
/// `messages` and `bits` count **delivered** traffic on both the clean and
/// the faulty execution paths: a message is counted exactly when it is
/// placed into the destination's next-round inbox. On the clean path every
/// staged message is delivered, so the totals coincide with send-side
/// accounting; on the faulty path dropped messages, undecodable corrupted
/// frames, and messages lost to a crashed destination never inflate the
/// totals (they are tracked by the fault counters instead). The same
/// delivery events drive [`Metrics::max_edge_congestion`], so the two views
/// are always consistent.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Synchronous rounds elapsed until termination.
    pub rounds: u64,
    /// Total messages delivered.
    pub messages: u64,
    /// Total bits delivered (sum of encoded message widths).
    pub bits: u64,
    /// Maximum number of messages delivered in any single round.
    pub peak_messages_per_round: u64,
    /// Maximum, over undirected edges, of the total messages delivered
    /// across that edge (in either direction) during the run. The full
    /// per-edge breakdown is available from `Simulator::edge_load`.
    pub max_edge_congestion: u64,
    /// Messages discarded by injected drop faults.
    pub dropped: u64,
    /// Messages whose encoding had a bit flipped by an injected fault
    /// (whether or not the corrupted frame was still deliverable).
    pub corrupted: u64,
    /// Messages whose delivery an injected fault postponed.
    pub delayed: u64,
    /// Delayed messages that were lost because their destination
    /// crash-stopped before the injected delay elapsed (each also counts in
    /// [`Metrics::delayed`] and has a `LostToCrash` fault event).
    pub lost_to_crash: u64,
    /// Nodes crash-stopped by the fault plan.
    pub crashed: u64,
    /// Messages lost to topology churn: staged over an edge that was down,
    /// or addressed to a node that was offline, in the delivery round (each
    /// has a `MessageLost` churn event).
    pub lost_to_churn: u64,
    /// Node rejoins completed by the churn plan (each crash-restart counts
    /// once, at the round the node comes back).
    pub restarts: u64,
}

impl Metrics {
    /// Merges metrics of two *sequential* executions (rounds add, peaks —
    /// including the per-run edge-congestion maximum — take the max).
    pub fn then(self, later: Metrics) -> Metrics {
        Metrics {
            rounds: self.rounds + later.rounds,
            messages: self.messages + later.messages,
            bits: self.bits + later.bits,
            peak_messages_per_round: self
                .peak_messages_per_round
                .max(later.peak_messages_per_round),
            max_edge_congestion: self.max_edge_congestion.max(later.max_edge_congestion),
            dropped: self.dropped + later.dropped,
            corrupted: self.corrupted + later.corrupted,
            delayed: self.delayed + later.delayed,
            lost_to_crash: self.lost_to_crash + later.lost_to_crash,
            crashed: self.crashed + later.crashed,
            lost_to_churn: self.lost_to_churn + later.lost_to_churn,
            restarts: self.restarts + later.restarts,
        }
    }

    /// Total injected message faults (drops + corruptions + delays).
    pub fn message_faults(&self) -> u64 {
        self.dropped + self.corrupted + self.delayed
    }

    /// Average messages per round (0 when no rounds elapsed).
    pub fn avg_messages_per_round(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.messages as f64 / self.rounds as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Field-drift guard: both sides and the expected result are exhaustive
    /// struct literals (no `..Default::default()`), so adding a `Metrics`
    /// field without deciding how [`Metrics::then`] merges it fails to
    /// compile here instead of silently dropping the new counter (the
    /// pre-PR2 `lost_to_crash` failure mode).
    #[test]
    fn sequential_merge_adds_rounds() {
        let a = Metrics {
            rounds: 3,
            messages: 10,
            bits: 100,
            peak_messages_per_round: 6,
            max_edge_congestion: 4,
            dropped: 1,
            corrupted: 5,
            delayed: 2,
            lost_to_crash: 2,
            crashed: 3,
            lost_to_churn: 4,
            restarts: 1,
        };
        let b = Metrics {
            rounds: 2,
            messages: 4,
            bits: 40,
            peak_messages_per_round: 8,
            max_edge_congestion: 3,
            dropped: 2,
            corrupted: 1,
            delayed: 3,
            lost_to_crash: 1,
            crashed: 1,
            lost_to_churn: 2,
            restarts: 2,
        };
        let c = a.then(b);
        assert_eq!(
            c,
            Metrics {
                rounds: 5,
                messages: 14,
                bits: 140,
                peak_messages_per_round: 8,
                max_edge_congestion: 4,
                dropped: 3,
                corrupted: 6,
                delayed: 5,
                lost_to_crash: 3,
                crashed: 4,
                lost_to_churn: 6,
                restarts: 3,
            }
        );
        assert_eq!(c.message_faults(), 14);
    }

    #[test]
    fn averages_handle_zero_rounds() {
        assert_eq!(Metrics::default().avg_messages_per_round(), 0.0);
        let m = Metrics {
            rounds: 4,
            messages: 10,
            ..Default::default()
        };
        assert!((m.avg_messages_per_round() - 2.5).abs() < 1e-12);
    }
}
