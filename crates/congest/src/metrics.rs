//! Round and traffic metrics recorded by the simulator.

/// Communication metrics of one simulated protocol execution.
///
/// All experiment tables in `amt-bench` report the `rounds` field of either
/// this struct or the analogous scheduler statistics in `amt-walks`; rounds
/// are always *measured* from the executed schedule, never derived from a
/// formula.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Synchronous rounds elapsed until termination.
    pub rounds: u64,
    /// Total messages delivered.
    pub messages: u64,
    /// Total bits delivered (sum of encoded message widths).
    pub bits: u64,
    /// Maximum number of messages delivered in any single round.
    pub peak_messages_per_round: u64,
    /// Messages discarded by injected drop faults.
    pub dropped: u64,
    /// Messages whose encoding had a bit flipped by an injected fault
    /// (whether or not the corrupted frame was still deliverable).
    pub corrupted: u64,
    /// Messages whose delivery an injected fault postponed.
    pub delayed: u64,
    /// Nodes crash-stopped by the fault plan.
    pub crashed: u64,
}

impl Metrics {
    /// Merges metrics of two *sequential* executions (rounds add, peaks max).
    pub fn then(self, later: Metrics) -> Metrics {
        Metrics {
            rounds: self.rounds + later.rounds,
            messages: self.messages + later.messages,
            bits: self.bits + later.bits,
            peak_messages_per_round: self
                .peak_messages_per_round
                .max(later.peak_messages_per_round),
            dropped: self.dropped + later.dropped,
            corrupted: self.corrupted + later.corrupted,
            delayed: self.delayed + later.delayed,
            crashed: self.crashed + later.crashed,
        }
    }

    /// Total injected message faults (drops + corruptions + delays).
    pub fn message_faults(&self) -> u64 {
        self.dropped + self.corrupted + self.delayed
    }

    /// Average messages per round (0 when no rounds elapsed).
    pub fn avg_messages_per_round(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.messages as f64 / self.rounds as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_merge_adds_rounds() {
        let a = Metrics {
            rounds: 3,
            messages: 10,
            bits: 100,
            peak_messages_per_round: 6,
            dropped: 1,
            ..Default::default()
        };
        let b = Metrics {
            rounds: 2,
            messages: 4,
            bits: 40,
            peak_messages_per_round: 8,
            dropped: 2,
            corrupted: 1,
            delayed: 3,
            crashed: 1,
        };
        let c = a.then(b);
        assert_eq!(c.rounds, 5);
        assert_eq!(c.messages, 14);
        assert_eq!(c.bits, 140);
        assert_eq!(c.peak_messages_per_round, 8);
        assert_eq!(c.dropped, 3);
        assert_eq!(c.corrupted, 1);
        assert_eq!(c.delayed, 3);
        assert_eq!(c.crashed, 1);
        assert_eq!(c.message_faults(), 7);
    }

    #[test]
    fn averages_handle_zero_rounds() {
        assert_eq!(Metrics::default().avg_messages_per_round(), 0.0);
        let m = Metrics {
            rounds: 4,
            messages: 10,
            ..Default::default()
        };
        assert!((m.avg_messages_per_round() - 2.5).abs() < 1e-12);
    }
}
