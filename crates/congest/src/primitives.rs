//! Classic CONGEST building blocks, implemented as [`Protocol`]s and wrapped
//! in driver functions that return structured results plus measured
//! [`Metrics`].
//!
//! These are the standard tools the distributed-MST literature builds on
//! (flooding, BFS trees, convergecast, leader election, pipelined upcast);
//! the baselines in `amt-mst` and the seed dissemination of the hierarchical
//! construction are assembled from them.

use crate::{bits_for_value, Ctx, Metrics, Protocol, Result, RunConfig, Simulator};
use amt_graphs::{Graph, NodeId};

// ---------------------------------------------------------------------------
// Flooding broadcast
// ---------------------------------------------------------------------------

/// Flooding protocol: the source's value reaches every node.
struct Flood {
    value: Option<u64>,
    fresh: bool,
}

impl Protocol for Flood {
    type Message = u64;

    // Mail-driven: empty-inbox rounds are no-ops, so skipping is safe.
    const SPARSE_AWARE: bool = true;

    fn init(&mut self, ctx: &mut Ctx<'_, u64>) {
        if let (Some(v), true) = (self.value, self.fresh) {
            ctx.send_all(v);
            self.fresh = false;
        }
    }

    fn round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &[(usize, u64)]) {
        for &(_, v) in inbox {
            if self.value.is_none() {
                self.value = Some(v);
                self.fresh = true;
            }
        }
        if self.fresh {
            ctx.send_all(self.value.expect("fresh implies value"));
            self.fresh = false;
        }
    }
}

/// Floods `value` from `source` to all nodes.
///
/// Returns the per-node learned values (all equal to `value` on a connected
/// graph) and the measured metrics; round count is the eccentricity of the
/// source plus one quiescence-detection round.
pub fn broadcast(
    g: &Graph,
    source: NodeId,
    value: u64,
    seed: u64,
) -> Result<(Vec<Option<u64>>, Metrics)> {
    let nodes = g
        .nodes()
        .map(|v| Flood {
            value: (v == source).then_some(value),
            fresh: v == source,
        })
        .collect();
    let mut sim = Simulator::new(g, nodes, seed)?;
    let metrics = sim.run(&RunConfig::default())?;
    Ok((sim.nodes().iter().map(|p| p.value).collect(), metrics))
}

// ---------------------------------------------------------------------------
// Distributed BFS tree
// ---------------------------------------------------------------------------

/// Result of distributed BFS-tree construction.
#[derive(Clone, Debug)]
pub struct DistBfsTree {
    /// The root the tree was grown from.
    pub root: NodeId,
    /// Parent of each node (`None` at the root / unreached nodes).
    pub parent: Vec<Option<NodeId>>,
    /// Port towards the parent, per node.
    pub parent_port: Vec<Option<usize>>,
    /// Ports towards children, per node.
    pub child_ports: Vec<Vec<usize>>,
    /// BFS depth (root = 0); `u32::MAX` when unreached.
    pub depth: Vec<u32>,
}

impl DistBfsTree {
    /// Height of the tree (max finite depth).
    pub fn height(&self) -> u32 {
        self.depth
            .iter()
            .copied()
            .filter(|&d| d != u32::MAX)
            .max()
            .unwrap_or(0)
    }
}

#[derive(Clone, Copy, Debug)]
enum BfsMsg {
    /// "I am at depth d; join me."
    Announce(u32),
    /// "You are my parent."
    Child,
}

impl crate::CongestMessage for BfsMsg {
    fn bit_width(&self) -> usize {
        match self {
            BfsMsg::Announce(d) => 1 + bits_for_value(u64::from(*d)),
            BfsMsg::Child => 1,
        }
    }
}

struct BfsNode {
    is_root: bool,
    depth: Option<u32>,
    parent_port: Option<usize>,
    child_ports: Vec<usize>,
    fresh: bool,
}

impl Protocol for BfsNode {
    type Message = BfsMsg;

    // Mail-driven: empty-inbox rounds are no-ops, so skipping is safe.
    const SPARSE_AWARE: bool = true;

    fn init(&mut self, ctx: &mut Ctx<'_, BfsMsg>) {
        if self.is_root {
            self.depth = Some(0);
            ctx.send_all(BfsMsg::Announce(0));
        }
    }

    fn round(&mut self, ctx: &mut Ctx<'_, BfsMsg>, inbox: &[(usize, BfsMsg)]) {
        for &(port, msg) in inbox {
            match msg {
                BfsMsg::Announce(d) => {
                    if self.depth.is_none() {
                        self.depth = Some(d + 1);
                        self.parent_port = Some(port);
                        self.fresh = true;
                    }
                }
                BfsMsg::Child => self.child_ports.push(port),
            }
        }
        if self.fresh {
            self.fresh = false;
            let d = self.depth.expect("fresh implies depth");
            let parent = self.parent_port.expect("non-root joined via a port");
            for port in 0..ctx.degree() {
                if port == parent {
                    ctx.send(port, BfsMsg::Child);
                } else {
                    ctx.send(port, BfsMsg::Announce(d));
                }
            }
        }
    }
}

/// Builds a BFS tree from `root` distributedly (≈ eccentricity + 1 rounds).
pub fn build_bfs_tree(g: &Graph, root: NodeId, seed: u64) -> Result<(DistBfsTree, Metrics)> {
    let nodes = g
        .nodes()
        .map(|v| BfsNode {
            is_root: v == root,
            depth: None,
            parent_port: None,
            child_ports: Vec::new(),
            fresh: false,
        })
        .collect();
    let mut sim = Simulator::new(g, nodes, seed)?;
    let metrics = sim.run(&RunConfig::default())?;
    let parent: Vec<Option<NodeId>> = sim
        .nodes()
        .iter()
        .enumerate()
        .map(|(v, p)| {
            p.parent_port
                .map(|port| g.neighbor_at(NodeId::from(v), port).0)
        })
        .collect();
    let tree = DistBfsTree {
        root,
        parent,
        parent_port: sim.nodes().iter().map(|p| p.parent_port).collect(),
        child_ports: sim.nodes().iter().map(|p| p.child_ports.clone()).collect(),
        depth: sim
            .nodes()
            .iter()
            .map(|p| p.depth.unwrap_or(u32::MAX))
            .collect(),
    };
    Ok((tree, metrics))
}

// ---------------------------------------------------------------------------
// Convergecast (associative aggregation towards the root of a tree)
// ---------------------------------------------------------------------------

struct CastNode {
    parent_port: Option<usize>,
    pending_children: usize,
    acc: u64,
    combine: fn(u64, u64) -> u64,
    sent: bool,
}

impl Protocol for CastNode {
    type Message = u64;

    fn init(&mut self, ctx: &mut Ctx<'_, u64>) {
        self.try_report(ctx);
    }

    fn round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &[(usize, u64)]) {
        for &(_, v) in inbox {
            self.acc = (self.combine)(self.acc, v);
            self.pending_children -= 1;
        }
        self.try_report(ctx);
    }
}

impl CastNode {
    fn try_report(&mut self, ctx: &mut Ctx<'_, u64>) {
        if self.pending_children == 0 && !self.sent {
            if let Some(port) = self.parent_port {
                ctx.send(port, self.acc);
            }
            self.sent = true;
        }
    }
}

/// Aggregates `values` towards `tree.root` with the associative `combine`
/// (e.g. `u64::min`, `u64::wrapping_add`); returns the root's aggregate.
/// Takes height-of-tree rounds.
pub fn convergecast(
    g: &Graph,
    tree: &DistBfsTree,
    values: &[u64],
    combine: fn(u64, u64) -> u64,
    seed: u64,
) -> Result<(u64, Metrics)> {
    let nodes = g
        .nodes()
        .map(|v| CastNode {
            parent_port: tree.parent_port[v.index()],
            pending_children: tree.child_ports[v.index()].len(),
            acc: values[v.index()],
            combine,
            sent: false,
        })
        .collect();
    let mut sim = Simulator::new(g, nodes, seed)?;
    let metrics = sim.run(&RunConfig::default())?;
    Ok((sim.nodes()[tree.root.index()].acc, metrics))
}

// ---------------------------------------------------------------------------
// Leader election by max-id flooding
// ---------------------------------------------------------------------------

/// Elects the maximum-id node by flooding; every node learns the leader.
/// Takes ≈ diameter rounds.
pub fn elect_leader(g: &Graph, seed: u64) -> Result<(NodeId, Metrics)> {
    struct Elect {
        best: u64,
        fresh: bool,
    }
    impl Protocol for Elect {
        type Message = u64;
        fn init(&mut self, ctx: &mut Ctx<'_, u64>) {
            ctx.send_all(self.best);
        }
        fn round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &[(usize, u64)]) {
            for &(_, v) in inbox {
                if v > self.best {
                    self.best = v;
                    self.fresh = true;
                }
            }
            if self.fresh {
                self.fresh = false;
                ctx.send_all(self.best);
            }
        }
    }
    let nodes = g
        .nodes()
        .map(|v| Elect {
            best: v.0 as u64,
            fresh: false,
        })
        .collect();
    let mut sim = Simulator::new(g, nodes, seed)?;
    let metrics = sim.run(&RunConfig::default())?;
    let leader = NodeId::from(sim.nodes()[0].best as usize);
    debug_assert!(sim.nodes().iter().all(|p| p.best == leader.0 as u64));
    Ok((leader, metrics))
}

// ---------------------------------------------------------------------------
// Pipelined upcast over a tree
// ---------------------------------------------------------------------------

struct PipeNode {
    parent_port: Option<usize>,
    queue: std::collections::BinaryHeap<std::cmp::Reverse<u64>>,
    collected: Vec<u64>,
}

impl Protocol for PipeNode {
    type Message = u64;

    fn init(&mut self, ctx: &mut Ctx<'_, u64>) {
        self.step(ctx);
    }

    fn round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &[(usize, u64)]) {
        for &(_, v) in inbox {
            if self.parent_port.is_some() {
                self.queue.push(std::cmp::Reverse(v));
            } else {
                self.collected.push(v);
            }
        }
        self.step(ctx);
    }
}

impl PipeNode {
    fn step(&mut self, ctx: &mut Ctx<'_, u64>) {
        if let Some(port) = self.parent_port {
            if let Some(std::cmp::Reverse(v)) = self.queue.pop() {
                ctx.send(port, v);
            }
        }
    }
}

/// Streams every item to the root of `tree`, one item per edge per round,
/// smallest-first (the classic pipelining used by `O(D + √n)` MST
/// algorithms). Returns all items collected at the root, sorted.
///
/// Round count is ≈ height + (maximum number of items funnelled through a
/// single edge) — measured, not assumed.
pub fn pipelined_upcast(
    g: &Graph,
    tree: &DistBfsTree,
    items: Vec<Vec<u64>>,
    seed: u64,
) -> Result<(Vec<u64>, Metrics)> {
    let nodes = g
        .nodes()
        .map(|v| {
            let is_root = v == tree.root;
            PipeNode {
                parent_port: tree.parent_port[v.index()],
                queue: if is_root {
                    Default::default()
                } else {
                    items[v.index()]
                        .iter()
                        .map(|&x| std::cmp::Reverse(x))
                        .collect()
                },
                collected: if is_root {
                    items[v.index()].clone()
                } else {
                    Vec::new()
                },
            }
        })
        .collect();
    let mut sim = Simulator::new(g, nodes, seed)?;
    let metrics = sim.run(&RunConfig::default())?;
    let mut collected = sim.nodes()[tree.root.index()].collected.clone();
    collected.sort_unstable();
    Ok((collected, metrics))
}

// ---------------------------------------------------------------------------
// Broadcast over a tree (downcast)
// ---------------------------------------------------------------------------

struct DownNode {
    child_ports: Vec<usize>,
    value: Option<u64>,
    fresh: bool,
}

impl Protocol for DownNode {
    type Message = u64;

    fn init(&mut self, ctx: &mut Ctx<'_, u64>) {
        self.push(ctx);
    }

    fn round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &[(usize, u64)]) {
        for &(_, v) in inbox {
            if self.value.is_none() {
                self.value = Some(v);
                self.fresh = true;
            }
        }
        self.push(ctx);
    }
}

impl DownNode {
    fn push(&mut self, ctx: &mut Ctx<'_, u64>) {
        if self.fresh {
            self.fresh = false;
            let v = self.value.expect("fresh implies value");
            for port in self.child_ports.clone() {
                ctx.send(port, v);
            }
        }
    }
}

/// Pushes `value` from the root down `tree` to every node (height rounds).
pub fn tree_downcast(
    g: &Graph,
    tree: &DistBfsTree,
    value: u64,
    seed: u64,
) -> Result<(Vec<Option<u64>>, Metrics)> {
    let nodes = g
        .nodes()
        .map(|v| DownNode {
            child_ports: tree.child_ports[v.index()].clone(),
            value: (v == tree.root).then_some(value),
            fresh: v == tree.root,
        })
        .collect();
    let mut sim = Simulator::new(g, nodes, seed)?;
    let metrics = sim.run(&RunConfig::default())?;
    Ok((sim.nodes().iter().map(|p| p.value).collect(), metrics))
}

// ---------------------------------------------------------------------------
// Composite primitives
// ---------------------------------------------------------------------------

/// Aggregates `values` with `combine` and informs **every** node of the
/// result: convergecast to the root of `tree`, then downcast. The classic
/// "global aggregate" building block (2·height rounds).
pub fn aggregate_to_all(
    g: &Graph,
    tree: &DistBfsTree,
    values: &[u64],
    combine: fn(u64, u64) -> u64,
    seed: u64,
) -> Result<(u64, Metrics)> {
    let (agg, m1) = convergecast(g, tree, values, combine, seed)?;
    let (learned, m2) = tree_downcast(g, tree, agg, seed ^ 0xA66)?;
    debug_assert!(learned.iter().all(|&v| v == Some(agg)));
    Ok((agg, m1.then(m2)))
}

/// Counts the nodes of the graph distributedly (leader election + BFS +
/// sum aggregation) — the standard way nodes learn `n` when it is not
/// given, priced honestly.
pub fn count_nodes(g: &Graph, seed: u64) -> Result<(u64, Metrics)> {
    let (leader, m1) = elect_leader(g, seed)?;
    let (tree, m2) = build_bfs_tree(g, leader, seed ^ 0xC0)?;
    let ones = vec![1u64; g.len()];
    let (n, m3) = aggregate_to_all(g, &tree, &ones, u64::wrapping_add, seed ^ 0xC1)?;
    Ok((n, m1.then(m2).then(m3)))
}

/// Informs every node of the maximum degree Δ (needed before running
/// 2Δ-regular walks when Δ is not globally known).
pub fn discover_max_degree(g: &Graph, seed: u64) -> Result<(u64, Metrics)> {
    let (leader, m1) = elect_leader(g, seed)?;
    let (tree, m2) = build_bfs_tree(g, leader, seed ^ 0xD0)?;
    let degrees: Vec<u64> = g.nodes().map(|v| g.degree(v) as u64).collect();
    let (delta, m3) = aggregate_to_all(g, &tree, &degrees, u64::max, seed ^ 0xD1)?;
    Ok((delta, m1.then(m2).then(m3)))
}

// ---------------------------------------------------------------------------
// Pipelined downcast over a tree
// ---------------------------------------------------------------------------

struct PipeDownNode {
    child_ports: Vec<usize>,
    queue: std::collections::VecDeque<u64>,
    received: Vec<u64>,
}

impl Protocol for PipeDownNode {
    type Message = u64;

    fn init(&mut self, ctx: &mut Ctx<'_, u64>) {
        self.step(ctx);
    }

    fn round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &[(usize, u64)]) {
        for &(_, v) in inbox {
            self.received.push(v);
            self.queue.push_back(v);
        }
        self.step(ctx);
    }
}

impl PipeDownNode {
    fn step(&mut self, ctx: &mut Ctx<'_, u64>) {
        if let Some(v) = self.queue.pop_front() {
            for port in self.child_ports.clone() {
                ctx.send(port, v);
            }
        }
    }
}

/// Streams `items` from the root down `tree` to every node, one item per
/// edge per round (the pipelined broadcast used after a centralized merge
/// decision). Returns the items received per node (root excluded) and the
/// measured metrics (≈ height + #items rounds).
pub fn pipelined_downcast(
    g: &Graph,
    tree: &DistBfsTree,
    items: Vec<u64>,
    seed: u64,
) -> Result<(Vec<Vec<u64>>, Metrics)> {
    let nodes = g
        .nodes()
        .map(|v| PipeDownNode {
            child_ports: tree.child_ports[v.index()].clone(),
            queue: if v == tree.root {
                items.iter().copied().collect()
            } else {
                Default::default()
            },
            received: Vec::new(),
        })
        .collect();
    let mut sim = Simulator::new(g, nodes, seed)?;
    let metrics = sim.run(&RunConfig::default())?;
    Ok((
        sim.nodes().iter().map(|p| p.received.clone()).collect(),
        metrics,
    ))
}

// ---------------------------------------------------------------------------
// Reliability sublayer (ack/retransmit over faulty links)
// ---------------------------------------------------------------------------

pub mod reliable {
    //! Stop-and-wait ARQ over the fault-injected simulator.
    //!
    //! [`ReliableLink`] wraps a protocol's per-port traffic in
    //! sequence-numbered, checksummed [`Reliable`] frames: every data frame
    //! is retransmitted with exponential backoff until acknowledged (acks
    //! piggyback on reverse data traffic when possible), duplicates are
    //! filtered by sequence number, and a 4-bit XOR-fold checksum over the
    //! whole frame turns any single-bit corruption into a detected loss —
    //! which the retransmission then repairs.
    //!
    //! The overhead is accounted honestly: every frame pays the
    //! tag/seq/checksum/ack header bits on the wire, retransmissions and
    //! bare acks count as messages, and the round cost of timeouts shows up
    //! in the measured [`Metrics`].

    use super::{Ctx, Graph, Metrics, NodeId, Protocol, Result, RunConfig, Simulator};
    use crate::faults::FaultPlan;
    use crate::profile::{class, TrafficClass};
    use crate::CongestMessage;
    use std::collections::VecDeque;

    /// On-wire sequence numbers are 12 bits.
    const SEQ_BITS: u32 = 12;
    const SEQ_MASK: u64 = (1 << SEQ_BITS) - 1;
    /// Payload field of a data frame (the rest of a 64-bit codeword after
    /// the header).
    const PAYLOAD_BITS: u32 = 34;

    /// XOR-fold of all nibbles of `x` (4-bit checksum): flipping any single
    /// bit of `x` flips exactly one bit of the fold.
    fn fold4(mut x: u64) -> u64 {
        x ^= x >> 32;
        x ^= x >> 16;
        x ^= x >> 8;
        x ^= x >> 4;
        x & 0xF
    }

    /// One ARQ frame.
    ///
    /// Wire layout (low bits first): `[tag:1][seq:12][check:4]`, then for
    /// data frames `[ack?:1][ack:12][payload:≤34]`. The checksum covers the
    /// entire frame (with the checksum field zeroed), so any single-bit
    /// flip is detected and the frame discarded — recovered by
    /// retransmission rather than delivered corrupt.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub enum Reliable<M> {
        /// Payload frame, optionally piggybacking an ack of reverse traffic.
        Data {
            /// Sequence number of this frame (mod 2¹²).
            seq: u32,
            /// Piggybacked acknowledgement of the peer's data frame.
            ack: Option<u32>,
            /// The wrapped protocol message.
            payload: M,
        },
        /// Bare acknowledgement (when there is no reverse data to ride on).
        Ack {
            /// Sequence number being acknowledged.
            seq: u32,
        },
    }

    impl<M: CongestMessage> CongestMessage for Reliable<M> {
        fn bit_width(&self) -> usize {
            match self {
                // tag + seq + check.
                Reliable::Ack { .. } => 17,
                // tag + seq + check + ack-flag + ack field + payload.
                Reliable::Data { payload, .. } => 30 + payload.bit_width(),
            }
        }

        fn encode_bits(&self) -> Option<u64> {
            let mut bits = match self {
                Reliable::Ack { seq } => 1 | ((u64::from(*seq) & SEQ_MASK) << 1),
                Reliable::Data { seq, ack, payload } => {
                    let p = payload.encode_bits()?;
                    if p >= 1 << PAYLOAD_BITS {
                        return None;
                    }
                    let mut bits = (u64::from(*seq) & SEQ_MASK) << 1;
                    if let Some(a) = ack {
                        bits |= 1 << 17;
                        bits |= (u64::from(*a) & SEQ_MASK) << 18;
                    }
                    bits | (p << 30)
                }
            };
            bits |= fold4(bits) << 13;
            Some(bits)
        }

        fn decode_bits(bits: u64) -> Option<Self> {
            let check = (bits >> 13) & 0xF;
            let cleared = bits & !(0xFu64 << 13);
            if fold4(cleared) != check {
                return None;
            }
            let seq = ((bits >> 1) & SEQ_MASK) as u32;
            if bits & 1 == 1 {
                // Ack frames carry nothing above the checksum.
                (bits >> 17 == 0).then_some(Reliable::Ack { seq })
            } else {
                let payload = M::decode_bits(bits >> 30)?;
                let ack_field = ((bits >> 18) & SEQ_MASK) as u32;
                let ack = if (bits >> 17) & 1 == 1 {
                    Some(ack_field)
                } else if ack_field != 0 {
                    return None;
                } else {
                    None
                };
                Some(Reliable::Data { seq, ack, payload })
            }
        }
    }

    struct Inflight<M> {
        seq: u32,
        msg: M,
        next_retry: u64,
        attempts: u32,
    }

    struct PortState<M> {
        queue: VecDeque<M>,
        inflight: Option<Inflight<M>>,
        next_seq: u32,
        want: u32,
        pending_ack: Option<u32>,
        failed_after: Option<u32>,
    }

    impl<M> PortState<M> {
        fn new() -> Self {
            PortState {
                queue: VecDeque::new(),
                inflight: None,
                next_seq: 0,
                want: 0,
                pending_ack: None,
                failed_after: None,
            }
        }
    }

    /// Per-node stop-and-wait ARQ state over every port.
    ///
    /// A protocol owns one link, calls [`ReliableLink::send`] instead of
    /// `ctx.send`, feeds its inbox through [`ReliableLink::deliver`], and
    /// calls [`ReliableLink::pump`] once per round to emit (re)transmissions
    /// and acks. [`ReliableLink::idle`] is the local termination signal.
    pub struct ReliableLink<M> {
        ports: Vec<PortState<M>>,
        /// Base retransmission timeout in rounds (doubles per attempt).
        timeout: u64,
        /// Transmissions per frame before the port is declared failed.
        max_attempts: u32,
        /// Traffic class first transmissions of data frames are tagged
        /// with; retransmissions and bare acks use the shared
        /// [`class::REL_RETRANSMIT`] / [`class::REL_ACK`] classes.
        payload_class: TrafficClass,
    }

    impl<M: CongestMessage> ReliableLink<M> {
        /// A link over `degree` ports with the given base `timeout` (rounds
        /// before the first retransmission; doubles each attempt, capped at
        /// 16× the base) and `max_attempts` transmission budget per frame.
        ///
        /// # Give-up latency bound
        ///
        /// With effective base timeout `t = timeout.max(1)` and budget
        /// `A = max_attempts.max(1)`, the wait after the `a`-th
        /// transmission is `t << (a − 1).min(4)`, so a frame whose peer
        /// never acks is declared failed (visible through
        /// [`Self::failures`]) **exactly**
        ///
        /// ```text
        /// t · (2^min(A,5) − 1  +  16 · max(A − 5, 0))
        /// ```
        ///
        /// rounds after its first transmission: geometric up to the 16×
        /// backoff cap, then linear in `A` — never exponential. Healing
        /// drivers size their phase budgets against this bound; the
        /// `give_up_latency_is_exactly_the_documented_bound` test pins it
        /// for a grid of `(t, A)`.
        pub fn new(degree: usize, timeout: u64, max_attempts: u32) -> Self {
            ReliableLink {
                ports: (0..degree).map(|_| PortState::new()).collect(),
                timeout: timeout.max(1),
                max_attempts: max_attempts.max(1),
                payload_class: class::REL_PAYLOAD,
            }
        }

        /// Tags first transmissions of data frames with `class` instead of
        /// the default [`class::REL_PAYLOAD`], so the wrapping protocol's
        /// traffic shows up under its own name in a [`TrafficProfile`].
        ///
        /// [`TrafficProfile`]: crate::profile::TrafficProfile
        pub fn with_payload_class(mut self, class: TrafficClass) -> Self {
            self.payload_class = class;
            self
        }

        /// Queues `msg` for reliable delivery over `port`.
        pub fn send(&mut self, port: usize, msg: M) {
            self.ports[port].queue.push_back(msg);
        }

        /// Queues `msg` on every port.
        pub fn send_all(&mut self, msg: M) {
            for port in 0..self.ports.len() {
                self.ports[port].queue.push_back(msg.clone());
            }
        }

        /// Processes one round's inbox: consumes acks, filters duplicates,
        /// schedules acks for received data, and returns the fresh payloads
        /// in arrival order as `(port, message)`.
        pub fn deliver(&mut self, inbox: &[(usize, Reliable<M>)]) -> Vec<(usize, M)> {
            let mut fresh = Vec::new();
            for (port, frame) in inbox {
                let st = &mut self.ports[*port];
                match frame {
                    Reliable::Ack { seq } => {
                        if st.inflight.as_ref().is_some_and(|f| f.seq == *seq) {
                            st.inflight = None;
                        }
                    }
                    Reliable::Data { seq, ack, payload } => {
                        if let Some(a) = ack {
                            if st.inflight.as_ref().is_some_and(|f| f.seq == *a) {
                                st.inflight = None;
                            }
                        }
                        // Always (re-)ack: a duplicate means our previous
                        // ack was lost.
                        st.pending_ack = Some(*seq);
                        if *seq == st.want {
                            st.want = (st.want + 1) & SEQ_MASK as u32;
                            fresh.push((*port, payload.clone()));
                        }
                    }
                }
            }
            fresh
        }

        /// Emits at most one frame per port this round: a due
        /// retransmission, a new data frame, or a bare ack — data frames
        /// piggyback any pending ack.
        pub fn pump(&mut self, ctx: &mut Ctx<'_, Reliable<M>>) {
            let round = ctx.round();
            for port in 0..self.ports.len() {
                let timeout = self.timeout;
                let max_attempts = self.max_attempts;
                let st = &mut self.ports[port];
                // Give up on a frame that exhausted its budget; the
                // protocol observes this through `failures`.
                if st
                    .inflight
                    .as_ref()
                    .is_some_and(|f| f.next_retry <= round && f.attempts >= max_attempts)
                {
                    let f = st.inflight.take().expect("checked above");
                    st.failed_after = Some(f.attempts);
                }
                if let Some(f) = &mut st.inflight {
                    if f.next_retry <= round {
                        f.attempts += 1;
                        // Exponential backoff, capped at 16× the base
                        // timeout so give-up latency stays bounded.
                        f.next_retry = round + (timeout << (f.attempts - 1).min(4));
                        let frame = Reliable::Data {
                            seq: f.seq,
                            ack: st.pending_ack.take(),
                            payload: f.msg.clone(),
                        };
                        ctx.send_classed(port, frame, class::REL_RETRANSMIT);
                        continue;
                    }
                } else if let Some(msg) = st.queue.pop_front() {
                    let seq = st.next_seq;
                    st.next_seq = (st.next_seq + 1) & SEQ_MASK as u32;
                    st.inflight = Some(Inflight {
                        seq,
                        msg: msg.clone(),
                        next_retry: round + timeout,
                        attempts: 1,
                    });
                    let frame = Reliable::Data {
                        seq,
                        ack: st.pending_ack.take(),
                        payload: msg,
                    };
                    ctx.send_classed(port, frame, self.payload_class);
                    continue;
                }
                if let Some(seq) = st.pending_ack.take() {
                    ctx.send_classed(port, Reliable::Ack { seq }, class::REL_ACK);
                }
            }
        }

        /// `true` when nothing is queued, in flight, or awaiting an ack —
        /// the local "all my traffic is settled" signal.
        pub fn idle(&self) -> bool {
            self.ports
                .iter()
                .all(|st| st.queue.is_empty() && st.inflight.is_none() && st.pending_ack.is_none())
        }

        /// Ports whose peer never acknowledged within the attempt budget,
        /// as `(port, attempts made)` — the detection signal for crashed
        /// neighbors.
        pub fn failures(&self) -> Vec<(usize, u32)> {
            self.ports
                .iter()
                .enumerate()
                .filter_map(|(p, st)| st.failed_after.map(|a| (p, a)))
                .collect()
        }

        /// `true` when `port` has exhausted its retransmission budget.
        pub fn port_failed(&self, port: usize) -> bool {
            self.ports[port].failed_after.is_some()
        }
    }

    /// Flooding broadcast over [`ReliableLink`]s: completes on any connected
    /// set of live nodes despite drops, corruption, delays, and crashes
    /// allowed by `plan`.
    struct ReliableFlood {
        value: Option<u64>,
        link: ReliableLink<u64>,
        spread: bool,
    }

    impl ReliableFlood {
        fn spread_if_fresh(&mut self) {
            if let (Some(v), false) = (self.value, self.spread) {
                self.spread = true;
                self.link.send_all(v);
            }
        }
    }

    impl Protocol for ReliableFlood {
        type Message = Reliable<u64>;

        fn init(&mut self, ctx: &mut Ctx<'_, Reliable<u64>>) {
            self.spread_if_fresh();
            self.link.pump(ctx);
        }

        fn round(&mut self, ctx: &mut Ctx<'_, Reliable<u64>>, inbox: &[(usize, Reliable<u64>)]) {
            for (_, v) in self.link.deliver(inbox) {
                if self.value.is_none() {
                    self.value = Some(v);
                }
            }
            self.spread_if_fresh();
            self.link.pump(ctx);
        }

        fn is_done(&self) -> bool {
            self.value.is_some() && self.link.idle()
        }
    }

    /// Floods `value` (< 2³⁴) from `source` to every live node, surviving
    /// the faults of `plan` via per-edge ARQ.
    ///
    /// Returns the per-node learned values (crashed or partitioned nodes
    /// hold `None`) and the measured metrics — retransmissions, acks, and
    /// timeout rounds included.
    pub fn reliable_broadcast(
        g: &Graph,
        source: NodeId,
        value: u64,
        seed: u64,
        plan: FaultPlan,
    ) -> Result<(Vec<Option<u64>>, Metrics)> {
        assert!(
            value < 1 << PAYLOAD_BITS,
            "payload must fit the 34-bit data field"
        );
        // First retry after the worst-case fault delay has passed.
        let timeout = 4 + 2 * plan.max_delay;
        let nodes = g
            .nodes()
            .map(|v| ReliableFlood {
                value: (v == source).then_some(value),
                link: ReliableLink::new(g.degree(v), timeout, 12),
                spread: false,
            })
            .collect();
        let mut sim = Simulator::new(g, nodes, seed)?.with_fault_plan(plan);
        let cfg = RunConfig {
            budget_factor: 32,
            stop: crate::StopCondition::AllDone,
            max_rounds: 200_000,
            ..Default::default()
        };
        let metrics = sim.run(&cfg)?;
        Ok((sim.nodes().iter().map(|p| p.value).collect(), metrics))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amt_graphs::generators;

    fn path(n: usize) -> Graph {
        Graph::from_edges(n, &(0..n - 1).map(|i| (i, i + 1)).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn broadcast_reaches_everyone_in_ecc_rounds() {
        let g = path(8);
        let (vals, m) = broadcast(&g, NodeId(0), 99, 1).unwrap();
        assert!(vals.iter().all(|&v| v == Some(99)));
        assert_eq!(m.rounds, 8); // ecc 7 + 1 quiescence round
    }

    #[test]
    fn bfs_tree_matches_centralized_depths() {
        let g = generators::hypercube(4);
        let (tree, m) = build_bfs_tree(&g, NodeId(0), 2).unwrap();
        let dist = amt_graphs::traversal::bfs_distances(&g, NodeId(0));
        for (td, d) in tree.depth.iter().zip(&dist) {
            assert_eq!(td, d);
        }
        assert_eq!(tree.height(), 4);
        assert!(m.rounds <= 7);
        // Parent/child consistency.
        for v in g.nodes() {
            if let Some(p) = tree.parent[v.index()] {
                let port_back = tree.child_ports[p.index()]
                    .iter()
                    .any(|&cp| g.neighbor_at(p, cp).0 == v);
                assert!(port_back, "parent {p:?} must list {v:?} as child");
            }
        }
    }

    #[test]
    fn convergecast_computes_min_and_sum() {
        let g = path(6);
        let (tree, _) = build_bfs_tree(&g, NodeId(2), 3).unwrap();
        let values: Vec<u64> = vec![9, 4, 7, 3, 8, 5];
        let (min, m) = convergecast(&g, &tree, &values, u64::min, 3).unwrap();
        assert_eq!(min, 3);
        assert!(m.rounds as u32 >= tree.height());
        let (sum, _) = convergecast(&g, &tree, &values, u64::wrapping_add, 3).unwrap();
        assert_eq!(sum, 36);
    }

    #[test]
    fn leader_is_max_id() {
        let g = generators::ring(9);
        let (leader, m) = elect_leader(&g, 4).unwrap();
        assert_eq!(leader, NodeId(8));
        assert!(m.rounds >= 4); // at least the diameter
    }

    #[test]
    fn pipelined_upcast_collects_everything() {
        let g = path(5);
        let (tree, _) = build_bfs_tree(&g, NodeId(0), 5).unwrap();
        let items = vec![vec![], vec![10, 11], vec![20], vec![], vec![30, 31, 32]];
        let (collected, m) = pipelined_upcast(&g, &tree, items, 5).unwrap();
        assert_eq!(collected, vec![10, 11, 20, 30, 31, 32]);
        // 6 items over the edge into the root, pipelined behind depth 4.
        assert!(m.rounds >= 6 && m.rounds <= 12, "rounds = {}", m.rounds);
    }

    #[test]
    fn downcast_informs_all() {
        let g = generators::torus_2d(4, 4);
        let (tree, _) = build_bfs_tree(&g, NodeId(5), 6).unwrap();
        let (vals, m) = tree_downcast(&g, &tree, 1234, 6).unwrap();
        assert!(vals.iter().all(|&v| v == Some(1234)));
        assert!(m.rounds as u32 >= tree.height());
    }

    #[test]
    fn aggregate_to_all_informs_everyone() {
        let g = generators::hypercube(4);
        let (tree, _) = build_bfs_tree(&g, NodeId(2), 9).unwrap();
        let values: Vec<u64> = (0..16).map(|i| 100 - i).collect();
        let (min, m) = aggregate_to_all(&g, &tree, &values, u64::min, 9).unwrap();
        assert_eq!(min, 85);
        assert!(m.rounds as u32 >= 2 * tree.height());
    }

    #[test]
    fn count_nodes_and_max_degree_discovery() {
        let g = generators::lollipop(6, 5).unwrap();
        let (n, m) = count_nodes(&g, 3).unwrap();
        assert_eq!(n, 11);
        assert!(m.rounds > 0);
        let (delta, _) = discover_max_degree(&g, 4).unwrap();
        assert_eq!(delta as usize, g.max_degree());
    }

    #[test]
    fn pipelined_downcast_reaches_everyone() {
        let g = path(5);
        let (tree, _) = build_bfs_tree(&g, NodeId(0), 8).unwrap();
        let items = vec![7, 8, 9];
        let (recv, m) = pipelined_downcast(&g, &tree, items.clone(), 8).unwrap();
        for (v, r) in recv.iter().enumerate().skip(1) {
            assert_eq!(*r, items, "node {v}");
        }
        // 3 items pipelined down a depth-4 path: ≈ 4 + 3 − 1 rounds.
        assert!(m.rounds >= 6 && m.rounds <= 10, "rounds = {}", m.rounds);
    }

    #[test]
    fn pipelining_beats_sequential_on_wide_trees() {
        // Star: all leaves stream to the center concurrently.
        let n = 20;
        let edges: Vec<_> = (1..n).map(|i| (0, i)).collect();
        let g = Graph::from_edges(n, &edges).unwrap();
        let (tree, _) = build_bfs_tree(&g, NodeId(0), 7).unwrap();
        let items: Vec<Vec<u64>> = (0..n)
            .map(|i| if i == 0 { vec![] } else { vec![i as u64] })
            .collect();
        let (collected, m) = pipelined_upcast(&g, &tree, items, 7).unwrap();
        assert_eq!(collected.len(), n - 1);
        assert!(
            m.rounds <= 4,
            "star upcast should parallelize, rounds = {}",
            m.rounds
        );
    }

    /// One [`reliable::ReliableLink`] frame against a peer that never
    /// acks: records the round the port is declared failed.
    struct GiveUpProbe {
        link: reliable::ReliableLink<u64>,
        fail_round: Option<u64>,
        fail_attempts: u32,
    }

    impl Protocol for GiveUpProbe {
        type Message = reliable::Reliable<u64>;

        fn init(&mut self, ctx: &mut Ctx<'_, reliable::Reliable<u64>>) {
            self.link.send(0, 7);
            self.link.pump(ctx);
        }

        fn round(
            &mut self,
            ctx: &mut Ctx<'_, reliable::Reliable<u64>>,
            inbox: &[(usize, reliable::Reliable<u64>)],
        ) {
            self.link.deliver(inbox);
            self.link.pump(ctx);
            if self.fail_round.is_none() {
                if let Some(&(_, a)) = self.link.failures().first() {
                    self.fail_round = Some(ctx.round());
                    self.fail_attempts = a;
                }
            }
        }

        fn is_done(&self) -> bool {
            self.fail_round.is_some()
        }
    }

    /// The give-up-latency bound documented on [`reliable::ReliableLink::new`],
    /// pinned as an exact property over a `(timeout, max_attempts)` grid:
    /// with every message dropped, the port fails precisely
    /// `t · (2^min(A,5) − 1 + 16·max(A−5, 0))` rounds after the first
    /// transmission — the capped exponential backoff schedule, summed.
    #[test]
    fn give_up_latency_is_exactly_the_documented_bound() {
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        for &t in &[1u64, 2, 5] {
            for &a in &[1u32, 2, 3, 5, 6, 8, 12] {
                // The schedule sum…
                let schedule: u64 = (1..=a).map(|k| t << (k - 1).min(4)).sum();
                // …and its closed form from the `new` docs.
                let closed = t * ((1u64 << a.min(5)) - 1 + 16 * u64::from(a.saturating_sub(5)));
                assert_eq!(schedule, closed, "closed form mismatch at t={t} A={a}");

                let nodes = (0..2)
                    .map(|_| GiveUpProbe {
                        link: reliable::ReliableLink::new(1, t, a),
                        fail_round: None,
                        fail_attempts: 0,
                    })
                    .collect();
                let mut sim = Simulator::new(&g, nodes, 1)
                    .unwrap()
                    .with_fault_plan(crate::FaultPlan::none().seeded(1).with_drops(1.0));
                let cfg = RunConfig {
                    stop: crate::StopCondition::AllDone,
                    // ARQ frames don't fit a 2-node default word budget.
                    budget_factor: 64,
                    ..RunConfig::default()
                }
                .with_threads(1);
                sim.run(&cfg).unwrap();
                for p in sim.nodes() {
                    assert_eq!(
                        p.fail_round,
                        Some(closed),
                        "give-up latency drifted from the bound at t={t} A={a}"
                    );
                    assert_eq!(p.fail_attempts, a, "attempt count at t={t} A={a}");
                }
            }
        }
    }
}
