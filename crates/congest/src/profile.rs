//! Traffic-class congestion profiling with hot-edge attribution.
//!
//! [`crate::Metrics`] and [`crate::trace::RunTrace`] record *undifferentiated*
//! totals; this module attributes every delivered message to a
//! [`TrafficClass`] — a small open registry of `&'static str` tags (walk
//! tokens vs. custody acks, Borůvka candidate floods vs. label floods,
//! bit-fix payload hops vs. portal hops, ARQ payload vs. ack vs.
//! retransmit) — so runs can answer *what* congests a hot edge and how big
//! the reliability tax is, not just how much traffic flowed.
//!
//! # Contract
//!
//! * **Off by default, zero cost.** Profiling is enabled with
//!   [`crate::Simulator::with_profile`]; a run without it takes the exact
//!   same code path — `Metrics`, `RunTrace`, protocol state, and RNG
//!   streams are byte-identical to a build without this module.
//! * **Exact attribution.** The profiler records at the engine's delivery
//!   points, the same events that drive `Metrics.messages`/`bits` and the
//!   per-edge loads, so per-class totals sum *exactly* (`assert_eq`, not
//!   approximately) to the run's `Metrics` totals and per-edge `edge_load`
//!   counts — on the clean, faulty, and multi-threaded paths alike.
//! * **Deterministic.** Classes appear in first-delivery order, which the
//!   engine's ordered `(sender, port)` merge makes independent of the
//!   worker-thread count and node-visit order.

/// A traffic-class tag: a small open registry of `&'static str` names.
///
/// Protocols default every [`crate::Ctx::send`] to their
/// [`crate::Protocol::TRAFFIC_CLASS`] and refine individual sends with
/// [`crate::Ctx::send_classed`]. Well-known tags live in [`class`]; any
/// other `&'static str` works — the registry is open by design.
pub type TrafficClass = &'static str;

/// Well-known traffic-class tags used by the protocol crates.
pub mod class {
    use super::TrafficClass;

    /// Catch-all for protocols that never pick a class.
    pub const DEFAULT: TrafficClass = "default";
    /// Random-walk token moves (the useful payload of a walk step).
    pub const WALK_TOKEN: TrafficClass = "walk/token";
    /// Healing-walk custody acknowledgements.
    pub const WALK_CUSTODY: TrafficClass = "walk/custody";
    /// Healing-walk token retransmissions (ARQ overhead).
    pub const WALK_RETRANSMIT: TrafficClass = "walk/retransmit";
    /// Borůvka minimum-outgoing-edge candidate floods.
    pub const MST_FLOOD: TrafficClass = "mst/candidate";
    /// Borůvka fragment-label (leader id) floods.
    pub const MST_LABEL: TrafficClass = "mst/label";
    /// Routing payload hops (bit-fixing toward the destination).
    pub const ROUTE_PAYLOAD: TrafficClass = "route/payload";
    /// Routing detour hops toward a portal/intermediate node.
    pub const ROUTE_PORTAL: TrafficClass = "route/portal";
    /// Reliable-link data frames carrying fresh payload.
    pub const REL_PAYLOAD: TrafficClass = "reliable/payload";
    /// Reliable-link bare acknowledgement frames.
    pub const REL_ACK: TrafficClass = "reliable/ack";
    /// Reliable-link data-frame retransmissions.
    pub const REL_RETRANSMIT: TrafficClass = "reliable/retransmit";
}

/// What the profiler should record, attached via
/// [`crate::Simulator::with_profile`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProfileConfig {
    /// How many hot edges [`TrafficProfile::analyze`] ranks by default.
    pub top_k: usize,
}

impl Default for ProfileConfig {
    fn default() -> Self {
        ProfileConfig { top_k: 10 }
    }
}

/// Per-class deliveries of one executed round.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClassRoundSample {
    /// The round number (0 is the `init` round).
    pub round: u64,
    /// Messages of this class delivered during the round.
    pub messages: u64,
    /// Bits of this class delivered during the round.
    pub bits: u64,
}

/// Everything recorded for one traffic class during a run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClassStats {
    /// The class tag.
    pub class: TrafficClass,
    /// Total messages delivered under this class.
    pub messages: u64,
    /// Total bits delivered under this class.
    pub bits: u64,
    /// Per-round deliveries, one entry per round the class was active in
    /// (round order; silent rounds are omitted).
    pub timeline: Vec<ClassRoundSample>,
    /// Messages delivered per (undirected) edge id under this class.
    pub edge_messages: Vec<u64>,
    /// Bits delivered per (undirected) edge id under this class.
    pub edge_bits: Vec<u64>,
}

/// Per-`(class, round)` and per-`(class, edge)` delivery counts of one run.
///
/// Recorded by the round engine when profiling is enabled; retrieve it with
/// [`crate::Simulator::take_profile`] (or through
/// [`crate::trace::RunTrace::profile`] when tracing is also on).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TrafficProfile {
    edge_count: usize,
    /// Per-class statistics, in first-delivery order (deterministic: the
    /// engine merges deliveries in `(sender, port)` order).
    pub per_class: Vec<ClassStats>,
}

impl TrafficProfile {
    pub(crate) fn new(edge_count: usize) -> Self {
        TrafficProfile {
            edge_count,
            per_class: Vec::new(),
        }
    }

    /// An empty profile over `edge_count` edges — a seed for
    /// [`TrafficProfile::absorb`]-based accumulation in multi-stage drivers
    /// whose first stage does not start at round 0.
    pub fn empty(edge_count: usize) -> Self {
        TrafficProfile::new(edge_count)
    }

    /// Records one delivery. `bits` must be the delivered frame width — the
    /// exact amount the engine adds to `Metrics.bits` for the same event.
    pub(crate) fn record(&mut self, class: TrafficClass, round: u64, edge: usize, bits: u64) {
        let edge_count = self.edge_count;
        let idx = match self.per_class.iter().position(|s| s.class == class) {
            Some(i) => i,
            None => {
                self.per_class.push(ClassStats {
                    class,
                    messages: 0,
                    bits: 0,
                    timeline: Vec::new(),
                    edge_messages: vec![0; edge_count],
                    edge_bits: vec![0; edge_count],
                });
                self.per_class.len() - 1
            }
        };
        let s = &mut self.per_class[idx];
        s.messages += 1;
        s.bits += bits;
        s.edge_messages[edge] += 1;
        s.edge_bits[edge] += bits;
        match s.timeline.last_mut() {
            Some(last) if last.round == round => {
                last.messages += 1;
                last.bits += bits;
            }
            _ => s.timeline.push(ClassRoundSample {
                round,
                messages: 1,
                bits,
            }),
        }
    }

    /// Folds `other` into `self`, shifting its timeline rounds forward by
    /// `round_offset`.
    ///
    /// Multi-epoch / multi-phase drivers (healing walks, healing Borůvka)
    /// run a fresh simulator per stage; absorbing each stage's profile with
    /// `round_offset` set to the rounds elapsed so far yields one
    /// cumulative profile whose totals still match the accumulated
    /// [`Metrics`](crate::Metrics).
    ///
    /// # Panics
    ///
    /// Panics if the two profiles index different edge spaces.
    pub fn absorb(&mut self, other: &TrafficProfile, round_offset: u64) {
        assert_eq!(
            self.edge_count, other.edge_count,
            "profiles must cover the same graph"
        );
        for o in &other.per_class {
            let idx = match self.per_class.iter().position(|s| s.class == o.class) {
                Some(i) => i,
                None => {
                    self.per_class.push(ClassStats {
                        class: o.class,
                        messages: 0,
                        bits: 0,
                        timeline: Vec::new(),
                        edge_messages: vec![0; self.edge_count],
                        edge_bits: vec![0; self.edge_count],
                    });
                    self.per_class.len() - 1
                }
            };
            let s = &mut self.per_class[idx];
            s.messages += o.messages;
            s.bits += o.bits;
            for (t, &m) in s.edge_messages.iter_mut().zip(&o.edge_messages) {
                *t += m;
            }
            for (t, &b) in s.edge_bits.iter_mut().zip(&o.edge_bits) {
                *t += b;
            }
            for sample in &o.timeline {
                let round = sample.round + round_offset;
                match s.timeline.last_mut() {
                    Some(last) if last.round == round => {
                        last.messages += sample.messages;
                        last.bits += sample.bits;
                    }
                    _ => s.timeline.push(ClassRoundSample {
                        round,
                        messages: sample.messages,
                        bits: sample.bits,
                    }),
                }
            }
        }
    }

    /// Number of (undirected) edges the per-edge vectors are indexed by.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Total messages across all classes — equals `Metrics.messages` of the
    /// profiled run.
    pub fn total_messages(&self) -> u64 {
        self.per_class.iter().map(|s| s.messages).sum()
    }

    /// Total bits across all classes — equals `Metrics.bits` of the
    /// profiled run.
    pub fn total_bits(&self) -> u64 {
        self.per_class.iter().map(|s| s.bits).sum()
    }

    /// Statistics recorded under `class`, if any delivery carried it.
    pub fn stats(&self, class: &str) -> Option<&ClassStats> {
        self.per_class.iter().find(|s| s.class == class)
    }

    /// Messages delivered per edge, summed over every class — equals the
    /// run's `Simulator::edge_load`.
    pub fn edge_messages_total(&self) -> Vec<u64> {
        let mut total = vec![0u64; self.edge_count];
        for s in &self.per_class {
            for (t, &m) in total.iter_mut().zip(&s.edge_messages) {
                *t += m;
            }
        }
        total
    }

    /// Attributes the recorded traffic to a node→shard placement after the
    /// fact: every delivery crossed shards iff its edge's flag in
    /// `cross_edge` is set (use
    /// [`Placement::cross_edge_flags`](amt_graphs::partitioning::Placement::cross_edge_flags)).
    ///
    /// The profile itself is placement-independent — runs are byte-identical
    /// under every placement — so one recorded profile can be split against
    /// any number of candidate placements without re-running.
    ///
    /// # Panics
    ///
    /// Panics if `cross_edge` does not cover exactly this profile's edge
    /// space.
    pub fn shard_split(&self, shards: usize, cross_edge: &[bool]) -> ShardSplit {
        assert_eq!(
            cross_edge.len(),
            self.edge_count,
            "cross-edge flags must cover the profiled edge space"
        );
        let mut split = ShardSplit {
            shards,
            intra_messages: 0,
            cross_messages: 0,
            intra_bits: 0,
            cross_bits: 0,
            per_class: Vec::with_capacity(self.per_class.len()),
        };
        for s in &self.per_class {
            let mut c = ShardClassSplit {
                class: s.class,
                intra_messages: 0,
                cross_messages: 0,
                intra_bits: 0,
                cross_bits: 0,
            };
            for (e, &cross) in cross_edge.iter().enumerate() {
                if cross {
                    c.cross_messages += s.edge_messages[e];
                    c.cross_bits += s.edge_bits[e];
                } else {
                    c.intra_messages += s.edge_messages[e];
                    c.intra_bits += s.edge_bits[e];
                }
            }
            split.intra_messages += c.intra_messages;
            split.cross_messages += c.cross_messages;
            split.intra_bits += c.intra_bits;
            split.cross_bits += c.cross_bits;
            split.per_class.push(c);
        }
        split
    }

    /// Ranks the `top_k` hottest edges (by messages, ties to the lower edge
    /// id) with per-class breakdowns and computes per-class totals/shares.
    pub fn analyze(&self, top_k: usize) -> CongestionProfile {
        let totals = self.edge_messages_total();
        let mut order: Vec<usize> = (0..self.edge_count).filter(|&e| totals[e] > 0).collect();
        order.sort_by_key(|&e| (std::cmp::Reverse(totals[e]), e));
        order.truncate(top_k);
        let top_edges: Vec<HotEdge> = order
            .into_iter()
            .map(|e| HotEdge {
                edge: e,
                messages: totals[e],
                bits: self.per_class.iter().map(|s| s.edge_bits[e]).sum(),
                per_class: self
                    .per_class
                    .iter()
                    .filter(|s| s.edge_messages[e] > 0)
                    .map(|s| (s.class, s.edge_messages[e]))
                    .collect(),
            })
            .collect();
        let rounds = self
            .per_class
            .iter()
            .filter_map(|s| s.timeline.last().map(|t| t.round))
            .max()
            .unwrap_or(0);
        CongestionProfile {
            class_totals: self
                .per_class
                .iter()
                .map(|s| ClassTotal {
                    class: s.class,
                    messages: s.messages,
                    bits: s.bits,
                })
                .collect(),
            max_edge: top_edges.first().map(|h| h.edge),
            max_edge_congestion: top_edges.first().map_or(0, |h| h.messages),
            top_edges,
            rounds,
        }
    }

    /// Renders an ASCII heatmap: one row per class, `buckets` columns over
    /// the edge-id space, cell intensity proportional to the bits delivered
    /// in that bucket (scaled to the global maximum bucket).
    pub fn heatmap(&self, buckets: usize) -> String {
        const RAMP: &[u8] = b" .:-=+*#%@";
        let buckets = buckets.clamp(1, self.edge_count.max(1));
        let per_bucket = self.edge_count.div_ceil(buckets).max(1);
        let rows: Vec<(TrafficClass, Vec<u64>)> = self
            .per_class
            .iter()
            .map(|s| {
                let mut row = vec![0u64; buckets];
                for (e, &b) in s.edge_bits.iter().enumerate() {
                    row[(e / per_bucket).min(buckets - 1)] += b;
                }
                (s.class, row)
            })
            .collect();
        let peak = rows
            .iter()
            .flat_map(|(_, row)| row.iter().copied())
            .max()
            .unwrap_or(0);
        let name_width = rows.iter().map(|(c, _)| c.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (class, row) in &rows {
            out.push_str(&format!("{class:>name_width$} |"));
            for &b in row {
                let i = if peak == 0 {
                    0
                } else {
                    ((b as u128 * (RAMP.len() as u128 - 1)).div_ceil(peak as u128)) as usize
                };
                out.push(RAMP[i.min(RAMP.len() - 1)] as char);
            }
            out.push_str("|\n");
        }
        out
    }
}

/// One class's intra- vs cross-shard deliveries inside a [`ShardSplit`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardClassSplit {
    /// The class tag.
    pub class: TrafficClass,
    /// Messages delivered over edges internal to one shard.
    pub intra_messages: u64,
    /// Messages delivered over edges whose endpoints live in different
    /// shards (coordinator-crossing traffic under the threaded stepper).
    pub cross_messages: u64,
    /// Bits delivered over intra-shard edges.
    pub intra_bits: u64,
    /// Bits delivered over cross-shard edges.
    pub cross_bits: u64,
}

/// A [`TrafficProfile`] re-attributed to a node→shard placement: how much
/// of the recorded traffic stayed inside a shard vs crossed shards, per
/// traffic class and in total. Built by [`TrafficProfile::shard_split`];
/// `intra + cross` always equals the profiled run's [`Metrics`] totals.
///
/// [`Metrics`]: crate::Metrics
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardSplit {
    /// Shard count of the placement the split was computed against.
    pub shards: usize,
    /// Per-class intra/cross breakdown, in the profile's class order.
    pub per_class: Vec<ShardClassSplit>,
    /// Messages over intra-shard edges, all classes.
    pub intra_messages: u64,
    /// Messages over cross-shard edges, all classes.
    pub cross_messages: u64,
    /// Bits over intra-shard edges, all classes.
    pub intra_bits: u64,
    /// Bits over cross-shard edges, all classes.
    pub cross_bits: u64,
}

impl ShardSplit {
    /// Fraction of all messages that crossed shards (0 when no traffic).
    pub fn cross_message_share(&self) -> f64 {
        let total = self.intra_messages + self.cross_messages;
        if total == 0 {
            0.0
        } else {
            self.cross_messages as f64 / total as f64
        }
    }

    /// Fraction of all bits that crossed shards (0 when no traffic).
    pub fn cross_bit_share(&self) -> f64 {
        let total = self.intra_bits + self.cross_bits;
        if total == 0 {
            0.0
        } else {
            self.cross_bits as f64 / total as f64
        }
    }
}

/// One class's totals inside a [`CongestionProfile`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClassTotal {
    /// The class tag.
    pub class: TrafficClass,
    /// Total messages delivered under this class.
    pub messages: u64,
    /// Total bits delivered under this class.
    pub bits: u64,
}

/// One ranked hot edge with its per-class breakdown.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HotEdge {
    /// The (undirected) edge id.
    pub edge: usize,
    /// Total messages delivered across the edge.
    pub messages: u64,
    /// Total bits delivered across the edge.
    pub bits: u64,
    /// `(class, messages)` pairs of the classes active on the edge, in
    /// first-delivery order.
    pub per_class: Vec<(TrafficClass, u64)>,
}

/// The analysis of a [`TrafficProfile`]: top-K hot edges with per-class
/// breakdowns, per-class totals, and the per-class share of the maximum
/// edge congestion.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CongestionProfile {
    /// The hottest edges, by messages (descending; ties to lower edge id).
    pub top_edges: Vec<HotEdge>,
    /// Per-class message/bit totals, in first-delivery order.
    pub class_totals: Vec<ClassTotal>,
    /// Edge id with the highest message count, if any traffic flowed.
    pub max_edge: Option<usize>,
    /// Messages on that edge — equals `Metrics.max_edge_congestion`.
    pub max_edge_congestion: u64,
    /// Last round with any delivery.
    pub rounds: u64,
}

impl CongestionProfile {
    /// The share (0..=1) of the maximum-congestion edge's messages carried
    /// by `class` (0 if no traffic flowed).
    pub fn class_share_of_max(&self, class: &str) -> f64 {
        let Some(top) = self.top_edges.first() else {
            return 0.0;
        };
        if top.messages == 0 {
            return 0.0;
        }
        let m = top
            .per_class
            .iter()
            .find(|(c, _)| *c == class)
            .map_or(0, |&(_, m)| m);
        m as f64 / top.messages as f64
    }

    /// Renders the analysis as a plain-text report (class totals, then the
    /// ranked hot edges with per-class breakdowns).
    pub fn render(&self) -> String {
        let total_msgs: u64 = self.class_totals.iter().map(|t| t.messages).sum();
        let mut out = String::new();
        out.push_str("class totals:\n");
        for t in &self.class_totals {
            let share = if total_msgs == 0 {
                0.0
            } else {
                100.0 * t.messages as f64 / total_msgs as f64
            };
            out.push_str(&format!(
                "  {:<22} {:>10} msgs {:>12} bits ({share:5.1}%)\n",
                t.class, t.messages, t.bits
            ));
        }
        out.push_str(&format!(
            "hot edges (top {}), max congestion {}:\n",
            self.top_edges.len(),
            self.max_edge_congestion
        ));
        for h in &self.top_edges {
            let breakdown = h
                .per_class
                .iter()
                .map(|(c, m)| format!("{c}={m}"))
                .collect::<Vec<_>>()
                .join(" ");
            out.push_str(&format!(
                "  edge {:>6}: {:>8} msgs {:>10} bits  [{breakdown}]\n",
                h.edge, h.messages, h.bits
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_merges_totals_edges_and_offset_timelines() {
        let mut a = TrafficProfile::new(2);
        a.record(class::WALK_TOKEN, 0, 0, 10);
        a.record(class::WALK_TOKEN, 3, 1, 10);
        let mut b = TrafficProfile::new(2);
        b.record(class::WALK_TOKEN, 0, 1, 10);
        b.record(class::REL_ACK, 2, 0, 17);
        a.absorb(&b, 4);
        assert_eq!(a.total_messages(), 4);
        assert_eq!(a.total_bits(), 47);
        assert_eq!(a.edge_messages_total(), vec![2, 2]);
        let w = a.stats(class::WALK_TOKEN).unwrap();
        assert_eq!(w.messages, 3);
        assert_eq!(w.edge_messages, vec![1, 2]);
        assert_eq!(
            w.timeline.iter().map(|s| s.round).collect::<Vec<_>>(),
            vec![0, 3, 4],
            "absorbed rounds are shifted by the offset"
        );
        assert_eq!(a.stats(class::REL_ACK).unwrap().timeline[0].round, 6);
    }

    #[test]
    fn shard_split_attributes_traffic_by_cross_edge_flags() {
        let mut p = TrafficProfile::new(3);
        p.record(class::WALK_TOKEN, 0, 0, 10);
        p.record(class::WALK_TOKEN, 0, 1, 10);
        p.record(class::WALK_TOKEN, 2, 1, 10);
        p.record(class::REL_ACK, 1, 2, 17);
        // Edge 1 crosses shards; edges 0 and 2 stay internal.
        let split = p.shard_split(2, &[false, true, false]);
        assert_eq!(split.shards, 2);
        assert_eq!(split.cross_messages, 2);
        assert_eq!(split.intra_messages, 2);
        assert_eq!(split.cross_bits, 20);
        assert_eq!(split.intra_bits, 27);
        assert_eq!(
            split.intra_messages + split.cross_messages,
            p.total_messages()
        );
        assert_eq!(split.intra_bits + split.cross_bits, p.total_bits());
        let walk = &split.per_class[0];
        assert_eq!(walk.class, class::WALK_TOKEN);
        assert_eq!((walk.intra_messages, walk.cross_messages), (1, 2));
        let ack = &split.per_class[1];
        assert_eq!(ack.class, class::REL_ACK);
        assert_eq!((ack.intra_messages, ack.cross_messages), (1, 0));
        assert_eq!((ack.intra_bits, ack.cross_bits), (17, 0));
        assert!((split.cross_message_share() - 0.5).abs() < 1e-12);
        assert!((split.cross_bit_share() - 20.0 / 47.0).abs() < 1e-12);
        // An all-intra placement (single shard) has zero cross share.
        let single = p.shard_split(1, &[false, false, false]);
        assert_eq!(single.cross_messages, 0);
        assert_eq!(single.cross_message_share(), 0.0);
        // Empty profile: shares are defined as 0, not NaN.
        let empty = TrafficProfile::new(3).shard_split(2, &[true, true, false]);
        assert_eq!(empty.cross_message_share(), 0.0);
        assert_eq!(empty.cross_bit_share(), 0.0);
    }

    #[test]
    fn record_accumulates_per_class_round_and_edge() {
        let mut p = TrafficProfile::new(3);
        p.record(class::WALK_TOKEN, 0, 0, 10);
        p.record(class::WALK_TOKEN, 0, 1, 10);
        p.record(class::REL_ACK, 1, 0, 17);
        p.record(class::WALK_TOKEN, 1, 0, 10);
        assert_eq!(p.total_messages(), 4);
        assert_eq!(p.total_bits(), 47);
        let walk = p.stats(class::WALK_TOKEN).unwrap();
        assert_eq!(walk.messages, 3);
        assert_eq!(walk.bits, 30);
        assert_eq!(walk.edge_messages, vec![2, 1, 0]);
        assert_eq!(walk.edge_bits, vec![20, 10, 0]);
        assert_eq!(
            walk.timeline,
            vec![
                ClassRoundSample {
                    round: 0,
                    messages: 2,
                    bits: 20
                },
                ClassRoundSample {
                    round: 1,
                    messages: 1,
                    bits: 10
                },
            ]
        );
        assert_eq!(p.edge_messages_total(), vec![3, 1, 0]);
        // First-delivery order is preserved.
        assert_eq!(p.per_class[0].class, class::WALK_TOKEN);
        assert_eq!(p.per_class[1].class, class::REL_ACK);
    }

    #[test]
    fn analyze_ranks_edges_and_attributes_classes() {
        let mut p = TrafficProfile::new(4);
        for _ in 0..5 {
            p.record(class::MST_FLOOD, 0, 2, 8);
        }
        for _ in 0..3 {
            p.record(class::MST_LABEL, 1, 2, 6);
        }
        p.record(class::MST_FLOOD, 1, 0, 8);
        let a = p.analyze(2);
        assert_eq!(a.max_edge, Some(2));
        assert_eq!(a.max_edge_congestion, 8);
        assert_eq!(a.rounds, 1);
        assert_eq!(a.top_edges.len(), 2);
        assert_eq!(a.top_edges[0].edge, 2);
        assert_eq!(a.top_edges[0].messages, 8);
        assert_eq!(a.top_edges[0].bits, 5 * 8 + 3 * 6);
        assert_eq!(
            a.top_edges[0].per_class,
            vec![(class::MST_FLOOD, 5), (class::MST_LABEL, 3)]
        );
        assert_eq!(a.top_edges[1].edge, 0);
        assert!((a.class_share_of_max(class::MST_FLOOD) - 5.0 / 8.0).abs() < 1e-12);
        assert_eq!(a.class_share_of_max("route/payload"), 0.0);
        let text = a.render();
        assert!(text.contains("mst/candidate"));
        assert!(text.contains("edge"));
    }

    #[test]
    fn analyze_breaks_ties_toward_lower_edge_ids() {
        let mut p = TrafficProfile::new(3);
        p.record(class::DEFAULT, 0, 2, 4);
        p.record(class::DEFAULT, 0, 1, 4);
        let a = p.analyze(10);
        assert_eq!(
            a.top_edges.iter().map(|h| h.edge).collect::<Vec<_>>(),
            vec![1, 2]
        );
    }

    #[test]
    fn heatmap_scales_to_the_peak_bucket() {
        let mut p = TrafficProfile::new(4);
        for _ in 0..9 {
            p.record(class::WALK_TOKEN, 0, 0, 10);
        }
        p.record(class::REL_ACK, 0, 3, 10);
        let map = p.heatmap(2);
        let lines: Vec<&str> = map.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("walk/token"));
        assert!(lines[0].contains('@'), "peak bucket renders at full ramp");
        assert!(lines[1].contains("reliable/ack"));
        // Empty profile renders without panicking.
        assert_eq!(TrafficProfile::new(0).heatmap(3), "");
    }
}
