//! The synchronous round executor.
//!
//! # Determinism contract
//!
//! Every run is a pure function of
//! `(graph, seed, RunConfig, FaultPlan, ChurnPlan)`:
//!
//! * **Per-node random streams.** Each node owns a dedicated RNG whose seed
//!   is derived from `(run seed, node id)`, so the bits a protocol draws
//!   depend only on *which node* draws them and *how many* draws that node
//!   made before — never on the order in which the executor happens to
//!   visit nodes within a round.
//! * **Ordered merge.** Messages staged in a round are delivered into the
//!   next round's inboxes in `(sender id, port)` order, whatever order (or
//!   thread) executed the senders.
//! * **Message-identity fault keying.** Fault verdicts are a counter-based
//!   PRF of `(fault seed, round, sender, sender port)` — see
//!   [`crate::faults`] — so which messages drop, corrupt, or delay is
//!   independent of sampling order.
//! * **Schedule-keyed churn.** Topology-churn verdicts (edge up/down, node
//!   offline) are pure functions of `(churn seed/schedule, round, id)` —
//!   see [`crate::churn`] — never of sampling order.
//! * **Executor-strategy independence.** The active-set engine (which only
//!   steps nodes that received mail, hold a due [`Ctx::wake_in`] timer, or
//!   are rejoining after a churn outage) and the retained full-sweep
//!   reference ([`RunConfig::full_sweep`]) produce byte-identical results
//!   for [`Protocol::SPARSE_AWARE`] protocols; the only observable that
//!   names the strategy is the `active_nodes` trace gauge.
//! * **Placement independence.** The threaded executor assigns nodes to
//!   worker shards through an explicit [`Placement`] map (contiguous id
//!   chunks by default, spectral cuts via [`Simulator::with_placement`]).
//!   The coordinator splices worker outputs back in canonical ascending
//!   *node* order — never worker order — so the placement changes only
//!   wall-clock and cross-worker traffic, never an observable bit.
//!
//! Together these make protocol outputs, [`Metrics`], the fault-event log,
//! and the churn-event log byte-identical for any visit order and any
//! worker-thread count, which is what lets [`RunConfig::threads`]
//! parallelize the clean, faulty, *and* churned paths without changing a
//! single observable bit. There is exactly one round-loop engine
//! ([`round_engine`]); the clean/faulty split is a [`FaultHook`] type
//! parameter (the inert hook compiles to the pristine executor), the
//! static/churned split is an independent [`ChurnHook`] type parameter,
//! and the sequential/threaded split is a [`RoundStepper`] type parameter.
//!
//! # Data layout
//!
//! Round state lives in flat, CSR-indexed arenas (see [`Csr`], the
//! [`InboxArena`] message slab, and [`StepOut`]): one contiguous slab of
//! `(port, message)` pairs per round, grouped by receiver with prefix-sum
//! offsets, instead of per-node `Vec<Vec<_>>` nests. Grouping is a stable
//! counting sort ([`group_pending`]), so per-receiver delivery order is
//! exactly the ordered merge's, and per-round cost is proportional to
//! traffic + activity, not to `n`.

use crate::churn::{ChurnEvent, ChurnHook, ChurnPlan, ChurnSchedule, ChurnState, NoChurn};
use crate::faults::{Fate, FaultEvent, FaultHook, FaultKind, FaultPlan, FaultState, NoFaults};
use crate::profile::{class, ProfileConfig, TrafficClass, TrafficProfile};
use crate::telemetry::{
    RoundHealth, RunTelemetry, ShardRoundSample, TelemetryConfig, TelemetryState,
};
use crate::trace::{EdgeLoadSnapshot, RoundSample, RunTrace, TraceConfig, TraceEvent};
use crate::{bits_for_count, CongestError, CongestMessage, Metrics, Result};
use amt_graphs::partitioning::Placement;
use amt_graphs::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::sync::mpsc;
use std::sync::OnceLock;

/// A per-node state machine executed by the [`Simulator`].
///
/// One instance exists per node. On round 0 the simulator calls
/// [`Protocol::init`]; on every subsequent round it calls
/// [`Protocol::round`] with the messages delivered this round (sent by
/// neighbors in the previous round), tagged with the receiving port.
///
/// Protocols are `Send` so the multi-threaded executor can shard node state
/// machines across workers; protocols made of plain data get this for free.
pub trait Protocol: Send {
    /// The message type this protocol sends over edges.
    type Message: CongestMessage;

    /// The [`TrafficClass`] attributed to plain [`Ctx::send`] calls when
    /// profiling is on. Protocols whose sends fall into several classes
    /// override individual sends with [`Ctx::send_classed`].
    const TRAFFIC_CLASS: TrafficClass = class::DEFAULT;

    /// Opt-in flag for the sparse, active-set executor.
    ///
    /// When `true`, rounds in which this node received no messages, has no
    /// due [`Ctx::wake_in`] timer, and is not rejoining from a churn
    /// outage may be **skipped entirely** — the executor does not call
    /// [`Protocol::round`]. Opting in is a contract: such a round must be
    /// a complete no-op — no sends, no RNG draws, no state changes, no
    /// trace events, and an unchanged [`Protocol::is_done`] — so that
    /// skipping it is unobservable. Protocols that act on empty inboxes
    /// (periodic beacons, spontaneous timeouts) must either keep the
    /// default `false` or schedule their activity with [`Ctx::wake_in`].
    ///
    /// The executor choice never changes observable results:
    /// [`RunConfig::full_sweep`] forces the classic every-node sweep, and
    /// the two are byte-identical for contract-abiding protocols. Only
    /// the `active_nodes` field of [`crate::trace::RoundSample`] reveals
    /// the strategy.
    const SPARSE_AWARE: bool = false;

    /// Called once before the first communication round; may send messages.
    fn init(&mut self, ctx: &mut Ctx<'_, Self::Message>);

    /// Called once per round with this round's inbox; may send messages
    /// that will be delivered next round.
    fn round(&mut self, ctx: &mut Ctx<'_, Self::Message>, inbox: &[(usize, Self::Message)]);

    /// Local termination flag, consulted by [`StopCondition::AllDone`].
    ///
    /// Must be a cheap, side-effect-free read of local state: the executor
    /// may evaluate it once per node per round, in any order.
    fn is_done(&self) -> bool {
        false
    }

    /// Called instead of [`Protocol::round`] in the round a
    /// [`crate::ChurnPlan`] crash-restart brings this node back online
    /// (its inbox is necessarily empty: in-flight messages were lost while
    /// it was down).
    ///
    /// The default keeps all state and simply takes an empty round —
    /// appropriate for protocols whose state is monotone. Churn-aware
    /// protocols override this to model volatile-state loss (reset fields,
    /// re-announce to neighbors). Either way the node's RNG stream is
    /// preserved across the outage, so runs stay a pure function of
    /// `(graph, seed, plans)`.
    fn on_restart(&mut self, ctx: &mut Ctx<'_, Self::Message>) {
        self.round(ctx, &[]);
    }
}

/// When the simulator considers an execution finished.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum StopCondition {
    /// Stop when every node reports [`Protocol::is_done`] and no messages
    /// are in flight (crash-stopped nodes count as done).
    AllDone,
    /// Stop when a round passes with no messages sent and none in flight
    /// (useful for flooding-style protocols without explicit termination).
    #[default]
    Quiescence,
}

/// Execution limits and model constants.
#[derive(Clone, Copy, Debug)]
pub struct RunConfig {
    /// Hard cap on rounds; exceeding it is an error (runaway protocol).
    pub max_rounds: u64,
    /// Per-message budget is `budget_factor · ⌈log₂ n⌉` bits — the explicit
    /// constant behind the model's `O(log n)`. The default of 8 fits a
    /// message tag, two node ids, and an edge weight of `O(log n)` bits.
    pub budget_factor: usize,
    /// Termination rule.
    pub stop: StopCondition,
    /// Worker threads for the executor, clean and faulty paths alike. `0`
    /// (the default) resolves to the `AMT_SIM_THREADS` environment variable
    /// if set, else to the machine's available parallelism; `1` is the
    /// classic single-threaded loop. Results are byte-identical for every
    /// value — see the module-level determinism contract.
    pub threads: usize,
    /// Forces the classic full-sweep executor: every live node steps every
    /// round, even for [`Protocol::SPARSE_AWARE`] protocols. The default
    /// (`false`) lets sparse-aware protocols run on the active-set engine,
    /// which only steps nodes that received mail, hold a due
    /// [`Ctx::wake_in`] timer, or are rejoining after a churn outage. The
    /// two engines are byte-identical on every observable (the retained
    /// full sweep is the equivalence reference in
    /// `tests/engine_equivalence.rs`); only the `active_nodes` trace gauge
    /// differs.
    pub full_sweep: bool,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            max_rounds: 1_000_000,
            budget_factor: 8,
            stop: StopCondition::Quiescence,
            threads: 0,
            full_sweep: false,
        }
    }
}

impl RunConfig {
    /// Config with the [`StopCondition::AllDone`] termination rule.
    pub fn all_done() -> Self {
        RunConfig {
            stop: StopCondition::AllDone,
            ..Default::default()
        }
    }

    /// Sets the executor worker-thread count (`0` = auto).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Forces (or releases) the full-sweep reference executor; see
    /// [`RunConfig::full_sweep`].
    pub fn with_full_sweep(mut self, full_sweep: bool) -> Self {
        self.full_sweep = full_sweep;
        self
    }

    /// Resolves [`RunConfig::threads`] against the node count: `0` becomes
    /// the process default, and no more than one worker per node is used.
    fn effective_threads(&self, n: usize) -> usize {
        let requested = if self.threads == 0 {
            default_threads()
        } else {
            self.threads
        };
        requested.clamp(1, n.max(1))
    }
}

/// Parses an `AMT_SIM_THREADS` value: a positive integer, surrounding
/// whitespace allowed. `0` and non-numeric values are rejected with a
/// message naming the variable — silently falling back to hardware
/// parallelism would hide a typo (`AMT_SIM_THREADS=four`) behind an
/// unrelated thread count.
fn parse_thread_env(raw: &str) -> std::result::Result<usize, String> {
    match raw.trim().parse::<usize>() {
        Ok(0) => Err(format!(
            "AMT_SIM_THREADS must be a positive integer (0 is reserved for \
             RunConfig::threads, where it means \"auto\"); got {raw:?}"
        )),
        Ok(v) => Ok(v),
        Err(_) => Err(format!(
            "AMT_SIM_THREADS must be a positive integer, got {raw:?}"
        )),
    }
}

/// Process-wide default worker count: `AMT_SIM_THREADS` if set to a
/// positive integer, else the available hardware parallelism.
///
/// # Panics
///
/// Panics on a malformed `AMT_SIM_THREADS` (non-numeric or `0`) instead of
/// silently ignoring it — the variable exists precisely to pin the
/// executor, so a typo must not fall through to hardware parallelism.
///
/// Note the `OnceLock` caching pitfall: the environment variable is read
/// **once**, on the first auto-resolved run in the process, and the result
/// (or the panic-worthy malformation) is cached for the process lifetime.
/// Changing `AMT_SIM_THREADS` after that first use has no effect; tests
/// that need a specific worker count should set [`RunConfig::threads`]
/// explicitly rather than mutate the environment.
fn default_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        if let Ok(raw) = std::env::var("AMT_SIM_THREADS") {
            match parse_thread_env(&raw) {
                Ok(v) => v,
                Err(msg) => panic!("{msg}"),
            }
        } else {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        }
    })
}

/// SplitMix64-style finalizer deriving one node's stream seed from the run
/// seed. Protocol randomness is a function of `(seed, node)` only.
fn node_stream_seed(run_seed: u64, node: u64) -> u64 {
    let mut z = run_seed ^ node.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-round, per-node context handed to [`Protocol`] callbacks.
///
/// Provides the node's identity, its local view of the graph (degree,
/// neighbor ids — learnable in one round and conventionally assumed), the
/// send operation, and the node's private deterministic RNG.
pub struct Ctx<'a, M> {
    node: NodeId,
    degree: usize,
    neighbors: &'a [(u32, u32)],
    round: u64,
    budget_bits: usize,
    /// One staging slot per port, borrowed from the executor's reusable
    /// slab (sized once to the maximum degree, not per node per round).
    /// Each staged message carries its [`TrafficClass`] to the engine's
    /// merge, where the profiler (if any) attributes the delivery.
    staged: &'a mut [Option<(TrafficClass, M)>],
    /// Class attributed to plain [`Ctx::send`] calls
    /// ([`Protocol::TRAFFIC_CLASS`]).
    default_class: TrafficClass,
    rng: &'a mut StdRng,
    violation: &'a mut Option<CongestError>,
    /// Earliest absolute round this node asked to be re-stepped in via
    /// [`Ctx::wake_in`] (collected by the executor after the step).
    wake: &'a mut Option<u64>,
    /// Event sink when tracing is enabled (`None` costs one branch per
    /// [`Ctx::trace_event`] call and nothing else).
    trace: Option<&'a mut Vec<TraceEvent>>,
    /// Churn schedule when a non-trivial [`crate::ChurnPlan`] is attached
    /// (`None` on the static-topology paths, where [`Ctx::link_up`] is
    /// constantly `true`).
    churn: Option<&'a ChurnSchedule>,
}

impl<M: CongestMessage> Ctx<'_, M> {
    /// The id of the node being executed.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Degree of this node (number of ports).
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// The neighbor reached through `port`.
    pub fn neighbor(&self, port: usize) -> NodeId {
        NodeId(self.neighbors[port].0)
    }

    /// The current round number (0 during `init`).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Whether the link behind `port` is usable this round: the edge is up
    /// and the neighbor is online under the attached [`crate::ChurnPlan`]
    /// (always `true` without one, or under a trivial plan).
    ///
    /// A message sent over a down link this round is lost (counted in
    /// [`crate::Metrics::lost_to_churn`]), so routing protocols consult
    /// this to reroute instead. Like every churn verdict it is a pure
    /// function of `(churn seed, round, edge)` — reading it never perturbs
    /// determinism. This models the standard port-numbered assumption that
    /// a node can locally detect which of its links are live.
    pub fn link_up(&self, port: usize) -> bool {
        self.churn.is_none_or(|ch| {
            let (peer, edge) = self.neighbors[port];
            !ch.edge_down(self.round, edge as usize) && !ch.node_down(self.round, peer as usize)
        })
    }

    /// Sends `msg` over `port`, to be delivered next round.
    ///
    /// Records a model violation (duplicate send on a port, port out of
    /// range, over-wide message) which aborts the run; the violation is
    /// returned from [`Simulator::run`]. The **first** violation a node
    /// trips in a round is the one reported — later `send` calls in the
    /// same step are ignored.
    ///
    /// When profiling is on the message is attributed to the protocol's
    /// [`Protocol::TRAFFIC_CLASS`]; use [`Ctx::send_classed`] to refine.
    pub fn send(&mut self, port: usize, msg: M) {
        self.send_classed(port, msg, self.default_class);
    }

    /// [`Ctx::send`] with an explicit [`TrafficClass`] attribution.
    ///
    /// The class changes nothing about delivery — it only labels the
    /// message for the traffic profiler (and is ignored entirely when
    /// profiling is off).
    pub fn send_classed(&mut self, port: usize, msg: M, class: TrafficClass) {
        // First violation wins: once a step has tripped one, every later
        // send in the same step is a dead letter (the run aborts anyway).
        if self.violation.is_some() {
            return;
        }
        if port >= self.degree {
            *self.violation = Some(CongestError::PortOutOfRange {
                node: self.node,
                port,
                degree: self.degree,
            });
            return;
        }
        let bits = msg.bit_width();
        if bits > self.budget_bits {
            *self.violation = Some(CongestError::MessageTooWide {
                bits,
                budget: self.budget_bits,
            });
            return;
        }
        if self.staged[port].is_some() {
            *self.violation = Some(CongestError::DuplicateSend {
                node: self.node,
                port,
            });
            return;
        }
        self.staged[port] = Some((class, msg));
    }

    /// Sends `msg` to every port (standard "broadcast to neighbors").
    pub fn send_all(&mut self, msg: M) {
        if self.degree == 0 {
            return;
        }
        for port in 0..self.degree - 1 {
            self.send(port, msg.clone());
        }
        self.send(self.degree - 1, msg);
    }

    /// Requests that this node step again no later than `delta` rounds
    /// from now (i.e. in round `round() + delta`), even if no message
    /// arrives.
    ///
    /// This is the sparse executor's timer: a [`Protocol::SPARSE_AWARE`]
    /// protocol that wants to act spontaneously — periodic beacons, retry
    /// timeouts, backoff — must announce the round it next needs, since
    /// the active-set engine otherwise only steps nodes that received
    /// mail. Multiple calls in one step keep the earliest round. On the
    /// full-sweep engine (and for non-sparse protocols) the request is
    /// recorded and ignored — every node steps every round anyway — so
    /// calling it is always safe and never changes observable results.
    ///
    /// `delta` must be at least 1 (the current round is already
    /// executing); `0` is treated as `1`.
    pub fn wake_in(&mut self, delta: u64) {
        debug_assert!(
            delta >= 1,
            "wake_in(0): the current round is already stepping"
        );
        let target = self.round + delta.max(1);
        *self.wake = Some(self.wake.map_or(target, |w| w.min(target)));
    }

    /// This node's private deterministic RNG.
    ///
    /// The stream is seeded from `(run seed, node id)` at simulator
    /// construction, so the values drawn here are independent of the order
    /// in which the executor visits nodes (and of the thread count).
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// Emits a span/phase marker into the run's [`RunTrace`].
    ///
    /// A no-op (one branch) unless tracing was enabled with
    /// [`Simulator::with_trace`]; emitting events must therefore never be
    /// the protocol's only side effect. Events are recorded in
    /// `(round, node)` order independently of the worker-thread count.
    pub fn trace_event(&mut self, label: &'static str, value: u64) {
        if let Some(events) = self.trace.as_mut() {
            events.push(TraceEvent {
                round: self.round,
                node: self.node,
                label,
                value,
            });
        }
    }
}

/// The graph in compressed-sparse-row form, plus the peer-port table: the
/// executor's entire static view, in three flat arrays indexed by `u32`
/// offsets. `adj[adj_off[v]..adj_off[v+1]]` are `(neighbor, edge)` pairs in
/// port order; `peer_port` is aligned with `adj` and holds the port index
/// at the neighbor through which the same edge is seen from the other side.
struct Csr {
    adj_off: Vec<u32>,
    adj: Vec<(u32, u32)>,
    peer_port: Vec<u32>,
}

impl Csr {
    /// Builds the CSR adjacency and pairs up ports across each edge. For
    /// self-loops the two adjacency occurrences pair with each other.
    fn build(graph: &Graph) -> Csr {
        let n = graph.len();
        let mut adj_off = Vec::with_capacity(n + 1);
        let mut adj: Vec<(u32, u32)> = Vec::new();
        adj_off.push(0u32);
        for v in graph.nodes() {
            adj.extend(graph.neighbors(v).map(|(w, e)| (w.0, e.0)));
            adj_off.push(adj.len() as u32);
        }
        let mut ends = vec![[(0u32, 0u32); 2]; graph.edge_count()];
        let mut cnt = vec![0u8; graph.edge_count()];
        for v in 0..n {
            let off = adj_off[v] as usize;
            let end = adj_off[v + 1] as usize;
            for (p, &(_, e)) in adj[off..end].iter().enumerate() {
                let e = e as usize;
                let c = cnt[e] as usize;
                debug_assert!(c < 2, "an edge has exactly two adjacency entries");
                ends[e][c] = (v as u32, p as u32);
                cnt[e] += 1;
            }
        }
        let mut peer_port = vec![0u32; adj.len()];
        for (e, pair) in ends.iter().enumerate() {
            debug_assert_eq!(cnt[e], 2, "an edge has exactly two adjacency entries");
            let (v0, p0) = pair[0];
            let (v1, p1) = pair[1];
            peer_port[adj_off[v0 as usize] as usize + p0 as usize] = p1;
            peer_port[adj_off[v1 as usize] as usize + p1 as usize] = p0;
        }
        Csr {
            adj_off,
            adj,
            peer_port,
        }
    }

    fn n(&self) -> usize {
        self.adj_off.len() - 1
    }

    fn degree(&self, v: usize) -> usize {
        (self.adj_off[v + 1] - self.adj_off[v]) as usize
    }

    /// `(neighbor, edge)` pairs of `v`, in port order.
    fn neighbors(&self, v: usize) -> &[(u32, u32)] {
        &self.adj[self.adj_off[v] as usize..self.adj_off[v + 1] as usize]
    }

    /// The port index at the other endpoint of the edge behind `(v, port)`.
    fn peer_port(&self, v: usize, port: usize) -> u32 {
        self.peer_port[self.adj_off[v] as usize + port]
    }

    /// Maximum degree over the node range `[lo, hi)`.
    fn max_degree(&self, lo: usize, hi: usize) -> usize {
        (lo..hi).map(|v| self.degree(v)).max().unwrap_or(0)
    }
}

/// One round's delivered messages, grouped by receiver in a single
/// contiguous slab: `nodes` lists the receivers in ascending id order, and
/// group `i` is `slab[offsets[i]..offsets[i + 1]]` — `(receiving port,
/// message)` pairs in the ordered merge's delivery order.
struct InboxArena<M> {
    slab: Vec<(usize, M)>,
    nodes: Vec<u32>,
    offsets: Vec<u32>,
}

impl<M> Default for InboxArena<M> {
    fn default() -> Self {
        InboxArena {
            slab: Vec::new(),
            nodes: Vec::new(),
            offsets: vec![0],
        }
    }
}

impl<M> InboxArena<M> {
    fn clear(&mut self) {
        self.slab.clear();
        self.nodes.clear();
        self.offsets.clear();
        self.offsets.push(0);
    }

    /// The messages of the `i`-th receiver in `nodes`.
    fn group(&self, i: usize) -> &[(usize, M)] {
        &self.slab[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }
}

/// Deliveries staged by the merge before grouping: parallel arrays of
/// destination node and `(receiving port, message)`, in delivery order.
struct Pending<M> {
    dst: Vec<u32>,
    msg: Vec<(usize, M)>,
}

impl<M> Default for Pending<M> {
    fn default() -> Self {
        Pending {
            dst: Vec::new(),
            msg: Vec::new(),
        }
    }
}

/// Groups `pend` by destination into `arena` with a **stable** counting
/// sort: per-destination message order is exactly the staging order (the
/// ordered merge's), which is what keeps inbox contents byte-identical to
/// the per-node-buffer layout this replaced. `cnt` and `cursor` are
/// all-zero length-`n` scratch arrays and are returned all-zero (only
/// touched entries are cleared, so the pass is O(traffic), not O(n));
/// `perm` is resizable scratch. The grouped messages end up in
/// `arena.slab` via a buffer swap — no per-message allocation.
fn group_pending<M>(
    pend: &mut Pending<M>,
    cnt: &mut [u32],
    cursor: &mut [u32],
    perm: &mut Vec<u32>,
    arena: &mut InboxArena<M>,
) {
    arena.clear();
    if pend.dst.is_empty() {
        pend.msg.clear();
        std::mem::swap(&mut arena.slab, &mut pend.msg);
        return;
    }
    for &d in &pend.dst {
        if cnt[d as usize] == 0 {
            arena.nodes.push(d);
        }
        cnt[d as usize] += 1;
    }
    arena.nodes.sort_unstable();
    let mut running = 0u32;
    for &v in &arena.nodes {
        cursor[v as usize] = running;
        running += cnt[v as usize];
        arena.offsets.push(running);
    }
    // perm[j] = final slab position of staged message j (stable: equal
    // destinations keep their relative order).
    perm.clear();
    perm.extend(pend.dst.iter().map(|&d| {
        let p = cursor[d as usize];
        cursor[d as usize] = p + 1;
        p
    }));
    // Apply the permutation in place by following cycles.
    for i in 0..perm.len() {
        while perm[i] as usize != i {
            let j = perm[i] as usize;
            pend.msg.swap(i, j);
            perm.swap(i, j);
        }
    }
    // Restore the all-zero invariant, touching only grouped entries.
    for &v in &arena.nodes {
        cnt[v as usize] = 0;
        cursor[v as usize] = 0;
    }
    pend.dst.clear();
    std::mem::swap(&mut arena.slab, &mut pend.msg);
}

/// The active set of one round: a dense epoch-stamped membership array plus
/// a worklist. Insertion is O(1) with deduplication; `finish` sorts the
/// worklist so the visit order is canonical (ascending node id) regardless
/// of insertion order, which is what keeps the sparse engine byte-identical
/// to the full sweep.
#[derive(Default)]
struct ActiveSet {
    stamp: Vec<u64>,
    epoch: u64,
    list: Vec<u32>,
}

impl ActiveSet {
    fn reset(&mut self, n: usize) {
        if self.stamp.len() != n {
            self.stamp.clear();
            self.stamp.resize(n, 0);
            self.epoch = 0;
        }
        self.list.clear();
    }

    fn begin(&mut self) {
        self.epoch += 1;
        self.list.clear();
    }

    fn insert(&mut self, v: u32) {
        let s = &mut self.stamp[v as usize];
        if *s != self.epoch {
            *s = self.epoch;
            self.list.push(v);
        }
    }

    fn finish(&mut self) -> &[u32] {
        self.list.sort_unstable();
        &self.list
    }
}

/// What the stepper produced in one round, in flat run-length form:
/// `index` lists `(sender, number of staged sends)` for senders that sent
/// (ascending), whose `(port, class, message)` triples are consecutive in
/// `slab`; `done` carries `(node, is_done)` for every node actually
/// stepped; `wakes` carries `(node, absolute wake round)` requests.
struct StepOut<M> {
    slab: Vec<(u32, TrafficClass, M)>,
    index: Vec<(u32, u32)>,
    done: Vec<(u32, bool)>,
    wakes: Vec<(u32, u64)>,
    /// Number of protocol callbacks that actually ran this round — the
    /// `active_nodes` trace gauge.
    stepped: u64,
}

impl<M> Default for StepOut<M> {
    fn default() -> Self {
        StepOut {
            slab: Vec::new(),
            index: Vec::new(),
            done: Vec::new(),
            wakes: Vec::new(),
            stepped: 0,
        }
    }
}

impl<M> StepOut<M> {
    fn clear(&mut self) {
        self.slab.clear();
        self.index.clear();
        self.done.clear();
        self.wakes.clear();
        self.stepped = 0;
    }
}

impl<M: Clone> StepOut<M> {
    /// Rewrites a descending-visit fill into the canonical ascending-sender
    /// layout the merge consumes. Only the reverse-visit test hook pays the
    /// clone; the forward paths append in ascending order to begin with.
    fn canonicalize_reversed(&mut self) {
        if self.index.len() > 1 {
            let mut run_start = Vec::with_capacity(self.index.len());
            let mut pos = 0usize;
            for &(_, len) in &self.index {
                run_start.push(pos);
                pos += len as usize;
            }
            let mut rebuilt = Vec::with_capacity(self.slab.len());
            for k in (0..self.index.len()).rev() {
                let s = run_start[k];
                let l = self.index[k].1 as usize;
                rebuilt.extend(self.slab[s..s + l].iter().cloned());
            }
            self.slab = rebuilt;
        }
        self.index.reverse();
        self.done.reverse();
        self.wakes.reverse();
    }
}

/// A message an injected delay is holding back, with the original sender
/// kept for the loss event if the destination crashes first.
struct Held<M> {
    release_round: u64,
    src: usize,
    src_port: usize,
    dst: usize,
    dst_port: usize,
    edge: usize,
    class: TrafficClass,
    msg: M,
}

/// Reusable per-run buffers, hoisted onto the [`Simulator`] so repeated
/// runs (the healing protocols re-run the simulator per epoch/phase) reuse
/// allocations instead of rebuilding arenas every run.
struct Scratch<M> {
    /// This round's inbox arena (read by the stepper).
    cur: InboxArena<M>,
    /// Next round's inbox arena (grouped into at the end of the round,
    /// then swapped with `cur`).
    next: InboxArena<M>,
    /// Merge staging before grouping.
    pend: Pending<M>,
    /// Scratch for [`group_pending`] (permutation / counts / cursors; the
    /// latter two hold an all-zero invariant between rounds).
    perm: Vec<u32>,
    cnt: Vec<u32>,
    cursor: Vec<u32>,
    /// The stepper's per-round output.
    out: StepOut<M>,
    /// The single staging slab the sequential stepper slices per node.
    staged: Vec<Option<(TrafficClass, M)>>,
    /// Delay queue of the faulty path (always empty on the clean path).
    held: Vec<Held<M>>,
    /// Scratch for the stable sweep over `held` (swapped each round).
    held_next: Vec<Held<M>>,
    /// Active-set bitmap + worklist (sparse engine only).
    active: ActiveSet,
    /// `0..n`, the full sweep's constant "active" list.
    all_nodes: Vec<u32>,
    /// Last reported `is_done` per node (plus forced done for crashed and
    /// churn-offline nodes), backing the AllDone counter.
    done: Vec<bool>,
}

impl<M> Default for Scratch<M> {
    fn default() -> Self {
        Scratch {
            cur: InboxArena::default(),
            next: InboxArena::default(),
            pend: Pending::default(),
            perm: Vec::new(),
            cnt: Vec::new(),
            cursor: Vec::new(),
            out: StepOut::default(),
            staged: Vec::new(),
            held: Vec::new(),
            held_next: Vec::new(),
            active: ActiveSet::default(),
            all_nodes: Vec::new(),
            done: Vec::new(),
        }
    }
}

impl<M> Scratch<M> {
    /// Clears every buffer and (re)sizes the per-node arrays to `n`,
    /// keeping their allocations.
    fn reset(&mut self, n: usize) {
        self.cur.clear();
        self.next.clear();
        self.pend.dst.clear();
        self.pend.msg.clear();
        self.perm.clear();
        self.cnt.clear();
        self.cnt.resize(n, 0);
        self.cursor.clear();
        self.cursor.resize(n, 0);
        self.out.clear();
        self.held.clear();
        self.held_next.clear();
        self.active.reset(n);
        if self.all_nodes.len() != n {
            self.all_nodes.clear();
            self.all_nodes.extend(0..n as u32);
        }
        self.done.clear();
        self.done.resize(n, false);
    }
}

/// What one [`RoundStepper::step`] observed.
struct StepOutcome {
    /// Lowest-node CONGEST violation of the round, if any.
    violation: Option<CongestError>,
    /// A worker disappeared mid-run (it panicked); the caller joins the
    /// workers and propagates the panic.
    aborted: bool,
}

/// Executes the protocol step of one round for the given active nodes:
/// pairs each active node with its inbox group (two-pointer merge against
/// the arena's ascending receiver list), runs `init`/`round`/`on_restart`,
/// and appends staged sends / done flags / wake requests to `out` in
/// ascending node order. The two implementations — in-place sequential and
/// sharded threaded — are interchangeable under the determinism contract;
/// everything else about a round lives in [`round_engine`].
///
/// `shards` is the telemetry sample sink: `None` (telemetry off) costs one
/// branch; when `Some`, the stepper appends one [`ShardRoundSample`] per
/// executor shard (a single shard 0 for the sequential stepper) with the
/// shard's step wall-time and work counters.
trait RoundStepper<M> {
    fn step(
        &mut self,
        round: u64,
        active: &[u32],
        inbox: &InboxArena<M>,
        out: &mut StepOut<M>,
        events: Option<&mut Vec<TraceEvent>>,
        shards: Option<&mut Vec<ShardRoundSample>>,
    ) -> StepOutcome;
}

/// The sequential stepper: owns borrowed views of the node state machines
/// and RNG streams, steps the round's active nodes in place (ascending id;
/// descending behind the `reverse` test hook), and appends to the engine's
/// [`StepOut`].
struct InlineStepper<'a, P: Protocol> {
    nodes: &'a mut [P],
    rngs: &'a mut [StdRng],
    csr: &'a Csr,
    /// Round at which each node crash-stops (`u64::MAX` = never); empty on
    /// the clean path.
    crash_round: &'a [u64],
    churn: Option<&'a ChurnSchedule>,
    /// The reusable staging slab, sized to the maximum degree.
    staged: Vec<Option<(TrafficClass, P::Message)>>,
    budget_bits: usize,
    /// Test hook: visit nodes in descending order (the determinism
    /// contract says this must not change any observable).
    reverse: bool,
}

impl<P: Protocol> InlineStepper<'_, P> {
    #[allow(clippy::too_many_arguments)]
    fn step_node(
        &mut self,
        v: usize,
        round: u64,
        group: &[(usize, P::Message)],
        out: &mut StepOut<P::Message>,
        violation: &mut Option<CongestError>,
        events: &mut Option<&mut Vec<TraceEvent>>,
    ) {
        let degree = self.csr.degree(v);
        let mut wake: Option<u64> = None;
        {
            let mut ctx = Ctx {
                node: NodeId::from(v),
                degree,
                neighbors: self.csr.neighbors(v),
                round,
                budget_bits: self.budget_bits,
                staged: &mut self.staged[..degree],
                default_class: P::TRAFFIC_CLASS,
                rng: &mut self.rngs[v],
                violation,
                wake: &mut wake,
                trace: events.as_deref_mut(),
                churn: self.churn,
            };
            if round == 0 {
                self.nodes[v].init(&mut ctx);
            } else if self.churn.is_some_and(|ch| ch.rejoining(round, v)) {
                self.nodes[v].on_restart(&mut ctx);
            } else {
                self.nodes[v].round(&mut ctx, group);
            }
        }
        // Drain the slab unconditionally so it is clean for the next node
        // even when this node tripped a violation mid-step.
        let mut len = 0u32;
        for (port, slot) in self.staged[..degree].iter_mut().enumerate() {
            if let Some((cls, msg)) = slot.take() {
                out.slab.push((port as u32, cls, msg));
                len += 1;
            }
        }
        if len > 0 {
            out.index.push((v as u32, len));
        }
        out.done.push((v as u32, self.nodes[v].is_done()));
        if let Some(r) = wake {
            out.wakes.push((v as u32, r));
        }
        out.stepped += 1;
    }
}

impl<P: Protocol> RoundStepper<P::Message> for InlineStepper<'_, P> {
    fn step(
        &mut self,
        round: u64,
        active: &[u32],
        inbox: &InboxArena<P::Message>,
        out: &mut StepOut<P::Message>,
        mut events: Option<&mut Vec<TraceEvent>>,
        shards: Option<&mut Vec<ShardRoundSample>>,
    ) -> StepOutcome {
        // Wall-clock only ticks when telemetry asked for samples; the off
        // path is byte-identical (one branch).
        let step_start = shards.as_ref().map(|_| std::time::Instant::now());
        let mut violation: Option<CongestError> = None;
        if !self.reverse {
            let mut ri = 0usize;
            for &vu in active {
                let v = vu as usize;
                // Pair the node with its inbox group *before* any skip:
                // crashed and churn-offline receivers still swallow their
                // mail (it was lost on arrival, not left queued).
                let mut group: &[(usize, P::Message)] = &[];
                if ri < inbox.nodes.len() && inbox.nodes[ri] == vu {
                    group = inbox.group(ri);
                    ri += 1;
                }
                if self.crash_round.get(v).is_some_and(|&r| r <= round) {
                    // Crash-stopped: no step, inbox discarded.
                    continue;
                }
                if self.churn.is_some_and(|ch| ch.node_down(round, v)) {
                    // Churn outage: like a crash, but temporary.
                    continue;
                }
                // After a violation the rest of the sweep is skipped (the
                // run aborts; state after an error is unspecified).
                if violation.is_some() {
                    continue;
                }
                self.step_node(v, round, group, out, &mut violation, &mut events);
            }
            debug_assert_eq!(
                ri,
                inbox.nodes.len(),
                "every inbox group had an active receiver"
            );
        } else {
            // Descending test visit. Unlike the forward sweep this steps
            // *every* eligible node with a per-node violation slot and lets
            // descending overwrites land on the lowest violating node —
            // the forward sweep's canonical error. (Which nodes violate is
            // visit-order independent because nodes cannot interact
            // mid-round; protocol state after an error is unspecified,
            // which covers the extra stepping.)
            let mut ri = inbox.nodes.len();
            for &vu in active.iter().rev() {
                let v = vu as usize;
                let mut group: &[(usize, P::Message)] = &[];
                if ri > 0 && inbox.nodes[ri - 1] == vu {
                    ri -= 1;
                    group = inbox.group(ri);
                }
                if self.crash_round.get(v).is_some_and(|&r| r <= round) {
                    continue;
                }
                if self.churn.is_some_and(|ch| ch.node_down(round, v)) {
                    continue;
                }
                let mut this_violation: Option<CongestError> = None;
                self.step_node(v, round, group, out, &mut this_violation, &mut events);
                if this_violation.is_some() {
                    violation = this_violation;
                }
            }
            debug_assert_eq!(ri, 0, "every inbox group had an active receiver");
            out.canonicalize_reversed();
        }
        if let Some(samples) = shards {
            samples.push(ShardRoundSample {
                shard: 0,
                wall_nanos: step_start.map_or(0, |t| {
                    t.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
                }),
                nodes_stepped: out.stepped,
                messages_staged: out.slab.len() as u64,
            });
        }
        StepOutcome {
            violation,
            aborted: false,
        }
    }
}

/// One round's work order for a sharded worker: the shard's slice of the
/// active list and inbox arena, plus the output buffers the worker fills.
/// Jobs shuttle between coordinator and worker and are recycled round over
/// round, so the per-round cost is copying the shard's slices, not
/// allocation.
struct RoundJob<M> {
    round: u64,
    active: Vec<u32>,
    inbox_index: Vec<(u32, u32)>,
    inbox_slab: Vec<(usize, M)>,
    out: StepOut<M>,
    events: Vec<TraceEvent>,
    /// Wall-clock nanoseconds the worker spent stepping this job's nodes,
    /// stamped only when telemetry is on (0 otherwise). Host observability
    /// metadata — never feeds an observable.
    wall_nanos: u64,
}

impl<M> Default for RoundJob<M> {
    fn default() -> Self {
        RoundJob {
            round: 0,
            active: Vec::new(),
            inbox_index: Vec::new(),
            inbox_slab: Vec::new(),
            out: StepOut::default(),
            events: Vec::new(),
            wall_nanos: 0,
        }
    }
}

/// A worker's completed round, handing the recycled job back.
struct RoundReply<M> {
    worker: usize,
    job: RoundJob<M>,
    /// Lowest-node violation of the shard, tagged with the node.
    violation: Option<(u32, CongestError)>,
}

/// The multi-threaded stepper: nodes are assigned to worker shards by an
/// explicit [`Placement`] map (contiguous chunks by default, spectral
/// k-way cuts via [`Simulator::with_placement`]), one persistent worker
/// per shard inside a [`std::thread::scope`]; each round the coordinator
/// routes the active list and inbox arena through the node→shard map,
/// ships the per-shard jobs out, and splices the workers' [`StepOut`]s
/// back in **canonical ascending-node order** — by concatenation when the
/// placement is id-monotone (every shard a contiguous id range), and by a
/// cursor merge over the shard streams otherwise. Either way the stream
/// handed to the engine's ordered merge is byte-identical to the
/// sequential visit's. The worker side lives in
/// [`Simulator::run_parallel`]; this type is the coordinator half.
struct ThreadedStepper<'p, M> {
    job_txs: Vec<mpsc::Sender<RoundJob<M>>>,
    reply_rx: mpsc::Receiver<RoundReply<M>>,
    /// Node id → owning worker shard.
    shard_of: &'p [u32],
    /// Shard ids nondecreasing in node id: splice-back may concatenate.
    monotone: bool,
    /// Recycled jobs, indexed by worker, parked here between rounds.
    stash: Vec<Option<RoundJob<M>>>,
}

impl<M: CongestMessage> RoundStepper<M> for ThreadedStepper<'_, M> {
    fn step(
        &mut self,
        round: u64,
        active: &[u32],
        inbox: &InboxArena<M>,
        out: &mut StepOut<M>,
        mut events: Option<&mut Vec<TraceEvent>>,
        shards: Option<&mut Vec<ShardRoundSample>>,
    ) -> StepOutcome {
        let workers = self.job_txs.len();
        let mut jobs: Vec<RoundJob<M>> = self
            .stash
            .iter_mut()
            .map(|slot| {
                let mut job = slot.take().unwrap_or_default();
                job.round = round;
                job.active.clear();
                job.inbox_index.clear();
                job.inbox_slab.clear();
                job
            })
            .collect();
        // Route the ascending active list and inbox groups through the
        // shard map; within each shard both stay ascending by node.
        for &v in active {
            jobs[self.shard_of[v as usize] as usize].active.push(v);
        }
        for (i, &vu) in inbox.nodes.iter().enumerate() {
            let job = &mut jobs[self.shard_of[vu as usize] as usize];
            let s = inbox.offsets[i] as usize;
            let e = inbox.offsets[i + 1] as usize;
            job.inbox_index.push((vu, (e - s) as u32));
            job.inbox_slab.extend_from_slice(&inbox.slab[s..e]);
        }
        let mut sent = 0usize;
        for (w, job) in jobs.into_iter().enumerate() {
            // A send can only fail if the worker panicked; the recv below
            // notices and the caller joins to propagate the panic.
            if self.job_txs[w].send(job).is_ok() {
                sent += 1;
            }
        }
        let aborted = StepOutcome {
            violation: None,
            aborted: true,
        };
        if sent < workers {
            return aborted;
        }
        let mut violation: Option<(u32, CongestError)> = None;
        for _ in 0..workers {
            let Ok(reply) = self.reply_rx.recv() else {
                return aborted;
            };
            if let Some((v, err)) = reply.violation {
                // The deterministic error is the lowest-node one, exactly
                // what the sequential visit would hit first.
                if violation.as_ref().is_none_or(|&(best, _)| v < best) {
                    violation = Some((v, err));
                }
            }
            self.stash[reply.worker] = Some(reply.job);
        }
        // Telemetry samples must be drawn *before* the splice-back below:
        // the monotone concat zeroes `stepped` and drains the slabs.
        if let Some(samples) = shards {
            for (w, slot) in self.stash.iter().enumerate() {
                let job = slot.as_ref().expect("every worker replied");
                samples.push(ShardRoundSample {
                    shard: w as u32,
                    wall_nanos: job.wall_nanos,
                    nodes_stepped: job.out.stepped,
                    messages_staged: job.out.slab.len() as u64,
                });
            }
        }
        if self.monotone {
            // Worker order IS ascending node order: concatenate.
            for slot in &mut self.stash {
                let job = slot.as_mut().expect("every worker replied");
                out.slab.append(&mut job.out.slab);
                out.index.append(&mut job.out.index);
                out.done.append(&mut job.out.done);
                out.wakes.append(&mut job.out.wakes);
                out.stepped += job.out.stepped;
                job.out.stepped = 0;
                if let Some(ev) = events.as_mut() {
                    ev.append(&mut job.events);
                }
            }
        } else {
            self.merge_by_node(active, out, events);
        }
        StepOutcome {
            violation: violation.map(|(_, err)| err),
            aborted: false,
        }
    }
}

impl<M: CongestMessage> ThreadedStepper<'_, M> {
    /// Splices the shard [`StepOut`] streams back in ascending node order
    /// for a non-monotone placement: walk the global active list and
    /// consume each shard's streams through per-worker cursors. Every
    /// stream is ascending by node within its shard, and a node appears in
    /// its shard's `done` stream iff the worker stepped it, so the merged
    /// result is exactly the sequential visit's.
    fn merge_by_node(
        &mut self,
        active: &[u32],
        out: &mut StepOut<M>,
        mut events: Option<&mut Vec<TraceEvent>>,
    ) {
        let workers = self.job_txs.len();
        let mut jobs: Vec<&mut RoundJob<M>> = self
            .stash
            .iter_mut()
            .map(|slot| slot.as_mut().expect("every worker replied"))
            .collect();
        let mut done_at = vec![0usize; workers];
        let mut index_at = vec![0usize; workers];
        let mut slab_at = vec![0usize; workers];
        let mut wake_at = vec![0usize; workers];
        let mut event_at = vec![0usize; workers];
        for &v in active {
            let w = self.shard_of[v as usize] as usize;
            let job = &mut jobs[w];
            if job.out.done.get(done_at[w]).is_some_and(|&(u, _)| u == v) {
                out.done.push(job.out.done[done_at[w]]);
                done_at[w] += 1;
                out.stepped += 1;
                if job.out.index.get(index_at[w]).is_some_and(|&(u, _)| u == v) {
                    let (_, len) = job.out.index[index_at[w]];
                    index_at[w] += 1;
                    out.index.push((v, len));
                    let s = slab_at[w];
                    out.slab
                        .extend_from_slice(&job.out.slab[s..s + len as usize]);
                    slab_at[w] += len as usize;
                }
                if job.out.wakes.get(wake_at[w]).is_some_and(|&(u, _)| u == v) {
                    out.wakes.push(job.out.wakes[wake_at[w]]);
                    wake_at[w] += 1;
                }
            }
            if let Some(ev) = events.as_mut() {
                while job
                    .events
                    .get(event_at[w])
                    .is_some_and(|e| e.node.index() as u32 == v)
                {
                    ev.push(job.events[event_at[w]]);
                    event_at[w] += 1;
                }
            }
        }
        for (w, job) in jobs.into_iter().enumerate() {
            debug_assert_eq!(done_at[w], job.out.done.len());
            debug_assert_eq!(slab_at[w], job.out.slab.len());
            debug_assert_eq!(event_at[w], job.events.len());
            job.out.stepped = 0;
            job.out.clear();
            job.events.clear();
        }
    }
}

/// Precomputed per-run event streams shared by both engines, each sorted
/// ascending by `(round, node)`:
///
/// * `crash_events` / `down_events` drive the AllDone counter's forced-done
///   bookkeeping (a crashed or churn-offline node counts as done while
///   down) on the sparse *and* full-sweep paths;
/// * `rejoin_events` wake restarting nodes on the sparse path (the full
///   sweep steps them anyway).
struct Wakeups {
    /// Whether the active-set engine is in effect
    /// ([`Protocol::SPARSE_AWARE`] and not [`RunConfig::full_sweep`]).
    sparse: bool,
    crash_events: Vec<(u64, u32)>,
    down_events: Vec<(u64, u32)>,
    rejoin_events: Vec<(u64, u32)>,
}

/// The one round-loop engine behind every execution path.
///
/// Per round: start-of-round fault effects (crashes), active-set
/// construction (sparse path) or the full node list, the protocol step
/// (via `stepper`), the ordered `(sender, port)` merge with per-message
/// fault sampling (via `hook`), the stable release sweep over the delay
/// queue, delivery accounting, tracing, inbox grouping
/// ([`group_pending`]), and the stop check. The clean path instantiates
/// this with [`NoFaults`] — every hook call inlines away — and is the
/// exact pristine executor; the faulty path instantiates it with
/// [`FaultState`].
///
/// On the sparse path a round's cost is O(active nodes + traffic), not
/// O(n): the active set is mail receivers (this round's arena groups), due
/// [`Ctx::wake_in`] timers, and churn rejoins; round 0 steps everyone.
///
/// `messages`/`bits` count *deliveries*, so dropped/lost traffic never
/// inflates the totals (documented on [`Metrics`]).
#[allow(clippy::too_many_arguments)]
fn round_engine<M, S, H, C>(
    cfg: &RunConfig,
    csr: &Csr,
    edge_load: &mut [u64],
    scratch: &mut Scratch<M>,
    stepper: &mut S,
    hook: &mut H,
    churn: &mut C,
    wk: &Wakeups,
    trace_cfg: Option<TraceConfig>,
    trace_out: &mut Option<RunTrace>,
    profile_cfg: Option<ProfileConfig>,
    profile_out: &mut Option<TrafficProfile>,
    telemetry_cfg: Option<&TelemetryConfig>,
    telemetry_out: &mut Option<RunTelemetry>,
) -> Result<Metrics>
where
    M: CongestMessage,
    S: RoundStepper<M>,
    H: FaultHook,
    C: ChurnHook,
{
    let n = csr.n();
    scratch.reset(n);
    let Scratch {
        cur,
        next,
        pend,
        perm,
        cnt,
        cursor,
        out,
        held,
        held_next,
        active,
        all_nodes,
        done,
        ..
    } = scratch;
    let mut metrics = Metrics::default();
    let mut trace = trace_cfg.map(|tc| {
        (
            tc,
            RunTrace {
                edge_load_stride: tc.edge_load_stride,
                ..RunTrace::default()
            },
        )
    });
    // The profiler records at the delivery points below — the same events
    // that drive `metrics.messages`/`bits` and `edge_load` — so per-class
    // totals sum exactly to the undifferentiated counters.
    let mut profile = profile_cfg.map(|_| TrafficProfile::new(edge_load.len()));
    // Telemetry recording state plus the per-round shard-sample scratch the
    // stepper fills; `None` (the default) costs a handful of branches per
    // round and leaves every observable byte-identical.
    let mut telemetry = telemetry_cfg.map(|tc| {
        (
            TelemetryState::new(tc.clone()),
            Vec::<ShardRoundSample>::new(),
        )
    });
    let mut result: Result<Metrics> = Err(CongestError::RoundLimitExceeded {
        max_rounds: cfg.max_rounds,
    });
    // AllDone bookkeeping as an incremental counter: `done` holds each
    // node's last reported `is_done` (valid because `is_done` is a pure
    // read of state that only changes when the node steps), with crashed
    // and churn-offline nodes forced done while down.
    let mut live_not_done = n;
    // Sparse wake timers: absolute round -> nodes that asked to step then.
    let mut timers: BTreeMap<u64, Vec<u32>> = BTreeMap::new();
    let (mut crash_i, mut down_i, mut rejoin_i) = (0usize, 0usize, 0usize);

    'rounds: for round in 0..=cfg.max_rounds {
        // Snapshot the counters so the round's sample records deltas
        // (including crashes applied at the top of this round).
        let round_start = metrics;
        hook.begin_round(round, &mut metrics);
        churn.begin_round(round, &mut metrics);
        // Nodes leaving the computation this round count as done: fault
        // crash-stops permanently, churn outages until the rejoin step
        // re-reports the node's own `is_done`.
        while crash_i < wk.crash_events.len() && wk.crash_events[crash_i].0 <= round {
            let v = wk.crash_events[crash_i].1 as usize;
            crash_i += 1;
            if !done[v] {
                done[v] = true;
                live_not_done -= 1;
            }
        }
        while down_i < wk.down_events.len() && wk.down_events[down_i].0 <= round {
            let v = wk.down_events[down_i].1 as usize;
            down_i += 1;
            if !done[v] {
                done[v] = true;
                live_not_done -= 1;
            }
        }
        let active_list: &[u32] = if wk.sparse {
            active.begin();
            if round == 0 {
                // Everyone inits.
                for v in 0..n as u32 {
                    active.insert(v);
                }
            } else {
                // Mail receivers...
                for &v in &cur.nodes {
                    active.insert(v);
                }
                // ...due wake timers...
                while let Some(entry) = timers.first_entry() {
                    if *entry.key() > round {
                        break;
                    }
                    for v in entry.remove() {
                        active.insert(v);
                    }
                }
                // ...and churn rejoins (their `on_restart` must run even
                // with an empty inbox).
                while rejoin_i < wk.rejoin_events.len() && wk.rejoin_events[rejoin_i].0 <= round {
                    if wk.rejoin_events[rejoin_i].0 == round {
                        active.insert(wk.rejoin_events[rejoin_i].1);
                    }
                    rejoin_i += 1;
                }
            }
            active.finish()
        } else {
            &all_nodes[..]
        };
        out.clear();
        let outcome = stepper.step(
            round,
            active_list,
            cur,
            out,
            trace.as_mut().map(|(_, t)| &mut t.events),
            telemetry.as_mut().map(|(_, samples)| samples),
        );
        if outcome.aborted {
            // The placeholder round-limit error is never observed: the
            // caller joins its workers and re-raises the panic.
            break 'rounds;
        }
        if let Some(err) = outcome.violation {
            result = Err(err);
            break 'rounds;
        }
        for &(vu, d) in out.done.iter() {
            let v = vu as usize;
            if d != done[v] {
                done[v] = d;
                if d {
                    live_not_done -= 1;
                } else {
                    live_not_done += 1;
                }
            }
        }
        if wk.sparse {
            for &(v, r) in out.wakes.iter() {
                timers.entry(r).or_default().push(v);
            }
        }
        // Gauge sampling point: the inbox arena still holds this round's
        // mail and the staged sends have not been drained by the merge yet,
        // so every depth below is the round's true occupancy. All logical
        // (element counts, not allocator capacities) — identical across
        // thread counts, placements, and engines.
        let mut health = telemetry.as_mut().map(|(_, shard_samples)| RoundHealth {
            round,
            active_nodes: active_list.len() as u64,
            inbox_queued: cur.slab.len() as u64,
            staged_sends: out.slab.len() as u64,
            wake_queue: timers.values().map(|v| v.len() as u64).sum(),
            arena_bytes: (cur.slab.len() * std::mem::size_of::<(usize, M)>()
                + out.slab.len() * std::mem::size_of::<(u32, TrafficClass, M)>()
                + held.len() * std::mem::size_of::<Held<M>>()) as u64,
            shards: std::mem::take(shard_samples),
        });
        // Ordered merge with per-message fault sampling: ascending
        // (sender, port), whatever order or thread staged the sends.
        let mut delivered = 0u64;
        let mut slab = std::mem::take(&mut out.slab);
        {
            let mut sends = slab.drain(..);
            for &(vu, len) in out.index.iter() {
                let v = vu as usize;
                let neighbors = csr.neighbors(v);
                for _ in 0..len {
                    let (port, cls, msg) = sends.next().expect("slab and index agree");
                    let port = port as usize;
                    let (dst, edge) = neighbors[port];
                    let (dst, edge) = (dst as usize, edge as usize);
                    let dst_port = csr.peer_port(v, port) as usize;
                    if hook.is_crashed(dst) {
                        // Lost to the crash; the Crashed event already
                        // records the cause, so this is not a drop fault.
                        continue;
                    }
                    if churn.edge_down(round, edge) || churn.node_down(round, dst) {
                        // The link was down (or the destination offline) in
                        // the round the message was staged: lost to churn.
                        // Verdicts use the staging round, matching what the
                        // sender's `Ctx::link_up` reported when it chose to
                        // send.
                        churn.record_loss(round, v, port, &mut metrics);
                        continue;
                    }
                    match hook.fate(round, v, port) {
                        Fate::Deliver => {
                            let width = msg.bit_width() as u64;
                            metrics.bits += width;
                            edge_load[edge] += 1;
                            if let Some(p) = profile.as_mut() {
                                p.record(cls, round, edge, width);
                            }
                            pend.dst.push(dst as u32);
                            pend.msg.push((dst_port, msg));
                            delivered += 1;
                        }
                        Fate::Drop => {
                            metrics.dropped += 1;
                            hook.record(round, v, port, FaultKind::Dropped);
                        }
                        Fate::Corrupt => {
                            metrics.corrupted += 1;
                            let mask = hook.flip_mask(round, v, port, msg.bit_width());
                            match msg.corrupted(mask) {
                                Some(garbled) => {
                                    hook.record(
                                        round,
                                        v,
                                        port,
                                        FaultKind::Corrupted { delivered: true },
                                    );
                                    let width = garbled.bit_width() as u64;
                                    metrics.bits += width;
                                    edge_load[edge] += 1;
                                    if let Some(p) = profile.as_mut() {
                                        p.record(cls, round, edge, width);
                                    }
                                    pend.dst.push(dst as u32);
                                    pend.msg.push((dst_port, garbled));
                                    delivered += 1;
                                }
                                None => {
                                    // No canonical encoding, or the flipped
                                    // frame no longer parses: the receiver
                                    // sees nothing.
                                    hook.record(
                                        round,
                                        v,
                                        port,
                                        FaultKind::Corrupted { delivered: false },
                                    );
                                }
                            }
                        }
                        Fate::Delay(by) => {
                            metrics.delayed += 1;
                            hook.record(round, v, port, FaultKind::Delayed { by });
                            held.push(Held {
                                release_round: round + by,
                                src: v,
                                src_port: port,
                                dst,
                                dst_port,
                                edge,
                                class: cls,
                                msg,
                            });
                        }
                    }
                }
            }
            debug_assert!(sends.next().is_none(), "slab and index agree");
        }
        out.slab = slab;
        // Release held messages whose extra wait has elapsed — a stable
        // sweep, so release order is a function of (staging round, sender,
        // port) only. A message whose destination crashed in the meantime
        // is lost, and the loss is recorded (it was already counted as
        // delayed, so without the event it would silently vanish).
        for h in held.drain(..) {
            if h.release_round > round {
                held_next.push(h);
            } else if hook.is_crashed(h.dst) {
                metrics.lost_to_crash += 1;
                hook.record(round, h.src, h.src_port, FaultKind::LostToCrash);
            } else if churn.edge_down(round, h.edge) || churn.node_down(round, h.dst) {
                // The delay outlived the link (or the destination's
                // uptime): the release round's topology decides.
                churn.record_loss(round, h.src, h.src_port, &mut metrics);
            } else {
                let width = h.msg.bit_width() as u64;
                metrics.bits += width;
                edge_load[h.edge] += 1;
                if let Some(p) = profile.as_mut() {
                    p.record(h.class, round, h.edge, width);
                }
                pend.dst.push(h.dst as u32);
                pend.msg.push((h.dst_port, h.msg));
                delivered += 1;
            }
        }
        std::mem::swap(held, held_next);
        metrics.messages += delivered;
        metrics.peak_messages_per_round = metrics.peak_messages_per_round.max(delivered);
        // One round sample feeds both the trace timeline and the telemetry
        // flight recorder; computed iff either consumer is attached.
        let sample = (trace.is_some() || telemetry.is_some()).then(|| RoundSample {
            round,
            messages: delivered,
            bits: metrics.bits - round_start.bits,
            dropped: metrics.dropped - round_start.dropped,
            corrupted: metrics.corrupted - round_start.corrupted,
            delayed: metrics.delayed - round_start.delayed,
            lost_to_crash: metrics.lost_to_crash - round_start.lost_to_crash,
            crashed: metrics.crashed - round_start.crashed,
            lost_to_churn: metrics.lost_to_churn - round_start.lost_to_churn,
            restarts: metrics.restarts - round_start.restarts,
            // Availability gauge: fault crash-stops are permanent, so
            // the cumulative count is exactly "down now"; churn outages
            // are read off the schedule for this round.
            nodes_down: metrics.crashed + churn.down_count(round),
            active_nodes: out.stepped,
        });
        if let Some((tc, t)) = trace.as_mut() {
            t.samples
                .push(sample.expect("sample computed when tracing"));
            if tc.edge_load_stride > 0 && round % tc.edge_load_stride == 0 {
                t.snapshots.push(EdgeLoadSnapshot {
                    round,
                    load: edge_load.to_vec(),
                });
            }
        }
        if let Some((ts, _)) = telemetry.as_mut() {
            ts.record_round(
                sample.expect("sample computed when telemetry is on"),
                health.take().expect("health captured when telemetry is on"),
            );
        }
        // Group this round's deliveries into next round's inbox arena and
        // swap it in (the consumed arena becomes the next grouping target).
        group_pending(pend, cnt, cursor, perm, next);
        std::mem::swap(cur, next);
        metrics.rounds = round;
        let in_flight = delivered > 0 || !held.is_empty();
        let stop = match cfg.stop {
            StopCondition::AllDone => !in_flight && live_not_done == 0,
            StopCondition::Quiescence => !in_flight && round > 0,
        };
        if stop {
            metrics.max_edge_congestion = edge_load.iter().copied().max().unwrap_or(0);
            if let Some((tc, t)) = trace.as_mut() {
                t.final_edge_load = edge_load.to_vec();
                // Strided snapshots always include the final round: without
                // this, a stride that does not divide the stopping round
                // would leave the series ending mid-run (the in-loop push
                // above already covered the stride-aligned case).
                if tc.edge_load_stride > 0 && t.snapshots.last().map(|s| s.round) != Some(round) {
                    t.snapshots.push(EdgeLoadSnapshot {
                        round,
                        load: edge_load.to_vec(),
                    });
                }
            }
            result = Ok(metrics);
            break 'rounds;
        }
    }
    if let (Some(t), Some(p)) = (trace.as_mut(), profile.as_ref()) {
        t.1.profile = Some(p.clone());
    }
    *trace_out = trace.map(|(_, t)| t);
    *profile_out = profile;
    // Recorded telemetry is handed back even (especially) when the run
    // errored: the flight recorder's last K rounds are the post-mortem.
    *telemetry_out = telemetry.map(|(ts, _)| ts.finish());
    result
}

/// Executes one [`Protocol`] instance per node of a [`Graph`], enforcing the
/// CONGEST constraints, until the configured [`StopCondition`].
///
/// # Examples
///
/// ```
/// use amt_congest::{Ctx, Protocol, RunConfig, Simulator};
/// use amt_graphs::Graph;
///
/// /// Every node learns the maximum id (flooding).
/// struct MaxId { best: u32, dirty: bool }
/// impl Protocol for MaxId {
///     type Message = u32;
///     fn init(&mut self, ctx: &mut Ctx<'_, u32>) {
///         ctx.send_all(self.best);
///     }
///     fn round(&mut self, ctx: &mut Ctx<'_, u32>, inbox: &[(usize, u32)]) {
///         for &(_, v) in inbox {
///             if v > self.best { self.best = v; self.dirty = true; }
///         }
///         if self.dirty { ctx.send_all(self.best); self.dirty = false; }
///     }
/// }
///
/// let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
/// let nodes = (0..3).map(|i| MaxId { best: i as u32, dirty: false }).collect();
/// let mut sim = Simulator::new(&g, nodes, 1).unwrap();
/// let metrics = sim.run(&RunConfig::default()).unwrap();
/// assert!(sim.nodes().iter().all(|n| n.best == 2));
/// assert!(metrics.rounds >= 2);
/// ```
pub struct Simulator<'g, P: Protocol> {
    graph: &'g Graph,
    nodes: Vec<P>,
    /// The graph in CSR form plus the peer-port table — the executor's
    /// entire static view, shared read-only with the workers.
    csr: Csr,
    /// One private RNG per node; see the module determinism contract.
    rngs: Vec<StdRng>,
    /// Messages delivered per (undirected) edge during the most recent run.
    edge_load: Vec<u64>,
    /// Reusable round buffers, kept across runs.
    scratch: Scratch<P::Message>,
    /// Optional fault injection; `None` (or a trivial plan) takes the exact
    /// fault-free execution path.
    fault_plan: Option<FaultPlan>,
    fault_events: Vec<FaultEvent>,
    crashed: Vec<bool>,
    /// Optional topology churn; `None` (or a trivial plan) takes the exact
    /// static-topology execution path.
    churn_plan: Option<ChurnPlan>,
    churn_events: Vec<ChurnEvent>,
    /// Tracing request; `None` (the default) disables all recording and
    /// leaves every execution path byte-identical to the untraced build.
    trace_cfg: Option<TraceConfig>,
    /// Timeline recorded by the most recent [`Self::run`] (when enabled).
    trace: Option<RunTrace>,
    /// Traffic-class profiling request; `None` (the default) records
    /// nothing and leaves every path byte-identical to an unprofiled run.
    profile_cfg: Option<ProfileConfig>,
    /// Profile recorded by the most recent [`Self::run`] (when enabled).
    profile: Option<TrafficProfile>,
    /// Runtime-execution telemetry request; `None` (the default) records
    /// nothing and leaves every path byte-identical to an uninstrumented
    /// run.
    telemetry_cfg: Option<TelemetryConfig>,
    /// Telemetry recorded by the most recent [`Self::run`] (when enabled).
    telemetry: Option<RunTelemetry>,
    /// Explicit node→shard placement for the threaded executor; `None`
    /// (the default) shards into contiguous id chunks.
    placement: Option<Placement>,
}

impl<'g, P: Protocol> Simulator<'g, P> {
    /// Creates a simulator over `graph` with one protocol instance per node.
    ///
    /// # Errors
    ///
    /// [`CongestError::NodeCountMismatch`] if `nodes.len() != graph.len()`.
    pub fn new(graph: &'g Graph, nodes: Vec<P>, seed: u64) -> Result<Self> {
        if nodes.len() != graph.len() {
            return Err(CongestError::NodeCountMismatch {
                graph: graph.len(),
                protocols: nodes.len(),
            });
        }
        let n = nodes.len();
        Ok(Simulator {
            graph,
            nodes,
            csr: Csr::build(graph),
            rngs: (0..n)
                .map(|v| StdRng::seed_from_u64(node_stream_seed(seed, v as u64)))
                .collect(),
            edge_load: vec![0; graph.edge_count()],
            scratch: Scratch::default(),
            fault_plan: None,
            fault_events: Vec::new(),
            crashed: vec![false; n],
            churn_plan: None,
            churn_events: Vec::new(),
            trace_cfg: None,
            trace: None,
            profile_cfg: None,
            profile: None,
            telemetry_cfg: None,
            telemetry: None,
            placement: None,
        })
    }

    /// Attaches an explicit node→shard [`Placement`] for the threaded
    /// executor of every subsequent [`Self::run`].
    ///
    /// The placement is part of the run's *configuration*, not its
    /// semantics: by the determinism contract every observable —
    /// `Metrics`, protocol state, traces, profiles, fault/churn logs — is
    /// byte-identical under any placement (and to the sequential path);
    /// only wall-clock and cross-worker traffic depend on it. Runs that
    /// resolve to a single thread ignore the placement entirely.
    ///
    /// Validated when a threaded run starts: the placement must cover
    /// exactly the graph's nodes and have exactly as many shards as the
    /// run's resolved worker count, else the run fails with
    /// [`CongestError::PlacementInvalid`].
    pub fn with_placement(mut self, placement: Placement) -> Self {
        self.placement = Some(placement);
        self
    }

    /// Enables round-level tracing for every subsequent [`Self::run`].
    ///
    /// Recording never changes observable behavior: `Metrics`, protocol
    /// state, and RNG streams are byte-identical with tracing on or off,
    /// on the clean, faulty, and multi-threaded execution paths alike.
    pub fn with_trace(mut self, cfg: TraceConfig) -> Self {
        self.trace_cfg = Some(cfg);
        self
    }

    /// The timeline recorded by the most recent [`Self::run`], if tracing
    /// was enabled. A run aborted by an error leaves the rounds recorded up
    /// to the abort (with an empty `final_edge_load`).
    pub fn trace(&self) -> Option<&RunTrace> {
        self.trace.as_ref()
    }

    /// Takes ownership of the most recent run's timeline.
    pub fn take_trace(&mut self) -> Option<RunTrace> {
        self.trace.take()
    }

    /// Enables traffic-class profiling for every subsequent [`Self::run`].
    ///
    /// Like tracing, profiling never changes observable behavior: `Metrics`,
    /// `RunTrace`, protocol state, and RNG streams are byte-identical with
    /// profiling on or off, on every execution path. When tracing is also
    /// enabled the profile is additionally attached to the run's
    /// [`RunTrace::profile`].
    pub fn with_profile(mut self, cfg: ProfileConfig) -> Self {
        self.profile_cfg = Some(cfg);
        self
    }

    /// The traffic profile recorded by the most recent [`Self::run`], if
    /// profiling was enabled.
    pub fn profile(&self) -> Option<&TrafficProfile> {
        self.profile.as_ref()
    }

    /// Takes ownership of the most recent run's traffic profile.
    pub fn take_profile(&mut self) -> Option<TrafficProfile> {
        self.profile.take()
    }

    /// Enables runtime-execution telemetry for every subsequent
    /// [`Self::run`]: per-shard step wall-times and work counters, engine
    /// gauges (active-set occupancy, inbox/staged depths, wake-queue depth,
    /// arena bytes), a fixed-capacity flight recorder of the last K rounds,
    /// and optional NDJSON streaming ([`TelemetryConfig::stream_to`]).
    ///
    /// Same contract as [`Self::with_trace`] / [`Self::with_profile`]:
    /// recording never changes observable behavior — `Metrics`, protocol
    /// state, RNG streams, traces, and profiles are byte-identical with
    /// telemetry on or off, on every execution path. When a run ends in an
    /// error the flight recorder is automatically dumped to
    /// `experiments_out/flightrec_<run_id>.json` (see
    /// [`crate::telemetry::dump_flight`]); call
    /// [`Self::dump_flight_recorder`] for degraded-but-successful outcomes.
    pub fn with_telemetry(mut self, cfg: TelemetryConfig) -> Self {
        self.telemetry_cfg = Some(cfg);
        self
    }

    /// The telemetry recorded by the most recent [`Self::run`], if enabled.
    /// A run aborted by an error keeps everything recorded up to the abort.
    pub fn telemetry(&self) -> Option<&RunTelemetry> {
        self.telemetry.as_ref()
    }

    /// Takes ownership of the most recent run's telemetry.
    pub fn take_telemetry(&mut self) -> Option<RunTelemetry> {
        self.telemetry.take()
    }

    /// Dumps the most recent run's flight recorder (last K rounds plus the
    /// in-window fault/churn events) to
    /// `<AMT_REPORT_DIR|experiments_out>/flightrec_<run_id>.json`, returning
    /// the path. For *degraded* outcomes the simulator cannot judge —
    /// errored runs dump automatically. `None` if telemetry was off (or the
    /// dump could not be written; a failed dump never raises).
    pub fn dump_flight_recorder(&self, reason: &str) -> Option<std::path::PathBuf> {
        let telemetry = self.telemetry.as_ref()?;
        let run_id = self
            .telemetry_cfg
            .as_ref()
            .map_or("run", |tc| tc.run_id.as_str());
        crate::telemetry::dump_flight(
            telemetry,
            run_id,
            reason,
            &self.fault_events,
            &self.churn_events,
        )
    }

    /// Attaches a [`FaultPlan`] to apply on every subsequent [`Self::run`].
    ///
    /// A trivial plan (see [`FaultPlan::is_trivial`]) is equivalent to no
    /// plan at all: the run is bit-for-bit identical to the fault-free path.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// The faults injected by the most recent [`Self::run`], in order.
    pub fn fault_events(&self) -> &[FaultEvent] {
        &self.fault_events
    }

    /// Attaches a [`ChurnPlan`] to apply on every subsequent [`Self::run`].
    ///
    /// A trivial plan (see [`ChurnPlan::is_trivial`]) is equivalent to no
    /// plan at all: the run is bit-for-bit identical to the static-topology
    /// path. Composes with [`Self::with_fault_plan`]: fault verdicts apply
    /// to messages that survive churn.
    pub fn with_churn_plan(mut self, plan: ChurnPlan) -> Self {
        self.churn_plan = Some(plan);
        self
    }

    /// Topology transitions and churn losses of the most recent
    /// [`Self::run`], in `(round, edges-before-nodes, id)` order for
    /// transitions, interleaved with losses in delivery order — fully
    /// deterministic (empty without a non-trivial [`ChurnPlan`]).
    pub fn churn_events(&self) -> &[ChurnEvent] {
        &self.churn_events
    }

    /// Nodes crash-stopped during the most recent [`Self::run`].
    pub fn crashed_nodes(&self) -> Vec<NodeId> {
        self.crashed
            .iter()
            .enumerate()
            .filter(|&(_v, &c)| c)
            .map(|(v, &_c)| NodeId::from(v))
            .collect()
    }

    /// The protocol instances (for extracting results after a run).
    pub fn nodes(&self) -> &[P] {
        &self.nodes
    }

    /// Mutable access to the protocol instances.
    pub fn nodes_mut(&mut self) -> &mut [P] {
        &mut self.nodes
    }

    /// Messages delivered per (undirected) edge, indexed by edge id, during
    /// the most recent [`Self::run`]; the maximum entry is reported as
    /// [`Metrics::max_edge_congestion`].
    pub fn edge_load(&self) -> &[u64] {
        &self.edge_load
    }

    /// Runs until the stop condition, returning measured [`Metrics`].
    ///
    /// With a non-trivial [`FaultPlan`] attached, each staged message's
    /// fate is sampled from the plan's message-identity PRF between staging
    /// and delivery; without one the execution is exactly the fault-free
    /// simulator. Both paths parallelize over [`RunConfig::threads`]
    /// workers, with byte-identical results for any thread count.
    ///
    /// After a returned error the protocol and RNG states are unspecified
    /// (the run is aborted mid-round); the error value itself is
    /// deterministic.
    ///
    /// # Errors
    ///
    /// Any CONGEST violation recorded during execution,
    /// [`CongestError::RoundLimitExceeded`], or
    /// [`CongestError::FaultPlanInvalid`].
    pub fn run(&mut self, cfg: &RunConfig) -> Result<Metrics> {
        self.run_inner(cfg, false)
    }

    /// Runs with the per-round node visit order reversed — a test hook for
    /// the determinism contract: by the contract the result is
    /// byte-identical to [`Self::run`]. The flag only has meaning for the
    /// single-threaded stepper (pass `threads = 1`); the sharded stepper
    /// already interleaves nodes differently and is covered by thread-count
    /// identity.
    #[doc(hidden)]
    pub fn run_reverse_visit(&mut self, cfg: &RunConfig) -> Result<Metrics> {
        self.run_inner(cfg, true)
    }

    fn run_inner(&mut self, cfg: &RunConfig, reverse_visit: bool) -> Result<Metrics> {
        self.trace = None;
        self.profile = None;
        self.telemetry = None;
        self.churn_events.clear();
        // Take both plans for the duration of the run instead of cloning
        // them (schedules can be long-lived and big); they are restored
        // before returning.
        let fault_plan = self.fault_plan.take();
        let churn_plan = self.churn_plan.take();
        let result = self.run_planned(cfg, fault_plan.as_ref(), churn_plan.as_ref(), reverse_visit);
        self.fault_plan = fault_plan;
        self.churn_plan = churn_plan;
        // A telemetry-enabled run that dies takes its post-mortem with it:
        // the flight recorder's final K rounds, dumped where the report
        // artifacts go. Dump failures are swallowed — the run's own error
        // is the story.
        if let Err(e) = &result {
            if self.telemetry.is_some() {
                self.dump_flight_recorder(&format!("{e}"));
            }
        }
        result
    }

    /// Resolves the 2×2 (faulty?, churned?) split into engine
    /// instantiations. Trivial plans take the exact clean hooks, so
    /// attaching them is observably free; each non-trivial axis swaps in
    /// its stateful hook ([`FaultState`] / [`ChurnState`]) independently.
    fn run_planned(
        &mut self,
        cfg: &RunConfig,
        fault_plan: Option<&FaultPlan>,
        churn_plan: Option<&ChurnPlan>,
        reverse_visit: bool,
    ) -> Result<Metrics> {
        let n = self.graph.len();
        let faulty = fault_plan.filter(|p| !p.is_trivial());
        let churned = churn_plan.filter(|p| !p.is_trivial());
        let sched = match churned {
            Some(plan) => {
                plan.validate(n, self.graph.edge_count())?;
                Some(plan.normalize(n, self.graph.edge_count()))
            }
            None => None,
        };
        match (faulty, &sched) {
            (None, None) => {
                self.dispatch(cfg, &mut NoFaults, &mut NoChurn, None, &[], reverse_visit)
            }
            (Some(plan), None) => {
                let mut fs = FaultState::new(plan, n)?;
                let crash_round = plan.crash_rounds(n);
                let result = self.dispatch(
                    cfg,
                    &mut fs,
                    &mut NoChurn,
                    None,
                    &crash_round,
                    reverse_visit,
                );
                self.fault_events = std::mem::take(&mut fs.events);
                self.crashed = std::mem::take(&mut fs.crashed);
                result
            }
            (None, Some(sched)) => {
                let mut cs = ChurnState::new(sched);
                let result =
                    self.dispatch(cfg, &mut NoFaults, &mut cs, Some(sched), &[], reverse_visit);
                self.churn_events = std::mem::take(&mut cs.events);
                result
            }
            (Some(plan), Some(sched)) => {
                let mut fs = FaultState::new(plan, n)?;
                let crash_round = plan.crash_rounds(n);
                let mut cs = ChurnState::new(sched);
                let result = self.dispatch(
                    cfg,
                    &mut fs,
                    &mut cs,
                    Some(sched),
                    &crash_round,
                    reverse_visit,
                );
                self.fault_events = std::mem::take(&mut fs.events);
                self.crashed = std::mem::take(&mut fs.crashed);
                self.churn_events = std::mem::take(&mut cs.events);
                result
            }
        }
    }

    /// Picks the engine strategy (active-set vs full sweep) and the
    /// sequential or threaded stepper, and precomputes the run's
    /// [`Wakeups`] event streams.
    fn dispatch<H: FaultHook, C: ChurnHook>(
        &mut self,
        cfg: &RunConfig,
        hook: &mut H,
        churn: &mut C,
        sched: Option<&ChurnSchedule>,
        crash_round: &[u64],
        reverse_visit: bool,
    ) -> Result<Metrics> {
        let sparse = P::SPARSE_AWARE && !cfg.full_sweep;
        let mut crash_events: Vec<(u64, u32)> = crash_round
            .iter()
            .enumerate()
            .filter(|&(_, &r)| r != u64::MAX)
            .map(|(v, &r)| (r, v as u32))
            .collect();
        crash_events.sort_unstable();
        let (mut down_events, mut rejoin_events) = match sched {
            Some(s) => (s.down_events(), s.rejoin_events()),
            None => (Vec::new(), Vec::new()),
        };
        down_events.sort_unstable();
        rejoin_events.sort_unstable();
        let wk = Wakeups {
            sparse,
            crash_events,
            down_events,
            rejoin_events,
        };
        let threads = cfg.effective_threads(self.graph.len());
        if threads <= 1 {
            self.run_seq(cfg, hook, churn, sched, crash_round, &wk, reverse_visit)
        } else {
            self.run_parallel(cfg, hook, churn, sched, crash_round, &wk, threads)
        }
    }

    /// Resets the per-edge delivery counters at the start of a run.
    fn reset_edge_load(&mut self) {
        self.edge_load.clear();
        self.edge_load.resize(self.graph.edge_count(), 0);
    }

    /// Single-threaded execution: the unified engine over [`InlineStepper`].
    #[allow(clippy::too_many_arguments)]
    fn run_seq<H: FaultHook, C: ChurnHook>(
        &mut self,
        cfg: &RunConfig,
        hook: &mut H,
        churn: &mut C,
        sched: Option<&ChurnSchedule>,
        crash_round: &[u64],
        wk: &Wakeups,
        reverse_visit: bool,
    ) -> Result<Metrics> {
        let n = self.graph.len();
        let budget_bits = cfg.budget_factor * bits_for_count(n.max(2));
        self.reset_edge_load();
        let trace_cfg = self.trace_cfg;
        let profile_cfg = self.profile_cfg;
        let telemetry_cfg = self.telemetry_cfg.clone();
        let Simulator {
            nodes,
            rngs,
            csr,
            edge_load,
            scratch,
            trace,
            profile,
            telemetry,
            ..
        } = self;
        let csr: &Csr = csr;
        let mut staged = std::mem::take(&mut scratch.staged);
        staged.clear();
        staged.resize_with(csr.max_degree(0, n), || None);
        let mut stepper = InlineStepper::<P> {
            nodes,
            rngs,
            csr,
            crash_round,
            churn: sched,
            staged,
            budget_bits,
            reverse: reverse_visit,
        };
        let result = round_engine(
            cfg,
            csr,
            edge_load,
            scratch,
            &mut stepper,
            hook,
            churn,
            wk,
            trace_cfg,
            trace,
            profile_cfg,
            profile,
            telemetry_cfg.as_ref(),
            telemetry,
        );
        scratch.staged = stepper.staged;
        result
    }

    /// Multi-threaded execution: the unified engine over [`ThreadedStepper`],
    /// with this method owning the worker side — placement-mapped node
    /// shards, one persistent worker each, job/reply channels, buffer
    /// recycling, and panic propagation on join.
    #[allow(clippy::too_many_arguments)]
    fn run_parallel<H: FaultHook, C: ChurnHook>(
        &mut self,
        cfg: &RunConfig,
        hook: &mut H,
        churn: &mut C,
        sched: Option<&ChurnSchedule>,
        crash_round: &[u64],
        wk: &Wakeups,
        threads: usize,
    ) -> Result<Metrics> {
        let n = self.graph.len();
        let budget_bits = cfg.budget_factor * bits_for_count(n.max(2));
        self.reset_edge_load();
        // Resolve the node→shard map: an explicit placement when attached
        // (validated against this run's resolved worker count), else the
        // default contiguous chunking.
        let placement = match &self.placement {
            Some(p) => {
                if p.len() != n {
                    return Err(CongestError::PlacementInvalid {
                        reason: format!("placement covers {} nodes, graph has {n}", p.len()),
                    });
                }
                if p.shards() != threads {
                    return Err(CongestError::PlacementInvalid {
                        reason: format!(
                            "placement has {} shards, run resolved {threads} workers",
                            p.shards()
                        ),
                    });
                }
                p.clone()
            }
            None => Placement::contiguous(n, threads),
        };
        let monotone = placement.is_id_monotone();
        // Per-node position within its shard's ascending-id node list, and
        // per-shard max degree (sizes the workers' staging buffers).
        let mut local_idx = vec![0u32; n];
        let mut shard_len = vec![0u32; threads];
        let mut shard_max_degree = vec![0usize; threads];
        for (v, idx) in local_idx.iter_mut().enumerate() {
            let s = placement.shard_of()[v] as usize;
            *idx = shard_len[s];
            shard_len[s] += 1;
            shard_max_degree[s] = shard_max_degree[s].max(self.csr.degree(v));
        }
        let trace_cfg = self.trace_cfg;
        let tracing = trace_cfg.is_some();
        let profile_cfg = self.profile_cfg;
        let telemetry_cfg = self.telemetry_cfg.clone();
        // Workers only pay for the wall-clock stamp when telemetry is on.
        let telem = telemetry_cfg.is_some();
        let Simulator {
            nodes,
            rngs,
            csr,
            edge_load,
            scratch,
            trace,
            profile,
            telemetry,
            ..
        } = self;
        let csr: &Csr = csr;
        let shard_of: &[u32] = placement.shard_of();
        let local_idx: &[u32] = &local_idx;

        // Shard node state machines and their RNG streams; workers own the
        // shards for the duration of the run and hand them back at the end.
        // Each shard holds its nodes in ascending id order, matching
        // `local_idx`.
        let all_nodes = std::mem::take(nodes);
        let all_rngs = std::mem::take(rngs);
        let workers = threads;
        let mut node_shards: Vec<Vec<P>> = (0..workers)
            .map(|w| Vec::with_capacity(shard_len[w] as usize))
            .collect();
        let mut rng_shards: Vec<Vec<StdRng>> = (0..workers)
            .map(|w| Vec::with_capacity(shard_len[w] as usize))
            .collect();
        for (v, (p, r)) in all_nodes.into_iter().zip(all_rngs).enumerate() {
            let s = shard_of[v] as usize;
            node_shards[s].push(p);
            rng_shards[s].push(r);
        }

        let (result, nodes_back, rngs_back) = std::thread::scope(|s| {
            let (reply_tx, reply_rx) = mpsc::channel::<RoundReply<P::Message>>();
            let mut job_txs = Vec::with_capacity(workers);
            let mut handles = Vec::with_capacity(workers);
            for (w, (mut my_nodes, mut my_rngs)) in
                node_shards.into_iter().zip(rng_shards).enumerate()
            {
                let (job_tx, job_rx) = mpsc::channel::<RoundJob<P::Message>>();
                job_txs.push(job_tx);
                let reply_tx = reply_tx.clone();
                let max_degree = shard_max_degree[w];
                handles.push(s.spawn(move || {
                    let mut staged: Vec<Option<(TrafficClass, P::Message)>> = Vec::new();
                    staged.resize_with(max_degree, || None);
                    while let Ok(mut job) = job_rx.recv() {
                        let round = job.round;
                        job.out.clear();
                        job.events.clear();
                        let step_start = telem.then(std::time::Instant::now);
                        let mut violation: Option<(u32, CongestError)> = None;
                        let mut slab_pos = 0usize;
                        let mut ri = 0usize;
                        for ai in 0..job.active.len() {
                            let vu = job.active[ai];
                            let v = vu as usize;
                            // Pair the node with its inbox slice *before*
                            // any skip: crashed and churn-offline receivers
                            // still swallow their mail.
                            let mut group_range = slab_pos..slab_pos;
                            if ri < job.inbox_index.len() && job.inbox_index[ri].0 == vu {
                                let len = job.inbox_index[ri].1 as usize;
                                group_range = slab_pos..slab_pos + len;
                                slab_pos += len;
                                ri += 1;
                            }
                            if crash_round.get(v).is_some_and(|&r| r <= round) {
                                // Crash-stopped: no step, inbox discarded,
                                // counts as done.
                                continue;
                            }
                            if sched.is_some_and(|ch| ch.node_down(round, v)) {
                                // Churn outage: like a crash, but temporary
                                // (see the inline stepper).
                                continue;
                            }
                            // After a violation the rest of the shard is
                            // skipped (the run aborts; state after an error
                            // is unspecified).
                            if violation.is_some() {
                                continue;
                            }
                            let degree = csr.degree(v);
                            let mut local_violation = None;
                            let mut wake: Option<u64> = None;
                            {
                                let mut ctx = Ctx {
                                    node: NodeId::from(v),
                                    degree,
                                    neighbors: csr.neighbors(v),
                                    round,
                                    budget_bits,
                                    staged: &mut staged[..degree],
                                    default_class: P::TRAFFIC_CLASS,
                                    rng: &mut my_rngs[local_idx[v] as usize],
                                    violation: &mut local_violation,
                                    wake: &mut wake,
                                    trace: if tracing { Some(&mut job.events) } else { None },
                                    churn: sched,
                                };
                                let node = &mut my_nodes[local_idx[v] as usize];
                                if round == 0 {
                                    node.init(&mut ctx);
                                } else if sched.is_some_and(|ch| ch.rejoining(round, v)) {
                                    node.on_restart(&mut ctx);
                                } else {
                                    node.round(&mut ctx, &job.inbox_slab[group_range]);
                                }
                            }
                            if let Some(err) = local_violation {
                                violation = Some((vu, err));
                            }
                            let mut len = 0u32;
                            for (port, slot) in staged[..degree].iter_mut().enumerate() {
                                if let Some((cls, msg)) = slot.take() {
                                    job.out.slab.push((port as u32, cls, msg));
                                    len += 1;
                                }
                            }
                            if len > 0 {
                                job.out.index.push((vu, len));
                            }
                            job.out
                                .done
                                .push((vu, my_nodes[local_idx[v] as usize].is_done()));
                            if let Some(r) = wake {
                                job.out.wakes.push((vu, r));
                            }
                            job.out.stepped += 1;
                        }
                        debug_assert_eq!(slab_pos, job.inbox_slab.len());
                        debug_assert_eq!(ri, job.inbox_index.len());
                        job.wall_nanos = step_start.map_or(0, |t| {
                            t.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
                        });
                        let reply = RoundReply {
                            worker: w,
                            job,
                            violation,
                        };
                        if reply_tx.send(reply).is_err() {
                            break;
                        }
                    }
                    (my_nodes, my_rngs)
                }));
            }
            drop(reply_tx);

            let mut stepper = ThreadedStepper::<P::Message> {
                job_txs,
                reply_rx,
                shard_of,
                monotone,
                stash: (0..workers).map(|_| None).collect(),
            };
            let result = round_engine(
                cfg,
                csr,
                edge_load,
                scratch,
                &mut stepper,
                hook,
                churn,
                wk,
                trace_cfg,
                trace,
                profile_cfg,
                profile,
                telemetry_cfg.as_ref(),
                telemetry,
            );
            // Dropping the stepper closes the job channels; workers drain
            // and exit, handing their shards back.
            drop(stepper);
            // Reassemble the node and RNG arrays in ascending id order by
            // interleaving the shards back through the placement map.
            let mut shard_iters = Vec::with_capacity(workers);
            for handle in handles {
                let (shard_nodes, shard_rngs) = match handle.join() {
                    Ok(shard) => shard,
                    Err(panic) => std::panic::resume_unwind(panic),
                };
                shard_iters.push((shard_nodes.into_iter(), shard_rngs.into_iter()));
            }
            let mut nodes_back = Vec::with_capacity(n);
            let mut rngs_back = Vec::with_capacity(n);
            for &s in shard_of {
                let (nodes_it, rngs_it) = &mut shard_iters[s as usize];
                nodes_back.push(nodes_it.next().expect("shard hands back every node"));
                rngs_back.push(rngs_it.next().expect("shard hands back every rng"));
            }
            (result, nodes_back, rngs_back)
        });
        *nodes = nodes_back;
        *rngs = rngs_back;
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amt_graphs::EdgeId;
    use rand::RngExt;

    /// Protocol that floods the max of initial values. Skip-safe: an empty
    /// inbox round changes nothing and sends nothing, so it opts into the
    /// active-set engine.
    struct MaxFlood {
        best: u64,
        dirty: bool,
    }

    impl Protocol for MaxFlood {
        type Message = u64;
        const SPARSE_AWARE: bool = true;
        fn init(&mut self, ctx: &mut Ctx<'_, u64>) {
            ctx.send_all(self.best);
        }
        fn round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &[(usize, u64)]) {
            for &(_, v) in inbox {
                if v > self.best {
                    self.best = v;
                    self.dirty = true;
                }
            }
            if self.dirty {
                ctx.send_all(self.best);
                self.dirty = false;
            }
        }
    }

    fn path(n: usize) -> Graph {
        Graph::from_edges(n, &(0..n - 1).map(|i| (i, i + 1)).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn flooding_takes_eccentricity_rounds() {
        let n = 10;
        let g = path(n);
        let nodes = (0..n)
            .map(|i| MaxFlood {
                best: i as u64,
                dirty: false,
            })
            .collect();
        let mut sim = Simulator::new(&g, nodes, 0).unwrap();
        let m = sim.run(&RunConfig::default()).unwrap();
        assert!(sim.nodes().iter().all(|p| p.best == (n - 1) as u64));
        // Value at node n-1 must travel n-1 hops; +1 quiescent round.
        assert_eq!(m.rounds, n as u64);
        assert!(m.messages > 0);
        assert!(m.bits >= m.messages);
    }

    #[test]
    fn node_count_mismatch_is_rejected() {
        let g = path(3);
        let err = Simulator::new(
            &g,
            vec![MaxFlood {
                best: 0,
                dirty: false,
            }],
            0,
        )
        .err()
        .unwrap();
        assert_eq!(
            err,
            CongestError::NodeCountMismatch {
                graph: 3,
                protocols: 1
            }
        );
    }

    struct DoubleSender;
    impl Protocol for DoubleSender {
        type Message = u32;
        fn init(&mut self, ctx: &mut Ctx<'_, u32>) {
            ctx.send(0, 1);
            ctx.send(0, 2);
        }
        fn round(&mut self, _: &mut Ctx<'_, u32>, _: &[(usize, u32)]) {}
    }

    #[test]
    fn duplicate_send_detected() {
        let g = path(2);
        let mut sim = Simulator::new(&g, vec![DoubleSender, DoubleSender], 0).unwrap();
        let err = sim.run(&RunConfig::default()).unwrap_err();
        assert!(matches!(err, CongestError::DuplicateSend { port: 0, .. }));
    }

    struct WideSender;
    impl Protocol for WideSender {
        type Message = u64;
        fn init(&mut self, ctx: &mut Ctx<'_, u64>) {
            ctx.send(0, u64::MAX);
        }
        fn round(&mut self, _: &mut Ctx<'_, u64>, _: &[(usize, u64)]) {}
    }

    #[test]
    fn over_budget_message_detected() {
        let g = path(2);
        let mut sim = Simulator::new(&g, vec![WideSender, WideSender], 0).unwrap();
        // n = 2 → ⌈log₂ 2⌉ = 1 bit, factor 8 → budget 8 bits; u64::MAX is 64.
        let err = sim.run(&RunConfig::default()).unwrap_err();
        assert_eq!(
            err,
            CongestError::MessageTooWide {
                bits: 64,
                budget: 8
            }
        );
    }

    struct PortAbuser;
    impl Protocol for PortAbuser {
        type Message = u32;
        fn init(&mut self, ctx: &mut Ctx<'_, u32>) {
            let d = ctx.degree();
            ctx.send(d, 0);
        }
        fn round(&mut self, _: &mut Ctx<'_, u32>, _: &[(usize, u32)]) {}
    }

    #[test]
    fn port_out_of_range_detected() {
        let g = path(2);
        let mut sim = Simulator::new(&g, vec![PortAbuser, PortAbuser], 0).unwrap();
        let err = sim.run(&RunConfig::default()).unwrap_err();
        assert!(matches!(
            err,
            CongestError::PortOutOfRange {
                port: 1,
                degree: 1,
                ..
            }
        ));
    }

    /// Satellite regression: a node tripping two model violations in one
    /// step must report the *first* one, on every engine strategy, thread
    /// count, and visit order, and across nodes the lowest node's error is
    /// canonical.
    struct MixedViolator {
        wide_first: bool,
    }
    impl Protocol for MixedViolator {
        type Message = u64;
        fn init(&mut self, ctx: &mut Ctx<'_, u64>) {
            if self.wide_first {
                ctx.send(0, u64::MAX); // MessageTooWide (64 > 16 bits)...
                ctx.send(0, 1); // ...then what would be a DuplicateSend
                ctx.send(0, 1);
            } else {
                ctx.send(0, 1);
                ctx.send(0, 2); // DuplicateSend first...
                ctx.send(0, u64::MAX); // ...then what would be MessageTooWide
            }
        }
        fn round(&mut self, _: &mut Ctx<'_, u64>, _: &[(usize, u64)]) {}
    }

    #[test]
    fn first_violation_wins_within_a_round() {
        let g = path(4); // n = 4 → ⌈log₂ 4⌉ = 2 bits, factor 8 → budget 16.
        let mk = |node0_wide_first: bool| -> Vec<MixedViolator> {
            (0..4)
                .map(|v| MixedViolator {
                    wide_first: if v == 0 {
                        node0_wide_first
                    } else {
                        !node0_wide_first
                    },
                })
                .collect()
        };
        for threads in [1usize, 2, 4] {
            let cfg = RunConfig::default().with_threads(threads);
            let err = Simulator::new(&g, mk(true), 0)
                .unwrap()
                .run(&cfg)
                .unwrap_err();
            assert_eq!(
                err,
                CongestError::MessageTooWide {
                    bits: 64,
                    budget: 16
                },
                "threads = {threads}: node 0's first violation must win"
            );
            let err = Simulator::new(&g, mk(false), 0)
                .unwrap()
                .run(&cfg)
                .unwrap_err();
            assert_eq!(
                err,
                CongestError::DuplicateSend {
                    node: NodeId(0),
                    port: 0
                },
                "threads = {threads}: node 0's first violation must win"
            );
        }
        // The reverse test visit reports the same canonical error.
        let cfg = RunConfig::default().with_threads(1);
        let err = Simulator::new(&g, mk(true), 0)
            .unwrap()
            .run_reverse_visit(&cfg)
            .unwrap_err();
        assert_eq!(
            err,
            CongestError::MessageTooWide {
                bits: 64,
                budget: 16
            }
        );
        let err = Simulator::new(&g, mk(false), 0)
            .unwrap()
            .run_reverse_visit(&cfg)
            .unwrap_err();
        assert_eq!(
            err,
            CongestError::DuplicateSend {
                node: NodeId(0),
                port: 0
            }
        );
    }

    /// The arena grouping pass must be a *stable* counting sort (per-node
    /// delivery order = staging order), leave its length-n scratch arrays
    /// all-zero, and be reusable without residue.
    #[test]
    fn group_pending_is_a_stable_counting_sort() {
        let mut pend = Pending::<u64> {
            dst: vec![3, 1, 3, 0, 1, 3],
            msg: vec![(0, 30), (0, 10), (1, 31), (0, 0), (1, 11), (2, 32)],
        };
        let mut cnt = vec![0u32; 4];
        let mut cursor = vec![0u32; 4];
        let mut perm = Vec::new();
        let mut arena = InboxArena::<u64>::default();
        group_pending(&mut pend, &mut cnt, &mut cursor, &mut perm, &mut arena);
        assert_eq!(arena.nodes, vec![0, 1, 3]);
        assert_eq!(arena.offsets, vec![0, 1, 3, 6]);
        assert_eq!(arena.group(0).to_vec(), vec![(0usize, 0u64)]);
        assert_eq!(arena.group(1).to_vec(), vec![(0usize, 10u64), (1, 11)]);
        assert_eq!(
            arena.group(2).to_vec(),
            vec![(0usize, 30u64), (1, 31), (2, 32)]
        );
        assert!(cnt.iter().all(|&c| c == 0), "cnt must be returned all-zero");
        assert!(
            cursor.iter().all(|&c| c == 0),
            "cursor must be returned all-zero"
        );
        assert!(pend.dst.is_empty() && pend.msg.is_empty());
        // Reuse with fresh content: no residue from the first grouping.
        pend.dst = vec![2];
        pend.msg = vec![(5, 99)];
        group_pending(&mut pend, &mut cnt, &mut cursor, &mut perm, &mut arena);
        assert_eq!(arena.nodes, vec![2]);
        assert_eq!(arena.group(0).to_vec(), vec![(5usize, 99u64)]);
    }

    /// The active set dedups within an epoch and canonicalizes to ascending
    /// id order, and a new epoch forgets the previous membership without
    /// clearing the stamp array.
    #[test]
    fn active_set_dedups_and_sorts_per_epoch() {
        let mut set = ActiveSet::default();
        set.reset(8);
        set.begin();
        for v in [5u32, 2, 5, 7, 2, 0] {
            set.insert(v);
        }
        assert_eq!(set.finish(), &[0, 2, 5, 7]);
        set.begin();
        set.insert(3);
        set.insert(3);
        assert_eq!(set.finish(), &[3]);
    }

    /// Echoes forever — must trip the round cap.
    struct Chatter;
    impl Protocol for Chatter {
        type Message = u32;
        fn init(&mut self, ctx: &mut Ctx<'_, u32>) {
            ctx.send_all(0);
        }
        fn round(&mut self, ctx: &mut Ctx<'_, u32>, _: &[(usize, u32)]) {
            ctx.send_all(0);
        }
    }

    #[test]
    fn round_cap_enforced() {
        let g = path(2);
        let mut sim = Simulator::new(&g, vec![Chatter, Chatter], 0).unwrap();
        let cfg = RunConfig {
            max_rounds: 50,
            ..Default::default()
        };
        let err = sim.run(&cfg).unwrap_err();
        assert_eq!(err, CongestError::RoundLimitExceeded { max_rounds: 50 });
    }

    #[test]
    fn round_cap_enforced_in_parallel() {
        let g = path(8);
        let nodes = (0..8).map(|_| Chatter).collect();
        let mut sim = Simulator::new(&g, nodes, 0).unwrap();
        let cfg = RunConfig {
            max_rounds: 50,
            ..Default::default()
        }
        .with_threads(4);
        let err = sim.run(&cfg).unwrap_err();
        assert_eq!(err, CongestError::RoundLimitExceeded { max_rounds: 50 });
    }

    /// Ping-pong over a self-loop: port pairing must route a self-loop send
    /// to the *other* occurrence of the loop at the same node.
    struct LoopPing {
        got: Vec<usize>,
    }
    impl Protocol for LoopPing {
        type Message = u32;
        fn init(&mut self, ctx: &mut Ctx<'_, u32>) {
            if ctx.degree() >= 2 {
                ctx.send(0, 7);
            }
        }
        fn round(&mut self, _: &mut Ctx<'_, u32>, inbox: &[(usize, u32)]) {
            for &(p, _) in inbox {
                self.got.push(p);
            }
        }
    }

    #[test]
    fn self_loop_delivery_crosses_ports() {
        let g = Graph::from_edges(1, &[(0, 0)]).unwrap();
        let mut sim = Simulator::new(&g, vec![LoopPing { got: vec![] }], 0).unwrap();
        sim.run(&RunConfig::default()).unwrap();
        assert_eq!(sim.nodes()[0].got, vec![1]);
    }

    #[test]
    fn determinism_same_seed_same_metrics() {
        let g = amt_graphs::generators::hypercube(4);
        let mk = || {
            (0..16)
                .map(|i| MaxFlood {
                    best: i as u64,
                    dirty: false,
                })
                .collect()
        };
        let m1 = Simulator::new(&g, mk(), 42)
            .unwrap()
            .run(&RunConfig::default())
            .unwrap();
        let m2 = Simulator::new(&g, mk(), 42)
            .unwrap()
            .run(&RunConfig::default())
            .unwrap();
        assert_eq!(m1, m2);
    }

    /// A randomized protocol: every node performs a lazy random walk of its
    /// token, the workload of the paper's constructions. Sensitive to every
    /// bit of the RNG stream, so it detects any order dependence. RNG draws
    /// happen only per inbox message, so it is skip-safe and opts into the
    /// active-set engine.
    struct TokenWalker {
        tokens: u32,
        hops_left: u32,
        trace: u64,
    }

    impl Protocol for TokenWalker {
        type Message = u32;
        const SPARSE_AWARE: bool = true;
        fn init(&mut self, ctx: &mut Ctx<'_, u32>) {
            let degree = ctx.degree();
            let mut staged: Vec<(usize, u32)> = (0..self.tokens)
                .map(|_| (ctx.rng().random_range(0..degree), self.hops_left))
                .collect();
            staged.sort_by_key(|&(p, _)| p);
            staged.dedup_by_key(|&mut (p, _)| p);
            for (port, hops) in staged {
                ctx.send(port, hops);
            }
        }
        fn round(&mut self, ctx: &mut Ctx<'_, u32>, inbox: &[(usize, u32)]) {
            let degree = ctx.degree();
            let mut staged: Vec<(usize, u32)> = Vec::new();
            for &(_, hops) in inbox {
                self.trace = self
                    .trace
                    .wrapping_mul(31)
                    .wrapping_add(u64::from(hops) + 1);
                ctx.trace_event("token_seen", u64::from(hops));
                if hops > 0 && ctx.rng().random_bool(0.75) {
                    let port = ctx.rng().random_range(0..degree);
                    staged.push((port, hops - 1));
                }
            }
            // Collapse duplicate ports (CONGEST allows one message/port).
            staged.sort_by_key(|&(p, _)| p);
            staged.dedup_by_key(|&mut (p, _)| p);
            for (port, hops) in staged {
                ctx.send(port, hops);
            }
        }
    }

    fn walker_fleet(n: usize) -> Vec<TokenWalker> {
        (0..n)
            .map(|v| TokenWalker {
                tokens: 1 + (v as u32 % 2),
                hops_left: 12,
                trace: 0,
            })
            .collect()
    }

    /// The regression test for the order-dependence bug: with the shared
    /// RNG, reversing the visit order changed every stream; with per-node
    /// streams and ordered merge it cannot change a single bit.
    #[test]
    fn visit_order_cannot_change_outcomes() {
        let g = amt_graphs::generators::hypercube(5);
        let cfg = RunConfig::default().with_threads(1);
        let mut fwd = Simulator::new(&g, walker_fleet(32), 9).unwrap();
        let m_fwd = fwd.run(&cfg).unwrap();
        let mut rev = Simulator::new(&g, walker_fleet(32), 9).unwrap();
        let m_rev = rev.run_reverse_visit(&cfg).unwrap();
        assert_eq!(m_fwd, m_rev, "metrics must not depend on visit order");
        let t_fwd: Vec<u64> = fwd.nodes().iter().map(|p| p.trace).collect();
        let t_rev: Vec<u64> = rev.nodes().iter().map(|p| p.trace).collect();
        assert_eq!(
            t_fwd, t_rev,
            "protocol state must not depend on visit order"
        );
        assert_eq!(fwd.edge_load(), rev.edge_load());
        assert!(
            m_fwd.messages > 0,
            "the workload must actually send traffic"
        );
    }

    /// Byte-identical metrics, protocol state, and edge loads across thread
    /// counts, on a randomized workload.
    #[test]
    fn thread_count_cannot_change_outcomes() {
        let g = amt_graphs::generators::hypercube(5);
        let run = |threads: usize| {
            let mut sim = Simulator::new(&g, walker_fleet(32), 123).unwrap();
            let m = sim
                .run(&RunConfig::default().with_threads(threads))
                .unwrap();
            let traces: Vec<u64> = sim.nodes().iter().map(|p| p.trace).collect();
            (m, traces, sim.edge_load().to_vec())
        };
        let baseline = run(1);
        for threads in [2, 3, 4, 8, 32] {
            assert_eq!(run(threads), baseline, "threads = {threads} diverged");
        }
    }

    /// The determinism contract across engine strategies: the active-set
    /// engine must be byte-identical to the retained full-sweep reference
    /// (metrics, protocol state, edge loads), at every thread count and
    /// under visit-order reversal.
    #[test]
    fn sparse_engine_matches_full_sweep_reference() {
        let g = amt_graphs::generators::hypercube(5);
        let run = |threads: usize, reverse: bool, full_sweep: bool| {
            let mut sim = Simulator::new(&g, walker_fleet(32), 9).unwrap();
            let cfg = RunConfig::default()
                .with_threads(threads)
                .with_full_sweep(full_sweep);
            let m = if reverse {
                sim.run_reverse_visit(&cfg).unwrap()
            } else {
                sim.run(&cfg).unwrap()
            };
            let traces: Vec<u64> = sim.nodes().iter().map(|p| p.trace).collect();
            (m, traces, sim.edge_load().to_vec())
        };
        let reference = run(1, false, true);
        assert!(reference.0.messages > 0);
        for (threads, reverse) in [(1, false), (1, true), (2, false), (4, false), (8, false)] {
            assert_eq!(
                run(threads, reverse, false),
                reference,
                "sparse engine diverged at threads = {threads}, reverse = {reverse}"
            );
        }
    }

    /// A sparse protocol that acts purely on `wake_in` timers: node 0
    /// beacons every 3 rounds, 4 times. The active-set engine must step it
    /// at exactly the announced rounds (and its listeners on mail), match
    /// the full sweep bit for bit, and demonstrably step far fewer nodes.
    struct Ticker {
        fires_left: u32,
        next_fire: u64,
        got: Vec<u64>,
    }

    impl Protocol for Ticker {
        type Message = u64;
        const SPARSE_AWARE: bool = true;
        fn init(&mut self, ctx: &mut Ctx<'_, u64>) {
            if self.fires_left > 0 {
                self.next_fire = ctx.round() + 3;
                ctx.wake_in(3);
            }
        }
        fn round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &[(usize, u64)]) {
            for &(_, v) in inbox {
                self.got.push(v);
            }
            // Gate on the announced round, not on being stepped: the full
            // sweep steps every round and must behave identically.
            if self.fires_left > 0 && ctx.round() == self.next_fire {
                self.fires_left -= 1;
                let r = ctx.round();
                ctx.send_all(r);
                if self.fires_left > 0 {
                    self.next_fire = r + 3;
                    ctx.wake_in(3);
                }
            }
        }
        fn is_done(&self) -> bool {
            self.fires_left == 0
        }
    }

    fn ticker_fleet(n: usize) -> Vec<Ticker> {
        (0..n)
            .map(|v| Ticker {
                fires_left: if v == 0 { 4 } else { 0 },
                next_fire: 0,
                got: Vec::new(),
            })
            .collect()
    }

    #[test]
    fn wake_timers_drive_sparse_stepping() {
        let g = path(6);
        // Quiescence would stop at round 1 (nothing in flight until the
        // first fire); AllDone keeps both engines going until the beacons
        // are spent, timers included.
        let run = |threads: usize, full_sweep: bool| {
            let mut sim = Simulator::new(&g, ticker_fleet(6), 3)
                .unwrap()
                .with_trace(TraceConfig::default());
            let cfg = RunConfig::all_done()
                .with_threads(threads)
                .with_full_sweep(full_sweep);
            let m = sim.run(&cfg).unwrap();
            let got: Vec<Vec<u64>> = sim.nodes().iter().map(|p| p.got.clone()).collect();
            let trace = sim.take_trace().unwrap();
            (m, got, trace)
        };
        let strip_active = |mut t: RunTrace| {
            for s in &mut t.samples {
                s.active_nodes = 0;
            }
            t
        };
        let sparse = run(1, false);
        let full = run(1, true);
        // Node 1 heard every beacon: rounds 3, 6, 9, 12.
        assert_eq!(sparse.1[1], vec![3, 6, 9, 12]);
        assert_eq!(sparse.0, full.0, "metrics diverged across strategies");
        assert_eq!(sparse.1, full.1, "inboxes diverged across strategies");
        assert_eq!(
            strip_active(sparse.2.clone()),
            strip_active(full.2.clone()),
            "traces diverged beyond the active_nodes gauge"
        );
        let stepped = |t: &RunTrace| t.samples.iter().map(|s| s.active_nodes).sum::<u64>();
        assert!(
            stepped(&sparse.2) < stepped(&full.2),
            "the active-set engine must step fewer nodes ({} vs {})",
            stepped(&sparse.2),
            stepped(&full.2)
        );
        // Threaded sparse is fully identical to sequential sparse,
        // active_nodes gauge included.
        let sparse4 = run(4, false);
        assert_eq!(sparse4.0, sparse.0);
        assert_eq!(sparse4.1, sparse.1);
        assert_eq!(sparse4.2, sparse.2);
        assert_eq!(run(4, true).0, full.0);
    }

    /// The tentpole property end to end: with message-identity fault
    /// keying, the faulty path is byte-identical — `Metrics`, the
    /// fault-event log, crashed sets, protocol state, and edge loads —
    /// across visit-order reversal and every thread count.
    #[test]
    fn fault_stream_is_independent_of_visit_order_and_threads() {
        let g = amt_graphs::generators::hypercube(5);
        let plan = FaultPlan::none()
            .seeded(11)
            .with_drops(0.05)
            .with_corruption(0.05)
            .with_delays(0.1, 3)
            .with_crash(NodeId(3), 6);
        let run = |threads: usize, reverse: bool| {
            let mut sim = Simulator::new(&g, walker_fleet(32), 123)
                .unwrap()
                .with_fault_plan(plan.clone());
            let cfg = RunConfig::default().with_threads(threads);
            let m = if reverse {
                sim.run_reverse_visit(&cfg)
            } else {
                sim.run(&cfg)
            }
            .unwrap();
            let traces: Vec<u64> = sim.nodes().iter().map(|p| p.trace).collect();
            (
                m,
                sim.fault_events().to_vec(),
                sim.crashed_nodes(),
                traces,
                sim.edge_load().to_vec(),
            )
        };
        let baseline = run(1, false);
        assert!(
            baseline.0.message_faults() > 0,
            "the plan must actually inject faults"
        );
        assert_eq!(baseline.2, vec![NodeId(3)]);
        assert_eq!(run(1, true), baseline, "visit-order reversal diverged");
        for threads in [2, 4, 8] {
            assert_eq!(
                run(threads, false),
                baseline,
                "threads = {threads} diverged"
            );
        }
    }

    /// Satellite regression: a normalized-trivial plan *forced through the
    /// faulty engine* stays byte-identical to the clean path. (The public
    /// dispatch routes trivial plans to the clean hook; this pins down that
    /// the guarantee does not depend on that routing.)
    #[test]
    fn trivial_plan_through_faulty_engine_matches_clean_path() {
        let g = amt_graphs::generators::hypercube(5);
        for threads in [1usize, 4] {
            let cfg = RunConfig::default().with_threads(threads);
            let mut clean = Simulator::new(&g, walker_fleet(32), 9).unwrap();
            let m_clean = clean.run(&cfg).unwrap();

            // with_delays(0.9, 0) normalizes to no-delay: nothing can fire.
            let plan = FaultPlan::none().seeded(99).with_delays(0.9, 0);
            assert!(plan.is_trivial());
            let mut forced = Simulator::new(&g, walker_fleet(32), 9).unwrap();
            let mut fs = FaultState::new(&plan, g.len()).unwrap();
            let crash_round = plan.crash_rounds(g.len());
            let m_forced = forced
                .dispatch(&cfg, &mut fs, &mut NoChurn, None, &crash_round, false)
                .unwrap();

            assert_eq!(m_clean, m_forced, "threads = {threads}: metrics diverged");
            let t_clean: Vec<u64> = clean.nodes().iter().map(|p| p.trace).collect();
            let t_forced: Vec<u64> = forced.nodes().iter().map(|p| p.trace).collect();
            assert_eq!(t_clean, t_forced, "threads = {threads}: state diverged");
            assert_eq!(clean.edge_load(), forced.edge_load());
            assert!(fs.events.is_empty());
            assert!(forced.crashed_nodes().is_empty());
        }
    }

    /// Satellite regression (churn analogue): a normalized-trivial
    /// `ChurnPlan` *forced through the churn-aware engine* stays
    /// byte-identical to the clean path, and the public dispatch routes
    /// trivial churn plans to the clean hook in the first place.
    #[test]
    fn trivial_churn_plan_through_churned_engine_matches_clean_path() {
        let g = amt_graphs::generators::hypercube(5);
        for threads in [1usize, 4] {
            let cfg = RunConfig::default().with_threads(threads);
            let mut clean = Simulator::new(&g, walker_fleet(32), 9).unwrap();
            let m_clean = clean.run(&cfg).unwrap();

            // with_flaps(0.9, 0) normalizes to no-flap: nothing can fire.
            let plan = ChurnPlan::none().seeded(99).with_flaps(0.9, 0);
            assert!(plan.is_trivial());

            // Attached via the public API: routed to the clean hooks.
            let mut routed = Simulator::new(&g, walker_fleet(32), 9)
                .unwrap()
                .with_churn_plan(plan.clone());
            let m_routed = routed.run(&cfg).unwrap();
            assert_eq!(
                m_clean, m_routed,
                "threads = {threads}: trivial-plan run diverged"
            );
            assert!(routed.churn_events().is_empty());

            // Forced through the churn-aware engine: still byte-identical.
            let mut forced = Simulator::new(&g, walker_fleet(32), 9).unwrap();
            let sched = plan.normalize(g.len(), g.edge_count());
            let mut cs = ChurnState::new(&sched);
            let m_forced = forced
                .dispatch(&cfg, &mut NoFaults, &mut cs, Some(&sched), &[], false)
                .unwrap();
            assert_eq!(m_clean, m_forced, "threads = {threads}: metrics diverged");
            let t_clean: Vec<u64> = clean.nodes().iter().map(|p| p.trace).collect();
            let t_forced: Vec<u64> = forced.nodes().iter().map(|p| p.trace).collect();
            assert_eq!(t_clean, t_forced, "threads = {threads}: state diverged");
            assert_eq!(clean.edge_load(), forced.edge_load());
            assert!(cs.events.is_empty());
        }
    }

    /// Profiling must be observably free (byte-identical `Metrics`, state,
    /// and edge loads) and exact: per-class totals sum to the run's
    /// `Metrics` and per-edge loads, at every thread count.
    #[test]
    fn profiling_is_observably_free_and_sums_exactly() {
        let g = amt_graphs::generators::hypercube(5);
        for threads in [1, 4] {
            let cfg = RunConfig::default().with_threads(threads);
            let mut plain = Simulator::new(&g, walker_fleet(32), 77).unwrap();
            let m_plain = plain.run(&cfg).unwrap();
            assert!(plain.profile().is_none(), "profiling is off by default");

            let mut profiled = Simulator::new(&g, walker_fleet(32), 77)
                .unwrap()
                .with_profile(ProfileConfig::default());
            let m_profiled = profiled.run(&cfg).unwrap();
            assert_eq!(
                m_plain, m_profiled,
                "threads = {threads}: profiling changed metrics"
            );
            let s_plain: Vec<u64> = plain.nodes().iter().map(|p| p.trace).collect();
            let s_profiled: Vec<u64> = profiled.nodes().iter().map(|p| p.trace).collect();
            assert_eq!(s_plain, s_profiled, "profiling changed protocol state");
            assert_eq!(plain.edge_load(), profiled.edge_load());

            let profile = profiled.take_profile().expect("profiling was enabled");
            assert_eq!(profile.total_messages(), m_profiled.messages);
            assert_eq!(profile.total_bits(), m_profiled.bits);
            assert_eq!(profile.edge_messages_total(), profiled.edge_load());
            // TokenWalker never picks a class, so everything is DEFAULT.
            assert_eq!(profile.per_class.len(), 1);
            assert_eq!(profile.per_class[0].class, class::DEFAULT);
            let a = profile.analyze(10);
            assert_eq!(a.max_edge_congestion, m_profiled.max_edge_congestion);
        }
    }

    /// Telemetry honours the same contract as tracing and profiling: off by
    /// default, and enabling it perturbs no observable — while its own
    /// logical counters reconcile exactly with the run it watched.
    #[test]
    fn telemetry_is_observably_free() {
        let g = amt_graphs::generators::hypercube(5);
        for threads in [1, 4] {
            let cfg = RunConfig::default().with_threads(threads);
            let mut plain = Simulator::new(&g, walker_fleet(32), 77).unwrap();
            let m_plain = plain.run(&cfg).unwrap();
            assert!(plain.telemetry().is_none(), "telemetry is off by default");

            let mut watched = Simulator::new(&g, walker_fleet(32), 77)
                .unwrap()
                .with_telemetry(TelemetryConfig::default());
            let m_watched = watched.run(&cfg).unwrap();
            assert_eq!(
                m_plain, m_watched,
                "threads = {threads}: telemetry changed metrics"
            );
            let s_plain: Vec<u64> = plain.nodes().iter().map(|p| p.trace).collect();
            let s_watched: Vec<u64> = watched.nodes().iter().map(|p| p.trace).collect();
            assert_eq!(s_plain, s_watched, "telemetry changed protocol state");
            assert_eq!(plain.edge_load(), watched.edge_load());

            let t = watched.take_telemetry().expect("telemetry was enabled");
            assert_eq!(t.shards, threads, "one shard sample stream per worker");
            assert_eq!(t.rounds, m_watched.rounds);
            // Every round stepped at least the nodes that did work, and the
            // per-shard staging counters reconcile with the message total.
            let stepped: u64 = t.shard_nodes_stepped.iter().sum();
            assert!(stepped > 0);
            assert_eq!(
                t.shard_messages_staged.iter().sum::<u64>(),
                m_watched.messages,
                "threads = {threads}: staged-send attribution must sum to the run's messages"
            );
            assert!(t.imbalance() >= 1.0, "imbalance is max/mean, so >= 1");
            assert_eq!(t.history.len() as u64, m_watched.rounds + 1);
            assert!(!t.recent.is_empty(), "flight recorder retains rounds");
            assert_eq!(
                t.recent.frames().last().map(|f| f.health.round),
                Some(m_watched.rounds),
                "flight recorder ends at the final round"
            );
            assert!(t.hwm.active_nodes >= 1);
        }
    }

    /// With tracing and profiling both on, the profile rides on the
    /// `RunTrace` and matches the one taken from the simulator.
    #[test]
    fn profile_is_attached_to_the_trace() {
        let g = amt_graphs::generators::hypercube(4);
        let mut sim = Simulator::new(&g, walker_fleet(16), 5)
            .unwrap()
            .with_trace(TraceConfig::default())
            .with_profile(ProfileConfig::default());
        sim.run(&RunConfig::default()).unwrap();
        let trace = sim.take_trace().unwrap();
        let profile = sim.take_profile().unwrap();
        assert_eq!(trace.profile.as_ref(), Some(&profile));
        // Tracing alone leaves `RunTrace::profile` empty.
        let mut untraced = Simulator::new(&g, walker_fleet(16), 5)
            .unwrap()
            .with_trace(TraceConfig::default());
        untraced.run(&RunConfig::default()).unwrap();
        assert!(untraced.take_trace().unwrap().profile.is_none());
    }

    /// Malformed `AMT_SIM_THREADS` values are rejected loudly; valid ones
    /// parse (whitespace-tolerant). The panic itself lives behind a
    /// process-wide `OnceLock` (see [`default_threads`]), so the parser is
    /// what gets unit-tested.
    #[test]
    fn thread_env_parsing() {
        assert_eq!(parse_thread_env("4"), Ok(4));
        assert_eq!(parse_thread_env(" 2 \n"), Ok(2));
        let err = parse_thread_env("four").unwrap_err();
        assert!(err.contains("AMT_SIM_THREADS"), "{err}");
        assert!(err.contains("four"), "{err}");
        let err = parse_thread_env("0").unwrap_err();
        assert!(err.contains("positive"), "{err}");
        assert!(parse_thread_env("").is_err());
        assert!(parse_thread_env("-3").is_err());
        assert!(parse_thread_env("3.5").is_err());
    }

    /// Enabling tracing must not change a single observable bit, and the
    /// recorded timeline must reconstruct the run's `Metrics` exactly, on
    /// both the sequential and the threaded clean path.
    #[test]
    fn tracing_is_observably_free_and_replays_metrics() {
        let g = amt_graphs::generators::hypercube(5);
        for threads in [1, 4] {
            let cfg = RunConfig::default().with_threads(threads);
            let mut plain = Simulator::new(&g, walker_fleet(32), 77).unwrap();
            let m_plain = plain.run(&cfg).unwrap();
            assert!(plain.trace().is_none(), "tracing is off by default");

            let mut traced = Simulator::new(&g, walker_fleet(32), 77)
                .unwrap()
                .with_trace(TraceConfig::default().with_edge_load_stride(2));
            let m_traced = traced.run(&cfg).unwrap();
            assert_eq!(
                m_plain, m_traced,
                "threads = {threads}: tracing changed metrics"
            );
            let s_plain: Vec<u64> = plain.nodes().iter().map(|p| p.trace).collect();
            let s_traced: Vec<u64> = traced.nodes().iter().map(|p| p.trace).collect();
            assert_eq!(s_plain, s_traced, "tracing changed protocol state");

            let trace = traced.take_trace().expect("tracing was enabled");
            assert_eq!(trace.reconstruct_metrics(), m_traced);
            assert_eq!(trace.samples.len() as u64, m_traced.rounds + 1);
            assert!(trace.events.iter().any(|e| e.label == "token_seen"));
            assert!(!trace.snapshots.is_empty());
            assert_eq!(trace.final_edge_load, traced.edge_load());
        }
    }

    /// The threaded executor's event merge must reproduce the sequential
    /// `(round, node)` event order exactly.
    #[test]
    fn trace_events_merge_in_sequential_order() {
        let g = amt_graphs::generators::hypercube(5);
        let run = |threads: usize| {
            let mut sim = Simulator::new(&g, walker_fleet(32), 5)
                .unwrap()
                .with_trace(TraceConfig::default());
            sim.run(&RunConfig::default().with_threads(threads))
                .unwrap();
            sim.take_trace().unwrap()
        };
        let baseline = run(1);
        assert!(!baseline.events.is_empty());
        for w in baseline.events.windows(2) {
            assert!(
                (w[0].round, w[0].node.index()) <= (w[1].round, w[1].node.index()),
                "sequential events must be (round, node)-ordered"
            );
        }
        for threads in [2, 4, 8] {
            assert_eq!(run(threads), baseline, "threads = {threads} trace diverged");
        }
    }

    /// Per-node streams must differ between nodes and between seeds.
    #[test]
    fn node_streams_are_distinct() {
        let mut seeds: Vec<u64> = (0..64).map(|v| node_stream_seed(7, v)).collect();
        seeds.push(node_stream_seed(8, 0));
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 65, "stream seeds must not collide");
    }

    /// Hand-computable congestion: flooding a 4-path from node 0 under
    /// AllDone-style termination. Each edge carries the value exactly once
    /// per direction it propagates, so the middle accounting is checkable.
    #[test]
    fn edge_congestion_matches_hand_count() {
        let g = path(4);
        // Nodes 1..3 start at 0; node 0 floods the max id 9.
        let nodes = vec![
            MaxFlood {
                best: 9,
                dirty: false,
            },
            MaxFlood {
                best: 0,
                dirty: false,
            },
            MaxFlood {
                best: 0,
                dirty: false,
            },
            MaxFlood {
                best: 0,
                dirty: false,
            },
        ];
        let mut sim = Simulator::new(&g, nodes, 0).unwrap();
        let m = sim.run(&RunConfig::default()).unwrap();
        // Round 0: every node sends its value both ways — each edge carries
        // 2 messages. Afterwards the value 9 travels 0→1→2→3, one more
        // message per edge; the improved nodes also echo backwards along
        // their other port. Edge (0,1): init 2 + echo-forward at most once
        // more... rather than over-specify, check the exact measured loads
        // against an independent recount from the delivered totals.
        assert_eq!(sim.edge_load().len(), 3);
        assert_eq!(
            sim.edge_load().iter().sum::<u64>(),
            m.messages,
            "per-edge loads must partition total deliveries"
        );
        assert_eq!(
            m.max_edge_congestion,
            *sim.edge_load().iter().max().unwrap(),
            "metric must equal the max per-edge load"
        );
        // The hand count for edge (0,1): both endpoints send in round 0,
        // then node 1 (improved to 9) echoes back to 0: 3 total.
        assert_eq!(sim.edge_load()[0], 3);
    }

    /// Fixed-horizon beacon: sends the round number on every port each
    /// round, records arrivals, and models full state loss on restart.
    /// Deliberately NOT sparse-aware: it sends on empty inboxes, so it
    /// must keep the default full-sweep contract.
    struct Pinger {
        rounds_left: u32,
        got: Vec<u64>,
        restarts: u32,
    }

    impl Protocol for Pinger {
        type Message = u64;
        fn init(&mut self, ctx: &mut Ctx<'_, u64>) {
            ctx.send_all(0);
        }
        fn round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &[(usize, u64)]) {
            for &(_, v) in inbox {
                self.got.push(v);
            }
            if self.rounds_left > 0 {
                self.rounds_left -= 1;
                let r = ctx.round();
                ctx.send_all(r);
            }
        }
        fn is_done(&self) -> bool {
            self.rounds_left == 0
        }
        fn on_restart(&mut self, ctx: &mut Ctx<'_, u64>) {
            self.restarts += 1;
            self.got.clear();
            self.round(ctx, &[]);
        }
    }

    fn pinger_pair(horizon: u32) -> Vec<Pinger> {
        (0..2)
            .map(|_| Pinger {
                rounds_left: horizon,
                got: Vec::new(),
                restarts: 0,
            })
            .collect()
    }

    /// Churn semantics, edge axis: messages staged over a down edge are
    /// lost (counted in `lost_to_churn`, logged as `MessageLost`), the
    /// transition log brackets the outage, and the trace timeline carries
    /// the per-round loss deltas.
    #[test]
    fn edge_outage_loses_messages_and_logs_events() {
        use crate::churn::ChurnKind;
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        let plan = ChurnPlan::none().with_edge_outage(EdgeId(0), 2, 2);
        let mut sim = Simulator::new(&g, pinger_pair(8), 5)
            .unwrap()
            .with_churn_plan(plan)
            .with_trace(TraceConfig::default());
        let cfg = RunConfig {
            stop: StopCondition::AllDone,
            ..RunConfig::default()
        }
        .with_threads(1);
        let m = sim.run(&cfg).unwrap();
        // Both endpoints send every round; rounds 2 and 3 are eaten by the
        // outage in both directions.
        assert_eq!(m.lost_to_churn, 4);
        assert_eq!(m.restarts, 0);
        let events = sim.churn_events();
        assert_eq!(
            events[0],
            ChurnEvent {
                round: 2,
                kind: ChurnKind::EdgeDown { edge: EdgeId(0) }
            }
        );
        assert!(events.contains(&ChurnEvent {
            round: 4,
            kind: ChurnKind::EdgeUp { edge: EdgeId(0) }
        }));
        assert_eq!(
            events
                .iter()
                .filter(|e| matches!(e.kind, ChurnKind::MessageLost { .. }))
                .count(),
            4
        );
        // The per-round timeline carries the losses and sums back to the
        // run's metrics (the reconstruct contract extends to churn).
        let trace = sim.take_trace().unwrap();
        assert_eq!(trace.samples[2].lost_to_churn, 2);
        assert_eq!(trace.samples[3].lost_to_churn, 2);
        assert_eq!(trace.samples[2].nodes_down, 0);
        assert_eq!(trace.reconstruct_metrics(), m);
        // Deliveries in a loss round: none (the only edge was down).
        assert_eq!(trace.samples[2].messages, 0);
    }

    /// Churn semantics, node axis: an offline node steps in no round of
    /// the outage, messages addressed to it are lost, and at rejoin the
    /// executor calls `on_restart` exactly once (state loss is the
    /// protocol's move; the default keeps state).
    #[test]
    fn node_restart_loses_state_and_calls_on_restart() {
        use crate::churn::ChurnKind;
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        let plan = ChurnPlan::none().with_restart(NodeId(1), 2, 2);
        let mut sim = Simulator::new(&g, pinger_pair(8), 5)
            .unwrap()
            .with_churn_plan(plan);
        let cfg = RunConfig {
            stop: StopCondition::AllDone,
            ..RunConfig::default()
        }
        .with_threads(1);
        let m = sim.run(&cfg).unwrap();
        // Node 0's beacons of rounds 2 and 3 die against the offline node;
        // node 1, being down, stages nothing those rounds.
        assert_eq!(m.lost_to_churn, 2);
        assert_eq!(m.restarts, 1);
        assert_eq!(m.crashed, 0);
        assert_eq!(sim.nodes()[1].restarts, 1, "on_restart ran exactly once");
        assert_eq!(sim.nodes()[0].restarts, 0);
        // State loss: node 1 cleared `got` at round 4; everything it holds
        // arrived after the rejoin.
        assert!(sim.nodes()[1].got.iter().all(|&r| r >= 4));
        assert!(
            !sim.nodes()[1].got.is_empty(),
            "traffic resumed after rejoin"
        );
        let events = sim.churn_events();
        assert!(events.contains(&ChurnEvent {
            round: 2,
            kind: ChurnKind::NodeDown { node: NodeId(1) }
        }));
        assert!(events.contains(&ChurnEvent {
            round: 4,
            kind: ChurnKind::NodeRejoin { node: NodeId(1) }
        }));
    }

    /// Engine-level churn determinism: a plan mixing PRF flaps, a periodic
    /// outage, and a restart produces byte-identical metrics, churn-event
    /// logs, protocol state, and edge loads across thread counts and under
    /// visit-order reversal.
    #[test]
    fn churned_runs_are_identical_across_threads_and_visit_order() {
        let g = amt_graphs::generators::hypercube(5);
        let plan = ChurnPlan::none()
            .seeded(41)
            .with_flaps(0.08, 6)
            .with_periodic_outage(EdgeId(3), 4, 3, 11)
            .with_restart(NodeId(7), 5, 4);
        let run = |threads: usize, reverse: bool| {
            let mut sim = Simulator::new(&g, walker_fleet(32), 9)
                .unwrap()
                .with_churn_plan(plan.clone());
            let cfg = RunConfig::default().with_threads(threads);
            let m = if reverse {
                sim.run_reverse_visit(&cfg).unwrap()
            } else {
                sim.run(&cfg).unwrap()
            };
            let state: Vec<u64> = sim.nodes().iter().map(|p| p.trace).collect();
            (
                m,
                sim.churn_events().to_vec(),
                state,
                sim.edge_load().to_vec(),
            )
        };
        let baseline = run(1, false);
        assert!(
            baseline.0.lost_to_churn > 0,
            "the plan must actually bite: {:?}",
            baseline.0
        );
        assert_eq!(baseline.0.restarts, 1);
        assert_eq!(run(1, true), baseline, "visit-order reversal diverged");
        for threads in [2, 4, 8] {
            assert_eq!(
                run(threads, false),
                baseline,
                "threads = {threads} diverged"
            );
        }
    }
}
