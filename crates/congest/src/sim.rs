//! The synchronous round executor.

use crate::faults::{Fate, FaultEvent, FaultKind, FaultPlan, FaultState};
use crate::{bits_for_count, CongestError, CongestMessage, Metrics, Result};
use amt_graphs::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A per-node state machine executed by the [`Simulator`].
///
/// One instance exists per node. On round 0 the simulator calls
/// [`Protocol::init`]; on every subsequent round it calls
/// [`Protocol::round`] with the messages delivered this round (sent by
/// neighbors in the previous round), tagged with the receiving port.
pub trait Protocol {
    /// The message type this protocol sends over edges.
    type Message: CongestMessage;

    /// Called once before the first communication round; may send messages.
    fn init(&mut self, ctx: &mut Ctx<'_, Self::Message>);

    /// Called once per round with this round's inbox; may send messages
    /// that will be delivered next round.
    fn round(&mut self, ctx: &mut Ctx<'_, Self::Message>, inbox: &[(usize, Self::Message)]);

    /// Local termination flag, consulted by [`StopCondition::AllDone`].
    fn is_done(&self) -> bool {
        false
    }
}

/// When the simulator considers an execution finished.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum StopCondition {
    /// Stop when every node reports [`Protocol::is_done`] and no messages
    /// are in flight.
    AllDone,
    /// Stop when a round passes with no messages sent and none in flight
    /// (useful for flooding-style protocols without explicit termination).
    #[default]
    Quiescence,
}

/// Execution limits and model constants.
#[derive(Clone, Copy, Debug)]
pub struct RunConfig {
    /// Hard cap on rounds; exceeding it is an error (runaway protocol).
    pub max_rounds: u64,
    /// Per-message budget is `budget_factor · ⌈log₂ n⌉` bits — the explicit
    /// constant behind the model's `O(log n)`. The default of 8 fits a
    /// message tag, two node ids, and an edge weight of `O(log n)` bits.
    pub budget_factor: usize,
    /// Termination rule.
    pub stop: StopCondition,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            max_rounds: 1_000_000,
            budget_factor: 8,
            stop: StopCondition::Quiescence,
        }
    }
}

impl RunConfig {
    /// Config with the [`StopCondition::AllDone`] termination rule.
    pub fn all_done() -> Self {
        RunConfig {
            stop: StopCondition::AllDone,
            ..Default::default()
        }
    }
}

/// Per-round, per-node context handed to [`Protocol`] callbacks.
///
/// Provides the node's identity, its local view of the graph (degree,
/// neighbor ids — learnable in one round and conventionally assumed), the
/// send operation, and the shared deterministic RNG.
pub struct Ctx<'a, M> {
    node: NodeId,
    degree: usize,
    neighbors: &'a [(u32, u32)],
    round: u64,
    budget_bits: usize,
    staged: &'a mut Vec<Option<M>>,
    rng: &'a mut StdRng,
    violation: &'a mut Option<CongestError>,
}

impl<M: CongestMessage> Ctx<'_, M> {
    /// The id of the node being executed.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Degree of this node (number of ports).
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// The neighbor reached through `port`.
    pub fn neighbor(&self, port: usize) -> NodeId {
        NodeId(self.neighbors[port].0)
    }

    /// The current round number (0 during `init`).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Sends `msg` over `port`, to be delivered next round.
    ///
    /// Records a model violation (duplicate send on a port, port out of
    /// range, over-wide message) which aborts the run; the violation is
    /// returned from [`Simulator::run`].
    pub fn send(&mut self, port: usize, msg: M) {
        if self.violation.is_some() {
            return;
        }
        if port >= self.degree {
            *self.violation = Some(CongestError::PortOutOfRange {
                node: self.node,
                port,
                degree: self.degree,
            });
            return;
        }
        let bits = msg.bit_width();
        if bits > self.budget_bits {
            *self.violation = Some(CongestError::MessageTooWide {
                bits,
                budget: self.budget_bits,
            });
            return;
        }
        if self.staged[port].is_some() {
            *self.violation = Some(CongestError::DuplicateSend {
                node: self.node,
                port,
            });
            return;
        }
        self.staged[port] = Some(msg);
    }

    /// Sends `msg` to every port (standard "broadcast to neighbors").
    pub fn send_all(&mut self, msg: M) {
        for port in 0..self.degree {
            self.send(port, msg.clone());
        }
    }

    /// The shared deterministic RNG (seeded at simulator construction).
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }
}

/// Executes one [`Protocol`] instance per node of a [`Graph`], enforcing the
/// CONGEST constraints, until the configured [`StopCondition`].
///
/// # Examples
///
/// ```
/// use amt_congest::{Ctx, Protocol, RunConfig, Simulator};
/// use amt_graphs::Graph;
///
/// /// Every node learns the maximum id (flooding).
/// struct MaxId { best: u32, dirty: bool }
/// impl Protocol for MaxId {
///     type Message = u32;
///     fn init(&mut self, ctx: &mut Ctx<'_, u32>) {
///         ctx.send_all(self.best);
///     }
///     fn round(&mut self, ctx: &mut Ctx<'_, u32>, inbox: &[(usize, u32)]) {
///         for &(_, v) in inbox {
///             if v > self.best { self.best = v; self.dirty = true; }
///         }
///         if self.dirty { ctx.send_all(self.best); self.dirty = false; }
///     }
/// }
///
/// let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
/// let nodes = (0..3).map(|i| MaxId { best: i as u32, dirty: false }).collect();
/// let mut sim = Simulator::new(&g, nodes, 1).unwrap();
/// let metrics = sim.run(&RunConfig::default()).unwrap();
/// assert!(sim.nodes().iter().all(|n| n.best == 2));
/// assert!(metrics.rounds >= 2);
/// ```
pub struct Simulator<'g, P: Protocol> {
    graph: &'g Graph,
    nodes: Vec<P>,
    /// `peer_port[v][p]` is the port index at the neighbor through which the
    /// edge behind `(v, p)` is seen from the other side.
    peer_port: Vec<Vec<u32>>,
    adjacency: Vec<Vec<(u32, u32)>>,
    rng: StdRng,
    /// Optional fault injection; `None` (or a trivial plan) takes the exact
    /// fault-free execution path.
    fault_plan: Option<FaultPlan>,
    fault_events: Vec<FaultEvent>,
    crashed: Vec<bool>,
}

impl<'g, P: Protocol> Simulator<'g, P> {
    /// Creates a simulator over `graph` with one protocol instance per node.
    ///
    /// # Errors
    ///
    /// [`CongestError::NodeCountMismatch`] if `nodes.len() != graph.len()`.
    pub fn new(graph: &'g Graph, nodes: Vec<P>, seed: u64) -> Result<Self> {
        if nodes.len() != graph.len() {
            return Err(CongestError::NodeCountMismatch {
                graph: graph.len(),
                protocols: nodes.len(),
            });
        }
        let adjacency: Vec<Vec<(u32, u32)>> = graph
            .nodes()
            .map(|v| graph.neighbors(v).map(|(w, e)| (w.0, e.0)).collect())
            .collect();
        // Map each (node, port) to the matching port on the other side of
        // the edge. For self-loops the two adjacency occurrences pair up.
        let mut port_of_edge: Vec<Vec<(u32, u32)>> = vec![Vec::new(); graph.edge_count()];
        for (v, adj) in adjacency.iter().enumerate() {
            for (p, &(_, e)) in adj.iter().enumerate() {
                port_of_edge[e as usize].push((v as u32, p as u32));
            }
        }
        let mut peer_port: Vec<Vec<u32>> =
            adjacency.iter().map(|adj| vec![0u32; adj.len()]).collect();
        for ends in &port_of_edge {
            debug_assert_eq!(ends.len(), 2);
            let (v0, p0) = ends[0];
            let (v1, p1) = ends[1];
            peer_port[v0 as usize][p0 as usize] = p1;
            peer_port[v1 as usize][p1 as usize] = p0;
        }
        let n = nodes.len();
        Ok(Simulator {
            graph,
            nodes,
            peer_port,
            adjacency,
            rng: StdRng::seed_from_u64(seed),
            fault_plan: None,
            fault_events: Vec::new(),
            crashed: vec![false; n],
        })
    }

    /// Attaches a [`FaultPlan`] to apply on every subsequent [`Self::run`].
    ///
    /// A trivial plan (see [`FaultPlan::is_trivial`]) is equivalent to no
    /// plan at all: the run is bit-for-bit identical to the fault-free path.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// The faults injected by the most recent [`Self::run`], in order.
    pub fn fault_events(&self) -> &[FaultEvent] {
        &self.fault_events
    }

    /// Nodes crash-stopped during the most recent [`Self::run`].
    pub fn crashed_nodes(&self) -> Vec<NodeId> {
        self.crashed
            .iter()
            .enumerate()
            .filter(|&(_v, &c)| c)
            .map(|(v, &_c)| NodeId::from(v))
            .collect()
    }

    /// The protocol instances (for extracting results after a run).
    pub fn nodes(&self) -> &[P] {
        &self.nodes
    }

    /// Mutable access to the protocol instances.
    pub fn nodes_mut(&mut self) -> &mut [P] {
        &mut self.nodes
    }

    /// Runs until the stop condition, returning measured [`Metrics`].
    ///
    /// With a non-trivial [`FaultPlan`] attached, faults are sampled from
    /// the plan's dedicated RNG between staging and delivery; without one
    /// the execution is exactly the fault-free simulator.
    ///
    /// # Errors
    ///
    /// Any CONGEST violation recorded during execution,
    /// [`CongestError::RoundLimitExceeded`], or
    /// [`CongestError::FaultPlanInvalid`].
    pub fn run(&mut self, cfg: &RunConfig) -> Result<Metrics> {
        match self.fault_plan.clone() {
            Some(plan) if !plan.is_trivial() => self.run_faulty(cfg, plan),
            _ => self.run_clean(cfg),
        }
    }

    /// The pristine synchronous CONGEST execution (no fault sampling at all).
    fn run_clean(&mut self, cfg: &RunConfig) -> Result<Metrics> {
        let n = self.graph.len();
        let budget_bits = cfg.budget_factor * bits_for_count(n.max(2));
        let mut metrics = Metrics::default();
        // inbox[v] = (receiving port, message) pairs for this round.
        let mut inbox: Vec<Vec<(usize, P::Message)>> = vec![Vec::new(); n];
        let mut staged: Vec<Option<P::Message>> = Vec::new();
        let mut violation: Option<CongestError> = None;
        let mut next_inbox: Vec<Vec<(usize, P::Message)>> = vec![Vec::new(); n];

        for round in 0..=cfg.max_rounds {
            let mut sent_this_round = 0u64;
            for (v, ib) in inbox.iter().enumerate() {
                let degree = self.adjacency[v].len();
                staged.clear();
                staged.resize_with(degree, || None);
                {
                    let mut ctx = Ctx {
                        node: NodeId::from(v),
                        degree,
                        neighbors: &self.adjacency[v],
                        round,
                        budget_bits,
                        staged: &mut staged,
                        rng: &mut self.rng,
                        violation: &mut violation,
                    };
                    if round == 0 {
                        self.nodes[v].init(&mut ctx);
                    } else {
                        self.nodes[v].round(&mut ctx, ib);
                    }
                }
                if let Some(err) = violation.take() {
                    return Err(err);
                }
                for (port, slot) in staged.iter_mut().enumerate() {
                    if let Some(msg) = slot.take() {
                        let dst = self.adjacency[v][port].0 as usize;
                        let dst_port = self.peer_port[v][port] as usize;
                        metrics.bits += msg.bit_width() as u64;
                        next_inbox[dst].push((dst_port, msg));
                        sent_this_round += 1;
                    }
                }
            }
            metrics.messages += sent_this_round;
            metrics.peak_messages_per_round = metrics.peak_messages_per_round.max(sent_this_round);
            for ib in &mut inbox {
                ib.clear();
            }
            std::mem::swap(&mut inbox, &mut next_inbox);
            let in_flight = sent_this_round > 0;
            metrics.rounds = round;
            let stop = match cfg.stop {
                StopCondition::AllDone => !in_flight && self.nodes.iter().all(Protocol::is_done),
                StopCondition::Quiescence => !in_flight && round > 0,
            };
            if stop {
                return Ok(metrics);
            }
        }
        Err(CongestError::RoundLimitExceeded {
            max_rounds: cfg.max_rounds,
        })
    }

    fn run_faulty(&mut self, cfg: &RunConfig, plan: FaultPlan) -> Result<Metrics> {
        let mut fs = FaultState::new(plan, self.graph.len())?;
        let result = self.faulty_loop(cfg, &mut fs);
        self.fault_events = std::mem::take(&mut fs.events);
        self.crashed = std::mem::take(&mut fs.crashed);
        result
    }

    /// The executor with fault sampling between staging and delivery.
    ///
    /// Differences from [`Self::run_clean`], all driven by `fs`:
    /// crash-stopped nodes execute no steps and their inboxes are discarded;
    /// each staged message is dropped, corrupted (one flipped bit; an
    /// undecodable frame is discarded), delayed (delivered `by` rounds
    /// late), or delivered intact; `messages`/`bits` count *deliveries*, so
    /// lost traffic never inflates the totals.
    fn faulty_loop(&mut self, cfg: &RunConfig, fs: &mut FaultState) -> Result<Metrics> {
        let n = self.graph.len();
        let budget_bits = cfg.budget_factor * bits_for_count(n.max(2));
        let mut metrics = Metrics::default();
        let mut inbox: Vec<Vec<(usize, P::Message)>> = vec![Vec::new(); n];
        let mut staged: Vec<Option<P::Message>> = Vec::new();
        let mut violation: Option<CongestError> = None;
        let mut next_inbox: Vec<Vec<(usize, P::Message)>> = vec![Vec::new(); n];
        // Messages an injected delay is holding back: delivered into
        // `next_inbox` during the round stored in `.0`.
        let mut held: Vec<(u64, usize, usize, P::Message)> = Vec::new();

        for round in 0..=cfg.max_rounds {
            fs.apply_crashes(round, &mut metrics);
            let mut delivered_this_round = 0u64;
            for (v, ib) in inbox.iter_mut().enumerate() {
                if fs.is_crashed(v) {
                    ib.clear();
                    continue;
                }
                let degree = self.adjacency[v].len();
                staged.clear();
                staged.resize_with(degree, || None);
                {
                    let mut ctx = Ctx {
                        node: NodeId::from(v),
                        degree,
                        neighbors: &self.adjacency[v],
                        round,
                        budget_bits,
                        staged: &mut staged,
                        rng: &mut self.rng,
                        violation: &mut violation,
                    };
                    if round == 0 {
                        self.nodes[v].init(&mut ctx);
                    } else {
                        self.nodes[v].round(&mut ctx, ib);
                    }
                }
                if let Some(err) = violation.take() {
                    return Err(err);
                }
                for (port, slot) in staged.iter_mut().enumerate() {
                    let Some(msg) = slot.take() else { continue };
                    let dst = self.adjacency[v][port].0 as usize;
                    let dst_port = self.peer_port[v][port] as usize;
                    if fs.is_crashed(dst) {
                        // Lost to the crash; the Crashed event already
                        // records the cause, so this is not a drop fault.
                        continue;
                    }
                    match fs.fate() {
                        Fate::Deliver => {
                            metrics.bits += msg.bit_width() as u64;
                            next_inbox[dst].push((dst_port, msg));
                            delivered_this_round += 1;
                        }
                        Fate::Drop => {
                            metrics.dropped += 1;
                            fs.record(round, v, port, FaultKind::Dropped);
                        }
                        Fate::Corrupt => {
                            metrics.corrupted += 1;
                            let mask = fs.flip_mask(msg.bit_width());
                            match msg.corrupted(mask) {
                                Some(garbled) => {
                                    fs.record(
                                        round,
                                        v,
                                        port,
                                        FaultKind::Corrupted { delivered: true },
                                    );
                                    metrics.bits += garbled.bit_width() as u64;
                                    next_inbox[dst].push((dst_port, garbled));
                                    delivered_this_round += 1;
                                }
                                None => {
                                    // No canonical encoding, or the flipped
                                    // frame no longer parses: the receiver
                                    // sees nothing.
                                    fs.record(
                                        round,
                                        v,
                                        port,
                                        FaultKind::Corrupted { delivered: false },
                                    );
                                }
                            }
                        }
                        Fate::Delay(by) => {
                            metrics.delayed += 1;
                            fs.record(round, v, port, FaultKind::Delayed { by });
                            held.push((round + by, dst, dst_port, msg));
                        }
                    }
                }
            }
            // Release held messages whose extra wait has elapsed (crash of
            // the destination in the meantime loses them).
            let mut i = 0;
            while i < held.len() {
                if held[i].0 <= round {
                    let (_, dst, dst_port, msg) = held.swap_remove(i);
                    if !fs.is_crashed(dst) {
                        metrics.bits += msg.bit_width() as u64;
                        next_inbox[dst].push((dst_port, msg));
                        delivered_this_round += 1;
                    }
                } else {
                    i += 1;
                }
            }
            metrics.messages += delivered_this_round;
            metrics.peak_messages_per_round =
                metrics.peak_messages_per_round.max(delivered_this_round);
            for ib in &mut inbox {
                ib.clear();
            }
            std::mem::swap(&mut inbox, &mut next_inbox);
            let in_flight = delivered_this_round > 0 || !held.is_empty();
            metrics.rounds = round;
            let stop = match cfg.stop {
                StopCondition::AllDone => {
                    !in_flight
                        && self
                            .nodes
                            .iter()
                            .enumerate()
                            .all(|(v, node)| fs.is_crashed(v) || node.is_done())
                }
                StopCondition::Quiescence => !in_flight && round > 0,
            };
            if stop {
                return Ok(metrics);
            }
        }
        Err(CongestError::RoundLimitExceeded {
            max_rounds: cfg.max_rounds,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Protocol that floods the max of initial values.
    struct MaxFlood {
        best: u64,
        dirty: bool,
    }

    impl Protocol for MaxFlood {
        type Message = u64;
        fn init(&mut self, ctx: &mut Ctx<'_, u64>) {
            ctx.send_all(self.best);
        }
        fn round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &[(usize, u64)]) {
            for &(_, v) in inbox {
                if v > self.best {
                    self.best = v;
                    self.dirty = true;
                }
            }
            if self.dirty {
                ctx.send_all(self.best);
                self.dirty = false;
            }
        }
    }

    fn path(n: usize) -> Graph {
        Graph::from_edges(n, &(0..n - 1).map(|i| (i, i + 1)).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn flooding_takes_eccentricity_rounds() {
        let n = 10;
        let g = path(n);
        let nodes = (0..n)
            .map(|i| MaxFlood {
                best: i as u64,
                dirty: false,
            })
            .collect();
        let mut sim = Simulator::new(&g, nodes, 0).unwrap();
        let m = sim.run(&RunConfig::default()).unwrap();
        assert!(sim.nodes().iter().all(|p| p.best == (n - 1) as u64));
        // Value at node n-1 must travel n-1 hops; +1 quiescent round.
        assert_eq!(m.rounds, n as u64);
        assert!(m.messages > 0);
        assert!(m.bits >= m.messages);
    }

    #[test]
    fn node_count_mismatch_is_rejected() {
        let g = path(3);
        let err = Simulator::new(
            &g,
            vec![MaxFlood {
                best: 0,
                dirty: false,
            }],
            0,
        )
        .err()
        .unwrap();
        assert_eq!(
            err,
            CongestError::NodeCountMismatch {
                graph: 3,
                protocols: 1
            }
        );
    }

    struct DoubleSender;
    impl Protocol for DoubleSender {
        type Message = u32;
        fn init(&mut self, ctx: &mut Ctx<'_, u32>) {
            ctx.send(0, 1);
            ctx.send(0, 2);
        }
        fn round(&mut self, _: &mut Ctx<'_, u32>, _: &[(usize, u32)]) {}
    }

    #[test]
    fn duplicate_send_detected() {
        let g = path(2);
        let mut sim = Simulator::new(&g, vec![DoubleSender, DoubleSender], 0).unwrap();
        let err = sim.run(&RunConfig::default()).unwrap_err();
        assert!(matches!(err, CongestError::DuplicateSend { port: 0, .. }));
    }

    struct WideSender;
    impl Protocol for WideSender {
        type Message = u64;
        fn init(&mut self, ctx: &mut Ctx<'_, u64>) {
            ctx.send(0, u64::MAX);
        }
        fn round(&mut self, _: &mut Ctx<'_, u64>, _: &[(usize, u64)]) {}
    }

    #[test]
    fn over_budget_message_detected() {
        let g = path(2);
        let mut sim = Simulator::new(&g, vec![WideSender, WideSender], 0).unwrap();
        // n = 2 → ⌈log₂ 2⌉ = 1 bit, factor 8 → budget 8 bits; u64::MAX is 64.
        let err = sim.run(&RunConfig::default()).unwrap_err();
        assert_eq!(
            err,
            CongestError::MessageTooWide {
                bits: 64,
                budget: 8
            }
        );
    }

    struct PortAbuser;
    impl Protocol for PortAbuser {
        type Message = u32;
        fn init(&mut self, ctx: &mut Ctx<'_, u32>) {
            let d = ctx.degree();
            ctx.send(d, 0);
        }
        fn round(&mut self, _: &mut Ctx<'_, u32>, _: &[(usize, u32)]) {}
    }

    #[test]
    fn port_out_of_range_detected() {
        let g = path(2);
        let mut sim = Simulator::new(&g, vec![PortAbuser, PortAbuser], 0).unwrap();
        let err = sim.run(&RunConfig::default()).unwrap_err();
        assert!(matches!(
            err,
            CongestError::PortOutOfRange {
                port: 1,
                degree: 1,
                ..
            }
        ));
    }

    /// Echoes forever — must trip the round cap.
    struct Chatter;
    impl Protocol for Chatter {
        type Message = u32;
        fn init(&mut self, ctx: &mut Ctx<'_, u32>) {
            ctx.send_all(0);
        }
        fn round(&mut self, ctx: &mut Ctx<'_, u32>, _: &[(usize, u32)]) {
            ctx.send_all(0);
        }
    }

    #[test]
    fn round_cap_enforced() {
        let g = path(2);
        let mut sim = Simulator::new(&g, vec![Chatter, Chatter], 0).unwrap();
        let cfg = RunConfig {
            max_rounds: 50,
            ..Default::default()
        };
        let err = sim.run(&cfg).unwrap_err();
        assert_eq!(err, CongestError::RoundLimitExceeded { max_rounds: 50 });
    }

    /// Ping-pong over a self-loop: port pairing must route a self-loop send
    /// to the *other* occurrence of the loop at the same node.
    struct LoopPing {
        got: Vec<usize>,
    }
    impl Protocol for LoopPing {
        type Message = u32;
        fn init(&mut self, ctx: &mut Ctx<'_, u32>) {
            if ctx.degree() >= 2 {
                ctx.send(0, 7);
            }
        }
        fn round(&mut self, _: &mut Ctx<'_, u32>, inbox: &[(usize, u32)]) {
            for &(p, _) in inbox {
                self.got.push(p);
            }
        }
    }

    #[test]
    fn self_loop_delivery_crosses_ports() {
        let g = Graph::from_edges(1, &[(0, 0)]).unwrap();
        let mut sim = Simulator::new(&g, vec![LoopPing { got: vec![] }], 0).unwrap();
        sim.run(&RunConfig::default()).unwrap();
        assert_eq!(sim.nodes()[0].got, vec![1]);
    }

    #[test]
    fn determinism_same_seed_same_metrics() {
        let g = amt_graphs::generators::hypercube(4);
        let mk = || {
            (0..16)
                .map(|i| MaxFlood {
                    best: i as u64,
                    dirty: false,
                })
                .collect()
        };
        let m1 = Simulator::new(&g, mk(), 42)
            .unwrap()
            .run(&RunConfig::default())
            .unwrap();
        let m2 = Simulator::new(&g, mk(), 42)
            .unwrap()
            .run(&RunConfig::default())
            .unwrap();
        assert_eq!(m1, m2);
    }
}
