//! Opt-in runtime-execution telemetry: per-shard straggler attribution,
//! engine gauges, a fixed-capacity flight recorder, and live NDJSON
//! streaming.
//!
//! [`crate::trace`] and [`crate::profile`] observe *what the protocol did*
//! (deliveries, faults, traffic classes); this module observes *how the
//! runtime executed it*: which shard was the straggler each round, how deep
//! the inbox slab and wake queue got, how many bytes the arenas peaked at,
//! and what the last rounds looked like when a long run dies.
//!
//! # Contract
//!
//! * **Off by default, zero cost.** Telemetry is off unless
//!   [`crate::Simulator::with_telemetry`] is called; a disabled run takes
//!   the exact same code path — `Metrics`, protocol state, RNG streams,
//!   traces, and profiles are byte-identical with telemetry on or off.
//! * **Exact logical gauges.** Active-set occupancy, inbox/staged queue
//!   depths, wake-queue depth, and arena byte high-water marks are pure
//!   functions of the run (graph, seed, config, plans): the same across
//!   thread counts, visit orders, and engine variants. Arena bytes are
//!   computed from element *counts* times element size, never allocator
//!   capacity, so they carry no allocator nondeterminism.
//! * **Wall-times are host metadata.** Per-shard step wall-times (and the
//!   imbalance factors derived from them) measure the host machine, not the
//!   simulated execution — like [`crate::PhaseTimings`] they are excluded
//!   from every determinism comparison. Per-shard *work* counters (nodes
//!   stepped, messages staged) are logical and deterministic for a fixed
//!   `(threads, placement)` configuration.
//! * **Telemetry never fails a run.** Stream and dump I/O errors are
//!   swallowed; a full flight recorder evicts its oldest frame.

use crate::trace::{Distribution, RoundSample};
use crate::{ChurnEvent, FaultEvent};
use std::collections::VecDeque;
use std::io::Write;
use std::path::{Path, PathBuf};

/// What to record and where to stream it, attached via
/// [`crate::Simulator::with_telemetry`].
#[derive(Clone, Debug, PartialEq)]
pub struct TelemetryConfig {
    /// Rounds retained by the flight recorder ring buffer (oldest frames
    /// are evicted beyond this). Default 64.
    pub flight_capacity: usize,
    /// Keep the full per-round [`RoundHealth`] history on
    /// [`RunTelemetry::history`] (default `true`). Disable for soak runs
    /// where only the high-water marks and the flight recorder matter.
    pub history: bool,
    /// Stream one NDJSON round snapshot per [`TelemetryConfig::stream_stride`]
    /// rounds (plus the final round) to this path, so long runs are
    /// watchable in flight. `None` (the default) streams nothing.
    pub stream_to: Option<PathBuf>,
    /// Stride between streamed rounds (`1` = every round). Zero is
    /// normalized to 1.
    pub stream_stride: u64,
    /// Identifier used to name flight-recorder dumps
    /// (`flightrec_<run_id>.json`).
    pub run_id: String,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            flight_capacity: 64,
            history: true,
            stream_to: None,
            stream_stride: 1,
            run_id: "run".to_string(),
        }
    }
}

impl TelemetryConfig {
    /// Sets the flight-recorder capacity (rounds retained; min 1).
    pub fn with_flight_capacity(mut self, rounds: usize) -> Self {
        self.flight_capacity = rounds.max(1);
        self
    }

    /// Drops the full per-round history, keeping only aggregates and the
    /// flight recorder.
    pub fn without_history(mut self) -> Self {
        self.history = false;
        self
    }

    /// Streams strided NDJSON round snapshots to `path`.
    pub fn stream_to(mut self, path: impl Into<PathBuf>) -> Self {
        self.stream_to = Some(path.into());
        self
    }

    /// Sets the stride between streamed rounds.
    pub fn with_stream_stride(mut self, stride: u64) -> Self {
        self.stream_stride = stride.max(1);
        self
    }

    /// Names the run for flight-recorder dumps.
    pub fn with_run_id(mut self, id: impl Into<String>) -> Self {
        self.run_id = id.into();
        self
    }
}

/// One executor shard's work in one round.
///
/// Under the threaded stepper there is one sample per worker shard; the
/// sequential stepper reports a single shard 0. `wall_nanos` is host
/// wall-clock (excluded from determinism); the work counters are logical.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardRoundSample {
    /// Shard (worker) index under the run's placement.
    pub shard: u32,
    /// Host wall-clock nanoseconds the shard spent stepping its nodes.
    pub wall_nanos: u64,
    /// Nodes the shard stepped this round.
    pub nodes_stepped: u64,
    /// Messages the shard staged for delivery this round.
    pub messages_staged: u64,
}

/// Engine gauges plus per-shard samples for one executed round.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RoundHealth {
    /// The round number.
    pub round: u64,
    /// Nodes the executor visited this round (active-set occupancy; `n`
    /// under the full-sweep reference engine).
    pub active_nodes: u64,
    /// Messages sitting in this round's inbox slab when stepping began.
    pub inbox_queued: u64,
    /// Messages staged for delivery by this round's steps.
    pub staged_sends: u64,
    /// Pending [`crate::Ctx::wake_in`] timers across all future rounds.
    pub wake_queue: u64,
    /// Bytes logically held by the message arenas this round (element
    /// counts × element sizes; allocator-independent).
    pub arena_bytes: u64,
    /// Per-shard work and wall samples, in shard order.
    pub shards: Vec<ShardRoundSample>,
}

impl RoundHealth {
    /// The slowest shard's wall-time this round (0 with no shards).
    pub fn max_shard_wall(&self) -> u64 {
        self.shards.iter().map(|s| s.wall_nanos).max().unwrap_or(0)
    }

    /// Straggler imbalance factor: `max_shard_wall / mean_shard_wall`.
    /// `1.0` for fewer than two shards or an all-zero round — a perfectly
    /// balanced round scores 1.0, a round where one shard did all the
    /// waiting scores ≈ shard count.
    pub fn imbalance(&self) -> f64 {
        imbalance_of(self.shards.iter().map(|s| s.wall_nanos))
    }
}

/// `max / mean` over a series, with degenerate cases collapsed to 1.0.
fn imbalance_of(walls: impl Iterator<Item = u64>) -> f64 {
    let walls: Vec<u64> = walls.collect();
    if walls.len() < 2 {
        return 1.0;
    }
    let total: u64 = walls.iter().sum();
    if total == 0 {
        return 1.0;
    }
    let max = *walls.iter().max().expect("non-empty") as f64;
    max / (total as f64 / walls.len() as f64)
}

/// High-water marks of the per-round gauges over a whole run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GaugeHighWater {
    /// Peak active-set occupancy.
    pub active_nodes: u64,
    /// Peak inbox-slab depth (messages).
    pub inbox_queued: u64,
    /// Peak staged-send depth (messages).
    pub staged_sends: u64,
    /// Peak wake-queue depth (pending timers).
    pub wake_queue: u64,
    /// Peak logical arena bytes.
    pub arena_bytes: u64,
}

impl GaugeHighWater {
    fn absorb(&mut self, h: &RoundHealth) {
        self.active_nodes = self.active_nodes.max(h.active_nodes);
        self.inbox_queued = self.inbox_queued.max(h.inbox_queued);
        self.staged_sends = self.staged_sends.max(h.staged_sends);
        self.wake_queue = self.wake_queue.max(h.wake_queue);
        self.arena_bytes = self.arena_bytes.max(h.arena_bytes);
    }
}

/// One flight-recorder frame: the round's protocol-level sample plus its
/// runtime health.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FlightFrame {
    /// Protocol-level deliveries and faults of the round (the same shape
    /// [`crate::RunTrace`] records).
    pub sample: RoundSample,
    /// Runtime gauges and per-shard samples of the round.
    pub health: RoundHealth,
}

/// Fixed-capacity ring buffer of the last K executed rounds.
///
/// Cheap enough to leave on: pushing beyond capacity evicts the oldest
/// frame, so memory is bounded by the configured capacity whatever the run
/// length. Dumped via [`dump_flight`] when a run ends badly.
#[derive(Clone, Debug, PartialEq)]
pub struct FlightRecorder {
    capacity: usize,
    frames: VecDeque<FlightFrame>,
}

impl FlightRecorder {
    /// An empty recorder retaining up to `capacity` rounds (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            capacity,
            frames: VecDeque::with_capacity(capacity),
        }
    }

    /// Appends a frame, evicting the oldest beyond capacity.
    pub fn push(&mut self, frame: FlightFrame) {
        if self.frames.len() == self.capacity {
            self.frames.pop_front();
        }
        self.frames.push_back(frame);
    }

    /// Retained frames, oldest first.
    pub fn frames(&self) -> impl Iterator<Item = &FlightFrame> {
        self.frames.iter()
    }

    /// Configured capacity in rounds.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Frames currently retained.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether no frames are retained.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Round of the oldest retained frame (`None` when empty).
    pub fn oldest_round(&self) -> Option<u64> {
        self.frames.front().map(|f| f.health.round)
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(TelemetryConfig::default().flight_capacity)
    }
}

/// Everything one telemetry-enabled run recorded.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunTelemetry {
    /// Executor shards the run used (1 for the sequential stepper).
    pub shards: usize,
    /// Rounds recorded.
    pub rounds: u64,
    /// Gauge high-water marks over the run.
    pub hwm: GaugeHighWater,
    /// Total nodes stepped per shard over the run.
    pub shard_nodes_stepped: Vec<u64>,
    /// Total messages staged per shard over the run.
    pub shard_messages_staged: Vec<u64>,
    /// Total host wall nanoseconds per shard over the run (host metadata,
    /// excluded from determinism comparisons).
    pub shard_wall_nanos: Vec<u64>,
    /// Full per-round history ([`TelemetryConfig::history`]; empty when
    /// disabled).
    pub history: Vec<RoundHealth>,
    /// The last K rounds ([`TelemetryConfig::flight_capacity`]).
    pub recent: FlightRecorder,
}

impl RunTelemetry {
    /// Whole-run straggler imbalance: `max / mean` of the per-shard wall
    /// totals (1.0 for fewer than two shards).
    pub fn imbalance(&self) -> f64 {
        imbalance_of(self.shard_wall_nanos.iter().copied())
    }

    /// Distribution of the per-round imbalance factor, in milli-units
    /// (1000 = perfectly balanced), over the recorded history. `None` when
    /// history is off or empty.
    pub fn round_imbalance_milli_distribution(&self) -> Option<Distribution> {
        Distribution::try_of(
            self.history
                .iter()
                .map(|h| (h.imbalance() * 1000.0).round() as u64),
        )
    }

    /// Distribution of wake-queue depth over the recorded history.
    pub fn wake_queue_distribution(&self) -> Option<Distribution> {
        Distribution::try_of(self.history.iter().map(|h| h.wake_queue))
    }

    /// Distribution of staged-send depth over the recorded history.
    pub fn staged_distribution(&self) -> Option<Distribution> {
        Distribution::try_of(self.history.iter().map(|h| h.staged_sends))
    }

    /// Distribution of active-set occupancy over the recorded history.
    pub fn active_distribution(&self) -> Option<Distribution> {
        Distribution::try_of(self.history.iter().map(|h| h.active_nodes))
    }
}

// ---------------------------------------------------------------------------
// Engine-side recording state
// ---------------------------------------------------------------------------

/// Live recording state owned by the round engine while telemetry is on.
/// Folds each round into aggregates, the ring, the optional history, and
/// the optional NDJSON stream; [`TelemetryState::finish`] yields the
/// [`RunTelemetry`].
pub(crate) struct TelemetryState {
    cfg: TelemetryConfig,
    out: RunTelemetry,
    stream: Option<std::io::BufWriter<std::fs::File>>,
    last_streamed: Option<u64>,
}

impl TelemetryState {
    pub(crate) fn new(cfg: TelemetryConfig) -> Self {
        // Stream I/O must never fail the run: an unopenable sink simply
        // streams nothing.
        let stream = cfg
            .stream_to
            .as_ref()
            .and_then(|p| std::fs::File::create(p).ok())
            .map(std::io::BufWriter::new);
        let out = RunTelemetry {
            recent: FlightRecorder::new(cfg.flight_capacity),
            ..RunTelemetry::default()
        };
        TelemetryState {
            cfg,
            out,
            stream,
            last_streamed: None,
        }
    }

    pub(crate) fn record_round(&mut self, sample: RoundSample, health: RoundHealth) {
        self.out.rounds = health.round;
        self.out.shards = self.out.shards.max(health.shards.len());
        self.out.hwm.absorb(&health);
        for s in &health.shards {
            let i = s.shard as usize;
            if self.out.shard_nodes_stepped.len() <= i {
                self.out.shard_nodes_stepped.resize(i + 1, 0);
                self.out.shard_messages_staged.resize(i + 1, 0);
                self.out.shard_wall_nanos.resize(i + 1, 0);
            }
            self.out.shard_nodes_stepped[i] += s.nodes_stepped;
            self.out.shard_messages_staged[i] += s.messages_staged;
            self.out.shard_wall_nanos[i] += s.wall_nanos;
        }
        let stride = self.cfg.stream_stride.max(1);
        if health.round.is_multiple_of(stride) {
            self.stream_frame(&sample, &health);
        }
        if self.cfg.history {
            self.out.history.push(health.clone());
        }
        self.out.recent.push(FlightFrame { sample, health });
    }

    fn stream_frame(&mut self, sample: &RoundSample, health: &RoundHealth) {
        let Some(w) = self.stream.as_mut() else {
            return;
        };
        let line = ndjson_line(sample, health);
        // A failed write disables the stream rather than failing the run.
        if w.write_all(line.as_bytes()).is_err() {
            self.stream = None;
            return;
        }
        self.last_streamed = Some(health.round);
    }

    /// Flushes the stream (emitting the final round if the stride skipped
    /// it) and yields the recorded telemetry.
    pub(crate) fn finish(mut self) -> RunTelemetry {
        if self.stream.is_some() {
            if let Some(last) = self.out.recent.frames.back().cloned() {
                if self.last_streamed != Some(last.health.round) {
                    self.stream_frame(&last.sample, &last.health);
                }
            }
            if let Some(w) = self.stream.as_mut() {
                let _ = w.flush();
            }
        }
        self.out
    }
}

// ---------------------------------------------------------------------------
// JSON rendering (hand-rolled: this crate has no serde and must not depend
// on amt-bench, which depends on it)
// ---------------------------------------------------------------------------

fn json_escape(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_kv(out: &mut String, first: &mut bool, key: &str, value: impl std::fmt::Display) {
    if !*first {
        out.push(',');
    }
    *first = false;
    json_escape(out, key);
    out.push(':');
    out.push_str(&value.to_string());
}

fn shard_array(shards: &[ShardRoundSample]) -> String {
    let mut out = String::from("[");
    for (i, s) in shards.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let mut first = true;
        out.push('{');
        push_kv(&mut out, &mut first, "shard", s.shard);
        push_kv(&mut out, &mut first, "wall_nanos", s.wall_nanos);
        push_kv(&mut out, &mut first, "nodes_stepped", s.nodes_stepped);
        push_kv(&mut out, &mut first, "messages_staged", s.messages_staged);
        out.push('}');
    }
    out.push(']');
    out
}

fn health_object(h: &RoundHealth) -> String {
    let mut out = String::from("{");
    let mut first = true;
    push_kv(&mut out, &mut first, "round", h.round);
    push_kv(&mut out, &mut first, "active_nodes", h.active_nodes);
    push_kv(&mut out, &mut first, "inbox_queued", h.inbox_queued);
    push_kv(&mut out, &mut first, "staged_sends", h.staged_sends);
    push_kv(&mut out, &mut first, "wake_queue", h.wake_queue);
    push_kv(&mut out, &mut first, "arena_bytes", h.arena_bytes);
    push_kv(
        &mut out,
        &mut first,
        "imbalance",
        format!("{:.4}", h.imbalance()),
    );
    if !first {
        out.push(',');
    }
    out.push_str("\"shards\":");
    out.push_str(&shard_array(&h.shards));
    out.push('}');
    out
}

fn sample_object(s: &RoundSample) -> String {
    let mut out = String::from("{");
    let mut first = true;
    push_kv(&mut out, &mut first, "round", s.round);
    push_kv(&mut out, &mut first, "messages", s.messages);
    push_kv(&mut out, &mut first, "bits", s.bits);
    push_kv(&mut out, &mut first, "dropped", s.dropped);
    push_kv(&mut out, &mut first, "corrupted", s.corrupted);
    push_kv(&mut out, &mut first, "delayed", s.delayed);
    push_kv(&mut out, &mut first, "lost_to_crash", s.lost_to_crash);
    push_kv(&mut out, &mut first, "crashed", s.crashed);
    push_kv(&mut out, &mut first, "lost_to_churn", s.lost_to_churn);
    push_kv(&mut out, &mut first, "restarts", s.restarts);
    push_kv(&mut out, &mut first, "nodes_down", s.nodes_down);
    push_kv(&mut out, &mut first, "active_nodes", s.active_nodes);
    out.push('}');
    out
}

/// One NDJSON stream line for a round (newline-terminated).
fn ndjson_line(sample: &RoundSample, health: &RoundHealth) -> String {
    let mut out = String::from("{");
    let mut first = true;
    push_kv(&mut out, &mut first, "round", health.round);
    push_kv(&mut out, &mut first, "messages", sample.messages);
    push_kv(&mut out, &mut first, "bits", sample.bits);
    push_kv(&mut out, &mut first, "active_nodes", health.active_nodes);
    push_kv(&mut out, &mut first, "inbox_queued", health.inbox_queued);
    push_kv(&mut out, &mut first, "staged_sends", health.staged_sends);
    push_kv(&mut out, &mut first, "wake_queue", health.wake_queue);
    push_kv(&mut out, &mut first, "arena_bytes", health.arena_bytes);
    push_kv(&mut out, &mut first, "nodes_down", sample.nodes_down);
    push_kv(
        &mut out,
        &mut first,
        "imbalance",
        format!("{:.4}", health.imbalance()),
    );
    if !first {
        out.push(',');
    }
    out.push_str("\"shard_walls\":[");
    for (i, s) in health.shards.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&s.wall_nanos.to_string());
    }
    out.push_str("]}\n");
    out
}

/// Renders a flight-recorder dump document: run identity, the retained
/// frames (oldest first), and the fault/churn events that fall inside the
/// retained round window. Standard JSON, parseable by any JSON parser
/// (CI checks it with the report parser).
pub fn render_flight_dump(
    telemetry: &RunTelemetry,
    run_id: &str,
    reason: &str,
    fault_events: &[FaultEvent],
    churn_events: &[ChurnEvent],
) -> String {
    let oldest = telemetry.recent.oldest_round().unwrap_or(0);
    let mut out = String::from("{");
    json_escape(&mut out, "run_id");
    out.push(':');
    json_escape(&mut out, run_id);
    out.push(',');
    json_escape(&mut out, "reason");
    out.push(':');
    json_escape(&mut out, reason);
    let mut first = false;
    push_kv(&mut out, &mut first, "rounds", telemetry.rounds);
    push_kv(
        &mut out,
        &mut first,
        "capacity",
        telemetry.recent.capacity(),
    );
    push_kv(&mut out, &mut first, "retained", telemetry.recent.len());
    push_kv(&mut out, &mut first, "oldest_round", oldest);
    push_kv(
        &mut out,
        &mut first,
        "imbalance",
        format!("{:.4}", telemetry.imbalance()),
    );
    out.push_str(",\"frames\":[");
    for (i, f) in telemetry.recent.frames().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"sample\":");
        out.push_str(&sample_object(&f.sample));
        out.push_str(",\"health\":");
        out.push_str(&health_object(&f.health));
        out.push('}');
    }
    out.push_str("],\"fault_events\":[");
    let mut wrote = false;
    for e in fault_events.iter().filter(|e| e.round >= oldest) {
        if wrote {
            out.push(',');
        }
        wrote = true;
        let mut first = true;
        out.push('{');
        push_kv(&mut out, &mut first, "round", e.round);
        push_kv(&mut out, &mut first, "node", e.node.0);
        push_kv(&mut out, &mut first, "port", e.port);
        out.push(',');
        json_escape(&mut out, "kind");
        out.push(':');
        json_escape(&mut out, &format!("{:?}", e.kind));
        out.push('}');
    }
    out.push_str("],\"churn_events\":[");
    let mut wrote = false;
    for e in churn_events.iter().filter(|e| e.round >= oldest) {
        if wrote {
            out.push(',');
        }
        wrote = true;
        let mut first = true;
        out.push('{');
        push_kv(&mut out, &mut first, "round", e.round);
        out.push(',');
        json_escape(&mut out, "kind");
        out.push(':');
        json_escape(&mut out, &format!("{:?}", e.kind));
        out.push('}');
    }
    out.push_str("]}\n");
    out
}

/// Writes a flight-recorder dump to
/// `<AMT_REPORT_DIR|experiments_out>/flightrec_<run_id>.json` and returns
/// the path. Returns `None` (never an error) if the directory or file
/// cannot be written — a failed dump must not mask the run's own error.
pub fn dump_flight(
    telemetry: &RunTelemetry,
    run_id: &str,
    reason: &str,
    fault_events: &[FaultEvent],
    churn_events: &[ChurnEvent],
) -> Option<PathBuf> {
    let dir = std::env::var("AMT_REPORT_DIR").unwrap_or_else(|_| "experiments_out".into());
    if std::fs::create_dir_all(&dir).is_err() {
        return None;
    }
    let path = Path::new(&dir).join(format!("flightrec_{run_id}.json"));
    let doc = render_flight_dump(telemetry, run_id, reason, fault_events, churn_events);
    std::fs::write(&path, doc).ok()?;
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn health(round: u64, walls: &[u64]) -> RoundHealth {
        RoundHealth {
            round,
            active_nodes: 10 + round,
            inbox_queued: 5,
            staged_sends: 7,
            wake_queue: 3,
            arena_bytes: 120,
            shards: walls
                .iter()
                .enumerate()
                .map(|(i, &w)| ShardRoundSample {
                    shard: i as u32,
                    wall_nanos: w,
                    nodes_stepped: 4,
                    messages_staged: 2,
                })
                .collect(),
        }
    }

    #[test]
    fn imbalance_is_max_over_mean() {
        // Walls [100, 300]: mean 200, max 300 → 1.5.
        assert!((health(0, &[100, 300]).imbalance() - 1.5).abs() < 1e-9);
        // Perfectly balanced → 1.0.
        assert!((health(0, &[50, 50, 50]).imbalance() - 1.0).abs() < 1e-9);
        // Degenerate cases collapse to 1.0.
        assert!((health(0, &[]).imbalance() - 1.0).abs() < 1e-9);
        assert!((health(0, &[9]).imbalance() - 1.0).abs() < 1e-9);
        assert!((health(0, &[0, 0]).imbalance() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn flight_recorder_evicts_oldest() {
        let mut rec = FlightRecorder::new(3);
        for round in 0..5u64 {
            rec.push(FlightFrame {
                sample: RoundSample {
                    round,
                    ..RoundSample::default()
                },
                health: health(round, &[1, 2]),
            });
        }
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.capacity(), 3);
        assert_eq!(rec.oldest_round(), Some(2));
        let rounds: Vec<u64> = rec.frames().map(|f| f.health.round).collect();
        assert_eq!(rounds, vec![2, 3, 4]);
    }

    #[test]
    fn telemetry_state_accumulates_shards_and_hwm() {
        let mut st = TelemetryState::new(TelemetryConfig::default().with_flight_capacity(2));
        for round in 0..4u64 {
            let mut h = health(round, &[10, 30]);
            h.wake_queue = round; // rising gauge
            st.record_round(
                RoundSample {
                    round,
                    messages: 2,
                    ..RoundSample::default()
                },
                h,
            );
        }
        let t = st.finish();
        assert_eq!(t.shards, 2);
        assert_eq!(t.rounds, 3);
        assert_eq!(t.hwm.wake_queue, 3);
        assert_eq!(t.hwm.active_nodes, 13);
        assert_eq!(t.shard_nodes_stepped, vec![16, 16]);
        assert_eq!(t.shard_messages_staged, vec![8, 8]);
        assert_eq!(t.shard_wall_nanos, vec![40, 120]);
        assert!((t.imbalance() - 1.5).abs() < 1e-9);
        assert_eq!(t.history.len(), 4);
        assert_eq!(t.recent.len(), 2, "ring keeps only the last K rounds");
        assert_eq!(t.recent.oldest_round(), Some(2));
        // Distributions read the history.
        assert_eq!(t.wake_queue_distribution().expect("history on").max, 3);
        assert_eq!(
            t.round_imbalance_milli_distribution()
                .expect("history on")
                .max,
            1500
        );
    }

    #[test]
    fn without_history_keeps_aggregates_only() {
        let mut st = TelemetryState::new(
            TelemetryConfig::default()
                .without_history()
                .with_flight_capacity(8),
        );
        for round in 0..3u64 {
            st.record_round(
                RoundSample {
                    round,
                    ..RoundSample::default()
                },
                health(round, &[5]),
            );
        }
        let t = st.finish();
        assert!(t.history.is_empty());
        assert_eq!(t.recent.len(), 3);
        assert_eq!(t.wake_queue_distribution(), None);
        assert_eq!(t.hwm.staged_sends, 7);
    }

    #[test]
    fn flight_dump_renders_frames_and_filters_events() {
        let mut st = TelemetryState::new(TelemetryConfig::default().with_flight_capacity(2));
        for round in 0..5u64 {
            st.record_round(
                RoundSample {
                    round,
                    messages: round,
                    ..RoundSample::default()
                },
                health(round, &[100, 300]),
            );
        }
        let t = st.finish();
        let faults = vec![
            FaultEvent {
                round: 0, // before the ring window: filtered out
                node: amt_graphs::NodeId(1),
                port: 0,
                kind: crate::faults::FaultKind::Dropped,
            },
            FaultEvent {
                round: 4,
                node: amt_graphs::NodeId(2),
                port: 1,
                kind: crate::faults::FaultKind::Corrupted { delivered: true },
            },
        ];
        let doc = render_flight_dump(&t, "unit", "CongestError: test", &faults, &[]);
        assert!(doc.contains("\"run_id\":\"unit\""));
        assert!(doc.contains("\"reason\":\"CongestError: test\""));
        assert!(doc.contains("\"retained\":2"));
        assert!(doc.contains("\"oldest_round\":3"));
        // Only the in-window fault survives.
        assert!(!doc.contains("Dropped"));
        assert!(doc.contains("Corrupted"));
        // Both retained rounds are present with sample and health objects.
        assert!(doc.contains("\"sample\":{\"round\":3"));
        assert!(doc.contains("\"health\":{\"round\":4"));
        assert!(doc.contains("\"imbalance\":1.5000"));
    }

    #[test]
    fn ndjson_line_is_one_object_per_round() {
        let line = ndjson_line(
            &RoundSample {
                round: 7,
                messages: 9,
                ..RoundSample::default()
            },
            &health(7, &[10, 20, 60]),
        );
        assert!(line.ends_with("]}\n"));
        assert_eq!(line.matches('\n').count(), 1);
        assert!(line.contains("\"round\":7"));
        assert!(line.contains("\"shard_walls\":[10,20,60]"));
        assert!(line.contains("\"imbalance\":2.0000"));
    }
}
