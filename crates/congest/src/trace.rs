//! Round-level run tracing and wall-clock phase timing.
//!
//! The simulator's [`crate::Metrics`] are end-of-run scalars; this module
//! records *how the run got there*. A [`RunTrace`] holds one
//! [`RoundSample`] per executed round (messages, bits, per-round fault
//! counts), the protocol-emitted [`TraceEvent`] stream
//! ([`crate::Ctx::trace_event`]), optional cumulative per-edge load
//! snapshots at a configurable stride, and the final per-edge load vector.
//!
//! # Contract
//!
//! * **Disabled by default, zero overhead.** Tracing is off unless
//!   [`crate::Simulator::with_trace`] is called; a disabled run takes the
//!   exact same code path bit for bit — `Metrics`, protocol state, and RNG
//!   streams are byte-identical with tracing on or off.
//! * **Deterministic.** Samples are recorded once per round in round order;
//!   events are recorded in `(round, node)` order whatever the executor's
//!   thread count (threaded workers buffer events locally and the
//!   coordinator merges the shard buffers in node order, which is exactly
//!   the sequential visit order).
//! * **Lossless accounting.** Summing the timeline reproduces the run's
//!   `Metrics` exactly — see [`RunTrace::reconstruct_metrics`], which tests
//!   use to cross-check the simulator's own accounting.

use crate::profile::TrafficProfile;
use crate::Metrics;
use amt_graphs::NodeId;
use std::time::Duration;

/// What a [`RunTrace`] should record, attached via
/// [`crate::Simulator::with_trace`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceConfig {
    /// Record a cumulative per-edge load snapshot every `edge_load_stride`
    /// rounds (at rounds `0, s, 2s, …`); `0` (the default) records none.
    /// The final per-edge loads are always captured on successful runs.
    pub edge_load_stride: u64,
}

impl TraceConfig {
    /// Config with per-edge load snapshots every `stride` rounds.
    pub fn with_edge_load_stride(mut self, stride: u64) -> Self {
        self.edge_load_stride = stride;
        self
    }
}

/// Aggregate deliveries and faults of one executed round.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RoundSample {
    /// The round number (0 is the `init` round).
    pub round: u64,
    /// Messages delivered into next-round inboxes during this round.
    pub messages: u64,
    /// Bits delivered during this round (sum of delivered frame widths,
    /// including the actual widths of corrupted-but-deliverable frames).
    pub bits: u64,
    /// Messages discarded by injected drop faults this round.
    pub dropped: u64,
    /// Messages hit by injected corruption this round (delivered or not).
    pub corrupted: u64,
    /// Messages postponed by injected delay faults this round.
    pub delayed: u64,
    /// Previously delayed messages lost this round to a crashed destination.
    pub lost_to_crash: u64,
    /// Nodes crash-stopped at the start of this round.
    pub crashed: u64,
    /// Messages lost this round to a down edge or offline destination
    /// (topology churn).
    pub lost_to_churn: u64,
    /// Churn rejoins completed at the start of this round.
    pub restarts: u64,
    /// **Gauge**, not a delta: nodes unavailable during this round — fault
    /// crash-stops plus churn outages. This is the per-round availability
    /// timeline ISSUE 6 asks for; [`RunTrace::availability`] reads it.
    pub nodes_down: u64,
    /// **Gauge**, not a delta: nodes the executor actually stepped this
    /// round. Under the full-sweep reference engine this is every
    /// non-skipped node; under the active-set engine it is only the woken
    /// ones (mail, due [`crate::Ctx::wake_in`] timers, churn rejoins), so
    /// the ratio to `n` is the round's sparsity. An executor-strategy
    /// observability gauge: like `nodes_down` it never feeds
    /// [`RunTrace::reconstruct_metrics`], and cross-engine equivalence
    /// tests compare traces with this field zeroed.
    pub active_nodes: u64,
}

/// One protocol-emitted span/phase marker (see [`crate::Ctx::trace_event`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Round in which the event was emitted.
    pub round: u64,
    /// The node that emitted it.
    pub node: NodeId,
    /// Static label naming the span or phase (e.g. `"boruvka_iter"`).
    pub label: &'static str,
    /// Free-form payload (iteration number, fragment id, …).
    pub value: u64,
}

/// Cumulative per-edge delivery counts captured mid-run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EdgeLoadSnapshot {
    /// Round after which the snapshot was taken.
    pub round: u64,
    /// Cumulative messages delivered per (undirected) edge id so far.
    pub load: Vec<u64>,
}

/// The recorded timeline of one [`crate::Simulator::run`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunTrace {
    /// One sample per executed round, in round order.
    pub samples: Vec<RoundSample>,
    /// Protocol-emitted events in `(round, node)` order.
    pub events: Vec<TraceEvent>,
    /// Cumulative per-edge load snapshots ([`TraceConfig::edge_load_stride`]).
    /// When the stride is non-zero the series always ends with a final-round
    /// snapshot, whether or not the stride divides the stopping round.
    pub snapshots: Vec<EdgeLoadSnapshot>,
    /// The snapshot stride the run actually used — a copy of
    /// [`TraceConfig::edge_load_stride`], stamped by the engine so readers
    /// of a detached trace don't have to carry the config alongside it
    /// (0 = snapshots disabled).
    pub edge_load_stride: u64,
    /// Final cumulative per-edge loads (empty if the run aborted early).
    pub final_edge_load: Vec<u64>,
    /// Traffic-class profile of the run, when profiling was enabled
    /// alongside tracing ([`crate::Simulator::with_profile`]); `None`
    /// otherwise, so untraced comparisons are unaffected.
    pub profile: Option<TrafficProfile>,
}

impl RunTrace {
    /// Rebuilds the run's [`Metrics`] from the timeline alone.
    ///
    /// For a successful run this is *exactly* the value returned by
    /// [`crate::Simulator::run`]; any divergence is an accounting bug in
    /// one of the two code paths, which is why the regression tests compare
    /// them field by field.
    pub fn reconstruct_metrics(&self) -> Metrics {
        let mut m = Metrics {
            rounds: self.samples.last().map_or(0, |s| s.round),
            max_edge_congestion: self.final_edge_load.iter().copied().max().unwrap_or(0),
            ..Metrics::default()
        };
        for s in &self.samples {
            m.messages += s.messages;
            m.bits += s.bits;
            m.peak_messages_per_round = m.peak_messages_per_round.max(s.messages);
            m.dropped += s.dropped;
            m.corrupted += s.corrupted;
            m.delayed += s.delayed;
            m.lost_to_crash += s.lost_to_crash;
            m.crashed += s.crashed;
            m.lost_to_churn += s.lost_to_churn;
            m.restarts += s.restarts;
        }
        m
    }

    /// Per-round availability: for each recorded round, the fraction of `n`
    /// nodes that were up (1.0 when nothing was down). Empty for an empty
    /// trace or `n == 0`.
    pub fn availability(&self, n: usize) -> Vec<f64> {
        if n == 0 {
            return Vec::new();
        }
        self.samples
            .iter()
            .map(|s| (n as u64).saturating_sub(s.nodes_down) as f64 / n as f64)
            .collect()
    }

    /// Events carrying `label`, in emission order.
    pub fn events_labeled<'a>(
        &'a self,
        label: &'a str,
    ) -> impl Iterator<Item = &'a TraceEvent> + 'a {
        self.events.iter().filter(move |e| e.label == label)
    }

    /// Distribution of messages delivered per round (p50/p95/max over the
    /// recorded samples; all zero for an empty trace).
    pub fn messages_per_round_distribution(&self) -> Distribution {
        Distribution::of(self.samples.iter().map(|s| s.messages))
    }

    /// Distribution of bits delivered per round.
    pub fn bits_per_round_distribution(&self) -> Distribution {
        Distribution::of(self.samples.iter().map(|s| s.bits))
    }
}

/// Order statistics of a per-round series — the round-level detail the
/// scalar [`Metrics`] averages hide.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Distribution {
    /// Median (nearest-rank).
    pub p50: u64,
    /// 95th percentile (nearest-rank).
    pub p95: u64,
    /// Maximum.
    pub max: u64,
}

impl Distribution {
    /// Computes nearest-rank percentiles over `values`: the q-th percentile
    /// of `n` sorted values is the `⌈q/100 · n⌉`-th smallest (1-indexed), so
    /// p50 of [1, 2, 3, 4] is 2 and p95 of 100 values is the 95th.
    ///
    /// Returns `None` for an empty series — an empty timeline (e.g. a
    /// traffic class that registered but never sent) has *no* order
    /// statistics, and reporting zeros would be indistinguishable from a
    /// series of real zeros. Callers that want the lenient legacy behavior
    /// use [`Distribution::of`].
    pub fn try_of(values: impl Iterator<Item = u64>) -> Option<Distribution> {
        let mut sorted: Vec<u64> = values.collect();
        if sorted.is_empty() {
            return None;
        }
        sorted.sort_unstable();
        let n = sorted.len();
        let rank = |q: usize| sorted[((q * n).div_ceil(100)).clamp(1, n) - 1];
        Some(Distribution {
            p50: rank(50),
            p95: rank(95),
            max: sorted[n - 1],
        })
    }

    /// [`Distribution::try_of`], with the empty series collapsed to the
    /// all-zero default. Only safe where the caller separately knows the
    /// series is non-empty (or treats all-zero as "nothing to report").
    pub fn of(values: impl Iterator<Item = u64>) -> Distribution {
        Distribution::try_of(values).unwrap_or_default()
    }
}

/// Time-to-reconverge bookkeeping for self-healing drivers under sustained
/// damage.
///
/// A *damage* mark opens a recovery span at the global round the topology
/// changed (crash, restart, edge cut, flap window); a *recovery* mark closes
/// **every** open span at the round the driver next reached a
/// verified-correct state (a delivered walk batch, a completed and verified
/// Borůvka iteration). Spans that never close — damage the run ended still
/// digesting — stay in [`RecoveryTimeline::open_count`]. All rounds are
/// simulated rounds, so the timeline is as deterministic as the run itself.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryTimeline {
    /// Rounds of damage events not yet recovered from, in record order.
    open: Vec<u64>,
    /// Closed `(damage_round, recovery_round)` spans, in recovery order.
    closed: Vec<(u64, u64)>,
}

impl RecoveryTimeline {
    /// An empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a recovery span: damage landed at `round`.
    pub fn record_damage(&mut self, round: u64) {
        self.open.push(round);
    }

    /// Closes every open span: the protocol re-reached a verified-correct
    /// state at `round`.
    pub fn record_recovery(&mut self, round: u64) {
        for d in self.open.drain(..) {
            self.closed.push((d, round.max(d)));
        }
    }

    /// Closed `(damage_round, recovery_round)` spans, in recovery order.
    pub fn spans(&self) -> &[(u64, u64)] {
        &self.closed
    }

    /// Damage events the run ended without recovering from.
    pub fn open_count(&self) -> usize {
        self.open.len()
    }

    /// Order statistics of `recovery_round - damage_round` over the closed
    /// spans — the run's time-to-reconverge distribution.
    pub fn time_to_reconverge(&self) -> Distribution {
        Distribution::of(self.closed.iter().map(|&(d, r)| r - d))
    }
}

/// Named wall-clock durations of an algorithm's phases.
///
/// This is *observability metadata*: it reports how long the host machine
/// took, not anything about the simulated execution. To keep the
/// simulator's determinism contract testable (`Metrics`, outcome structs,
/// and stats structs are compared across visit orders, thread counts, and
/// execution paths), **equality on `PhaseTimings` is always `true`** — two
/// values compare equal whatever they contain. `assert_eq!` on this type
/// (or on a struct embedding it) therefore says nothing about the timings
/// themselves. Assertions about timings must go through
/// [`PhaseTimings::entries`] explicitly, or use the tolerance-based
/// [`PhaseTimings::close_to`] comparison.
#[derive(Clone, Debug, Default)]
pub struct PhaseTimings {
    entries: Vec<(&'static str, u64)>,
}

impl PhaseTimings {
    /// An empty set of timings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `elapsed` under `label`, accumulating into an existing entry
    /// with the same label if one exists.
    pub fn record(&mut self, label: &'static str, elapsed: Duration) {
        self.record_nanos(label, elapsed.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Records `nanos` nanoseconds under `label` (accumulating).
    pub fn record_nanos(&mut self, label: &'static str, nanos: u64) {
        if let Some(e) = self.entries.iter_mut().find(|(l, _)| *l == label) {
            e.1 = e.1.saturating_add(nanos);
        } else {
            self.entries.push((label, nanos));
        }
    }

    /// The recorded `(label, nanoseconds)` pairs, in first-recorded order.
    pub fn entries(&self) -> &[(&'static str, u64)] {
        &self.entries
    }

    /// Total nanoseconds across all phases.
    pub fn total_nanos(&self) -> u64 {
        self.entries.iter().map(|&(_, ns)| ns).sum()
    }

    /// Nanoseconds recorded under `label` (0 if absent).
    pub fn nanos(&self, label: &str) -> u64 {
        self.entries
            .iter()
            .find(|(l, _)| *l == label)
            .map_or(0, |&(_, ns)| ns)
    }

    /// Accumulates every entry of `later` into this set.
    pub fn merge(&mut self, later: &PhaseTimings) {
        for &(label, ns) in &later.entries {
            self.record_nanos(label, ns);
        }
    }

    /// True when both sides have the same labels and every per-label total
    /// is within a relative tolerance: `|a - b| <= tol * max(a, b)`.
    ///
    /// This is the *real* comparison `==` deliberately is not (see the type
    /// docs): wall-clock totals jitter between hosts and runs, so tables
    /// that sanity-check timings (e1/e16 wall tables) compare with a
    /// tolerance instead of ad-hoc per-field arithmetic. Labels are matched
    /// as sets — ordering differences don't fail the comparison. A `tol` of
    /// `0.25` accepts up to 25% relative drift per phase.
    pub fn close_to(&self, other: &PhaseTimings, tol: f64) -> bool {
        if self.entries.len() != other.entries.len() {
            return false;
        }
        self.entries.iter().all(|&(label, a)| {
            other.entries.iter().any(|&(l, b)| {
                l == label && {
                    let hi = a.max(b) as f64;
                    (a.abs_diff(b) as f64) <= tol * hi
                }
            })
        })
    }
}

/// Wall-clock timings never participate in semantic equality (see the type
/// docs); determinism assertions over structs embedding them stay exact.
impl PartialEq for PhaseTimings {
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

impl Eq for PhaseTimings {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reconstruct_sums_and_maxima() {
        let trace = RunTrace {
            samples: vec![
                RoundSample {
                    round: 0,
                    messages: 4,
                    bits: 40,
                    dropped: 1,
                    corrupted: 0,
                    delayed: 2,
                    lost_to_crash: 0,
                    crashed: 1,
                    lost_to_churn: 0,
                    restarts: 0,
                    nodes_down: 1,
                    active_nodes: 4,
                },
                RoundSample {
                    round: 1,
                    messages: 6,
                    bits: 50,
                    dropped: 0,
                    corrupted: 2,
                    delayed: 0,
                    lost_to_crash: 1,
                    crashed: 0,
                    lost_to_churn: 3,
                    restarts: 1,
                    nodes_down: 2,
                    active_nodes: 3,
                },
                RoundSample {
                    round: 2,
                    messages: 0,
                    bits: 0,
                    dropped: 0,
                    corrupted: 0,
                    delayed: 0,
                    lost_to_crash: 0,
                    crashed: 0,
                    lost_to_churn: 0,
                    restarts: 0,
                    nodes_down: 1,
                    active_nodes: 0,
                },
            ],
            events: Vec::new(),
            snapshots: Vec::new(),
            edge_load_stride: 0,
            final_edge_load: vec![3, 7, 0],
            profile: None,
        };
        let m = trace.reconstruct_metrics();
        assert_eq!(
            m,
            Metrics {
                rounds: 2,
                messages: 10,
                bits: 90,
                peak_messages_per_round: 6,
                max_edge_congestion: 7,
                dropped: 1,
                corrupted: 2,
                delayed: 2,
                lost_to_crash: 1,
                crashed: 1,
                lost_to_churn: 3,
                restarts: 1,
            }
        );
        // The gauge never feeds reconstruction; it feeds availability.
        assert_eq!(trace.availability(4), vec![0.75, 0.5, 0.75]);
        assert_eq!(trace.availability(0), Vec::<f64>::new());
    }

    #[test]
    fn empty_trace_reconstructs_default() {
        assert_eq!(
            RunTrace::default().reconstruct_metrics(),
            Metrics::default()
        );
    }

    #[test]
    fn distributions_use_nearest_rank() {
        // Hand-computed: sorted [1, 2, 3, 4] → p50 = 2nd = 2, p95 = ⌈3.8⌉ =
        // 4th = 4, max = 4.
        let d = Distribution::of([4, 1, 3, 2].into_iter());
        assert_eq!(
            d,
            Distribution {
                p50: 2,
                p95: 4,
                max: 4
            }
        );
        // Singleton: every statistic is the value itself.
        assert_eq!(
            Distribution::of([7].into_iter()),
            Distribution {
                p50: 7,
                p95: 7,
                max: 7
            }
        );
        // Empty: all zero.
        assert_eq!(Distribution::of([].into_iter()), Distribution::default());
        // 100 values 1..=100: p50 = 50, p95 = 95.
        let d = Distribution::of(1..=100u64);
        assert_eq!(
            d,
            Distribution {
                p50: 50,
                p95: 95,
                max: 100
            }
        );
    }

    #[test]
    fn empty_timelines_have_no_statistics() {
        // An empty series has no order statistics: `try_of` says so
        // explicitly instead of fabricating zeros.
        assert_eq!(Distribution::try_of([].into_iter()), None);
        // The lenient wrapper collapses that to the all-zero default.
        assert_eq!(Distribution::of([].into_iter()), Distribution::default());
        // Singleton: every statistic is the value itself.
        assert_eq!(
            Distribution::try_of([7].into_iter()),
            Some(Distribution {
                p50: 7,
                p95: 7,
                max: 7
            })
        );
        // Two elements [3, 9]: p50 = ⌈1⌉-st = 3, p95 = ⌈1.9⌉-nd = 9.
        assert_eq!(
            Distribution::try_of([9, 3].into_iter()),
            Some(Distribution {
                p50: 3,
                p95: 9,
                max: 9
            })
        );
    }

    #[test]
    fn distributions_at_scale_use_nearest_rank() {
        // 100 values 1..=100: p50 = 50, p95 = 95.
        let d = Distribution::of(1..=100u64);
        assert_eq!(
            d,
            Distribution {
                p50: 50,
                p95: 95,
                max: 100
            }
        );
    }

    #[test]
    fn trace_distributions_read_the_samples() {
        let mk = |round, messages, bits| RoundSample {
            round,
            messages,
            bits,
            ..RoundSample::default()
        };
        let trace = RunTrace {
            samples: vec![mk(0, 6, 60), mk(1, 2, 10), mk(2, 4, 20)],
            ..RunTrace::default()
        };
        // messages sorted [2, 4, 6]: p50 = 2nd = 4, p95 = ⌈2.85⌉ = 3rd = 6.
        assert_eq!(
            trace.messages_per_round_distribution(),
            Distribution {
                p50: 4,
                p95: 6,
                max: 6
            }
        );
        assert_eq!(
            trace.bits_per_round_distribution(),
            Distribution {
                p50: 20,
                p95: 60,
                max: 60
            }
        );
    }

    #[test]
    fn recovery_timeline_spans_and_distribution() {
        let mut t = RecoveryTimeline::new();
        assert_eq!(t.time_to_reconverge(), Distribution::default());
        t.record_damage(10);
        t.record_damage(12);
        assert_eq!(t.open_count(), 2);
        // One recovery closes every open span.
        t.record_recovery(20);
        assert_eq!(t.spans(), &[(10, 20), (12, 20)]);
        assert_eq!(t.open_count(), 0);
        t.record_damage(30);
        // Recovery in the damage round itself clamps to a zero-length span.
        t.record_recovery(30);
        t.record_damage(40);
        assert_eq!(t.spans(), &[(10, 20), (12, 20), (30, 30)]);
        assert_eq!(t.open_count(), 1, "unrecovered damage stays open");
        // Durations [10, 8, 0] sorted [0, 8, 10]: p50 = 2nd = 8.
        assert_eq!(
            t.time_to_reconverge(),
            Distribution {
                p50: 8,
                p95: 10,
                max: 10
            }
        );
    }

    #[test]
    fn phase_timings_accumulate_and_merge() {
        let mut a = PhaseTimings::new();
        a.record_nanos("prep", 10);
        a.record_nanos("hops", 5);
        a.record_nanos("prep", 7);
        assert_eq!(a.nanos("prep"), 17);
        assert_eq!(a.total_nanos(), 22);
        let mut b = PhaseTimings::new();
        b.record_nanos("hops", 1);
        b.record_nanos("bottom", 2);
        a.merge(&b);
        assert_eq!(a.entries(), &[("prep", 17), ("hops", 6), ("bottom", 2)]);
    }

    #[test]
    fn phase_timings_equality_is_vacuous() {
        let mut a = PhaseTimings::new();
        a.record_nanos("x", 123);
        assert_eq!(
            a,
            PhaseTimings::new(),
            "timings never break determinism comparisons"
        );
    }
}
