//! Property tests for the `CongestMessage` wire codecs under corruption:
//! decoding arbitrary bits never panics, valid encodings roundtrip, and any
//! single-bit flip of an ARQ frame is detected by its checksum.

use amt_congest::{CongestMessage, Reliable};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn valid_encodings_roundtrip(x in any::<u64>(), small in 0u32..1_000_000) {
        prop_assert_eq!(u64::decode_bits(x.encode_bits().unwrap()), Some(x));
        prop_assert_eq!(u32::decode_bits(small.encode_bits().unwrap()), Some(small));
        let opt = Some(small);
        prop_assert_eq!(Option::<u32>::decode_bits(opt.encode_bits().unwrap()), Some(opt));
    }

    #[test]
    fn decoding_arbitrary_bits_never_panics(bits in any::<u64>()) {
        // The results are allowed to be None (garbled frames), but every
        // decoder must return rather than panic on adversarial input.
        let _ = u32::decode_bits(bits);
        let _ = u64::decode_bits(bits);
        let _ = bool::decode_bits(bits);
        let _ = <()>::decode_bits(bits);
        let _ = Option::<u64>::decode_bits(bits);
        let _ = Option::<Option<u32>>::decode_bits(bits);
        let _ = Reliable::<u64>::decode_bits(bits);
        let _ = Reliable::<Option<u32>>::decode_bits(bits);
    }

    #[test]
    fn corrupting_any_message_never_panics(x in any::<u64>(), k in 0usize..64) {
        let mask = 1u64 << (k % CongestMessage::bit_width(&x).clamp(1, 64));
        if let Some(c) = x.corrupted(mask) {
            // A delivered corruption differs in exactly the flipped bit.
            prop_assert_eq!(c ^ x, mask);
        }
        let small = (x >> 40) as u32;
        let _ = small.corrupted(1 << (k % CongestMessage::bit_width(&small)));
        let _ = Some(small).corrupted(1 << (k % Some(small).bit_width()));
    }

    #[test]
    fn arq_frames_detect_every_single_bit_flip(
        seq in 0u32..4096,
        payload in 0u64..(1 << 34),
        ack in 0u32..4096,
        with_ack in any::<bool>(),
        k in 0usize..64,
    ) {
        let frame = Reliable::Data {
            seq,
            ack: with_ack.then_some(ack),
            payload,
        };
        // Sanity: the frame itself roundtrips.
        let encoded = frame.encode_bits().unwrap();
        prop_assert_eq!(Reliable::<u64>::decode_bits(encoded), Some(frame.clone()));
        // Any single flipped bit within the frame's width fails the
        // checksum, so the receiver discards it and ARQ retransmits.
        let mask = 1u64 << (k % frame.bit_width().min(64));
        prop_assert_eq!(frame.corrupted(mask), None);
    }

    #[test]
    fn ack_frames_detect_every_single_bit_flip(seq in 0u32..4096, k in 0usize..64) {
        let frame = Reliable::<u64>::Ack { seq };
        let encoded = frame.encode_bits().unwrap();
        prop_assert_eq!(Reliable::<u64>::decode_bits(encoded), Some(frame.clone()));
        let mask = 1u64 << (k % frame.bit_width());
        prop_assert_eq!(frame.corrupted(mask), None);
    }

    #[test]
    fn decoded_frames_reencode_canonically(bits in any::<u64>()) {
        // Whatever decodes must re-encode to the same bits (the codec has
        // one canonical encoding per message), for every codec with a
        // full-width bit pattern space.
        if let Some(m) = Reliable::<u64>::decode_bits(bits) {
            prop_assert_eq!(m.encode_bits(), Some(bits));
        }
        if let Some(m) = Option::<u64>::decode_bits(bits) {
            prop_assert_eq!(m.encode_bits(), Some(bits));
        }
    }
}
