//! Cross-engine equivalence property test (ISSUE 8 satellite).
//!
//! The active-set engine must be **byte-identical** to the retained
//! full-sweep reference stepper — `Metrics`, fault/churn event logs,
//! crashed sets, protocol outputs, per-edge loads, traffic profiles, and
//! round timelines (modulo the `active_nodes` executor gauge) — across
//! clean, faulty, and churned runs, thread counts {1, 2, 4, 8}, and
//! visit-order reversal. The workload mixes the two sparse wake sources:
//! mail-driven random token forwarding and `Ctx::wake_in` beacon timers.

use amt_congest::trace::{RunTrace, TraceConfig};
use amt_congest::{
    ChurnEvent, ChurnPlan, Ctx, FaultEvent, FaultPlan, Metrics, ProfileConfig, Protocol, RunConfig,
    Simulator, TrafficProfile,
};
use amt_graphs::{generators, EdgeId, NodeId};
use rand::RngExt;

/// Mail-driven token walking plus timer-driven beacon bursts.
///
/// Tokens (`u32` hop counts) walk randomly: each received token with hops
/// left is forwarded to a random port with probability 3/4. Beacon nodes
/// additionally fire every 5 rounds, injecting a fresh 2-hop token on every
/// port — exercising `wake_in` under every hook combination. An empty-inbox
/// round outside a fire round is a complete no-op (no RNG draws, no sends,
/// no state change), so the protocol is skip-safe.
struct HybridNode {
    beacons_left: u32,
    next_fire: u64,
    digest: u64,
}

impl Protocol for HybridNode {
    type Message = u32;

    const SPARSE_AWARE: bool = true;

    fn init(&mut self, ctx: &mut Ctx<'_, u32>) {
        // Every third node launches one starting token.
        if ctx.node().index() % 3 == 0 {
            let degree = ctx.degree();
            let port = ctx.rng().random_range(0..degree);
            ctx.send(port, 8);
        }
        if self.beacons_left > 0 {
            self.next_fire = ctx.round() + 5;
            ctx.wake_in(5);
        }
    }

    fn round(&mut self, ctx: &mut Ctx<'_, u32>, inbox: &[(usize, u32)]) {
        let degree = ctx.degree();
        let mut staged: Vec<(usize, u32)> = Vec::new();
        for &(port, hops) in inbox {
            self.digest = self
                .digest
                .wrapping_mul(1_000_003)
                .wrapping_add(((port as u64) << 32) | (u64::from(hops) + 1));
            ctx.trace_event("hop", u64::from(hops));
            if hops > 0 && ctx.rng().random_bool(0.75) {
                staged.push((ctx.rng().random_range(0..degree), hops - 1));
            }
        }
        // Gate beacons on the announced round, not on being stepped, so the
        // full sweep (which steps every round) behaves identically.
        if self.beacons_left > 0 && ctx.round() == self.next_fire {
            self.beacons_left -= 1;
            for port in 0..degree {
                staged.push((port, 2));
            }
            if self.beacons_left > 0 {
                self.next_fire = ctx.round() + 5;
                ctx.wake_in(5);
            }
        }
        // One message per port: keep the first staged per port.
        staged.sort_by_key(|&(p, _)| p);
        staged.dedup_by_key(|&mut (p, _)| p);
        for (port, hops) in staged {
            ctx.send(port, hops);
        }
    }

    fn is_done(&self) -> bool {
        self.beacons_left == 0
    }
}

fn fleet(n: usize) -> Vec<HybridNode> {
    (0..n)
        .map(|v| HybridNode {
            beacons_left: if v % 16 == 0 { 3 } else { 0 },
            next_fire: 0,
            digest: 0,
        })
        .collect()
}

/// Everything observable about one run. `PartialEq` on `RunTrace` includes
/// the `active_nodes` gauge, which is the one field allowed to differ
/// between engine strategies, so observations zero it before comparing.
#[derive(PartialEq, Debug)]
struct Observation {
    metrics: Metrics,
    digests: Vec<u64>,
    edge_load: Vec<u64>,
    fault_events: Vec<FaultEvent>,
    crashed: Vec<NodeId>,
    churn_events: Vec<ChurnEvent>,
    profile: TrafficProfile,
    trace: Option<RunTrace>,
    active_total: u64,
}

#[derive(Clone, Copy, PartialEq)]
enum Scenario {
    Clean,
    Faulty,
    Churned,
}

fn observe(scenario: Scenario, threads: usize, reverse: bool, full_sweep: bool) -> Observation {
    let g = generators::hypercube(6);
    let mut sim = Simulator::new(&g, fleet(g.len()), 2024)
        .unwrap()
        .with_trace(TraceConfig::default().with_edge_load_stride(2))
        .with_profile(ProfileConfig::default());
    match scenario {
        Scenario::Clean => {}
        Scenario::Faulty => {
            sim = sim.with_fault_plan(
                FaultPlan::none()
                    .seeded(13)
                    .with_drops(0.04)
                    .with_corruption(0.04)
                    .with_delays(0.08, 3)
                    .with_crash(NodeId(5), 7),
            );
        }
        Scenario::Churned => {
            sim = sim.with_churn_plan(
                ChurnPlan::none()
                    .seeded(29)
                    .with_flaps(0.05, 4)
                    .with_periodic_outage(EdgeId(2), 3, 2, 9)
                    .with_restart(NodeId(9), 4, 3),
            );
        }
    }
    let cfg = RunConfig::all_done()
        .with_threads(threads)
        .with_full_sweep(full_sweep);
    let metrics = if reverse {
        sim.run_reverse_visit(&cfg)
    } else {
        sim.run(&cfg)
    }
    .unwrap();
    let mut trace = sim.take_trace().unwrap();
    let active_total = trace.samples.iter().map(|s| s.active_nodes).sum();
    for s in &mut trace.samples {
        s.active_nodes = 0;
    }
    Observation {
        metrics,
        digests: sim.nodes().iter().map(|p| p.digest).collect(),
        edge_load: sim.edge_load().to_vec(),
        fault_events: sim.fault_events().to_vec(),
        crashed: sim.crashed_nodes(),
        churn_events: sim.churn_events().to_vec(),
        profile: sim.take_profile().unwrap(),
        // Reverse visits keep per-round events in reverse node order by
        // long-standing contract, so the timeline is only part of the
        // cross-engine comparison for forward runs.
        trace: if reverse { None } else { Some(trace) },
        active_total,
    }
}

fn check_scenario(scenario: Scenario) {
    let reference = observe(scenario, 1, false, true);
    assert!(reference.metrics.messages > 0, "workload must send traffic");
    match scenario {
        Scenario::Clean => {}
        Scenario::Faulty => {
            assert!(!reference.fault_events.is_empty(), "faults must fire");
            assert_eq!(reference.crashed, vec![NodeId(5)]);
        }
        Scenario::Churned => {
            assert!(!reference.churn_events.is_empty(), "churn must fire");
            assert_eq!(reference.metrics.restarts, 1);
        }
    }
    // The full sweep steps every live node every round; on this workload
    // the active-set engine must step strictly fewer node-rounds.
    let sparse_seq = observe(scenario, 1, false, false);
    assert!(
        sparse_seq.active_total < reference.active_total,
        "active-set engine stepped {} node-rounds vs full sweep's {}",
        sparse_seq.active_total,
        reference.active_total
    );
    for (threads, reverse) in [(1, false), (1, true), (2, false), (4, false), (8, false)] {
        let got = observe(scenario, threads, reverse, false);
        // `Observation` comparison skips the timeline on reverse runs and
        // compares `active_total` separately below.
        assert_eq!(
            (
                &got.metrics,
                &got.digests,
                &got.edge_load,
                &got.fault_events,
                &got.crashed,
                &got.churn_events,
                &got.profile,
                &got.trace,
            ),
            (
                &reference.metrics,
                &reference.digests,
                &reference.edge_load,
                &reference.fault_events,
                &reference.crashed,
                &reference.churn_events,
                &reference.profile,
                &if reverse {
                    None
                } else {
                    reference.trace.clone()
                },
            ),
            "sparse engine diverged from full-sweep reference at threads = \
             {threads}, reverse = {reverse}"
        );
        // The active set itself is part of the sparse determinism contract:
        // every sparse strategy wakes exactly the same node-rounds.
        assert_eq!(
            got.active_total, sparse_seq.active_total,
            "active set diverged at threads = {threads}, reverse = {reverse}"
        );
    }
    // The full-sweep reference is itself strategy-independent.
    let got = observe(scenario, 4, false, true);
    assert_eq!(got, reference, "full sweep diverged at threads = 4");
}

#[test]
fn clean_runs_match_full_sweep_reference() {
    check_scenario(Scenario::Clean);
}

#[test]
fn faulty_runs_match_full_sweep_reference() {
    check_scenario(Scenario::Faulty);
}

#[test]
fn churned_runs_match_full_sweep_reference() {
    check_scenario(Scenario::Churned);
}
