//! Cross-engine equivalence property test (ISSUE 8 satellite).
//!
//! The active-set engine must be **byte-identical** to the retained
//! full-sweep reference stepper — `Metrics`, fault/churn event logs,
//! crashed sets, protocol outputs, per-edge loads, traffic profiles, and
//! round timelines (modulo the `active_nodes` executor gauge) — across
//! clean, faulty, and churned runs, thread counts {1, 2, 4, 8}, and
//! visit-order reversal. The workload mixes the two sparse wake sources:
//! mail-driven random token forwarding and `Ctx::wake_in` beacon timers.

use amt_congest::trace::{RunTrace, TraceConfig};
use amt_congest::{
    ChurnEvent, ChurnPlan, Ctx, FaultEvent, FaultPlan, Metrics, Placement, ProfileConfig, Protocol,
    RunConfig, RunTelemetry, Simulator, TelemetryConfig, TrafficProfile,
};
use amt_graphs::{generators, EdgeId, Graph, GraphBuilder, NodeId};
use rand::RngExt;

/// Mail-driven token walking plus timer-driven beacon bursts.
///
/// Tokens (`u32` hop counts) walk randomly: each received token with hops
/// left is forwarded to a random port with probability 3/4. Beacon nodes
/// additionally fire every 5 rounds, injecting a fresh 2-hop token on every
/// port — exercising `wake_in` under every hook combination. An empty-inbox
/// round outside a fire round is a complete no-op (no RNG draws, no sends,
/// no state change), so the protocol is skip-safe.
struct HybridNode {
    beacons_left: u32,
    next_fire: u64,
    digest: u64,
}

impl Protocol for HybridNode {
    type Message = u32;

    const SPARSE_AWARE: bool = true;

    fn init(&mut self, ctx: &mut Ctx<'_, u32>) {
        // Every third node launches one starting token.
        if ctx.node().index() % 3 == 0 {
            let degree = ctx.degree();
            let port = ctx.rng().random_range(0..degree);
            ctx.send(port, 8);
        }
        if self.beacons_left > 0 {
            self.next_fire = ctx.round() + 5;
            ctx.wake_in(5);
        }
    }

    fn round(&mut self, ctx: &mut Ctx<'_, u32>, inbox: &[(usize, u32)]) {
        let degree = ctx.degree();
        let mut staged: Vec<(usize, u32)> = Vec::new();
        for &(port, hops) in inbox {
            self.digest = self
                .digest
                .wrapping_mul(1_000_003)
                .wrapping_add(((port as u64) << 32) | (u64::from(hops) + 1));
            ctx.trace_event("hop", u64::from(hops));
            if hops > 0 && ctx.rng().random_bool(0.75) {
                staged.push((ctx.rng().random_range(0..degree), hops - 1));
            }
        }
        // Gate beacons on the announced round, not on being stepped, so the
        // full sweep (which steps every round) behaves identically.
        if self.beacons_left > 0 && ctx.round() == self.next_fire {
            self.beacons_left -= 1;
            for port in 0..degree {
                staged.push((port, 2));
            }
            if self.beacons_left > 0 {
                self.next_fire = ctx.round() + 5;
                ctx.wake_in(5);
            }
        }
        // One message per port: keep the first staged per port.
        staged.sort_by_key(|&(p, _)| p);
        staged.dedup_by_key(|&mut (p, _)| p);
        for (port, hops) in staged {
            ctx.send(port, hops);
        }
    }

    fn is_done(&self) -> bool {
        self.beacons_left == 0
    }
}

fn fleet(n: usize) -> Vec<HybridNode> {
    (0..n)
        .map(|v| HybridNode {
            beacons_left: if v % 16 == 0 { 3 } else { 0 },
            next_fire: 0,
            digest: 0,
        })
        .collect()
}

/// Everything observable about one run. `PartialEq` on `RunTrace` includes
/// the `active_nodes` gauge, which is the one field allowed to differ
/// between engine strategies, so observations zero it before comparing.
#[derive(PartialEq, Debug)]
struct Observation {
    metrics: Metrics,
    digests: Vec<u64>,
    edge_load: Vec<u64>,
    fault_events: Vec<FaultEvent>,
    crashed: Vec<NodeId>,
    churn_events: Vec<ChurnEvent>,
    profile: TrafficProfile,
    trace: Option<RunTrace>,
    active_total: u64,
}

#[derive(Clone, Copy, PartialEq)]
enum Scenario {
    Clean,
    Faulty,
    Churned,
}

fn observe(scenario: Scenario, threads: usize, reverse: bool, full_sweep: bool) -> Observation {
    observe_with(scenario, threads, reverse, full_sweep, None)
}

fn observe_with(
    scenario: Scenario,
    threads: usize,
    reverse: bool,
    full_sweep: bool,
    placement: Option<Placement>,
) -> Observation {
    observe_full(scenario, threads, reverse, full_sweep, placement, false).0
}

fn observe_full(
    scenario: Scenario,
    threads: usize,
    reverse: bool,
    full_sweep: bool,
    placement: Option<Placement>,
    telemetry: bool,
) -> (Observation, Option<RunTelemetry>) {
    let g = generators::hypercube(6);
    let mut sim = Simulator::new(&g, fleet(g.len()), 2024)
        .unwrap()
        .with_trace(TraceConfig::default().with_edge_load_stride(2))
        .with_profile(ProfileConfig::default());
    if telemetry {
        sim = sim.with_telemetry(TelemetryConfig::default());
    }
    if let Some(p) = placement {
        sim = sim.with_placement(p);
    }
    match scenario {
        Scenario::Clean => {}
        Scenario::Faulty => {
            sim = sim.with_fault_plan(
                FaultPlan::none()
                    .seeded(13)
                    .with_drops(0.04)
                    .with_corruption(0.04)
                    .with_delays(0.08, 3)
                    .with_crash(NodeId(5), 7),
            );
        }
        Scenario::Churned => {
            sim = sim.with_churn_plan(
                ChurnPlan::none()
                    .seeded(29)
                    .with_flaps(0.05, 4)
                    .with_periodic_outage(EdgeId(2), 3, 2, 9)
                    .with_restart(NodeId(9), 4, 3),
            );
        }
    }
    let cfg = RunConfig::all_done()
        .with_threads(threads)
        .with_full_sweep(full_sweep);
    let metrics = if reverse {
        sim.run_reverse_visit(&cfg)
    } else {
        sim.run(&cfg)
    }
    .unwrap();
    let mut trace = sim.take_trace().unwrap();
    let active_total = trace.samples.iter().map(|s| s.active_nodes).sum();
    for s in &mut trace.samples {
        s.active_nodes = 0;
    }
    let run_telemetry = sim.take_telemetry();
    (
        Observation {
            metrics,
            digests: sim.nodes().iter().map(|p| p.digest).collect(),
            edge_load: sim.edge_load().to_vec(),
            fault_events: sim.fault_events().to_vec(),
            crashed: sim.crashed_nodes(),
            churn_events: sim.churn_events().to_vec(),
            profile: sim.take_profile().unwrap(),
            // Reverse visits keep per-round events in reverse node order by
            // long-standing contract, so the timeline is only part of the
            // cross-engine comparison for forward runs.
            trace: if reverse { None } else { Some(trace) },
            active_total,
        },
        run_telemetry,
    )
}

fn check_scenario(scenario: Scenario) {
    let reference = observe(scenario, 1, false, true);
    assert!(reference.metrics.messages > 0, "workload must send traffic");
    match scenario {
        Scenario::Clean => {}
        Scenario::Faulty => {
            assert!(!reference.fault_events.is_empty(), "faults must fire");
            assert_eq!(reference.crashed, vec![NodeId(5)]);
        }
        Scenario::Churned => {
            assert!(!reference.churn_events.is_empty(), "churn must fire");
            assert_eq!(reference.metrics.restarts, 1);
        }
    }
    // The full sweep steps every live node every round; on this workload
    // the active-set engine must step strictly fewer node-rounds.
    let sparse_seq = observe(scenario, 1, false, false);
    assert!(
        sparse_seq.active_total < reference.active_total,
        "active-set engine stepped {} node-rounds vs full sweep's {}",
        sparse_seq.active_total,
        reference.active_total
    );
    // Thread counts include non-divisors of n = 64 (3, 7), so shard sizes
    // are uneven under every placement below.
    for (threads, reverse) in [
        (1, false),
        (1, true),
        (2, false),
        (3, false),
        (4, false),
        (7, false),
        (8, false),
    ] {
        let got = observe(scenario, threads, reverse, false);
        assert_matches_reference(
            &got,
            &reference,
            reverse,
            &format!("threads = {threads}, reverse = {reverse}"),
        );
        // The active set itself is part of the sparse determinism contract:
        // every sparse strategy wakes exactly the same node-rounds.
        assert_eq!(
            got.active_total, sparse_seq.active_total,
            "active set diverged at threads = {threads}, reverse = {reverse}"
        );
    }
    // Placement independence: a spectral placement changes which worker
    // owns each node (and the splice order the coordinator must undo), but
    // never an observable bit.
    let g = generators::hypercube(6);
    for threads in [2usize, 3, 4, 7, 8] {
        let spectral = Placement::spectral(&g, threads, 300);
        let got = observe_with(scenario, threads, false, false, Some(spectral));
        assert_matches_reference(
            &got,
            &reference,
            false,
            &format!("spectral placement, threads = {threads}"),
        );
        assert_eq!(
            got.active_total, sparse_seq.active_total,
            "active set diverged under spectral placement at threads = {threads}"
        );
    }
    // Adversarial explicit placements at 3 workers: an interior short
    // shard (regression for the old `w * chunk` bound arithmetic, which
    // assumed every earlier shard was exactly `chunk` nodes) and a
    // round-robin striping (non-monotone: exercises the merge-by-node
    // splice rather than concat-by-worker).
    let mut short_interior = vec![2u32; 64];
    short_interior[0] = 0;
    short_interior[1] = 0;
    short_interior[2] = 0;
    short_interior[3] = 1;
    let stripes: Vec<u32> = (0..64u32).map(|v| v % 3).collect();
    for (name, shard_of) in [
        ("short interior shard", short_interior),
        ("stripes", stripes),
    ] {
        let p = Placement::from_shard_of(shard_of, 3).unwrap();
        let got = observe_with(scenario, 3, false, false, Some(p));
        assert_matches_reference(&got, &reference, false, name);
        assert_eq!(
            got.active_total, sparse_seq.active_total,
            "active set diverged under {name} placement"
        );
    }
    // The full-sweep reference is itself strategy-independent.
    let got = observe(scenario, 4, false, true);
    assert_eq!(got, reference, "full sweep diverged at threads = 4");
    let got = observe_with(
        scenario,
        4,
        false,
        true,
        Some(Placement::spectral(&g, 4, 300)),
    );
    assert_eq!(
        got, reference,
        "full sweep diverged under spectral placement"
    );
    // Attaching telemetry is observably free: every pre-existing
    // observable stays byte-identical, and the layer's own logical
    // counters (rounds, work totals, gauge high-water marks) are
    // thread-, reversal-, and placement-invariant among sparse runs.
    let logical = |t: &RunTelemetry| {
        (
            t.rounds,
            t.hwm,
            t.shard_nodes_stepped.iter().sum::<u64>(),
            t.shard_messages_staged.iter().sum::<u64>(),
        )
    };
    let mut expected = None;
    for (threads, reverse, placement) in [
        (1, false, None),
        (1, true, None),
        (4, false, None),
        (7, false, Some(Placement::spectral(&g, 7, 300))),
        (
            3,
            false,
            Some(Placement::from_shard_of((0..64u32).map(|v| v % 3).collect(), 3).unwrap()),
        ),
    ] {
        let (got, t) = observe_full(scenario, threads, reverse, false, placement, true);
        assert_matches_reference(
            &got,
            &reference,
            reverse,
            &format!("telemetry on, threads = {threads}, reverse = {reverse}"),
        );
        assert_eq!(
            got.active_total, sparse_seq.active_total,
            "telemetry perturbed the active set at threads = {threads}"
        );
        let t = t.expect("telemetry recorded");
        match &expected {
            None => expected = Some(logical(&t)),
            Some(e) => assert_eq!(
                &logical(&t),
                e,
                "telemetry logical counters drifted at threads = {threads}, reverse = {reverse}"
            ),
        }
    }
    // Full sweep with telemetry: observables still match the reference;
    // only the occupancy-derived gauges may exceed the sparse runs'.
    let (got, t) = observe_full(scenario, 4, false, true, None, true);
    assert_eq!(got, reference, "full sweep with telemetry diverged");
    let t = t.expect("telemetry recorded");
    let sparse = expected.expect("sparse telemetry observed");
    assert_eq!(t.rounds, sparse.0, "round count is engine-independent");
    assert!(
        t.shard_nodes_stepped.iter().sum::<u64>() > sparse.2,
        "the full sweep must step strictly more node-rounds"
    );
}

/// `Observation` comparison modulo the timeline on reverse runs (reverse
/// visits keep per-round events in reverse node order by contract).
fn assert_matches_reference(
    got: &Observation,
    reference: &Observation,
    reverse: bool,
    label: &str,
) {
    assert_eq!(
        (
            &got.metrics,
            &got.digests,
            &got.edge_load,
            &got.fault_events,
            &got.crashed,
            &got.churn_events,
            &got.profile,
            &got.trace,
        ),
        (
            &reference.metrics,
            &reference.digests,
            &reference.edge_load,
            &reference.fault_events,
            &reference.crashed,
            &reference.churn_events,
            &reference.profile,
            &if reverse {
                None
            } else {
                reference.trace.clone()
            },
        ),
        "sparse engine diverged from full-sweep reference at {label}"
    );
}

#[test]
fn clean_runs_match_full_sweep_reference() {
    check_scenario(Scenario::Clean);
}

#[test]
fn faulty_runs_match_full_sweep_reference() {
    check_scenario(Scenario::Faulty);
}

#[test]
fn churned_runs_match_full_sweep_reference() {
    check_scenario(Scenario::Churned);
}

fn digest_run(g: &Graph, threads: usize, placement: Option<Placement>) -> (Metrics, Vec<u64>) {
    let mut sim = Simulator::new(g, fleet(g.len()), 2024).unwrap();
    if let Some(p) = placement {
        sim = sim.with_placement(p);
    }
    let cfg = RunConfig::all_done().with_threads(threads);
    let m = sim.run(&cfg).unwrap();
    (m, sim.nodes().iter().map(|p| p.digest).collect())
}

/// Requesting more workers than nodes clamps to one worker per node; the
/// run is byte-identical to the sequential one, with and without an
/// explicit placement at the clamped shard count.
#[test]
fn threads_exceeding_node_count_match_inline() {
    let g = generators::hypercube(3); // n = 8
    let reference = digest_run(&g, 1, None);
    assert!(reference.0.messages > 0);
    for threads in [8, 32, 1000] {
        assert_eq!(
            digest_run(&g, threads, None),
            reference,
            "threads = {threads} diverged on n = 8"
        );
    }
    // `effective_threads` resolves 1000 requested workers to n = 8, so a
    // placement must carry exactly 8 shards.
    let spectral = Placement::spectral(&g, 8, 200);
    assert_eq!(digest_run(&g, 1000, Some(spectral)), reference);
}

/// A single-node graph (with a self-loop, so tokens have somewhere to go)
/// runs identically at every requested thread count.
#[test]
fn single_node_graph_matches_inline() {
    let mut b = GraphBuilder::new(1);
    b.add_edge(0, 0);
    let g = b.build();
    let reference = digest_run(&g, 1, None);
    for threads in [2, 4, 64] {
        assert_eq!(
            digest_run(&g, threads, None),
            reference,
            "threads = {threads} diverged on n = 1"
        );
    }
}

/// A placement that doesn't match the graph or the resolved worker count
/// fails deterministically instead of silently resharding.
#[test]
fn mismatched_placements_are_rejected() {
    let g = generators::hypercube(4); // n = 16
    let run = |threads: usize, p: Placement| {
        Simulator::new(&g, fleet(g.len()), 2024)
            .unwrap()
            .with_placement(p)
            .run(&RunConfig::all_done().with_threads(threads))
    };
    // Wrong node count.
    let short = Placement::contiguous(8, 4);
    assert!(matches!(
        run(4, short),
        Err(amt_congest::CongestError::PlacementInvalid { .. })
    ));
    // Wrong shard count for the resolved worker count.
    let wrong_k = Placement::contiguous(16, 8);
    assert!(matches!(
        run(4, wrong_k),
        Err(amt_congest::CongestError::PlacementInvalid { .. })
    ));
    // Single-threaded runs never consult the placement.
    let ignored = Placement::contiguous(8, 4);
    assert!(run(1, ignored).is_ok());
}

/// Timer-only protocol with long wake gaps: whole rounds pass with an
/// empty active set (no mail, no due timers), on every execution strategy.
struct PulseNode {
    pulses_left: u32,
    next_fire: u64,
    digest: u64,
}

impl Protocol for PulseNode {
    type Message = u32;

    const SPARSE_AWARE: bool = true;

    fn init(&mut self, ctx: &mut Ctx<'_, u32>) {
        if self.pulses_left > 0 {
            self.next_fire = ctx.round() + 4;
            ctx.wake_in(4);
        }
    }

    fn round(&mut self, ctx: &mut Ctx<'_, u32>, inbox: &[(usize, u32)]) {
        for &(port, x) in inbox {
            self.digest = self
                .digest
                .wrapping_mul(8_191)
                .wrapping_add(((port as u64) << 32) | u64::from(x));
        }
        if self.pulses_left > 0 && ctx.round() == self.next_fire {
            self.pulses_left -= 1;
            let degree = ctx.degree();
            let port = ctx.rng().random_range(0..degree);
            ctx.send(port, self.pulses_left);
            if self.pulses_left > 0 {
                self.next_fire = ctx.round() + 4;
                ctx.wake_in(4);
            }
        }
    }

    fn is_done(&self) -> bool {
        self.pulses_left == 0
    }
}

#[test]
fn rounds_with_empty_active_sets_match_across_strategies() {
    let g = generators::hypercube(4); // n = 16
    let observe = |threads: usize, full_sweep: bool, placement: Option<Placement>| {
        let nodes: Vec<PulseNode> = (0..g.len())
            .map(|v| PulseNode {
                pulses_left: if v % 4 == 0 { 3 } else { 0 },
                next_fire: 0,
                digest: 0,
            })
            .collect();
        let mut sim = Simulator::new(&g, nodes, 7)
            .unwrap()
            .with_trace(TraceConfig::default());
        if let Some(p) = placement {
            sim = sim.with_placement(p);
        }
        let cfg = RunConfig::all_done()
            .with_threads(threads)
            .with_full_sweep(full_sweep);
        let m = sim.run(&cfg).unwrap();
        let trace = sim.take_trace().unwrap();
        let empty_rounds = trace.samples.iter().filter(|s| s.active_nodes == 0).count();
        let digests: Vec<u64> = sim.nodes().iter().map(|p| p.digest).collect();
        (m, digests, empty_rounds)
    };
    let (m_ref, d_ref, _) = observe(1, true, None);
    let (m_seq, d_seq, empty_seq) = observe(1, false, None);
    assert_eq!((&m_seq, &d_seq), (&m_ref, &d_ref));
    assert!(
        empty_seq > 0,
        "the workload must produce rounds with an empty active set"
    );
    for threads in [2usize, 3, 4, 8] {
        let (m, d, empty) = observe(threads, false, None);
        assert_eq!((&m, &d), (&m_ref, &d_ref), "threads = {threads} diverged");
        assert_eq!(empty, empty_seq, "empty-round count diverged");
        let p = Placement::spectral(&g, threads, 200);
        let (m, d, empty) = observe(threads, false, Some(p));
        assert_eq!(
            (&m, &d),
            (&m_ref, &d_ref),
            "spectral placement at threads = {threads} diverged"
        );
        assert_eq!(empty, empty_seq);
    }
}
