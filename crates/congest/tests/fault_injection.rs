//! Integration tests for the fault-injection layer: trivial plans change
//! nothing, faulty runs replay deterministically, and the reliability
//! sublayer survives what the plain primitives cannot.

use amt_congest::{
    primitives, reliable_broadcast, Ctx, FaultKind, FaultPlan, Metrics, Protocol, RunConfig,
    Simulator,
};
use amt_graphs::{generators, Graph, NodeId};

/// Max-id flooding with a termination flag (works under `AllDone`).
struct MaxFlood {
    best: u64,
    fresh: bool,
}

impl MaxFlood {
    fn fleet(n: usize) -> Vec<MaxFlood> {
        (0..n)
            .map(|i| MaxFlood {
                best: i as u64,
                fresh: true,
            })
            .collect()
    }
}

impl Protocol for MaxFlood {
    type Message = u64;
    fn init(&mut self, ctx: &mut Ctx<'_, u64>) {
        ctx.send_all(self.best);
        self.fresh = false;
    }
    fn round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &[(usize, u64)]) {
        for &(_, v) in inbox {
            if v > self.best {
                self.best = v;
                self.fresh = true;
            }
        }
        if self.fresh {
            ctx.send_all(self.best);
            self.fresh = false;
        }
    }
}

fn expander() -> Graph {
    generators::hypercube(6) // 64 nodes, diameter 6
}

#[test]
fn zero_fault_plan_is_byte_identical_to_no_plan() {
    let g = expander();
    let plain = Simulator::new(&g, MaxFlood::fleet(64), 11)
        .unwrap()
        .run(&RunConfig::default())
        .unwrap();
    // A trivial plan — even with a nonzero seed — must not perturb the run.
    let mut sim = Simulator::new(&g, MaxFlood::fleet(64), 11)
        .unwrap()
        .with_fault_plan(FaultPlan::none().seeded(999));
    let planned = sim.run(&RunConfig::default()).unwrap();
    assert_eq!(plain, planned);
    assert_eq!(planned.message_faults(), 0);
    assert!(sim.fault_events().is_empty());
}

#[test]
fn faulty_runs_replay_bit_for_bit() {
    let g = expander();
    let plan = FaultPlan::none()
        .seeded(77)
        .with_drops(0.05)
        .with_corruption(0.02)
        .with_delays(0.05, 3)
        .with_crash(NodeId(9), 4);
    let run = |()| -> (Metrics, Vec<u64>, usize) {
        let mut sim = Simulator::new(&g, MaxFlood::fleet(64), 11)
            .unwrap()
            .with_fault_plan(plan.clone());
        let m = sim.run(&RunConfig::default()).unwrap();
        let states = sim.nodes().iter().map(|p| p.best).collect();
        (m, states, sim.fault_events().len())
    };
    let (m1, s1, e1) = run(());
    let (m2, s2, e2) = run(());
    assert_eq!(m1, m2, "metrics must replay identically");
    assert_eq!(s1, s2, "per-node end states must replay identically");
    assert_eq!(e1, e2, "fault event streams must replay identically");
    assert!(m1.message_faults() > 0, "the plan should actually fire");
}

#[test]
fn different_fault_seeds_give_different_executions() {
    let g = expander();
    let run = |fault_seed: u64| {
        let plan = FaultPlan::none().seeded(fault_seed).with_drops(0.2);
        let mut sim = Simulator::new(&g, MaxFlood::fleet(64), 11)
            .unwrap()
            .with_fault_plan(plan);
        sim.run(&RunConfig::default()).unwrap()
    };
    // Not a tautology: with 20% drops on ~1k messages, two independent
    // fault streams agreeing everywhere is vanishingly unlikely.
    assert_ne!(run(1), run(2));
}

#[test]
fn drops_are_counted_and_not_delivered() {
    let g = expander();
    let plan = FaultPlan::none().seeded(5).with_drops(0.3);
    let mut sim = Simulator::new(&g, MaxFlood::fleet(64), 3)
        .unwrap()
        .with_fault_plan(plan);
    let m = sim.run(&RunConfig::default()).unwrap();
    assert!(m.dropped > 0);
    assert_eq!(m.corrupted + m.delayed + m.crashed, 0);
    let drops = sim
        .fault_events()
        .iter()
        .filter(|e| matches!(e.kind, FaultKind::Dropped))
        .count() as u64;
    assert_eq!(drops, m.dropped, "every counted drop has an event");
}

#[test]
fn crashed_nodes_stop_participating() {
    // Path 0-1-2-3-4: crash node 2 before the flood crosses it.
    let g = Graph::from_edges(5, &(0..4).map(|i| (i, i + 1)).collect::<Vec<_>>()).unwrap();
    let plan = FaultPlan::none().with_crash(NodeId(2), 1);
    let mut sim = Simulator::new(&g, MaxFlood::fleet(5), 0)
        .unwrap()
        .with_fault_plan(plan);
    let m = sim.run(&RunConfig::default()).unwrap();
    assert_eq!(m.crashed, 1);
    assert_eq!(sim.crashed_nodes(), vec![NodeId(2)]);
    // The max id (4) lives right of the cut and can never reach node 0.
    assert_ne!(sim.nodes()[0].best, 4);
    // The run still terminates (quiescence), it does not wedge.
    assert!(m.rounds < RunConfig::default().max_rounds);
}

#[test]
fn delays_slow_the_flood_but_lose_nothing() {
    let g = expander();
    let plan = FaultPlan::none().seeded(8).with_delays(0.5, 4);
    let mut sim = Simulator::new(&g, MaxFlood::fleet(64), 3)
        .unwrap()
        .with_fault_plan(plan);
    let m = sim.run(&RunConfig::default()).unwrap();
    assert!(m.delayed > 0);
    assert_eq!(m.dropped, 0);
    assert!(
        sim.nodes().iter().all(|p| p.best == 63),
        "delays must not lose the max"
    );
    let baseline = Simulator::new(&g, MaxFlood::fleet(64), 3)
        .unwrap()
        .run(&RunConfig::default())
        .unwrap();
    assert!(m.rounds >= baseline.rounds);
}

#[test]
fn corruption_perturbs_but_stays_decodable_or_dropped() {
    let g = expander();
    let plan = FaultPlan::none().seeded(13).with_corruption(0.2);
    let mut sim = Simulator::new(&g, MaxFlood::fleet(64), 3)
        .unwrap()
        .with_fault_plan(plan);
    let m = sim.run(&RunConfig::default()).unwrap();
    assert!(m.corrupted > 0);
    // u64 payloads always re-decode, so every corruption was delivered.
    assert!(sim
        .fault_events()
        .iter()
        .filter_map(|e| match e.kind {
            FaultKind::Corrupted { delivered } => Some(delivered),
            _ => None,
        })
        .all(|d| d));
    // Flipped id bits may exceed the true max, but never reach 64 bits wide
    // (corruption stays within each message's width, and ids are ≤ 6 bits).
    assert!(sim.nodes().iter().all(|p| p.best < 128));
}

#[test]
fn plain_broadcast_loses_nodes_under_heavy_drops() {
    // Control experiment for the ARQ test below: the fault rate that
    // reliable_broadcast shrugs off visibly breaks the plain primitive.
    let g = generators::ring(24);
    let plan = FaultPlan::none().seeded(3).with_drops(0.5);
    let value = 4242;
    let nodes = g.len();
    // Plain flooding under the same faults, via the raw simulator.
    struct Flood {
        value: Option<u64>,
        fresh: bool,
    }
    impl Protocol for Flood {
        type Message = u64;
        fn init(&mut self, ctx: &mut Ctx<'_, u64>) {
            if let (Some(v), true) = (self.value, self.fresh) {
                ctx.send_all(v);
                self.fresh = false;
            }
        }
        fn round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &[(usize, u64)]) {
            for &(_, v) in inbox {
                if self.value.is_none() {
                    self.value = Some(v);
                    self.fresh = true;
                }
            }
            if self.fresh {
                ctx.send_all(self.value.unwrap());
                self.fresh = false;
            }
        }
    }
    let fleet = (0..nodes)
        .map(|v| Flood {
            value: (v == 0).then_some(value),
            fresh: v == 0,
        })
        .collect();
    let mut sim = Simulator::new(&g, fleet, 9).unwrap().with_fault_plan(plan);
    sim.run(&RunConfig::default()).unwrap();
    let reached = sim.nodes().iter().filter(|p| p.value.is_some()).count();
    assert!(
        reached < nodes,
        "50% drops on a ring should strand someone (reached {reached}/{nodes})"
    );
}

#[test]
fn reliable_broadcast_survives_heavy_drops() {
    let g = generators::ring(24);
    let plan = FaultPlan::none().seeded(3).with_drops(0.5);
    let (vals, m) = reliable_broadcast(&g, NodeId(0), 4242, 9, plan).unwrap();
    assert!(
        vals.iter().all(|&v| v == Some(4242)),
        "ARQ must deliver to everyone"
    );
    assert!(m.dropped > 0, "the faults did fire");
    // Overhead is honest: retransmissions and acks all cost messages.
    assert!(m.messages as usize > 2 * g.len());
}

#[test]
fn reliable_broadcast_survives_corruption_and_delays() {
    let g = generators::hypercube(5);
    let plan = FaultPlan::none()
        .seeded(21)
        .with_corruption(0.2)
        .with_delays(0.2, 3);
    let (vals, m) = reliable_broadcast(&g, NodeId(7), 123_456, 2, plan).unwrap();
    assert!(vals.iter().all(|&v| v == Some(123_456)));
    assert!(m.corrupted > 0 && m.delayed > 0);
}

#[test]
fn reliable_broadcast_reaches_survivors_despite_a_crash() {
    // Ring + chord keeps the live part connected when node 3 dies.
    let mut edges: Vec<(usize, usize)> = (0..12).map(|i| (i, (i + 1) % 12)).collect();
    edges.push((2, 4));
    let g = Graph::from_edges(12, &edges).unwrap();
    let plan = FaultPlan::none()
        .seeded(6)
        .with_drops(0.1)
        .with_crash(NodeId(3), 2);
    let (vals, m) = reliable_broadcast(&g, NodeId(0), 77, 4, plan).unwrap();
    assert_eq!(m.crashed, 1);
    for (v, val) in vals.iter().enumerate() {
        if v == 3 {
            continue; // the crashed node may or may not have learned it
        }
        assert_eq!(*val, Some(77), "live node {v} must learn the value");
    }
}

#[test]
fn zero_fault_reliable_broadcast_matches_between_runs() {
    // Regression guard for the deterministic-replay acceptance criterion at
    // the primitive level (trivial plan → clean path; twice → identical).
    let g = generators::hypercube(4);
    let a = reliable_broadcast(&g, NodeId(0), 9, 5, FaultPlan::none()).unwrap();
    let b = reliable_broadcast(&g, NodeId(0), 9, 5, FaultPlan::none()).unwrap();
    assert_eq!(a, b);
}

#[test]
fn trivial_plan_keeps_primitive_metrics_unchanged() {
    // The plain primitives must report the same metrics whether or not a
    // trivial plan exists anywhere in the process — i.e. the fault layer
    // costs nothing when unused.
    let g = generators::hypercube(5);
    let (_, m_before) = primitives::broadcast(&g, NodeId(0), 42, 17).unwrap();
    let mut sim = Simulator::new(&g, MaxFlood::fleet(32), 17)
        .unwrap()
        .with_fault_plan(FaultPlan::none());
    let _ = sim.run(&RunConfig::default()).unwrap();
    let (_, m_after) = primitives::broadcast(&g, NodeId(0), 42, 17).unwrap();
    assert_eq!(m_before, m_after);
}

#[test]
fn invalid_plans_are_rejected_with_context() {
    let g = generators::ring(4);
    let mut sim = Simulator::new(&g, MaxFlood::fleet(4), 0)
        .unwrap()
        .with_fault_plan(FaultPlan::none().with_drops(2.0));
    let err = sim.run(&RunConfig::default()).unwrap_err();
    assert!(err.to_string().contains("drop_prob"));
    let mut sim = Simulator::new(&g, MaxFlood::fleet(4), 0)
        .unwrap()
        .with_fault_plan(FaultPlan::none().with_crash(NodeId(99), 0));
    let err = sim.run(&RunConfig::default()).unwrap_err();
    assert!(err.to_string().contains("out of range"));
}

#[test]
fn quiescence_waits_for_held_messages() {
    // A single delayed message must keep the run alive until delivery:
    // otherwise Quiescence would declare a quiet round while traffic is
    // still in the delay queue.
    let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
    struct OneShot {
        id: u64,
        got: Option<u64>,
    }
    impl Protocol for OneShot {
        type Message = u64;
        fn init(&mut self, ctx: &mut Ctx<'_, u64>) {
            if self.id == 0 {
                ctx.send(0, 7);
            }
        }
        fn round(&mut self, _: &mut Ctx<'_, u64>, inbox: &[(usize, u64)]) {
            for &(_, v) in inbox {
                self.got = Some(v);
            }
        }
    }
    let plan = FaultPlan::none().seeded(1).with_delays(1.0, 5);
    let fleet = vec![OneShot { id: 0, got: None }, OneShot { id: 1, got: None }];
    let mut sim = Simulator::new(&g, fleet, 0).unwrap().with_fault_plan(plan);
    let m = sim.run(&RunConfig::default()).unwrap();
    assert_eq!(m.delayed, 1);
    assert_eq!(sim.nodes()[1].got, Some(7), "the held message must arrive");
    assert!(m.rounds >= 2, "the run must outlive the delay");
}

#[test]
fn delayed_message_to_crashed_destination_is_recorded_as_lost() {
    // Node 0 sends once to node 1; the plan delays every message and
    // crashes node 1 before the delay can elapse. The loss must be
    // observable: a LostToCrash event naming the original sender, a
    // lost_to_crash count, and no phantom delivery.
    let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
    struct OneShot {
        id: u64,
        got: Option<u64>,
    }
    impl Protocol for OneShot {
        type Message = u64;
        fn init(&mut self, ctx: &mut Ctx<'_, u64>) {
            if self.id == 0 {
                ctx.send(0, 7);
            }
        }
        fn round(&mut self, _: &mut Ctx<'_, u64>, inbox: &[(usize, u64)]) {
            for &(_, v) in inbox {
                self.got = Some(v);
            }
        }
    }
    let plan = FaultPlan::none()
        .seeded(1)
        .with_delays(1.0, 5)
        .with_crash(NodeId(1), 1);
    let fleet = vec![OneShot { id: 0, got: None }, OneShot { id: 1, got: None }];
    let mut sim = Simulator::new(&g, fleet, 0).unwrap().with_fault_plan(plan);
    let m = sim.run(&RunConfig::default()).unwrap();
    assert_eq!(m.delayed, 1, "the message was delayed");
    assert_eq!(m.lost_to_crash, 1, "…and then lost to the crash");
    assert_eq!(m.messages, 0, "a lost message is never counted delivered");
    assert_eq!(sim.nodes()[1].got, None);
    let lost: Vec<_> = sim
        .fault_events()
        .iter()
        .filter(|e| matches!(e.kind, FaultKind::LostToCrash))
        .collect();
    assert_eq!(lost.len(), 1);
    assert_eq!(lost[0].node, NodeId(0), "event names the original sender");
    assert_eq!(lost[0].port, 0);
    // The matching Delayed event precedes the loss in the stream.
    let delayed_pos = sim
        .fault_events()
        .iter()
        .position(|e| matches!(e.kind, FaultKind::Delayed { .. }))
        .unwrap();
    let lost_pos = sim
        .fault_events()
        .iter()
        .position(|e| matches!(e.kind, FaultKind::LostToCrash))
        .unwrap();
    assert!(delayed_pos < lost_pos);
}

#[test]
fn metrics_compose_under_then() {
    let g = expander();
    let plan = FaultPlan::none().seeded(2).with_drops(0.1);
    let mut sim = Simulator::new(&g, MaxFlood::fleet(64), 1)
        .unwrap()
        .with_fault_plan(plan.clone());
    let m1 = sim.run(&RunConfig::default()).unwrap();
    let mut sim2 = Simulator::new(&g, MaxFlood::fleet(64), 2)
        .unwrap()
        .with_fault_plan(plan);
    let m2 = sim2.run(&RunConfig::default()).unwrap();
    let total = m1.then(m2);
    assert_eq!(total.dropped, m1.dropped + m2.dropped);
    assert_eq!(total.rounds, m1.rounds + m2.rounds);
}
