//! Integration tests of simulator semantics: exact message timing, metric
//! accounting, stop conditions, and composed primitive pipelines.

use amt_congest::{primitives, Ctx, Metrics, Protocol, RunConfig, Simulator, StopCondition};
use amt_graphs::{generators, Graph, NodeId};

/// Ping-pong for a fixed number of volleys: exact round/message accounting.
struct PingPong {
    is_server: bool,
    volleys_left: u32,
}

impl Protocol for PingPong {
    type Message = u32;

    fn init(&mut self, ctx: &mut Ctx<'_, u32>) {
        if self.is_server && self.volleys_left > 0 {
            ctx.send(0, self.volleys_left);
        }
    }

    fn round(&mut self, ctx: &mut Ctx<'_, u32>, inbox: &[(usize, u32)]) {
        for &(port, v) in inbox {
            if v > 1 {
                ctx.send(port, v - 1);
            }
            self.volleys_left = v.saturating_sub(1);
        }
    }

    fn is_done(&self) -> bool {
        self.volleys_left == 0
    }
}

#[test]
fn ping_pong_message_accounting_is_exact() {
    let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
    let volleys = 9;
    let nodes = vec![
        PingPong {
            is_server: true,
            volleys_left: volleys,
        },
        PingPong {
            is_server: false,
            volleys_left: volleys,
        },
    ];
    let mut sim = Simulator::new(&g, nodes, 0).unwrap();
    let m = sim.run(&RunConfig::default()).unwrap();
    // Exactly `volleys` messages cross the single edge, one per round.
    assert_eq!(m.messages, u64::from(volleys));
    assert_eq!(m.peak_messages_per_round, 1);
    assert!(m.rounds >= u64::from(volleys));
}

/// A protocol that is "done" immediately but keeps a message in flight on
/// round 0 — AllDone must wait for delivery.
struct FireAndClaimDone {
    got: bool,
}

impl Protocol for FireAndClaimDone {
    type Message = u32;
    fn init(&mut self, ctx: &mut Ctx<'_, u32>) {
        if ctx.node() == NodeId(0) {
            ctx.send(0, 7);
        }
    }
    fn round(&mut self, _: &mut Ctx<'_, u32>, inbox: &[(usize, u32)]) {
        if !inbox.is_empty() {
            self.got = true;
        }
    }
    fn is_done(&self) -> bool {
        true
    }
}

#[test]
fn all_done_waits_for_in_flight_messages() {
    let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
    let nodes = vec![
        FireAndClaimDone { got: false },
        FireAndClaimDone { got: false },
    ];
    let mut sim = Simulator::new(&g, nodes, 0).unwrap();
    let cfg = RunConfig {
        stop: StopCondition::AllDone,
        ..RunConfig::default()
    };
    sim.run(&cfg).unwrap();
    assert!(
        sim.nodes()[1].got,
        "message must be delivered before AllDone stops"
    );
}

#[test]
fn metrics_then_composes_pipelines() {
    let g = generators::torus_2d(4, 4);
    let (tree, m1) = primitives::build_bfs_tree(&g, NodeId(0), 1).unwrap();
    let values: Vec<u64> = (0..16).collect();
    let (min, m2) = primitives::convergecast(&g, &tree, &values, u64::min, 2).unwrap();
    let (_, m3) = primitives::tree_downcast(&g, &tree, min, 3).unwrap();
    let total = m1.then(m2).then(m3);
    assert_eq!(total.rounds, m1.rounds + m2.rounds + m3.rounds);
    assert_eq!(total.messages, m1.messages + m2.messages + m3.messages);
    assert_eq!(min, 0);
}

#[test]
fn broadcast_then_elect_pipeline_on_families() {
    for g in [
        generators::hypercube(4),
        generators::ring(12),
        generators::complete(9),
    ] {
        let (vals, _) = primitives::broadcast(&g, NodeId(0), 42, 1).unwrap();
        assert!(vals.iter().all(|&v| v == Some(42)));
        let (leader, _) = primitives::elect_leader(&g, 2).unwrap();
        assert_eq!(leader, NodeId(g.len() as u32 - 1));
    }
}

#[test]
fn upcast_roundtrip_preserves_multisets() {
    let g = generators::hypercube(4);
    let (tree, _) = primitives::build_bfs_tree(&g, NodeId(3), 5).unwrap();
    let items: Vec<Vec<u64>> = (0..16)
        .map(|i| (0..(i % 4) as u64).map(|j| i as u64 * 10 + j).collect())
        .collect();
    let mut expect: Vec<u64> = items.iter().flatten().copied().collect();
    // The root's own items are included.
    expect.sort_unstable();
    let (collected, m) = primitives::pipelined_upcast(&g, &tree, items, 6).unwrap();
    assert_eq!(collected, expect);
    assert!(m.rounds > 0);
    // Now push them all back down.
    let (recv, _) = primitives::pipelined_downcast(&g, &tree, collected.clone(), 7).unwrap();
    for v in g.nodes() {
        if v != tree.root {
            assert_eq!(recv[v.index()], collected, "node {v:?}");
        }
    }
}

#[test]
fn quiescence_and_all_done_agree_on_self_terminating_protocols() {
    struct Silent;
    impl Protocol for Silent {
        type Message = u32;
        fn init(&mut self, _: &mut Ctx<'_, u32>) {}
        fn round(&mut self, _: &mut Ctx<'_, u32>, _: &[(usize, u32)]) {}
        fn is_done(&self) -> bool {
            true
        }
    }
    let g = generators::ring(5);
    let mk = || (0..5).map(|_| Silent).collect::<Vec<_>>();
    let mut s1 = Simulator::new(&g, mk(), 0).unwrap();
    let q = s1.run(&RunConfig::default()).unwrap();
    let mut s2 = Simulator::new(&g, mk(), 0).unwrap();
    let a = s2.run(&RunConfig::all_done()).unwrap();
    assert_eq!(q.messages, 0);
    assert_eq!(a.messages, 0);
    assert!(q.rounds <= 2 && a.rounds <= 2);
    let _: Metrics = q;
}
