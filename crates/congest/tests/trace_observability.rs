//! Observability regression tests: cross-path trace/metrics consistency
//! and the delivered-bits accounting audit for corrupted frames.

use amt_congest::{
    Ctx, FaultKind, FaultPlan, Metrics, Protocol, RunConfig, RunTrace, Simulator, TraceConfig,
};
use amt_graphs::{Graph, NodeId};
use rand::RngExt;

/// Randomized lazy token walker (the paper's workload shape): sensitive to
/// every RNG bit, so any cross-path divergence shows up immediately.
struct Walker {
    tokens: u32,
    hops_left: u32,
    digest: u64,
}

impl Protocol for Walker {
    type Message = u64;

    fn init(&mut self, ctx: &mut Ctx<'_, u64>) {
        let degree = ctx.degree();
        let mut staged: Vec<(usize, u64)> = (0..self.tokens)
            .map(|_| (ctx.rng().random_range(0..degree), u64::from(self.hops_left)))
            .collect();
        staged.sort_by_key(|&(p, _)| p);
        staged.dedup_by_key(|&mut (p, _)| p);
        for (port, hops) in staged {
            ctx.send(port, hops);
        }
    }

    fn round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &[(usize, u64)]) {
        let degree = ctx.degree();
        let mut staged: Vec<(usize, u64)> = Vec::new();
        for &(_, hops) in inbox {
            self.digest = self.digest.wrapping_mul(31).wrapping_add(hops + 1);
            ctx.trace_event("token", hops);
            if hops > 0 && ctx.rng().random_bool(0.75) {
                staged.push((ctx.rng().random_range(0..degree), hops - 1));
            }
        }
        staged.sort_by_key(|&(p, _)| p);
        staged.dedup_by_key(|&mut (p, _)| p);
        for (port, hops) in staged {
            ctx.send(port, hops);
        }
    }
}

fn fleet(n: usize) -> Vec<Walker> {
    (0..n)
        .map(|v| Walker {
            tokens: 1 + (v as u32 % 2),
            hops_left: 10,
            digest: 0,
        })
        .collect()
}

type RunResult = (Metrics, RunTrace, Vec<u64>, Vec<u64>);

/// One randomized run must be byte-identical — `Metrics` *and* the full
/// round timeline — on the sequential clean path, the threaded clean path
/// (1 and 4 workers), and the faulty executor driven by a plan that is
/// non-trivial (so it takes the fault-sampling code path) but can never
/// fire a fault (a crash scheduled far beyond termination).
fn run_sim(mut sim: Simulator<'_, Walker>, threads: usize) -> RunResult {
    let m = sim
        .run(&RunConfig::default().with_threads(threads))
        .unwrap();
    let digests = sim.nodes().iter().map(|p| p.digest).collect();
    let loads = sim.edge_load().to_vec();
    (m, sim.take_trace().unwrap(), digests, loads)
}

#[test]
fn clean_threaded_and_inert_fault_paths_agree() {
    let g = amt_graphs::generators::hypercube(5);
    let clean = |threads| {
        run_sim(
            Simulator::new(&g, fleet(32), 2024)
                .unwrap()
                .with_trace(TraceConfig::default().with_edge_load_stride(3)),
            threads,
        )
    };
    let baseline = clean(1);
    assert!(baseline.0.messages > 0, "workload must send traffic");
    assert!(!baseline.1.events.is_empty(), "workload must emit events");
    for threads in [2, 4] {
        assert_eq!(clean(threads), baseline, "threads = {threads} diverged");
    }

    // Non-trivial plan (goes through the fault executor) that cannot fire:
    // the only scheduled fault is a crash at a round never reached.
    let inert = FaultPlan::none().with_crash(NodeId(0), 900_000);
    assert!(!inert.is_trivial());
    let faulty = run_sim(
        Simulator::new(&g, fleet(32), 2024)
            .unwrap()
            .with_fault_plan(inert)
            .with_trace(TraceConfig::default().with_edge_load_stride(3)),
        1,
    );
    assert_eq!(faulty, baseline, "inert fault plan diverged from clean run");
}

/// Receiver of everything node 0 sends across a 2-node path. The message
/// type is `Option<u64>` because its codec can garble: flipping the
/// presence tag of a `Some` frame leaves undecodable bits, so both
/// `Corrupted { delivered: true }` and `{ delivered: false }` are reachable.
struct Recorder {
    send_rounds: u64,
    sent: u64,
    payload: u64,
    received: Vec<Option<u64>>,
}

impl Protocol for Recorder {
    type Message = Option<u64>;

    fn init(&mut self, ctx: &mut Ctx<'_, Option<u64>>) {
        if ctx.node().index() == 0 && self.sent < self.send_rounds {
            self.sent += 1;
            ctx.send(0, Some(self.payload));
        }
    }

    fn round(&mut self, ctx: &mut Ctx<'_, Option<u64>>, inbox: &[(usize, Option<u64>)]) {
        for &(_, v) in inbox {
            self.received.push(v);
        }
        if ctx.node().index() == 0 && self.sent < self.send_rounds {
            self.sent += 1;
            ctx.send(0, Some(self.payload));
        }
    }

    // Quiescence would stop at the first round whose only frame garbles
    // (zero deliveries), so termination is explicit instead.
    fn is_done(&self) -> bool {
        self.sent >= self.send_rounds
    }
}

/// The delivered-bits audit (ISSUE 3 satellite): with every frame corrupted,
/// `Metrics::bits` must equal the sum of the widths *actually delivered* —
/// measured independently on the receiver side, where each garbled frame's
/// decoded value determines its true encoded width — and the
/// corrupted/dropped classification must match the fault event log and the
/// round timeline exactly.
#[test]
fn corrupted_frame_bits_count_delivered_widths() {
    use amt_congest::CongestMessage;

    let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
    let sends = 40u64;
    // A wide payload (every send identical) so single-bit flips routinely
    // change the frame's encoded width in both directions.
    let payload = 0b1000_0000_0001u64;
    let mk = |send_rounds| {
        vec![
            Recorder {
                send_rounds,
                sent: 0,
                payload,
                received: Vec::new(),
            },
            Recorder {
                send_rounds: 0,
                sent: 0,
                payload: 0,
                received: Vec::new(),
            },
        ]
    };
    let mut sim = Simulator::new(&g, mk(sends), 9)
        .unwrap()
        .with_fault_plan(FaultPlan::none().seeded(31).with_corruption(1.0))
        .with_trace(TraceConfig::default());
    let cfg = RunConfig {
        budget_factor: 64,
        ..RunConfig::all_done()
    };
    let m = sim.run(&cfg).unwrap();
    let trace = sim.take_trace().unwrap();

    // Every staged frame was hit by the corruption fault.
    assert_eq!(m.corrupted, sends, "all frames must be corrupted");
    assert_eq!(m.dropped, 0);

    // Receiver-side ground truth: the widths of the frames that actually
    // arrived. `bits` counting anything else (e.g. the pre-corruption
    // widths) is the accounting bug this test pins down.
    let delivered_widths: u64 = sim.nodes()[1]
        .received
        .iter()
        .map(|v| v.bit_width() as u64)
        .sum();
    assert_eq!(m.bits, delivered_widths, "bits must count delivered widths");
    assert_eq!(m.messages, sim.nodes()[1].received.len() as u64);
    assert!(
        m.messages < sends,
        "seed chosen so some corrupted frames garble and are discarded"
    );

    // Classification must agree between the metrics counters, the fault
    // event log, and the round timeline.
    let events = sim.fault_events();
    let delivered_corruptions = events
        .iter()
        .filter(|e| e.kind == FaultKind::Corrupted { delivered: true })
        .count() as u64;
    let discarded_corruptions = events
        .iter()
        .filter(|e| e.kind == FaultKind::Corrupted { delivered: false })
        .count() as u64;
    assert_eq!(delivered_corruptions + discarded_corruptions, m.corrupted);
    assert_eq!(delivered_corruptions, m.messages);
    assert!(!events.iter().any(|e| e.kind == FaultKind::Dropped));

    assert_eq!(trace.samples.iter().map(|s| s.bits).sum::<u64>(), m.bits);
    assert_eq!(
        trace.samples.iter().map(|s| s.messages).sum::<u64>(),
        m.messages
    );
    assert_eq!(
        trace.samples.iter().map(|s| s.corrupted).sum::<u64>(),
        m.corrupted
    );
    assert_eq!(trace.reconstruct_metrics(), m);
}

/// The strided per-edge snapshot series must always end with a final-round
/// snapshot — whether the stride divides the stopping round (no duplicate),
/// exceeds the run length (only rounds 0 and the end), or anything between.
#[test]
fn strided_snapshots_always_include_the_final_round() {
    let g = amt_graphs::generators::hypercube(4);
    let probe = |stride| {
        let mut sim = Simulator::new(&g, fleet(16), 7)
            .unwrap()
            .with_trace(TraceConfig::default().with_edge_load_stride(stride));
        let m = sim.run(&RunConfig::default()).unwrap();
        (m, sim.take_trace().unwrap())
    };
    let (baseline, _) = probe(1);
    let run_len = baseline.rounds;
    assert!(run_len > 3, "workload long enough to exercise the strides");
    for stride in [1, 3, run_len, run_len + 7] {
        let (m, trace) = probe(stride);
        assert_eq!(m, baseline, "the stride must never change the run");
        let last = trace.snapshots.last().expect("at least one snapshot");
        assert_eq!(last.round, m.rounds, "stride {stride} missed the end");
        assert_eq!(last.load, trace.final_edge_load);
        let finals = trace
            .snapshots
            .iter()
            .filter(|s| s.round == m.rounds)
            .count();
        assert_eq!(finals, 1, "stride {stride} duplicated the final snapshot");
    }
}

/// A genuinely faulty run (drops, corruption, delays, a mid-run crash)
/// must be reconstructible from its timeline alone, field for field.
#[test]
fn faulty_timeline_replays_metrics_exactly() {
    let g = amt_graphs::generators::hypercube(4);
    let plan = FaultPlan::none()
        .seeded(17)
        .with_drops(0.08)
        .with_corruption(0.1)
        .with_delays(0.15, 4)
        .with_crash(NodeId(3), 4);
    let mut sim = Simulator::new(&g, fleet(16), 55)
        .unwrap()
        .with_fault_plan(plan)
        .with_trace(TraceConfig::default().with_edge_load_stride(1));
    let m = sim.run(&RunConfig::default()).unwrap();
    let trace = sim.take_trace().unwrap();

    assert_eq!(trace.reconstruct_metrics(), m);
    assert!(m.message_faults() > 0, "plan must actually inject faults");
    assert_eq!(m.crashed, 1);
    assert_eq!(trace.samples.len() as u64, m.rounds + 1);
    // The striding snapshots are cumulative and end at the final loads.
    assert_eq!(
        trace.snapshots.last().map(|s| s.load.clone()),
        Some(trace.final_edge_load.clone())
    );
    // Fault events and timeline agree per kind.
    let by_kind = |pred: &dyn Fn(&FaultKind) -> bool| {
        sim.fault_events().iter().filter(|e| pred(&e.kind)).count() as u64
    };
    assert_eq!(by_kind(&|k| matches!(k, FaultKind::Dropped)), m.dropped);
    assert_eq!(
        by_kind(&|k| matches!(k, FaultKind::Corrupted { .. })),
        m.corrupted
    );
    assert_eq!(
        by_kind(&|k| matches!(k, FaultKind::Delayed { .. })),
        m.delayed
    );
    assert_eq!(
        by_kind(&|k| matches!(k, FaultKind::LostToCrash)),
        m.lost_to_crash
    );
    assert_eq!(by_kind(&|k| matches!(k, FaultKind::Crashed)), m.crashed);
}
