//! # Distributed MST and Routing in Almost Mixing Time
//!
//! A full reproduction of **Ghaffari, Kuhn, Su — PODC 2017**: a CONGEST
//! algorithm computing a minimum spanning tree in
//! `τ_mix(G) · 2^O(√(log n log log n))` rounds, built on a distributed
//! permutation-routing scheme over a *hierarchical embedding of random
//! graphs*.
//!
//! This crate is the user-facing entry point. It re-exports every
//! subsystem and offers the one-stop [`System`] API:
//!
//! ```
//! use amt_core::{System, graphs::generators, graphs::{NodeId, WeightedGraph}};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // A 48-node expander network.
//! let mut rng = StdRng::seed_from_u64(7);
//! let g = generators::random_regular(48, 4, &mut rng).unwrap();
//!
//! // Build the hierarchical routing structure once…
//! let system = System::builder(&g).seed(7).beta(4).levels(1).build().unwrap();
//!
//! // …then route a permutation,
//! let reqs: Vec<_> = (0..48).map(|i| (NodeId(i), NodeId((i + 1) % 48))).collect();
//! let routed = system.route(&reqs, 1).unwrap();
//! assert_eq!(routed.delivered, 48);
//!
//! // …and compute an MST with measured round costs.
//! let wg = WeightedGraph::with_random_weights(g.clone(), 1000, &mut rng);
//! let mst = system.mst(&wg, 2).unwrap();
//! assert!(amt_mst::reference::verify_mst(&wg, &mst.tree_edges));
//! ```
//!
//! ## Subsystems
//!
//! | Module | Contents |
//! |---|---|
//! | [`graphs`] | CSR multigraphs, generators, expansion/spectral toolkit |
//! | [`congest`] | synchronous CONGEST simulator + classic primitives |
//! | [`walks`] | lazy/2Δ-regular walks, mixing times, parallel scheduling |
//! | [`kwise`] | Θ(log n)-wise hash partitions |
//! | [`embedding`] | the §3.1 hierarchical embedding (G₀…G_k, portals) |
//! | [`routing`] | the §3.2 permutation router, clique emulation, baselines |
//! | [`mst`] | the §4 MST algorithm and CONGEST baselines |
//! | [`mincut`] | tree-packing min cut with the MST black box |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use amt_congest as congest;
pub use amt_embedding as embedding;
pub use amt_graphs as graphs;
pub use amt_kwise as kwise;
pub use amt_mincut as mincut;
pub use amt_mst as mst;
pub use amt_routing as routing;
pub use amt_walks as walks;

mod system;

pub use system::{Error, System, SystemBuilder};

/// Commonly used items, one `use` away.
pub mod prelude {
    pub use crate::{Error, System, SystemBuilder};
    pub use amt_congest::{
        ChurnEvent, ChurnKind, ChurnPlan, CrashEvent, FaultEvent, FaultKind, FaultPlan,
        RecoveryTimeline,
    };
    pub use amt_embedding::{Hierarchy, HierarchyConfig};
    pub use amt_graphs::{generators, EdgeId, Graph, GraphBuilder, NodeId, WeightedGraph};
    pub use amt_mincut::{karger_estimate, stoer_wagner, tree_packing_min_cut, MstOracle};
    pub use amt_mst::{reference, AlmostMixingMst};
    pub use amt_routing::{EmulationMode, HierarchicalRouter, RouterConfig, RoutingOutcome};
    pub use amt_walks::{mixing, WalkKind};
}
