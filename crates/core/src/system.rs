//! The one-stop [`System`] API: build the hierarchy once, then route,
//! compute MSTs, emulate the clique, and approximate min cuts.

use amt_embedding::{Hierarchy, HierarchyConfig};
use amt_graphs::{Graph, NodeId, WeightedGraph};
use amt_mincut::{MinCutResult, MstOracle};
use amt_mst::{AlmostMixingMst, AmtMstOutcome};
use amt_routing::{clique::CliqueOutcome, HierarchicalRouter, RoutingOutcome};
use amt_walks::{mixing, WalkKind};
use std::fmt;

/// Unified error of the top-level API.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// The base graph or configuration was unsuitable for embedding.
    Embed(amt_embedding::EmbedError),
    /// Routing failed.
    Route(amt_routing::RouteError),
    /// MST computation failed.
    Mst(String),
    /// Min-cut computation failed.
    MinCut(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Embed(e) => write!(f, "{e}"),
            Error::Route(e) => write!(f, "{e}"),
            Error::Mst(e) => write!(f, "MST failed: {e}"),
            Error::MinCut(e) => write!(f, "min cut failed: {e}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<amt_embedding::EmbedError> for Error {
    fn from(e: amt_embedding::EmbedError) -> Self {
        Error::Embed(e)
    }
}

impl From<amt_routing::RouteError> for Error {
    fn from(e: amt_routing::RouteError) -> Self {
        Error::Route(e)
    }
}

/// Builder for [`System`]: pick a seed and optionally override the
/// hierarchy parameters chosen by [`HierarchyConfig::auto`].
#[derive(Clone, Debug)]
pub struct SystemBuilder<'g> {
    graph: &'g Graph,
    seed: u64,
    tau_mix: Option<u32>,
    beta: Option<u32>,
    levels: Option<u32>,
    overlay_degree: Option<usize>,
    config: Option<HierarchyConfig>,
}

impl<'g> SystemBuilder<'g> {
    /// Starts a builder for `graph`.
    pub fn new(graph: &'g Graph) -> Self {
        SystemBuilder {
            graph,
            seed: 0,
            tau_mix: None,
            beta: None,
            levels: None,
            overlay_degree: None,
            config: None,
        }
    }

    /// RNG seed (everything downstream is deterministic given it).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the mixing-time estimate used for the level-0 walks
    /// (default: spectral estimate of Definition 2.1, clamped to `4n`).
    pub fn tau_mix(mut self, tau: u32) -> Self {
        self.tau_mix = Some(tau);
        self
    }

    /// Overrides the branching factor β.
    pub fn beta(mut self, beta: u32) -> Self {
        self.beta = Some(beta);
        self
    }

    /// Overrides the partition depth.
    pub fn levels(mut self, levels: u32) -> Self {
        self.levels = Some(levels);
        self
    }

    /// Overrides the per-level overlay degree.
    pub fn overlay_degree(mut self, d: usize) -> Self {
        self.overlay_degree = Some(d);
        self
    }

    /// Supplies a complete [`HierarchyConfig`], bypassing all other knobs.
    pub fn config(mut self, cfg: HierarchyConfig) -> Self {
        self.config = Some(cfg);
        self
    }

    /// Builds the hierarchical structure (the expensive, once-per-network
    /// step).
    ///
    /// # Errors
    ///
    /// [`Error::Embed`] when the graph is disconnected or the configuration
    /// is infeasible.
    pub fn build(self) -> Result<System<'g>, Error> {
        let cfg = match self.config {
            Some(cfg) => cfg,
            None => {
                let tau = self.tau_mix.unwrap_or_else(|| {
                    let cap = (4 * self.graph.len().max(2)) as u32;
                    mixing::mixing_time_spectral(self.graph, WalkKind::Lazy, 400)
                        .map_or(cap, |t| t.min(cap))
                });
                let mut cfg = HierarchyConfig::auto(self.graph, tau.max(1), self.seed);
                if let Some(b) = self.beta {
                    cfg.beta = b;
                }
                if let Some(l) = self.levels {
                    cfg.levels = l;
                }
                if let Some(d) = self.overlay_degree {
                    cfg.overlay_degree = d;
                    cfg.level0_walks = cfg.level0_walks.max(2 * d);
                }
                cfg
            }
        };
        let hierarchy = Hierarchy::build(self.graph, cfg)?;
        Ok(System { hierarchy })
    }
}

/// A ready-to-use almost-mixing-time system: the built hierarchy plus
/// convenience entry points for every application in the paper.
pub struct System<'g> {
    hierarchy: Hierarchy<'g>,
}

impl<'g> System<'g> {
    /// Starts building a system for `graph`.
    pub fn builder(graph: &'g Graph) -> SystemBuilder<'g> {
        SystemBuilder::new(graph)
    }

    /// The underlying hierarchical embedding (construction statistics
    /// included).
    pub fn hierarchy(&self) -> &Hierarchy<'g> {
        &self.hierarchy
    }

    /// Measured base rounds spent building the hierarchy.
    pub fn build_rounds(&self) -> u64 {
        self.hierarchy.stats.total_base_rounds
    }

    /// Routes one packet per `(source, destination)` pair (Theorem 1.2).
    ///
    /// # Errors
    ///
    /// [`Error::Route`] on invalid requests or undeliverable instances.
    pub fn route(&self, requests: &[(NodeId, NodeId)], seed: u64) -> Result<RoutingOutcome, Error> {
        Ok(HierarchicalRouter::new(&self.hierarchy).route(requests, seed)?)
    }

    /// Computes the MST of `wg` (which must share this system's base
    /// graph) with measured round costs (Theorem 1.1).
    ///
    /// # Errors
    ///
    /// [`Error::Mst`] on mismatched graphs or routing failures.
    pub fn mst(&self, wg: &WeightedGraph, seed: u64) -> Result<AmtMstOutcome, Error> {
        AlmostMixingMst::new(&self.hierarchy)
            .run(wg, seed)
            .map_err(|e| Error::Mst(e.to_string()))
    }

    /// Emulates one congested-clique round (every ordered pair exchanges a
    /// message; Theorem 1.3 flavor).
    ///
    /// # Errors
    ///
    /// [`Error::Route`] when the all-to-all instance cannot be phased.
    pub fn emulate_clique(&self, seed: u64) -> Result<CliqueOutcome, Error> {
        Ok(amt_routing::clique::emulate_clique(&self.hierarchy, seed)?)
    }

    /// Approximates the min cut by tree packing with the distributed MST
    /// black box (`trees` invocations; §4 application).
    ///
    /// # Errors
    ///
    /// [`Error::MinCut`] on parameter or oracle failures.
    pub fn min_cut(
        &self,
        capacities: &[u64],
        trees: u32,
        seed: u64,
    ) -> Result<MinCutResult, Error> {
        amt_mincut::tree_packing_min_cut(
            self.hierarchy.base(),
            capacities,
            trees,
            &MstOracle::AlmostMixing(&self.hierarchy, seed),
        )
        .map_err(|e| Error::MinCut(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amt_graphs::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn expander(n: usize, seed: u64) -> Graph {
        let mut rng = StdRng::seed_from_u64(seed);
        generators::random_regular(n, 4, &mut rng).unwrap()
    }

    #[test]
    fn builder_auto_works_end_to_end() {
        let g = expander(48, 1);
        let sys = System::builder(&g)
            .seed(3)
            .beta(4)
            .levels(1)
            .build()
            .unwrap();
        assert!(sys.build_rounds() > 0);
        let reqs: Vec<_> = (0..48u32)
            .map(|i| (NodeId(i), NodeId((i + 7) % 48)))
            .collect();
        let out = sys.route(&reqs, 5).unwrap();
        assert_eq!(out.delivered, 48);
    }

    #[test]
    fn mst_and_mincut_through_the_facade() {
        let g = expander(40, 2);
        let mut rng = StdRng::seed_from_u64(11);
        let wg = WeightedGraph::with_random_weights(g.clone(), 500, &mut rng);
        let sys = System::builder(&g)
            .seed(4)
            .beta(4)
            .levels(1)
            .overlay_degree(5)
            .build()
            .unwrap();
        let mst = sys.mst(&wg, 9).unwrap();
        assert!(amt_mst::reference::verify_mst(&wg, &mst.tree_edges));
        let caps = vec![1u64; g.edge_count()];
        let cut = sys.min_cut(&caps, 2, 13).unwrap();
        let exact = amt_mincut::stoer_wagner(&g, &caps).unwrap().0;
        assert!(cut.value >= exact);
        assert!(cut.rounds > 0);
    }

    #[test]
    fn disconnected_graph_is_rejected_at_build() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let err = System::builder(&g).build().map(|_| ()).unwrap_err();
        assert!(matches!(err, Error::Embed(_)));
        assert!(err.to_string().contains("not connected"));
    }

    #[test]
    fn explicit_config_is_honored() {
        let g = expander(48, 5);
        let mut cfg = HierarchyConfig::auto(&g, 20, 5);
        cfg.beta = 4;
        cfg.levels = 2;
        let sys = System::builder(&g).config(cfg.clone()).build().unwrap();
        assert_eq!(sys.hierarchy().cfg(), &cfg);
        assert_eq!(sys.hierarchy().depth(), 2);
    }
}
