//! Construction parameters.

use crate::{EmbedError, Result};
use amt_graphs::Graph;

/// All constants of the hierarchical construction, exposed explicitly.
///
/// The paper's proof constants (e.g. `200 log n` walks per virtual node)
/// guarantee high-probability bounds for enormous `n`; simulations use the
/// same *shapes* with practical constants, all configurable here. Every
/// experiment in `amt-bench` states the values used.
#[derive(Clone, Debug, PartialEq)]
pub struct HierarchyConfig {
    /// Branching factor β of the partition tree
    /// (paper: `2^O(√(log n log log n))`).
    pub beta: u32,
    /// Depth k of the partition tree (paper: `log_β (m / log m)`).
    pub levels: u32,
    /// Out-neighbors each virtual node keeps per level
    /// (paper: `100 log n` at level 0, `O(log n)` above).
    pub overlay_degree: usize,
    /// Walks started per virtual node for the level-0 embedding
    /// (paper: `200 log n`; must be ≥ `overlay_degree`).
    pub level0_walks: usize,
    /// Walk length for the level-0 embedding — the (estimated) mixing time
    /// `τ_mix` of the base graph. Supplied by the caller (usually from
    /// `amt_walks::mixing`).
    pub tau_mix: u32,
    /// Surplus multiplier for per-level walks: each virtual node starts
    /// `walk_surplus · β · overlay_degree` walks per level (success
    /// probability per walk is ≈ 1/β).
    pub walk_surplus: f64,
    /// Walk length on overlays is `level_walk_factor · (⌈log₂ s⌉ + 1)` where
    /// `s` is the expected part size at the walked level (paper:
    /// `τ_mix(G₀) = O(log n)`).
    pub level_walk_factor: u32,
    /// Independence of the partition hash (paper: Θ(log n)).
    pub independence: usize,
    /// Walks per virtual node per sibling part for portal discovery
    /// (paper: β).
    pub portal_walks: usize,
    /// RNG seed; the partition-hash seed is derived from it (modeling the
    /// `Θ(log² n)` shared random bits broadcast once).
    pub seed: u64,
}

impl HierarchyConfig {
    /// Paper-shaped defaults for `g` with practical constants:
    /// β and depth from [`amt_kwise::paper_parameters`] on the `2m` virtual
    /// nodes, logarithmic degrees and walk counts.
    pub fn auto(g: &Graph, tau_mix: u32, seed: u64) -> Self {
        let vnodes = g.volume().max(4);
        let (beta, levels) = amt_kwise::paper_parameters(vnodes);
        // Simulation-practical clamps: β beyond 16 makes the per-level walk
        // count (∝ β) and portal discovery (∝ β·portal_walks) dominate
        // wall-clock at the sizes a simulator reaches.
        let beta = beta.min(16);
        let log_n = (g.len().max(2) as f64).log2();
        HierarchyConfig {
            beta,
            levels,
            overlay_degree: (log_n.ceil() as usize).clamp(3, 12),
            level0_walks: (2.0 * log_n).ceil() as usize,
            tau_mix,
            walk_surplus: 1.5,
            level_walk_factor: 2,
            independence: (log_n.ceil() as usize).max(4),
            portal_walks: (beta as usize).min(8),
            seed,
        }
    }

    /// Expected part size at `depth` for a graph with `vnodes` virtual nodes.
    pub fn expected_part_size(&self, vnodes: usize, depth: u32) -> f64 {
        let mut s = vnodes as f64;
        for _ in 0..depth {
            s /= f64::from(self.beta);
        }
        s
    }

    /// Walk length used when embedding level `p` (walks run on level `p−1`).
    pub fn level_walk_len(&self, vnodes: usize, p: u32) -> u32 {
        let s = self
            .expected_part_size(vnodes, p.saturating_sub(1))
            .max(2.0);
        self.level_walk_factor * (s.log2().ceil() as u32 + 1)
    }

    /// Walks started per virtual node when embedding a non-zero level.
    pub fn walks_per_vnode(&self) -> usize {
        ((self.walk_surplus * f64::from(self.beta) * self.overlay_degree as f64).ceil() as usize)
            .max(self.overlay_degree)
    }

    /// Validates field ranges against the target graph.
    ///
    /// # Errors
    ///
    /// [`EmbedError::InvalidConfig`] with the violated constraint.
    pub fn validate(&self, g: &Graph) -> Result<()> {
        let fail = |reason: String| Err(EmbedError::InvalidConfig { reason });
        if self.beta < 2 {
            return fail(format!("beta = {} must be ≥ 2", self.beta));
        }
        if self.levels == 0 {
            return fail("levels must be ≥ 1".into());
        }
        if self.overlay_degree == 0 {
            return fail("overlay_degree must be ≥ 1".into());
        }
        if self.level0_walks < self.overlay_degree {
            return fail(format!(
                "level0_walks = {} must be ≥ overlay_degree = {}",
                self.level0_walks, self.overlay_degree
            ));
        }
        if self.tau_mix == 0 {
            return fail("tau_mix must be ≥ 1".into());
        }
        if self.walk_surplus.is_nan() || self.walk_surplus < 1.0 {
            return fail(format!("walk_surplus = {} must be ≥ 1", self.walk_surplus));
        }
        if self.independence == 0 {
            return fail("independence must be ≥ 1".into());
        }
        if self.portal_walks == 0 {
            return fail("portal_walks must be ≥ 1".into());
        }
        let vnodes = g.volume();
        let bottom = self.expected_part_size(vnodes, self.levels);
        if bottom < 2.0 {
            return fail(format!(
                "β^levels = {}^{} leaves expected bottom parts of size {bottom:.2} < 2; \
                 lower levels or beta",
                self.beta, self.levels
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amt_graphs::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn auto_config_validates() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = generators::random_regular(128, 6, &mut rng).unwrap();
        let cfg = HierarchyConfig::auto(&g, 40, 7);
        cfg.validate(&g).unwrap();
        assert!(cfg.beta >= 2);
        assert!(cfg.levels >= 1);
    }

    #[test]
    fn validation_catches_bad_fields() {
        let g = generators::ring(16);
        let base = HierarchyConfig::auto(&g, 10, 0);
        let mut c = base.clone();
        c.beta = 1;
        assert!(c.validate(&g).is_err());
        let mut c = base.clone();
        c.levels = 0;
        assert!(c.validate(&g).is_err());
        let mut c = base.clone();
        c.level0_walks = 0;
        assert!(c.validate(&g).is_err());
        let mut c = base.clone();
        c.tau_mix = 0;
        assert!(c.validate(&g).is_err());
        let mut c = base;
        c.levels = 20; // bottom parts would be far below size 2
        assert!(c.validate(&g).is_err());
    }

    #[test]
    fn derived_quantities_behave() {
        let g = generators::ring(64);
        let cfg = HierarchyConfig::auto(&g, 10, 0);
        let vn = g.volume();
        assert!(cfg.expected_part_size(vn, 0) as usize == vn);
        assert!(cfg.expected_part_size(vn, 1) < vn as f64);
        assert!(cfg.level_walk_len(vn, 1) >= 2);
        assert!(cfg.walks_per_vnode() >= cfg.overlay_degree);
    }
}
