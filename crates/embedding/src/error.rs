//! Error type for hierarchy construction.

use std::fmt;

/// Errors produced while building or using the hierarchical embedding.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum EmbedError {
    /// The base graph failed a structural requirement.
    Graph(amt_graphs::GraphError),
    /// A configuration field was out of range.
    InvalidConfig {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// The overlay at some level lacked the expansion needed to connect a
    /// part or find a portal, even after fallbacks. Raising
    /// `overlay_degree` or lowering `levels` resolves this.
    InsufficientExpansion {
        /// Hierarchy level at which construction failed.
        level: u32,
        /// What could not be constructed.
        what: String,
    },
}

impl fmt::Display for EmbedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmbedError::Graph(e) => write!(f, "base graph unsuitable: {e}"),
            EmbedError::InvalidConfig { reason } => write!(f, "invalid hierarchy config: {reason}"),
            EmbedError::InsufficientExpansion { level, what } => write!(
                f,
                "insufficient expansion at level {level}: {what} \
                 (raise overlay_degree or lower levels)"
            ),
        }
    }
}

impl std::error::Error for EmbedError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EmbedError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<amt_graphs::GraphError> for EmbedError {
    fn from(e: amt_graphs::GraphError) -> Self {
        EmbedError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = EmbedError::from(amt_graphs::GraphError::Disconnected);
        assert!(e.to_string().contains("not connected"));
        assert!(std::error::Error::source(&e).is_some());
        let e = EmbedError::InsufficientExpansion {
            level: 2,
            what: "portal 3→5".into(),
        };
        assert!(e.to_string().contains("level 2"));
    }
}
