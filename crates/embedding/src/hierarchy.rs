//! The full hierarchical structure: all overlay levels, the partition, the
//! portal tables, and recursively measured emulation costs.

use crate::{
    dir_key, key_edge, key_is_forward, level0, EmbedError, HierarchyConfig, LevelStats, Overlay,
    PortalEntry, PortalTable, Result, VirtualId, VirtualMap,
};
use amt_congest::PhaseTimings;
use amt_graphs::{traversal, EdgeId, Graph, GraphBuilder, NodeId};
use amt_kwise::PartitionHash;
use amt_walks::{parallel, route_paths, route_paths_schedule, WalkKind, WalkSpec};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};
use std::collections::{HashMap, VecDeque};
use std::time::Instant;

/// The constructed hierarchy of §3.1: overlays `G₀ … G_k` (the last being
/// the bottom complete graphs), the Θ(log n)-wise partition, and portals.
///
/// # Examples
///
/// ```
/// use amt_embedding::{Hierarchy, HierarchyConfig};
/// use amt_graphs::generators;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let g = generators::random_regular(48, 4, &mut rng).unwrap();
/// let mut cfg = HierarchyConfig::auto(&g, 25, 7);
/// cfg.beta = 4;
/// cfg.levels = 1;
/// let h = Hierarchy::build(&g, cfg).unwrap();
/// assert_eq!(h.vnodes(), 2 * g.edge_count());
/// assert!(h.stats.total_base_rounds > 0);
/// ```
pub struct Hierarchy<'g> {
    base: &'g Graph,
    vmap: VirtualMap,
    partition: PartitionHash,
    cfg: HierarchyConfig,
    leaf_of: Vec<u64>,
    /// `β^d` for `d = 0..=levels`.
    pow_beta: Vec<u64>,
    overlays: Vec<Overlay>,
    /// Portal table for partition depth `p` at index `p − 1`.
    portals: Vec<PortalTable>,
    /// `members[d]` maps depth-`d` part index to its virtual nodes.
    members: Vec<Vec<Vec<u32>>>,
    /// Measured base rounds of one full round of each overlay level.
    full_round: Vec<u64>,
    /// Measured construction statistics.
    pub stats: crate::BuildStats,
}

impl<'g> Hierarchy<'g> {
    /// Builds the entire structure for `base` with `cfg`.
    ///
    /// # Errors
    ///
    /// * [`EmbedError::InvalidConfig`] / [`EmbedError::Graph`] for bad input;
    /// * [`EmbedError::InsufficientExpansion`] when an overlay part cannot
    ///   be connected even by fallbacks.
    pub fn build(base: &'g Graph, cfg: HierarchyConfig) -> Result<Self> {
        cfg.validate(base)?;
        base.require_connected()?;
        if cfg.beta > 64 {
            return Err(EmbedError::InvalidConfig {
                reason: format!("beta = {} exceeds the supported maximum of 64", cfg.beta),
            });
        }
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let vmap = VirtualMap::new(base);
        let vnodes = vmap.count();
        let levels = cfg.levels;
        let partition = PartitionHash::new(
            cfg.beta,
            levels,
            cfg.independence,
            cfg.seed ^ 0x9E37_79B9_7F4A_7C15,
        );
        let leaf_of: Vec<u64> = (0..vnodes).map(|v| partition.leaf(v as u64)).collect();
        let mut pow_beta = Vec::with_capacity(levels as usize + 1);
        pow_beta.push(1u64);
        for _ in 0..levels {
            pow_beta.push(pow_beta.last().unwrap() * u64::from(cfg.beta));
        }
        let part_of = |vid: u32, depth: u32| -> u64 {
            leaf_of[vid as usize] / pow_beta[(levels - depth) as usize]
        };
        let label_at =
            |vid: u32, depth: u32| -> u32 { (part_of(vid, depth) % u64::from(cfg.beta)) as u32 };
        let mut members: Vec<Vec<Vec<u32>>> = Vec::with_capacity(levels as usize + 1);
        for d in 0..=levels {
            let mut m = vec![Vec::new(); pow_beta[d as usize] as usize];
            for vid in 0..vnodes as u32 {
                m[part_of(vid, d) as usize].push(vid);
            }
            members.push(m);
        }

        // Shared-randomness dissemination: diameter + pipelined seed words.
        let diam = traversal::diameter_double_sweep(base, NodeId(0)).unwrap_or(0) as u64;
        let budget_bits =
            8 * usize::BITS.saturating_sub((base.len().max(2) - 1).leading_zeros()) as usize;
        let seed_words = partition.seed_bits().div_ceil(budget_bits.max(1)) as u64;
        let seed_broadcast_rounds = diam + seed_words;

        // --- Level 0 ---
        let mut wall = PhaseTimings::new();
        let mut mark = Instant::now();
        let (ov0, mut st0) = level0::build(base, &vmap, &cfg, &mut rng);
        let mut overlays = vec![ov0];
        let mut full_round = vec![Self::full_round_of(&overlays[0], 0, &[])];
        st0.full_round_base_cost = full_round[0];
        let mut level_stats = vec![st0];
        wall.record("level0", mark.elapsed());
        mark = Instant::now();

        // --- Walk-built levels 1 .. levels-1 ---
        for p in 1..levels {
            let (ov, mut st) = Self::build_walk_level(
                &overlays[(p - 1) as usize],
                vnodes,
                p,
                &cfg,
                &part_of,
                &members[p as usize],
                full_round[(p - 1) as usize],
                &mut rng,
            )?;
            full_round.push(Self::full_round_of(&ov, p, &full_round));
            st.full_round_base_cost = full_round[p as usize];
            overlays.push(ov);
            level_stats.push(st);
        }
        wall.record("walk_levels", mark.elapsed());
        mark = Instant::now();

        // --- Bottom level: complete graphs on the depth-`levels` parts ---
        let (ovb, mut stb) = Self::build_bottom(
            &overlays[(levels - 1) as usize],
            vnodes,
            levels,
            &members[levels as usize],
        )?;
        full_round.push(Self::full_round_of(&ovb, levels, &full_round));
        stb.full_round_base_cost = full_round[levels as usize];
        stb.build_base_rounds = full_round[levels as usize];
        overlays.push(ovb);
        level_stats.push(stb);
        wall.record("bottom", mark.elapsed());
        mark = Instant::now();

        // --- Portals for depths 1 ..= levels ---
        let mut portals = Vec::with_capacity(levels as usize);
        let mut portal_base_rounds = Vec::with_capacity(levels as usize);
        let mut portal_fallbacks = 0u64;
        for p in 1..=levels {
            let (table, rounds, fallbacks) = Self::build_portal_table(
                &overlays,
                vnodes,
                p,
                &cfg,
                &part_of,
                &label_at,
                &members,
                &full_round,
                &mut rng,
            );
            portals.push(table);
            portal_base_rounds.push(rounds);
            portal_fallbacks += fallbacks;
        }
        wall.record("portals", mark.elapsed());

        let mut stats = crate::BuildStats {
            levels: level_stats,
            portal_base_rounds,
            portal_fallbacks,
            seed_broadcast_rounds,
            total_base_rounds: 0,
            wall,
        };
        stats.recompute_total();

        Ok(Hierarchy {
            base,
            vmap,
            partition,
            cfg,
            leaf_of,
            pow_beta,
            overlays,
            portals,
            members,
            full_round,
            stats,
        })
    }

    /// Measured base-round cost of one full round of `overlay` (every edge
    /// carrying one message in each direction). For level ≥ 1, the schedule
    /// runs in the level-below key space and each of its rounds is charged
    /// one full round of that level (the sequential emulation model of
    /// Lemma 3.1).
    fn full_round_of(overlay: &Overlay, level: u32, full_round: &[u64]) -> u64 {
        let g = overlay.graph();
        let mut paths = Vec::with_capacity(2 * g.edge_count());
        for (e, _, _) in g.edges() {
            paths.push(overlay.key_path(e, true));
            paths.push(overlay.key_path(e, false));
        }
        let rounds = route_paths(&paths, 1).rounds.max(1);
        if level == 0 {
            rounds
        } else {
            rounds * full_round[(level - 1) as usize]
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn build_walk_level(
        prev: &Overlay,
        vnodes: usize,
        p: u32,
        cfg: &HierarchyConfig,
        part_of: &impl Fn(u32, u32) -> u64,
        members_p: &[Vec<u32>],
        prev_full_round: u64,
        rng: &mut StdRng,
    ) -> Result<(Overlay, LevelStats)> {
        let gp = prev.graph();
        let walk_len = cfg.level_walk_len(vnodes, p);
        let wpv = cfg.walks_per_vnode();
        let mut specs = Vec::with_capacity(vnodes * wpv);
        for vid in 0..vnodes as u32 {
            for _ in 0..wpv {
                specs.push(WalkSpec {
                    start: NodeId(vid),
                    steps: walk_len,
                });
            }
        }
        let run = parallel::run_parallel_walks(gp, WalkKind::DeltaRegular, &specs, rng);

        let mut builder = GraphBuilder::with_capacity(vnodes, vnodes * cfg.overlay_degree);
        let mut edge_paths: Vec<Vec<u64>> = Vec::new();
        let mut kept: Vec<usize> = Vec::new();
        let mut fallback_edges = 0usize;
        let mut chosen: Vec<u32> = Vec::with_capacity(cfg.overlay_degree);
        for vid in 0..vnodes as u32 {
            chosen.clear();
            let my_part = part_of(vid, p);
            for w in 0..wpv {
                if chosen.len() >= cfg.overlay_degree {
                    break;
                }
                let idx = vid as usize * wpv + w;
                let t = run.trajectory(idx);
                let end = t.end().0;
                if end == vid || part_of(end, p) != my_part || chosen.contains(&end) {
                    continue;
                }
                chosen.push(end);
                builder.add_edge(vid as usize, end as usize);
                edge_paths.push(t.dir_keys().collect());
                kept.push(idx);
            }
            if chosen.is_empty() {
                // Connectivity fallback: BFS-embed an edge to a random
                // same-part virtual node.
                let peers = &members_p[my_part as usize];
                let mut order: Vec<u32> = peers.iter().copied().filter(|&w| w != vid).collect();
                order.shuffle(rng);
                let mut linked = false;
                for w in order.into_iter().take(8) {
                    if let Some(path) = bfs_edge_path(gp, NodeId(vid), NodeId(w)) {
                        builder.add_edge(vid as usize, w as usize);
                        edge_paths.push(path);
                        fallback_edges += 1;
                        linked = true;
                        break;
                    }
                }
                if !linked && peers.len() > 1 {
                    return Err(EmbedError::InsufficientExpansion {
                        level: p,
                        what: format!("virtual node {vid} could not join part {my_part}"),
                    });
                }
            }
        }

        let lower_rounds = 2 * run.stats.rounds + run.replay_rounds(&kept);
        let graph = builder.build();
        let (avg_path_len, max_path_len) = {
            let total: usize = edge_paths.iter().map(Vec::len).sum();
            let max = edge_paths.iter().map(Vec::len).max().unwrap_or(0);
            (
                if edge_paths.is_empty() {
                    0.0
                } else {
                    total as f64 / edge_paths.len() as f64
                },
                max,
            )
        };
        let degrees: Vec<usize> = graph.nodes().map(|v| graph.degree(v)).collect();
        let st = LevelStats {
            level: p,
            edges: graph.edge_count(),
            fallback_edges,
            avg_path_len,
            max_path_len,
            walk_rounds_lower: lower_rounds,
            full_round_base_cost: 0,
            build_base_rounds: lower_rounds * prev_full_round,
            min_degree: degrees.iter().copied().min().unwrap_or(0),
            max_degree: degrees.iter().copied().max().unwrap_or(0),
        };
        Ok((Overlay::new(p, graph, edge_paths, fallback_edges), st))
    }

    /// Bottom level: the complete graph on each depth-`levels` part, each
    /// clique edge embedded as a BFS path in the level below (the paper
    /// "just takes the complete graph" at `O(log n)` part size).
    fn build_bottom(
        prev: &Overlay,
        vnodes: usize,
        levels: u32,
        members_bottom: &[Vec<u32>],
    ) -> Result<(Overlay, LevelStats)> {
        let gp = prev.graph();
        let mut builder = GraphBuilder::new(vnodes);
        let mut edge_paths: Vec<Vec<u64>> = Vec::new();
        for part in members_bottom {
            for (i, &a) in part.iter().enumerate() {
                for &b in part.iter().skip(i + 1) {
                    let path = bfs_edge_path(gp, NodeId(a), NodeId(b)).ok_or_else(|| {
                        EmbedError::InsufficientExpansion {
                            level: levels,
                            what: format!("bottom pair ({a}, {b}) unreachable in level below"),
                        }
                    })?;
                    builder.add_edge(a as usize, b as usize);
                    edge_paths.push(path);
                }
            }
        }
        let graph = builder.build();
        let (avg_path_len, max_path_len) = {
            let total: usize = edge_paths.iter().map(Vec::len).sum();
            let max = edge_paths.iter().map(Vec::len).max().unwrap_or(0);
            (
                if edge_paths.is_empty() {
                    0.0
                } else {
                    total as f64 / edge_paths.len() as f64
                },
                max,
            )
        };
        let degrees: Vec<usize> = graph.nodes().map(|v| graph.degree(v)).collect();
        let st = LevelStats {
            level: levels,
            edges: graph.edge_count(),
            fallback_edges: 0,
            avg_path_len,
            max_path_len,
            walk_rounds_lower: 0,
            full_round_base_cost: 0,
            build_base_rounds: 0, // set to the full-round cost by the caller
            min_degree: degrees.iter().copied().min().unwrap_or(0),
            max_degree: degrees.iter().copied().max().unwrap_or(0),
        };
        Ok((Overlay::new(levels, graph, edge_paths, 0), st))
    }

    #[allow(clippy::too_many_arguments)]
    fn build_portal_table(
        overlays: &[Overlay],
        vnodes: usize,
        p: u32,
        cfg: &HierarchyConfig,
        part_of: &impl Fn(u32, u32) -> u64,
        label_at: &impl Fn(u32, u32) -> u32,
        members: &[Vec<Vec<u32>>],
        full_round: &[u64],
        rng: &mut StdRng,
    ) -> (PortalTable, u64, u64) {
        let beta = cfg.beta;
        let gp = overlays[p as usize].graph();
        let prev = &overlays[(p - 1) as usize];
        // Boundary mask: bit j set iff the node has a prev-level neighbor in
        // the sibling part with level-p label j (same parent is automatic:
        // prev-level edges stay within depth-(p−1) parts, and depth 0 is the
        // whole vertex set).
        let mut mask = vec![0u64; vnodes];
        for vid in 0..vnodes as u32 {
            for (w, _) in prev.graph().neighbors(NodeId(vid)) {
                if p >= 2 && part_of(w.0, p - 1) != part_of(vid, p - 1) {
                    continue;
                }
                mask[vid as usize] |= 1u64 << label_at(w.0, p);
            }
        }

        // One batched discovery run: portal_walks · β walks per node on G_p.
        let walk_len = cfg.level_walk_len(vnodes, p).max(2);
        let wpv = cfg.portal_walks * beta as usize;
        let mut specs = Vec::with_capacity(vnodes * wpv);
        for vid in 0..vnodes as u32 {
            for _ in 0..wpv {
                specs.push(WalkSpec {
                    start: NodeId(vid),
                    steps: walk_len,
                });
            }
        }
        let run = parallel::run_parallel_walks(gp, WalkKind::DeltaRegular, &specs, rng);
        let gp_rounds = 2 * run.stats.rounds;

        let mut table = PortalTable::new(p, beta, vnodes);
        let mut fallbacks = 0u64;
        // Lazily built uniform-boundary lists per (part, label).
        let mut boundary_cache: HashMap<(u64, u32), Vec<u32>> = HashMap::new();
        for vid in 0..vnodes as u32 {
            let my_part = part_of(vid, p);
            let my_label = label_at(vid, p);
            let parent = my_part / u64::from(beta);
            for j in 0..beta {
                if j == my_label {
                    continue;
                }
                let target_part = parent * u64::from(beta) + u64::from(j);
                if members[p as usize][target_part as usize].is_empty() {
                    continue; // no destinations there, portal unneeded
                }
                // First successful walk endpoint with a boundary edge to j.
                let mut portal: Option<u32> = None;
                for w in 0..wpv {
                    let end = run.trajectory(vid as usize * wpv + w).end().0;
                    if mask[end as usize] & (1u64 << j) != 0 && part_of(end, p) == my_part {
                        portal = Some(end);
                        break;
                    }
                }
                let portal = portal.or_else(|| {
                    // Uniform fallback over the boundary set.
                    let list = boundary_cache.entry((my_part, j)).or_insert_with(|| {
                        members[p as usize][my_part as usize]
                            .iter()
                            .copied()
                            .filter(|&u| mask[u as usize] & (1u64 << j) != 0)
                            .collect()
                    });
                    if list.is_empty() {
                        None
                    } else {
                        fallbacks += 1;
                        Some(list[rng.random_range(0..list.len())])
                    }
                });
                let Some(t_prime) = portal else { continue };
                // Pick a random qualifying boundary edge of the portal.
                let candidates: Vec<(EdgeId, NodeId)> = prev
                    .graph()
                    .neighbors(NodeId(t_prime))
                    .filter(|(w, _)| {
                        label_at(w.0, p) == j
                            && (p < 2 || part_of(w.0, p - 1) == part_of(t_prime, p - 1))
                    })
                    .map(|(w, e)| (e, w))
                    .collect();
                if candidates.is_empty() {
                    continue;
                }
                let (edge, target) = candidates[rng.random_range(0..candidates.len())];
                let (a, _) = prev.graph().endpoints(edge);
                table.set(
                    VirtualId(vid),
                    j,
                    PortalEntry {
                        portal: VirtualId(t_prime),
                        edge,
                        forward: a.0 == t_prime,
                        target: VirtualId(target.0),
                    },
                );
            }
        }
        let base_rounds = gp_rounds * full_round[p as usize];
        (table, base_rounds, fallbacks)
    }

    // -----------------------------------------------------------------
    // Accessors
    // -----------------------------------------------------------------

    /// The base graph this hierarchy is embedded on.
    pub fn base(&self) -> &Graph {
        self.base
    }

    /// The virtual-node map.
    pub fn vmap(&self) -> &VirtualMap {
        &self.vmap
    }

    /// The shared partition hash.
    pub fn partition(&self) -> &PartitionHash {
        &self.partition
    }

    /// The configuration the hierarchy was built with.
    pub fn cfg(&self) -> &HierarchyConfig {
        &self.cfg
    }

    /// Number of virtual nodes (`2m`).
    pub fn vnodes(&self) -> usize {
        self.vmap.count()
    }

    /// Partition depth (`k`); overlays exist for levels `0 ..= depth`.
    pub fn depth(&self) -> u32 {
        self.cfg.levels
    }

    /// The overlay at `level` (0 = `G₀`, `depth()` = bottom cliques).
    pub fn overlay(&self, level: u32) -> &Overlay {
        &self.overlays[level as usize]
    }

    /// Measured base rounds of one full round of `level`.
    pub fn full_round_cost(&self, level: u32) -> u64 {
        self.full_round[level as usize]
    }

    /// The depth-`d` part containing `vid`.
    pub fn part_of(&self, vid: VirtualId, d: u32) -> u64 {
        self.leaf_of[vid.index()] / self.pow_beta[(self.cfg.levels - d) as usize]
    }

    /// The level-`d` label (`0..β`) of `vid` (the last digit of its
    /// depth-`d` part index).
    pub fn label_at(&self, vid: VirtualId, d: u32) -> u32 {
        (self.part_of(vid, d) % u64::from(self.cfg.beta)) as u32
    }

    /// Virtual nodes of the given depth-`d` part.
    pub fn members(&self, d: u32, part: u64) -> &[u32] {
        &self.members[d as usize][part as usize]
    }

    /// Number of parts at depth `d` (`β^d`, including empty ones).
    pub fn parts_at(&self, d: u32) -> u64 {
        self.pow_beta[d as usize]
    }

    /// The portal of `vid` towards the depth-`p` sibling with label `j`.
    pub fn portal(&self, p: u32, vid: VirtualId, j: u32) -> Option<&PortalEntry> {
        self.portals[(p - 1) as usize].get(vid, j)
    }

    /// Measured base-round cost of delivering `batch` (directed level-`p`
    /// edge crossings), pricing each schedule round at the full-round cost
    /// of the level below (the sequential emulation model).
    pub fn emulate_batch(&self, level: u32, batch: &[(EdgeId, bool)]) -> u64 {
        if batch.is_empty() {
            return 0;
        }
        let ov = &self.overlays[level as usize];
        let paths: Vec<Vec<u64>> = batch.iter().map(|&(e, f)| ov.key_path(e, f)).collect();
        let rounds = route_paths(&paths, 1).rounds;
        if level == 0 {
            rounds
        } else {
            rounds * self.full_round[(level - 1) as usize]
        }
    }

    /// Measured base-round cost of delivering messages along *multi-hop*
    /// paths of level-`p` edges: the level-`p` store-and-forward schedule is
    /// computed first, then each of its rounds (a batch of single crossings)
    /// is priced by [`Hierarchy::emulate_batch`].
    pub fn emulate_paths(&self, level: u32, paths: &[Vec<(EdgeId, bool)>]) -> u64 {
        if paths.iter().all(Vec::is_empty) {
            return 0;
        }
        let key_paths: Vec<Vec<u64>> = paths
            .iter()
            .map(|p| p.iter().map(|&(e, f)| dir_key(e, f)).collect())
            .collect();
        let (_, schedule) = route_paths_schedule(&key_paths, 1);
        schedule
            .iter()
            .map(|keys| {
                let batch: Vec<(EdgeId, bool)> = keys
                    .iter()
                    .map(|&k| (key_edge(k), key_is_forward(k)))
                    .collect();
                self.emulate_batch(level, &batch)
            })
            .sum()
    }

    /// Like [`Hierarchy::emulate_paths`], but with every schedule round
    /// priced by exact recursive expansion ([`Hierarchy::emulate_batch_exact`])
    /// instead of the conservative full-round factoring. Tighter but slower
    /// to simulate.
    pub fn emulate_paths_exact(&self, level: u32, paths: &[Vec<(EdgeId, bool)>]) -> u64 {
        if paths.iter().all(Vec::is_empty) {
            return 0;
        }
        let key_paths: Vec<Vec<u64>> = paths
            .iter()
            .map(|p| p.iter().map(|&(e, f)| dir_key(e, f)).collect())
            .collect();
        let (_, schedule) = route_paths_schedule(&key_paths, 1);
        schedule
            .iter()
            .map(|keys| {
                let batch: Vec<(EdgeId, bool)> = keys
                    .iter()
                    .map(|&k| (key_edge(k), key_is_forward(k)))
                    .collect();
                self.emulate_batch_exact(level, &batch)
            })
            .sum()
    }

    /// Exact recursive emulation: every schedule round of level-`p` traffic
    /// is expanded into an actual level-`(p−1)` batch and priced
    /// recursively, down to base-graph scheduling. Costs at most
    /// [`Hierarchy::emulate_batch`]; exponentially slower to simulate, meant
    /// for validation at small scale.
    pub fn emulate_batch_exact(&self, level: u32, batch: &[(EdgeId, bool)]) -> u64 {
        if batch.is_empty() {
            return 0;
        }
        let ov = &self.overlays[level as usize];
        let paths: Vec<Vec<u64>> = batch.iter().map(|&(e, f)| ov.key_path(e, f)).collect();
        if level == 0 {
            return route_paths(&paths, 1).rounds;
        }
        let (_, schedule) = route_paths_schedule(&paths, 1);
        schedule
            .iter()
            .map(|keys| {
                let sub: Vec<(EdgeId, bool)> = keys
                    .iter()
                    .map(|&k| (key_edge(k), key_is_forward(k)))
                    .collect();
                self.emulate_batch_exact(level - 1, &sub)
            })
            .sum()
    }

    /// BFS path between two virtual nodes in the `level` overlay, as
    /// directed edge crossings (used by the router's portal-miss fallback).
    pub fn bfs_overlay_path(
        &self,
        level: u32,
        from: VirtualId,
        to: VirtualId,
    ) -> Option<Vec<(EdgeId, bool)>> {
        let g = self.overlays[level as usize].graph();
        bfs_edge_path(g, NodeId(from.0), NodeId(to.0)).map(|keys| {
            keys.into_iter()
                .map(|k| (key_edge(k), key_is_forward(k)))
                .collect()
        })
    }
}

/// BFS path from `from` to `to` as directed keys, or `None` if unreachable.
fn bfs_edge_path(g: &Graph, from: NodeId, to: NodeId) -> Option<Vec<u64>> {
    if from == to {
        return Some(Vec::new());
    }
    let mut parent: Vec<Option<(u32, u32)>> = vec![None; g.len()];
    let mut seen = vec![false; g.len()];
    seen[from.index()] = true;
    let mut queue = VecDeque::new();
    queue.push_back(from);
    'outer: while let Some(v) = queue.pop_front() {
        for (w, e) in g.neighbors(v) {
            if !seen[w.index()] {
                seen[w.index()] = true;
                parent[w.index()] = Some((v.0, e.0));
                if w == to {
                    break 'outer;
                }
                queue.push_back(w);
            }
        }
    }
    if !seen[to.index()] {
        return None;
    }
    let mut keys = Vec::new();
    let mut cur = to;
    while cur != from {
        let (pv, pe) = parent[cur.index()].expect("path reconstruction");
        let e = EdgeId(pe);
        let (a, _) = g.endpoints(e);
        keys.push(dir_key(e, a.0 == pv));
        cur = NodeId(pv);
    }
    keys.reverse();
    Some(keys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use amt_graphs::generators;

    fn small_hierarchy(seed: u64) -> (Graph, HierarchyConfig) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::random_regular(64, 6, &mut rng).unwrap();
        let mut cfg = HierarchyConfig::auto(&g, 30, seed);
        cfg.beta = 4;
        cfg.levels = 2;
        cfg.overlay_degree = 5;
        cfg.level0_walks = 10;
        cfg.walk_surplus = 2.0;
        (g, cfg)
    }

    #[test]
    fn builds_all_levels_with_connected_parts() {
        let (g, cfg) = small_hierarchy(11);
        let h = Hierarchy::build(&g, cfg).unwrap();
        assert_eq!(h.vnodes(), 2 * g.edge_count());
        assert_eq!(h.depth(), 2);
        // Overlays 0, 1, 2 (bottom) exist.
        for level in 0..=2u32 {
            assert!(
                h.overlay(level).graph().edge_count() > 0,
                "level {level} empty"
            );
        }
        assert!(h.stats.total_base_rounds > 0);
        assert!(h.full_round_cost(1) >= h.full_round_cost(0));
    }

    #[test]
    fn level_edges_stay_within_parts() {
        let (g, cfg) = small_hierarchy(13);
        let h = Hierarchy::build(&g, cfg).unwrap();
        for p in 1..=2u32 {
            for (_, a, b) in h.overlay(p).graph().edges() {
                assert_eq!(
                    h.part_of(VirtualId(a.0), p),
                    h.part_of(VirtualId(b.0), p),
                    "level-{p} edge crosses parts"
                );
            }
        }
    }

    #[test]
    fn level_paths_are_valid_in_level_below() {
        let (g, cfg) = small_hierarchy(17);
        let h = Hierarchy::build(&g, cfg).unwrap();
        for p in 1..=2u32 {
            let ov = h.overlay(p);
            let below = h.overlay(p - 1).graph();
            for (e, a, b) in ov.graph().edges() {
                let mut here = a;
                for key in ov.key_path(e, true) {
                    let be = key_edge(key);
                    let (x, y) = below.endpoints(be);
                    let (from, to) = if key_is_forward(key) { (x, y) } else { (y, x) };
                    assert_eq!(from, here, "discontinuous path at level {p}");
                    here = to;
                }
                assert_eq!(here, b, "level-{p} path ends wrong");
            }
        }
    }

    #[test]
    fn bottom_parts_are_cliques() {
        let (g, cfg) = small_hierarchy(19);
        let h = Hierarchy::build(&g, cfg).unwrap();
        let bottom = h.overlay(h.depth()).graph();
        for part in 0..h.parts_at(h.depth()) {
            let mem = h.members(h.depth(), part);
            for (i, &a) in mem.iter().enumerate() {
                for &b in mem.iter().skip(i + 1) {
                    assert!(
                        h.overlay(h.depth())
                            .edge_between(VirtualId(a), VirtualId(b))
                            .is_some(),
                        "missing clique edge ({a},{b}) in part {part}"
                    );
                }
            }
            let _ = bottom;
        }
    }

    #[test]
    fn portals_cross_into_the_right_parts() {
        let (g, cfg) = small_hierarchy(23);
        let beta = cfg.beta;
        let h = Hierarchy::build(&g, cfg).unwrap();
        let mut present = 0usize;
        for p in 1..=2u32 {
            for vid in 0..h.vnodes() as u32 {
                let my = h.part_of(VirtualId(vid), p);
                let parent = my / u64::from(beta);
                for j in 0..beta {
                    let Some(e) = h.portal(p, VirtualId(vid), j) else {
                        continue;
                    };
                    present += 1;
                    // Portal sits in the source part.
                    assert_eq!(h.part_of(e.portal, p), my);
                    // Target lands in the sibling with label j, same parent.
                    assert_eq!(
                        h.part_of(e.target, p),
                        parent * u64::from(beta) + u64::from(j)
                    );
                    // The stored edge actually connects portal and target in
                    // the level below.
                    let below = h.overlay(p - 1).graph();
                    let (x, y) = below.endpoints(e.edge);
                    let (from, to) = if e.forward { (x, y) } else { (y, x) };
                    assert_eq!(from.0, e.portal.0);
                    assert_eq!(to.0, e.target.0);
                }
            }
        }
        assert!(present > 0, "no portals were built");
    }

    #[test]
    fn emulate_batch_exact_is_bounded_by_factored() {
        let (g, cfg) = small_hierarchy(29);
        let h = Hierarchy::build(&g, cfg).unwrap();
        for level in 0..=2u32 {
            let gp = h.overlay(level).graph();
            let batch: Vec<(EdgeId, bool)> =
                gp.edges().take(10).map(|(e, _, _)| (e, true)).collect();
            let exact = h.emulate_batch_exact(level, &batch);
            let factored = h.emulate_batch(level, &batch);
            assert!(exact > 0);
            assert!(
                exact <= factored,
                "level {level}: exact {exact} > factored {factored}"
            );
        }
    }

    #[test]
    fn emulation_cost_grows_with_level() {
        let (g, cfg) = small_hierarchy(31);
        let h = Hierarchy::build(&g, cfg).unwrap();
        // One edge crossing at level p should cost at least as much as the
        // cheapest crossing at level 0 (paths expand through lower levels).
        let e0 = h
            .overlay(0)
            .graph()
            .edges()
            .next()
            .map(|(e, _, _)| (e, true))
            .unwrap();
        let c0 = h.emulate_batch_exact(0, &[e0]);
        let e2 = h
            .overlay(2)
            .graph()
            .edges()
            .next()
            .map(|(e, _, _)| (e, true))
            .unwrap();
        let c2 = h.emulate_batch_exact(2, &[e2]);
        assert!(c2 >= c0.min(1), "c2 = {c2}, c0 = {c0}");
    }

    #[test]
    fn disconnected_base_rejected() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let cfg = HierarchyConfig::auto(&g, 5, 0);
        assert!(matches!(
            Hierarchy::build(&g, cfg),
            Err(EmbedError::Graph(_))
        ));
    }

    #[test]
    fn deterministic_given_seed() {
        let (g, cfg) = small_hierarchy(37);
        let h1 = Hierarchy::build(&g, cfg.clone()).unwrap();
        let h2 = Hierarchy::build(&g, cfg).unwrap();
        assert_eq!(h1.stats.total_base_rounds, h2.stats.total_base_rounds);
        assert_eq!(
            h1.overlay(1).graph().edge_count(),
            h2.overlay(1).graph().edge_count()
        );
    }

    #[test]
    fn bfs_edge_path_follows_graph() {
        let g = generators::ring(8);
        let path = bfs_edge_path(&g, NodeId(0), NodeId(3)).unwrap();
        assert_eq!(path.len(), 3);
        assert!(bfs_edge_path(&g, NodeId(2), NodeId(2)).unwrap().is_empty());
        let g2 = Graph::from_edges(3, &[(0, 1)]).unwrap();
        assert!(bfs_edge_path(&g2, NodeId(0), NodeId(2)).is_none());
    }
}
