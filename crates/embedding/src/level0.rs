//! Level-0 overlay construction (§3.1.1): embedding an Erdős–Rényi-like
//! random graph `G₀` on the virtual nodes via parallel lazy walks of length
//! `τ_mix`.

use crate::{HierarchyConfig, LevelStats, Overlay, VirtualId, VirtualMap};
use amt_graphs::{Graph, GraphBuilder};
use amt_walks::{parallel, WalkKind, WalkSpec};
use rand::{Rng, RngExt};

/// Builds `G₀` and reports measured construction cost in base rounds.
///
/// Each virtual node starts `cfg.level0_walks` lazy walks of `cfg.tau_mix`
/// steps from its owner. Walk endpoints land (approximately) at the
/// stationary distribution, i.e. uniformly over virtual nodes; each virtual
/// node keeps up to `cfg.overlay_degree` walks with **distinct** endpoints
/// as its out-edges, each edge remembering the walk's base-graph path. The
/// cost counts the forward run, the reverse run (to inform sources of their
/// endpoints) and the forward replay of kept walks (to inform endpoints of
/// their in-edges), exactly as in the paper.
pub fn build<R: Rng>(
    g: &Graph,
    vmap: &VirtualMap,
    cfg: &HierarchyConfig,
    rng: &mut R,
) -> (Overlay, LevelStats) {
    let vnodes = vmap.count();
    let walks = cfg.level0_walks;
    let mut specs = Vec::with_capacity(vnodes * walks);
    for vid in 0..vnodes {
        let owner = vmap.owner(VirtualId(vid as u32));
        for _ in 0..walks {
            specs.push(WalkSpec {
                start: owner,
                steps: cfg.tau_mix,
            });
        }
    }
    let run = parallel::run_parallel_walks(g, WalkKind::Lazy, &specs, rng);

    let mut builder = GraphBuilder::with_capacity(vnodes, vnodes * cfg.overlay_degree);
    let mut edge_paths: Vec<Vec<u64>> = Vec::with_capacity(vnodes * cfg.overlay_degree);
    let mut kept_walks: Vec<usize> = Vec::with_capacity(vnodes * cfg.overlay_degree);
    let mut chosen: Vec<u32> = Vec::with_capacity(cfg.overlay_degree);
    for vid in 0..vnodes {
        chosen.clear();
        for w in 0..walks {
            if chosen.len() >= cfg.overlay_degree {
                break;
            }
            let idx = vid * walks + w;
            let t = run.trajectory(idx);
            let end_node = t.end();
            // The token lands on a uniformly random virtual slot of the node
            // it stopped at.
            let slot = rng.random_range(0..vmap.slot_count(end_node));
            let target = vmap.vid(end_node, slot).0;
            if target == vid as u32 || chosen.contains(&target) {
                continue;
            }
            chosen.push(target);
            builder.add_edge(vid, target as usize);
            // The arena's directed edge keys are bit-compatible with
            // `dir_key`, so the embedded path is a direct copy of the log.
            edge_paths.push(t.dir_keys().collect());
            kept_walks.push(idx);
        }
    }

    // Cost: forward + reverse of all walks, then forward replay of the kept
    // walks to inform the in-edge endpoints.
    let base_rounds = run.stats.rounds + run.reverse_rounds() + run.replay_rounds(&kept_walks);

    let graph = builder.build();
    let (avg_path_len, max_path_len) = {
        let total: usize = edge_paths.iter().map(Vec::len).sum();
        let max = edge_paths.iter().map(Vec::len).max().unwrap_or(0);
        (
            if edge_paths.is_empty() {
                0.0
            } else {
                total as f64 / edge_paths.len() as f64
            },
            max,
        )
    };
    let degrees: Vec<usize> = graph.nodes().map(|v| graph.degree(v)).collect();
    let stats = LevelStats {
        level: 0,
        edges: graph.edge_count(),
        fallback_edges: 0,
        avg_path_len,
        max_path_len,
        walk_rounds_lower: base_rounds,
        full_round_base_cost: 0, // filled by the hierarchy builder
        build_base_rounds: base_rounds,
        min_degree: degrees.iter().copied().min().unwrap_or(0),
        max_degree: degrees.iter().copied().max().unwrap_or(0),
    };
    (Overlay::new(0, graph, edge_paths, 0), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use amt_graphs::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(n: usize, deg: usize, seed: u64) -> (Graph, VirtualMap, HierarchyConfig) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::random_regular(n, deg, &mut rng).unwrap();
        let vmap = VirtualMap::new(&g);
        let mut cfg = HierarchyConfig::auto(&g, 30, seed);
        cfg.level0_walks = 8;
        cfg.overlay_degree = 4;
        (g, vmap, cfg)
    }

    #[test]
    fn g0_has_out_degree_for_every_virtual_node() {
        let (g, vmap, cfg) = setup(64, 4, 3);
        let mut rng = StdRng::seed_from_u64(9);
        let (ov, stats) = build(&g, &vmap, &cfg, &mut rng);
        assert_eq!(ov.graph().len(), vmap.count());
        // Every virtual node kept at least one out-edge (so min degree ≥ 1).
        assert!(stats.min_degree >= 1, "min degree {}", stats.min_degree);
        // Degrees concentrate around 2·overlay_degree.
        assert!(
            stats.max_degree <= 8 * cfg.overlay_degree,
            "max {}",
            stats.max_degree
        );
        assert!(stats.edges >= vmap.count() * 2);
    }

    #[test]
    fn g0_paths_connect_owners() {
        let (g, vmap, cfg) = setup(32, 4, 5);
        let mut rng = StdRng::seed_from_u64(1);
        let (ov, _) = build(&g, &vmap, &cfg, &mut rng);
        for (e, a, b) in ov.graph().edges() {
            let path = ov.key_path(e, true);
            let (src, dst) = (vmap.owner(VirtualId(a.0)), vmap.owner(VirtualId(b.0)));
            // Follow the base-graph path from src; it must end at dst.
            let mut here = src;
            for key in &path {
                let edge = crate::key_edge(*key);
                let (x, y) = g.endpoints(edge);
                let (from, to) = if crate::key_is_forward(*key) {
                    (x, y)
                } else {
                    (y, x)
                };
                assert_eq!(from, here, "path discontinuity on {e:?}");
                here = to;
            }
            assert_eq!(
                here, dst,
                "path of {e:?} ends at {here:?}, expected {dst:?}"
            );
        }
    }

    #[test]
    fn g0_endpoints_are_spread_out() {
        // Endpoint distribution ≈ uniform over virtual nodes: no virtual
        // node should receive a huge share of in-edges.
        let (g, vmap, cfg) = setup(64, 6, 8);
        let mut rng = StdRng::seed_from_u64(2);
        let (ov, _) = build(&g, &vmap, &cfg, &mut rng);
        let max_deg = ov.graph().max_degree();
        let avg = ov.graph().volume() as f64 / ov.graph().len() as f64;
        assert!(
            (max_deg as f64) < 6.0 * avg,
            "overlay max degree {max_deg} vs average {avg}"
        );
    }

    #[test]
    fn construction_cost_scales_with_walks() {
        let (g, vmap, mut cfg) = setup(32, 4, 4);
        let mut rng1 = StdRng::seed_from_u64(1);
        cfg.level0_walks = 4;
        let (_, s_few) = build(&g, &vmap, &cfg, &mut rng1);
        let mut rng2 = StdRng::seed_from_u64(1);
        cfg.level0_walks = 16;
        let (_, s_many) = build(&g, &vmap, &cfg, &mut rng2);
        assert!(
            s_many.build_base_rounds > s_few.build_base_rounds,
            "{} !> {}",
            s_many.build_base_rounds,
            s_few.build_base_rounds
        );
    }
}
