//! The hierarchical embedding of random graphs (§3.1 of the paper).
//!
//! This crate builds the paper's routing structure:
//!
//! 1. **Virtual nodes** — every node `v` of the base graph simulates
//!    `d_G(v)` virtual nodes, `2m` in total ([`VirtualMap`]).
//! 2. **Level-0 overlay `G₀`** — an Erdős–Rényi-like random graph on the
//!    virtual nodes, built from parallel lazy random walks of length
//!    `τ_mix` ([`level0`]); each overlay edge remembers the base-graph walk
//!    path that realizes it.
//! 3. **Recursive levels `G₁ … G_k`** — the virtual nodes are partitioned by
//!    a Θ(log n)-wise independent hash into β parts per level
//!    ([`amt_kwise::PartitionHash`]); each level's random graph connects
//!    nodes within the same part, embedded by 2Δ-regular walks on the
//!    previous level; the bottom level gets complete graphs on its
//!    `O(log n)`-size parts.
//! 4. **Portals** — for every pair of sibling parts, each virtual node
//!    learns a uniformly random boundary node through which messages hop to
//!    the sibling (Lemma 3.3), discovered by random walks.
//!
//! Round costs are **measured**: emulating a batch of level-`p` edge
//! crossings recursively expands into level-`(p−1)` traffic and ultimately
//! into base-graph traffic scheduled by the store-and-forward router of
//! `amt-walks` ([`Hierarchy::emulate_batch`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod error;
mod hierarchy;
mod overlay;
mod portals;
mod stats;
mod virt;

pub mod level0;

pub use config::HierarchyConfig;
pub use error::EmbedError;
pub use hierarchy::Hierarchy;
pub use overlay::{dir_key, key_edge, key_is_forward, Overlay};
pub use portals::{PortalEntry, PortalTable};
pub use stats::{BuildStats, LevelStats};
pub use virt::{VirtualId, VirtualMap};

/// Result alias for embedding operations.
pub type Result<T> = std::result::Result<T, EmbedError>;
