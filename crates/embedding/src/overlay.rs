//! One level of the hierarchy: a virtual-node graph whose edges are
//! embedded as paths in the level below.

use crate::VirtualId;
use amt_graphs::{EdgeId, Graph};

/// Directed capacity key of an overlay (or base) edge: `edge·2 + direction`.
///
/// Direction bit 0 means "from `endpoints(e).0` to `endpoints(e).1`". These
/// keys feed [`amt_walks::route_paths`], giving each edge unit capacity per
/// direction per round — the CONGEST constraint.
#[inline]
pub fn dir_key(e: EdgeId, forward: bool) -> u64 {
    (u64::from(e.0) << 1) | u64::from(!forward)
}

/// The edge behind a directed key.
#[inline]
pub fn key_edge(key: u64) -> EdgeId {
    EdgeId((key >> 1) as u32)
}

/// Whether a directed key points in the edge's forward direction.
#[inline]
pub fn key_is_forward(key: u64) -> bool {
    key & 1 == 0
}

/// A hierarchy level: a graph on the virtual-node id space plus, for every
/// edge, the directed-key path in the level below that realizes it.
///
/// * Level 0 paths are **base-graph** keys (the lazy-walk trajectories of
///   §3.1.1).
/// * Level `p ≥ 1` paths are level-`(p−1)` overlay keys (the 2Δ-regular walk
///   trajectories of §3.1.2, or BFS paths for the bottom complete graphs and
///   fallback edges).
#[derive(Clone, Debug)]
pub struct Overlay {
    level: u32,
    graph: Graph,
    edge_paths: Vec<Vec<u64>>,
    fallback_edges: usize,
}

impl Overlay {
    /// Wraps a constructed level.
    ///
    /// # Panics
    ///
    /// Panics if `edge_paths.len() != graph.edge_count()`.
    pub fn new(level: u32, graph: Graph, edge_paths: Vec<Vec<u64>>, fallback_edges: usize) -> Self {
        assert_eq!(
            edge_paths.len(),
            graph.edge_count(),
            "one embedded path required per overlay edge"
        );
        Overlay {
            level,
            graph,
            edge_paths,
            fallback_edges,
        }
    }

    /// This overlay's level index (0 = `G₀`).
    pub fn level(&self) -> u32 {
        self.level
    }

    /// The overlay topology on the virtual-node id space.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Number of edges created by connectivity fallbacks rather than walks.
    pub fn fallback_edges(&self) -> usize {
        self.fallback_edges
    }

    /// The lower-level key path realizing edge `e`, in the requested
    /// direction (reversing flips both the order and each key's direction).
    pub fn key_path(&self, e: EdgeId, forward: bool) -> Vec<u64> {
        let p = &self.edge_paths[e.index()];
        if forward {
            p.clone()
        } else {
            p.iter().rev().map(|k| k ^ 1).collect()
        }
    }

    /// Raw stored (forward) path length of edge `e`.
    pub fn path_len(&self, e: EdgeId) -> usize {
        self.edge_paths[e.index()].len()
    }

    /// `(average, max)` stored path length over all edges; `(0, 0)` when
    /// edgeless.
    pub fn path_length_stats(&self) -> (f64, usize) {
        if self.edge_paths.is_empty() {
            return (0.0, 0);
        }
        let total: usize = self.edge_paths.iter().map(Vec::len).sum();
        let max = self.edge_paths.iter().map(Vec::len).max().unwrap_or(0);
        (total as f64 / self.edge_paths.len() as f64, max)
    }

    /// Finds an edge between `a` and `b`, returning `(edge, forward)` where
    /// `forward` is the direction `a → b`. Scans `a`'s adjacency.
    pub fn edge_between(&self, a: VirtualId, b: VirtualId) -> Option<(EdgeId, bool)> {
        for (w, e) in self.graph.neighbors(amt_graphs::NodeId(a.0)) {
            if w.0 == b.0 {
                let (x, _) = self.graph.endpoints(e);
                return Some((e, x.0 == a.0));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_roundtrip() {
        let e = EdgeId(5);
        assert_eq!(key_edge(dir_key(e, true)), e);
        assert!(key_is_forward(dir_key(e, true)));
        assert!(!key_is_forward(dir_key(e, false)));
        assert_eq!(dir_key(e, true) ^ 1, dir_key(e, false));
    }

    fn tiny_overlay() -> Overlay {
        // Two virtual nodes joined by one edge embedded as keys [k0, k1].
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        Overlay::new(
            1,
            g,
            vec![vec![dir_key(EdgeId(7), true), dir_key(EdgeId(9), false)]],
            0,
        )
    }

    #[test]
    fn reverse_path_flips_keys_and_order() {
        let ov = tiny_overlay();
        let fwd = ov.key_path(EdgeId(0), true);
        let rev = ov.key_path(EdgeId(0), false);
        assert_eq!(rev.len(), fwd.len());
        assert_eq!(rev[0], fwd[1] ^ 1);
        assert_eq!(rev[1], fwd[0] ^ 1);
    }

    #[test]
    fn edge_between_reports_direction() {
        let ov = tiny_overlay();
        let (e, fwd) = ov.edge_between(VirtualId(0), VirtualId(1)).unwrap();
        assert_eq!(e, EdgeId(0));
        assert!(fwd);
        let (_, back) = ov.edge_between(VirtualId(1), VirtualId(0)).unwrap();
        assert!(!back);
        assert!(ov.edge_between(VirtualId(0), VirtualId(0)).is_none());
    }

    #[test]
    fn stats_and_accessors() {
        let ov = tiny_overlay();
        assert_eq!(ov.level(), 1);
        assert_eq!(ov.path_len(EdgeId(0)), 2);
        assert_eq!(ov.path_length_stats(), (2.0, 2));
        assert_eq!(ov.fallback_edges(), 0);
    }

    #[test]
    #[should_panic(expected = "one embedded path required")]
    fn mismatched_paths_panic() {
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        let _ = Overlay::new(0, g, vec![], 0);
    }
}
