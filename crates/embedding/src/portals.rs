//! Portal tables (Lemma 3.3): for each virtual node and each sibling part,
//! a uniformly random boundary node through which messages hop.

use crate::VirtualId;
use amt_graphs::EdgeId;

/// One portal assignment: route to `portal` inside your own part, then
/// cross `edge` (an edge of the *parent-level* overlay) to land on `target`
/// in the sibling part.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PortalEntry {
    /// The boundary node `t'` within the source's part.
    pub portal: VirtualId,
    /// The parent-level overlay edge crossing into the sibling part.
    pub edge: EdgeId,
    /// Direction of `edge`: `true` when `portal` is `endpoints(edge).0`.
    pub forward: bool,
    /// The landing node `s'` in the sibling part.
    pub target: VirtualId,
}

/// Portals for one partition depth `p`: entry `(vid, j)` is the portal of
/// `vid` towards the sibling part with level-`p` label `j` (under the same
/// depth-`(p−1)` parent).
///
/// `None` entries mean no boundary exists (possible for tiny parts at
/// simulation scale); the router falls back to an explicit BFS path and
/// counts the miss.
#[derive(Clone, Debug)]
pub struct PortalTable {
    depth: u32,
    beta: u32,
    entries: Vec<Option<PortalEntry>>,
}

impl PortalTable {
    /// Creates a table for `vnodes` virtual nodes at partition depth
    /// `depth` with branching `beta`, initially empty.
    pub fn new(depth: u32, beta: u32, vnodes: usize) -> Self {
        PortalTable {
            depth,
            beta,
            entries: vec![None; vnodes * beta as usize],
        }
    }

    /// The partition depth this table serves.
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// The portal of `vid` towards sibling label `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= beta`.
    pub fn get(&self, vid: VirtualId, j: u32) -> Option<&PortalEntry> {
        assert!(j < self.beta, "sibling label {j} out of range");
        self.entries[vid.index() * self.beta as usize + j as usize].as_ref()
    }

    /// Sets the portal of `vid` towards sibling label `j`.
    pub fn set(&mut self, vid: VirtualId, j: u32, entry: PortalEntry) {
        assert!(j < self.beta, "sibling label {j} out of range");
        self.entries[vid.index() * self.beta as usize + j as usize] = Some(entry);
    }

    /// Number of filled entries.
    pub fn filled(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }

    /// Total entry slots (`vnodes × beta`).
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut t = PortalTable::new(1, 4, 3);
        assert_eq!(t.filled(), 0);
        assert_eq!(t.capacity(), 12);
        let e = PortalEntry {
            portal: VirtualId(2),
            edge: EdgeId(5),
            forward: false,
            target: VirtualId(9),
        };
        t.set(VirtualId(1), 3, e);
        assert_eq!(t.get(VirtualId(1), 3), Some(&e));
        assert_eq!(t.get(VirtualId(1), 2), None);
        assert_eq!(t.filled(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn label_bound_checked() {
        let t = PortalTable::new(1, 4, 2);
        let _ = t.get(VirtualId(0), 4);
    }
}
