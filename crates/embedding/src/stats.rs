//! Measured construction statistics.

use amt_congest::PhaseTimings;

/// Per-level construction measurements.
#[derive(Clone, Debug, Default)]
pub struct LevelStats {
    /// Level index.
    pub level: u32,
    /// Overlay edges created.
    pub edges: usize,
    /// Edges created by connectivity fallbacks (BFS-embedded) rather than
    /// successful walks.
    pub fallback_edges: usize,
    /// Average embedded path length (in lower-level edges).
    pub avg_path_len: f64,
    /// Maximum embedded path length.
    pub max_path_len: usize,
    /// Rounds spent by the construction walks, in *lower-level* rounds
    /// (level 0: base rounds; level p: rounds of `G_{p−1}`).
    pub walk_rounds_lower: u64,
    /// Measured base rounds to emulate one *full* round of this level
    /// (every edge carrying one message in each direction), used to convert
    /// level rounds to base rounds.
    pub full_round_base_cost: u64,
    /// Construction cost converted to base-graph rounds.
    pub build_base_rounds: u64,
    /// Minimum / maximum overlay degree over virtual nodes with any edges.
    pub min_degree: usize,
    /// Maximum overlay degree.
    pub max_degree: usize,
}

/// Aggregate construction measurements of a [`crate::Hierarchy`].
#[derive(Clone, Debug, Default)]
pub struct BuildStats {
    /// One entry per overlay level (0 ..= levels).
    pub levels: Vec<LevelStats>,
    /// Base rounds for portal discovery, per partition depth (1 ..= levels).
    pub portal_base_rounds: Vec<u64>,
    /// Portal entries filled by the uniform-boundary fallback instead of a
    /// successful walk.
    pub portal_fallbacks: u64,
    /// Base rounds to broadcast the shared hash seed (`O(D · log n)` model,
    /// measured as diameter × seed words).
    pub seed_broadcast_rounds: u64,
    /// Grand total of measured base rounds for the whole construction.
    pub total_base_rounds: u64,
    /// Host wall-clock time per construction phase (`"level0"`,
    /// `"walk_levels"`, `"bottom"`, `"portals"` entries); excluded from
    /// equality like all [`PhaseTimings`].
    pub wall: PhaseTimings,
}

impl BuildStats {
    /// Sum of per-level build costs plus portals plus seed broadcast.
    pub fn recompute_total(&mut self) {
        self.total_base_rounds = self
            .levels
            .iter()
            .map(|l| l.build_base_rounds)
            .chain(self.portal_base_rounds.iter().copied())
            .sum::<u64>()
            + self.seed_broadcast_rounds;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let mut s = BuildStats {
            levels: vec![
                LevelStats {
                    build_base_rounds: 10,
                    ..Default::default()
                },
                LevelStats {
                    build_base_rounds: 5,
                    ..Default::default()
                },
            ],
            portal_base_rounds: vec![3, 2],
            seed_broadcast_rounds: 4,
            ..Default::default()
        };
        s.recompute_total();
        assert_eq!(s.total_base_rounds, 24);
    }
}
