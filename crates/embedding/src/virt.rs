//! Virtual nodes: each base node `v` simulates `d_G(v)` of them (§3.1.1).

use amt_graphs::{Graph, NodeId};
use std::ops::Range;

/// Identifier of a virtual node, dense in `0..2m`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtualId(pub u32);

impl VirtualId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Debug for VirtualId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<usize> for VirtualId {
    fn from(v: usize) -> Self {
        VirtualId(u32::try_from(v).expect("virtual index exceeds u32::MAX"))
    }
}

/// The assignment of virtual nodes to base nodes: node `v` owns the
/// contiguous slot range `offsets[v] .. offsets[v] + d_G(v)`.
///
/// Virtual-node communication within one owner is free (local memory); all
/// costs arise when messages cross base edges.
///
/// # Examples
///
/// ```
/// use amt_embedding::VirtualMap;
/// use amt_graphs::{Graph, NodeId};
/// let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
/// let vm = VirtualMap::new(&g);
/// assert_eq!(vm.count(), 4);                       // 2m slots
/// assert_eq!(vm.slot_count(NodeId(1)), 2);         // node 1 has degree 2
/// assert_eq!(vm.owner(vm.vid(NodeId(1), 0)), NodeId(1));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VirtualMap {
    offsets: Vec<u32>,
    owner: Vec<u32>,
}

impl VirtualMap {
    /// Builds the map for `g`: `d_G(v)` virtual nodes per node `v`.
    pub fn new(g: &Graph) -> Self {
        let mut offsets = Vec::with_capacity(g.len() + 1);
        let mut owner = Vec::with_capacity(g.volume());
        let mut acc = 0u32;
        offsets.push(0);
        for v in g.nodes() {
            let d = g.degree(v) as u32;
            for _ in 0..d {
                owner.push(v.0);
            }
            acc += d;
            offsets.push(acc);
        }
        VirtualMap { offsets, owner }
    }

    /// Total number of virtual nodes (`2m`).
    #[inline]
    pub fn count(&self) -> usize {
        self.owner.len()
    }

    /// The base node simulating `vid`.
    #[inline]
    pub fn owner(&self, vid: VirtualId) -> NodeId {
        NodeId(self.owner[vid.index()])
    }

    /// The virtual ids owned by base node `v`.
    #[inline]
    pub fn slots(&self, v: NodeId) -> Range<u32> {
        self.offsets[v.index()]..self.offsets[v.index() + 1]
    }

    /// Number of virtual nodes owned by `v` (its degree).
    #[inline]
    pub fn slot_count(&self, v: NodeId) -> usize {
        (self.offsets[v.index() + 1] - self.offsets[v.index()]) as usize
    }

    /// The `slot`-th virtual node of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= slot_count(v)`.
    #[inline]
    pub fn vid(&self, v: NodeId, slot: usize) -> VirtualId {
        let r = self.slots(v);
        let id = r.start as usize + slot;
        assert!(id < r.end as usize, "slot {slot} out of range for {v:?}");
        VirtualId(id as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_covers_two_m_slots() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]).unwrap();
        let vm = VirtualMap::new(&g);
        assert_eq!(vm.count(), 2 * g.edge_count());
        for v in g.nodes() {
            assert_eq!(vm.slot_count(v), g.degree(v));
            for (i, vid) in vm.slots(v).enumerate() {
                assert_eq!(vm.owner(VirtualId(vid)), v);
                assert_eq!(vm.vid(v, i), VirtualId(vid));
            }
        }
    }

    #[test]
    fn slots_are_contiguous_and_disjoint() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let vm = VirtualMap::new(&g);
        let all: Vec<u32> = g.nodes().flat_map(|v| vm.slots(v)).collect();
        assert_eq!(all, (0..vm.count() as u32).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_slot_panics() {
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        let vm = VirtualMap::new(&g);
        let _ = vm.vid(NodeId(0), 1);
    }
}
