//! Structural invariants of the hierarchy across configurations and graph
//! families.

use amt_embedding::{Hierarchy, HierarchyConfig, VirtualId};
use amt_graphs::{generators, EdgeId, Graph, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn cfg_for(g: &Graph, beta: u32, levels: u32, seed: u64) -> HierarchyConfig {
    let mut cfg = HierarchyConfig::auto(g, 25, seed);
    cfg.beta = beta;
    cfg.levels = levels;
    cfg.overlay_degree = 5;
    cfg.level0_walks = 10;
    cfg.walk_surplus = 2.0;
    cfg
}

fn families(seed: u64) -> Vec<(&'static str, Graph)> {
    let mut rng = StdRng::seed_from_u64(seed);
    vec![
        (
            "regular",
            generators::random_regular(48, 6, &mut rng).unwrap(),
        ),
        ("hypercube", generators::hypercube(6)),
        (
            "er",
            generators::connected_erdos_renyi(48, 0.15, 100, &mut rng).unwrap(),
        ),
        (
            "pref-attach",
            generators::preferential_attachment(48, 3, &mut rng).unwrap(),
        ),
    ]
}

#[test]
fn hierarchy_builds_on_every_family() {
    for (name, g) in families(1) {
        let h =
            Hierarchy::build(&g, cfg_for(&g, 4, 2, 5)).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(h.vnodes(), g.volume(), "{name}");
        assert!(h.stats.total_base_rounds > 0, "{name}");
        // Every virtual node appears in exactly one part per depth.
        for d in 0..=h.depth() {
            let mut count = 0usize;
            for part in 0..h.parts_at(d) {
                count += h.members(d, part).len();
            }
            assert_eq!(count, h.vnodes(), "{name}: depth {d} partition incomplete");
        }
    }
}

#[test]
fn members_and_part_of_agree() {
    let (_, g) = families(2).remove(0);
    let h = Hierarchy::build(&g, cfg_for(&g, 4, 2, 7)).unwrap();
    for d in 0..=h.depth() {
        for part in 0..h.parts_at(d) {
            for &vid in h.members(d, part) {
                assert_eq!(h.part_of(VirtualId(vid), d), part);
                assert_eq!(
                    h.label_at(VirtualId(vid), d),
                    (part % u64::from(h.cfg().beta)) as u32
                );
            }
        }
    }
}

#[test]
fn owners_cover_degrees() {
    let (_, g) = families(3).remove(1);
    let h = Hierarchy::build(&g, cfg_for(&g, 4, 1, 9)).unwrap();
    let vmap = h.vmap();
    for v in g.nodes() {
        assert_eq!(vmap.slot_count(v), g.degree(v));
    }
    for vid in 0..h.vnodes() as u32 {
        let owner = vmap.owner(VirtualId(vid));
        assert!(vmap.slots(owner).contains(&vid));
    }
}

#[test]
fn full_round_costs_are_monotone_in_level() {
    let (_, g) = families(4).remove(0);
    let h = Hierarchy::build(&g, cfg_for(&g, 4, 2, 11)).unwrap();
    for level in 1..=h.depth() {
        assert!(
            h.full_round_cost(level) >= h.full_round_cost(level - 1),
            "level {level} full round cheaper than level below"
        );
    }
}

#[test]
fn emulation_of_empty_batches_is_free() {
    let (_, g) = families(5).remove(2);
    let h = Hierarchy::build(&g, cfg_for(&g, 4, 1, 13)).unwrap();
    for level in 0..=h.depth() {
        assert_eq!(h.emulate_batch(level, &[]), 0);
        assert_eq!(h.emulate_batch_exact(level, &[]), 0);
        assert_eq!(h.emulate_paths(level, &[]), 0);
    }
}

#[test]
fn single_edge_exact_emulation_equals_path_expansion() {
    // At level 1, one crossing expands to its stored level-0 path, whose
    // crossings expand to base paths — the exact cost is the sequential
    // sum because a single message has no contention.
    let (_, g) = families(6).remove(0);
    let h = Hierarchy::build(&g, cfg_for(&g, 4, 1, 17)).unwrap();
    let ov1 = h.overlay(1);
    let (e, _, _) = ov1.graph().edges().next().expect("level 1 has edges");
    let exact = h.emulate_batch_exact(1, &[(e, true)]);
    let mut expected = 0u64;
    for key in ov1.key_path(e, true) {
        let e0 = EdgeId((key >> 1) as u32);
        let fwd = key & 1 == 0;
        expected += h.emulate_batch_exact(0, &[(e0, fwd)]);
    }
    assert_eq!(exact, expected);
}

#[test]
fn bfs_overlay_paths_connect_what_they_claim() {
    let (_, g) = families(7).remove(3);
    let h = Hierarchy::build(&g, cfg_for(&g, 4, 1, 19)).unwrap();
    let og = h.overlay(0).graph();
    let path = h
        .bfs_overlay_path(0, VirtualId(0), VirtualId(17))
        .expect("G0 connected");
    let mut here = NodeId(0);
    for (e, fwd) in path {
        let (a, b) = og.endpoints(e);
        let (from, to) = if fwd { (a, b) } else { (b, a) };
        assert_eq!(from, here);
        here = to;
    }
    assert_eq!(here, NodeId(17));
}

#[test]
fn beta_above_64_is_rejected() {
    let (_, g) = families(8).remove(0);
    let mut cfg = cfg_for(&g, 4, 1, 21);
    cfg.beta = 128;
    cfg.independence = 4;
    match Hierarchy::build(&g, cfg) {
        Err(e) => assert!(e.to_string().contains("beta"), "{e}"),
        Ok(_) => panic!("beta = 128 must be rejected"),
    }
}

#[test]
fn ring_with_huge_mixing_time_still_embeds() {
    // τ_mix of a ring is Θ(n²); the hierarchy still builds, just slowly —
    // the experiments use this as the slow-mixing control.
    let g = generators::ring(24);
    let mut cfg = cfg_for(&g, 2, 1, 23);
    cfg.tau_mix = 600; // ≈ n² ln n scale for n = 24
    let h = Hierarchy::build(&g, cfg).unwrap();
    assert!(h.overlay(0).graph().is_connected());
    let (avg, _) = h.overlay(0).path_length_stats();
    assert!(avg > 100.0, "ring walk paths must be long, got {avg}");
}
