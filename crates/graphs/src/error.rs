//! Error type for graph construction and queries.

use std::fmt;

/// Errors produced by graph construction and by algorithms that place
/// requirements on their input graph.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// An endpoint referenced a node id outside `0..n`.
    NodeOutOfRange {
        /// The offending node index.
        node: usize,
        /// The number of nodes in the graph.
        n: usize,
    },
    /// The operation requires a connected graph but the input is not.
    Disconnected,
    /// The operation requires a non-empty graph.
    Empty,
    /// A generator was asked for an impossible parameter combination
    /// (for example, a d-regular graph with `n * d` odd).
    InvalidParameters {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// A weighted-graph constructor received a weight list whose length
    /// differs from the number of edges.
    WeightCountMismatch {
        /// Number of edges in the graph.
        edges: usize,
        /// Number of weights supplied.
        weights: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "node index {node} out of range for graph with {n} nodes")
            }
            GraphError::Disconnected => write!(f, "graph is not connected"),
            GraphError::Empty => write!(f, "graph has no nodes"),
            GraphError::InvalidParameters { reason } => {
                write!(f, "invalid generator parameters: {reason}")
            }
            GraphError::WeightCountMismatch { edges, weights } => {
                write!(
                    f,
                    "weight count {weights} does not match edge count {edges}"
                )
            }
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = GraphError::NodeOutOfRange { node: 9, n: 4 };
        assert!(e.to_string().contains("9"));
        assert!(e.to_string().contains("4"));
        let e = GraphError::InvalidParameters {
            reason: "n*d odd".into(),
        };
        assert!(e.to_string().contains("n*d odd"));
    }
}
