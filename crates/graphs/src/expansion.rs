//! Edge expansion, conductance, and the spectral toolkit.
//!
//! The paper's bounds are phrased in terms of the edge expansion `h(G)`
//! (§2), the conductance `φ(G)` (proof of Lemma 2.3) and the mixing time.
//! Exact `h`/`φ` require enumerating all cuts and are provided for tiny
//! graphs (used by tests and to validate the spectral estimates); for
//! experiment-scale graphs we use the spectral machinery:
//!
//! * [`lambda2_lazy`] — second-largest eigenvalue of the *lazy* random-walk
//!   transition matrix `W = ½(I + D⁻¹A)` via power iteration on the
//!   symmetrized form.
//! * [`lambda2_regularized`] — second-largest eigenvalue of the 2Δ-regular
//!   walk matrix `M = I − L/(2Δ)` (Definition 2.2), which is already
//!   symmetric.
//! * Cheeger-inequality conversions between spectral gap and conductance.

use crate::{Graph, NodeId};

/// Number of edges crossing the cut `(S, V∖S)`, where `in_s[v]` marks
/// membership of `v` in `S`. Self-loops never cross.
pub fn cut_size(g: &Graph, in_s: &[bool]) -> usize {
    g.edges()
        .filter(|&(_, u, v)| in_s[u.index()] != in_s[v.index()])
        .count()
}

/// Volume of `S`: the sum of degrees of its members.
pub fn side_volume(g: &Graph, in_s: &[bool]) -> usize {
    g.nodes()
        .filter(|v| in_s[v.index()])
        .map(|v| g.degree(v))
        .sum()
}

/// Exact edge expansion `h(G) = min_{1 ≤ |S| ≤ n/2} e(S, V∖S)/|S|` by
/// enumerating all `2^(n−1)` cuts. Returns `None` for `n < 2` or `n > 24`.
pub fn edge_expansion_exact(g: &Graph) -> Option<f64> {
    let n = g.len();
    if !(2..=24).contains(&n) {
        return None;
    }
    let mut best = f64::INFINITY;
    let mut in_s = vec![false; n];
    // Fix node 0 out of S to halve the enumeration; every nontrivial cut has
    // a side not containing node 0.
    for mask in 1u64..(1u64 << (n - 1)) {
        let size = mask.count_ones() as usize;
        if size > n / 2 {
            continue;
        }
        for (i, flag) in in_s.iter_mut().enumerate().take(n).skip(1) {
            *flag = (mask >> (i - 1)) & 1 == 1;
        }
        in_s[0] = false;
        let cut = cut_size(g, &in_s);
        best = best.min(cut as f64 / size as f64);
    }
    Some(best)
}

/// Exact conductance `φ(G) = min_{vol(S) ≤ m} e(S, V∖S)/vol(S)` by cut
/// enumeration. Returns `None` for `n < 2` or `n > 24`.
pub fn conductance_exact(g: &Graph) -> Option<f64> {
    let n = g.len();
    if !(2..=24).contains(&n) {
        return None;
    }
    let m = g.edge_count();
    let mut best = f64::INFINITY;
    let mut in_s = vec![false; n];
    for mask in 1u64..(1u64 << n) - 1 {
        for (i, flag) in in_s.iter_mut().enumerate().take(n) {
            *flag = (mask >> i) & 1 == 1;
        }
        let vol = side_volume(g, &in_s);
        if vol == 0 || vol > m {
            continue;
        }
        let cut = cut_size(g, &in_s);
        best = best.min(cut as f64 / vol as f64);
    }
    if best.is_finite() {
        Some(best)
    } else {
        None
    }
}

fn normalize(x: &mut [f64]) {
    let norm = x.iter().map(|v| v * v).sum::<f64>().sqrt();
    if norm > 0.0 {
        for v in x.iter_mut() {
            *v /= norm;
        }
    }
}

fn project_out(x: &mut [f64], dir: &[f64]) {
    let dot: f64 = x.iter().zip(dir).map(|(a, b)| a * b).sum();
    for (v, d) in x.iter_mut().zip(dir) {
        *v -= dot * d;
    }
}

/// Second-largest eigenvalue of the lazy walk matrix `W = ½(I + D⁻¹A)`,
/// computed on the symmetric similarity `½(I + D^{-1/2} A D^{-1/2})` by
/// power iteration with deflation of the known top eigenvector `D^{1/2}𝟙`.
///
/// `iters` power steps are performed (200 is plenty for experiment-scale
/// graphs). Returns `None` for empty graphs or graphs with isolated nodes.
pub fn lambda2_lazy(g: &Graph, iters: usize) -> Option<f64> {
    let n = g.len();
    if n == 0 {
        return None;
    }
    if n == 1 {
        return Some(0.0);
    }
    let sqrt_deg: Vec<f64> = g.nodes().map(|v| (g.degree(v) as f64).sqrt()).collect();
    if sqrt_deg.contains(&0.0) {
        return None;
    }
    let mut top: Vec<f64> = sqrt_deg.clone();
    normalize(&mut top);
    // Deterministic pseudo-random start vector orthogonalized against top.
    let mut x: Vec<f64> = (0..n)
        .map(|i| (i as f64 * 0.754_877_666 + 0.1).sin())
        .collect();
    project_out(&mut x, &top);
    normalize(&mut x);
    let mut lambda = 0.0f64;
    let mut y = vec![0.0f64; n];
    for _ in 0..iters {
        y.iter_mut().for_each(|v| *v = 0.0);
        for (_, u, v) in g.edges() {
            let (ui, vi) = (u.index(), v.index());
            if ui == vi {
                // Self-loop contributes 2 endpoints on the same node.
                y[ui] += 2.0 * x[ui] / (sqrt_deg[ui] * sqrt_deg[ui]);
            } else {
                y[ui] += x[vi] / (sqrt_deg[ui] * sqrt_deg[vi]);
                y[vi] += x[ui] / (sqrt_deg[ui] * sqrt_deg[vi]);
            }
        }
        // Lazy: S_lazy = ½(I + S).
        for i in 0..n {
            y[i] = 0.5 * (x[i] + y[i]);
        }
        project_out(&mut y, &top);
        let norm = y.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm < 1e-300 {
            return Some(0.0);
        }
        lambda = norm;
        for v in y.iter_mut() {
            *v /= norm;
        }
        std::mem::swap(&mut x, &mut y);
    }
    Some(lambda.min(1.0))
}

/// Second-largest eigenvalue of the 2Δ-regular walk matrix
/// `M = I − L/(2Δ)` of Definition 2.2, by power iteration with deflation of
/// the uniform vector (the matrix is symmetric, its top eigenvector).
pub fn lambda2_regularized(g: &Graph, iters: usize) -> Option<f64> {
    let n = g.len();
    if n == 0 {
        return None;
    }
    if n == 1 {
        return Some(0.0);
    }
    let delta = g.max_degree() as f64;
    if delta == 0.0 {
        return None;
    }
    let top = vec![1.0 / (n as f64).sqrt(); n];
    let mut x: Vec<f64> = (0..n)
        .map(|i| (i as f64 * 1.324_717_957 + 0.2).cos())
        .collect();
    project_out(&mut x, &top);
    normalize(&mut x);
    let mut lambda = 0.0f64;
    let mut y = vec![0.0f64; n];
    for _ in 0..iters {
        // y = x - (D x - A x) / (2Δ)
        y.iter_mut().for_each(|v| *v = 0.0);
        for (_, u, v) in g.edges() {
            let (ui, vi) = (u.index(), v.index());
            if ui != vi {
                y[ui] += x[vi];
                y[vi] += x[ui];
            } else {
                y[ui] += 2.0 * x[ui];
            }
        }
        for (i, yi) in y.iter_mut().enumerate() {
            let d = g.degree(NodeId::from(i)) as f64;
            *yi = x[i] - (d * x[i] - *yi) / (2.0 * delta);
        }
        project_out(&mut y, &top);
        let norm = y.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm < 1e-300 {
            return Some(0.0);
        }
        lambda = norm;
        for v in y.iter_mut() {
            *v /= norm;
        }
        std::mem::swap(&mut x, &mut y);
    }
    Some(lambda.min(1.0))
}

/// Spectral gap `1 − λ₂` of the lazy walk; `None` under the same conditions
/// as [`lambda2_lazy`].
pub fn spectral_gap_lazy(g: &Graph, iters: usize) -> Option<f64> {
    lambda2_lazy(g, iters).map(|l| 1.0 - l)
}

/// Cheeger-inequality bracket for the conductance from the lazy spectral
/// gap: `gap ≤ φ ≤ √(2·gap)` (for the lazy chain, `gap = (1−λ₂)` relates to
/// the non-lazy gap by a factor 2, folded in here).
pub fn conductance_spectral_bounds(g: &Graph, iters: usize) -> Option<(f64, f64)> {
    let gap = spectral_gap_lazy(g, iters)?;
    let nonlazy_gap = 2.0 * gap;
    Some((nonlazy_gap / 2.0, (2.0 * nonlazy_gap).sqrt()))
}

/// The Cheeger-based upper bound of Lemma 2.3 on the 2Δ-regular mixing
/// time: `τ̄_mix ≤ 8·Δ²/h² · ln n`.
pub fn cheeger_mixing_bound(g: &Graph, edge_expansion: f64) -> f64 {
    let delta = g.max_degree() as f64;
    let n = g.len() as f64;
    8.0 * delta * delta / (edge_expansion * edge_expansion) * n.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn cut_and_volume_on_path() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let in_s = vec![true, true, false, false];
        assert_eq!(cut_size(&g, &in_s), 1);
        assert_eq!(side_volume(&g, &in_s), 3);
    }

    #[test]
    fn expansion_of_complete_graph() {
        // h(K_n) = ceil(n/2); for K_4, min over |S|∈{1,2}: |S|=2 gives 4/2=2.
        let g = generators::complete(4);
        assert_eq!(edge_expansion_exact(&g), Some(2.0));
    }

    #[test]
    fn expansion_of_path_is_cut_in_middle() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]).unwrap();
        let h = edge_expansion_exact(&g).unwrap();
        assert!((h - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn conductance_of_dumbbell_is_bridge_limited() {
        // Two triangles joined by one edge: φ = 1/7 (cut the bridge).
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)])
            .unwrap();
        let phi = conductance_exact(&g).unwrap();
        assert!((phi - 1.0 / 7.0).abs() < 1e-12, "phi = {phi}");
    }

    #[test]
    fn exact_measures_bail_on_large_graphs() {
        let g = generators::ring(30);
        assert_eq!(edge_expansion_exact(&g), None);
        assert_eq!(conductance_exact(&g), None);
    }

    #[test]
    fn lambda2_of_complete_graph_matches_theory() {
        // Non-lazy K_n walk: λ₂ = −1/(n−1); lazy: ½(1 − 1/(n−1)).
        let n = 8;
        let g = generators::complete(n);
        let l2 = lambda2_lazy(&g, 300).unwrap();
        let expect = 0.5 * (1.0 - 1.0 / (n as f64 - 1.0));
        assert!((l2 - expect).abs() < 1e-6, "got {l2}, expected {expect}");
    }

    #[test]
    fn lambda2_of_cycle_matches_theory() {
        // Cycle C_n: λ₂(walk) = cos(2π/n); lazy: ½(1 + cos(2π/n)).
        let n = 12;
        let g = generators::ring(n);
        let l2 = lambda2_lazy(&g, 2000).unwrap();
        let expect = 0.5 * (1.0 + (2.0 * std::f64::consts::PI / n as f64).cos());
        assert!((l2 - expect).abs() < 1e-6, "got {l2}, expected {expect}");
    }

    #[test]
    fn regularized_lambda2_on_regular_graph_matches_lazy() {
        // On a d-regular graph the 2Δ-regular walk *is* the lazy walk.
        let g = generators::hypercube(4);
        let a = lambda2_lazy(&g, 500).unwrap();
        let b = lambda2_regularized(&g, 500).unwrap();
        assert!((a - b).abs() < 1e-6, "lazy {a} vs regularized {b}");
    }

    #[test]
    fn expander_has_large_gap_ring_small() {
        let mut rng = StdRng::seed_from_u64(3);
        let exp = generators::random_regular(128, 6, &mut rng).unwrap();
        let ring = generators::ring(128);
        let g_exp = spectral_gap_lazy(&exp, 400).unwrap();
        let g_ring = spectral_gap_lazy(&ring, 400).unwrap();
        assert!(g_exp > 0.05, "expander gap {g_exp}");
        assert!(g_ring < 0.01, "ring gap {g_ring}");
        assert!(g_exp > 10.0 * g_ring);
    }

    #[test]
    fn cheeger_bracket_contains_exact_conductance() {
        let g = generators::hypercube(3);
        let phi = conductance_exact(&g).unwrap();
        let (lo, hi) = conductance_spectral_bounds(&g, 500).unwrap();
        assert!(
            lo <= phi + 1e-9 && phi <= hi + 1e-9,
            "{lo} <= {phi} <= {hi}"
        );
    }

    #[test]
    fn cheeger_mixing_bound_scales_with_expansion() {
        let g = generators::complete(8);
        let h = edge_expansion_exact(&g).unwrap();
        let bound = cheeger_mixing_bound(&g, h);
        assert!(bound > 0.0 && bound < 100.0);
    }
}
