//! Graph-family generators used by the experiments.
//!
//! Fast-mixing families (random regular, Erdős–Rényi above the connectivity
//! threshold, hypercubes) exercise the paper's headline regime
//! `τ_mix = poly log n`; slow-mixing controls (barbell, lollipop, ring,
//! dumbbell expanders) exercise the `τ_mix`-dependence of every bound.
//!
//! Every generator takes an explicit [`Rng`] and is deterministic given the
//! RNG state, so experiments are reproducible from a seed.

use crate::{Graph, GraphBuilder, GraphError, Result};
use rand::seq::SliceRandom;
use rand::{Rng, RngExt};
use std::collections::HashSet;

/// Erdős–Rényi graph `G(n, p)`: each of the `n·(n−1)/2` pairs is an edge
/// independently with probability `p`.
///
/// Uses the standard geometric-skipping sampler, `O(n + m)` expected time.
pub fn erdos_renyi<R: Rng>(n: usize, p: f64, rng: &mut R) -> Result<Graph> {
    if !(0.0..=1.0).contains(&p) {
        return Err(GraphError::InvalidParameters {
            reason: format!("p = {p} not in [0, 1]"),
        });
    }
    let mut b = GraphBuilder::new(n);
    if p <= 0.0 || n < 2 {
        return Ok(b.build());
    }
    if p >= 1.0 {
        for u in 0..n {
            for v in (u + 1)..n {
                b.add_edge(u, v);
            }
        }
        return Ok(b.build());
    }
    // Iterate pair index k over the upper triangle with geometric jumps.
    let log_q = (1.0 - p).ln();
    let total = n * (n - 1) / 2;
    let mut k: usize = 0;
    loop {
        let r: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        let skip = (r.ln() / log_q).floor() as usize;
        k = k.saturating_add(skip);
        if k >= total {
            break;
        }
        let (u, v) = pair_from_index(n, k);
        b.add_edge(u, v);
        k += 1;
        if k >= total {
            break;
        }
    }
    Ok(b.build())
}

/// Maps a linear index `k` in `0..n(n-1)/2` to the `k`-th pair `(u, v)` with
/// `u < v`, in row-major upper-triangle order.
fn pair_from_index(n: usize, mut k: usize) -> (usize, usize) {
    let mut u = 0usize;
    let mut row = n - 1;
    while k >= row {
        k -= row;
        u += 1;
        row -= 1;
    }
    (u, u + 1 + k)
}

/// Keeps resampling `G(n, p)` until it is connected (at most `tries` times).
///
/// # Errors
///
/// [`GraphError::Disconnected`] if no connected sample was found.
pub fn connected_erdos_renyi<R: Rng>(n: usize, p: f64, tries: usize, rng: &mut R) -> Result<Graph> {
    for _ in 0..tries {
        let g = erdos_renyi(n, p, rng)?;
        if g.is_connected() {
            return Ok(g);
        }
    }
    Err(GraphError::Disconnected)
}

/// Exact `d`-regular simple random graph via the configuration model with
/// switch-based repair of self-loops and parallel edges.
///
/// # Errors
///
/// [`GraphError::InvalidParameters`] if `n·d` is odd, `d >= n`, or repair
/// fails to converge (practically impossible for `d ≤ n/4`).
pub fn random_regular<R: Rng>(n: usize, d: usize, rng: &mut R) -> Result<Graph> {
    if n == 0 || d == 0 {
        return Ok(GraphBuilder::new(n).build());
    }
    if d >= n {
        return Err(GraphError::InvalidParameters {
            reason: format!("d = {d} must be < n = {n}"),
        });
    }
    if !(n * d).is_multiple_of(2) {
        return Err(GraphError::InvalidParameters {
            reason: format!("n*d = {} is odd", n * d),
        });
    }
    // Pairing: each node contributes d stubs; shuffle and pair consecutive.
    let mut stubs: Vec<u32> = Vec::with_capacity(n * d);
    for v in 0..n {
        for _ in 0..d {
            stubs.push(v as u32);
        }
    }
    stubs.shuffle(rng);
    let mut edges: Vec<(u32, u32)> = stubs.chunks_exact(2).map(|c| norm(c[0], c[1])).collect();
    // Repair self-loops / parallels by random switches. Each switch picks a
    // bad edge (u,v) and a good partner (x,y) and rewires to (u,x),(v,y)
    // when the result is simple; this preserves the degree sequence. Passes
    // recompute the bad set from scratch; the bad set is O(d²) in
    // expectation, so a handful of passes suffice.
    let mut passes = 64;
    loop {
        let mut seen: HashSet<(u32, u32)> = HashSet::with_capacity(edges.len());
        let mut bad: Vec<usize> = Vec::new();
        for (i, &e) in edges.iter().enumerate() {
            if e.0 == e.1 || !seen.insert(e) {
                bad.push(i);
            }
        }
        if bad.is_empty() {
            break;
        }
        if passes == 0 {
            return Err(GraphError::InvalidParameters {
                reason: "regular-graph repair did not converge".into(),
            });
        }
        passes -= 1;
        let bad_set: HashSet<usize> = bad.iter().copied().collect();
        for &i in &bad {
            // A bounded number of random partner attempts per bad edge;
            // unfixed edges are retried on the next pass.
            for _ in 0..64 {
                let j = rng.random_range(0..edges.len());
                if j == i || bad_set.contains(&j) {
                    continue;
                }
                let (u, v) = edges[i];
                let (mut x, mut y) = edges[j];
                if rng.random_bool(0.5) {
                    std::mem::swap(&mut x, &mut y);
                }
                let e1 = norm(u, x);
                let e2 = norm(v, y);
                if u == x || v == y || e1 == e2 || seen.contains(&e1) || seen.contains(&e2) {
                    continue;
                }
                // edges[i] was a self-loop (never in `seen`) or a duplicate
                // (its primary copy stays valid), so only the partner edge
                // needs removing from the simple-edge set.
                seen.remove(&norm(edges[j].0, edges[j].1));
                seen.insert(e1);
                seen.insert(e2);
                edges[i] = e1;
                edges[j] = e2;
                break;
            }
        }
    }
    let mut b = GraphBuilder::with_capacity(n, edges.len());
    for (u, v) in edges {
        b.add_edge(u as usize, v as usize);
    }
    let g = b.build();
    debug_assert!(g.nodes().all(|v| g.degree(v) == d));
    Ok(g)
}

fn norm(a: u32, b: u32) -> (u32, u32) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Near-regular random graph where every node picks `k` distinct uniform
/// out-neighbors and edge directions are forgotten (duplicate undirected
/// edges collapsed).
///
/// This matches the overlay-construction style of the paper's level-0 graph
/// `G₀` (§3.1.1): degrees are `k + Binomial(n−1, k/(n−1)) ≈ 2k`, an
/// excellent expander for `k = Ω(log n)`.
pub fn random_out_union<R: Rng>(n: usize, k: usize, rng: &mut R) -> Result<Graph> {
    if k >= n && n > 1 {
        return Err(GraphError::InvalidParameters {
            reason: format!("k = {k} must be < n = {n}"),
        });
    }
    let mut set: HashSet<(u32, u32)> = HashSet::new();
    for u in 0..n {
        let mut chosen = HashSet::with_capacity(k);
        while chosen.len() < k {
            let v = rng.random_range(0..n);
            if v != u {
                chosen.insert(v);
            }
        }
        for v in chosen {
            set.insert(norm(u as u32, v as u32));
        }
    }
    let mut edges: Vec<_> = set.into_iter().collect();
    edges.sort_unstable();
    let mut b = GraphBuilder::with_capacity(n, edges.len());
    for (u, v) in edges {
        b.add_edge(u as usize, v as usize);
    }
    Ok(b.build())
}

/// The `d`-dimensional hypercube on `2^d` nodes.
pub fn hypercube(d: u32) -> Graph {
    let n = 1usize << d;
    let mut b = GraphBuilder::with_capacity(n, n * d as usize / 2);
    for v in 0..n {
        for bit in 0..d {
            let w = v ^ (1 << bit);
            if w > v {
                b.add_edge(v, w);
            }
        }
    }
    b.build()
}

/// The `rows × cols` 2-D torus (wrap-around grid). Each node has degree 4
/// when both dimensions exceed 2.
pub fn torus_2d(rows: usize, cols: usize) -> Graph {
    let n = rows * cols;
    let mut b = GraphBuilder::with_capacity(n, 2 * n);
    let id = |r: usize, c: usize| r * cols + c;
    for r in 0..rows {
        for c in 0..cols {
            if cols > 1 {
                b.add_edge(id(r, c), id(r, (c + 1) % cols));
            }
            if rows > 1 {
                b.add_edge(id(r, c), id((r + 1) % rows, c));
            }
        }
    }
    b.build()
}

/// The cycle on `n` nodes (the classic `D = Ω(n)`, `τ_mix = Θ(n²)` control).
pub fn ring(n: usize) -> Graph {
    let mut b = GraphBuilder::with_capacity(n, n);
    if n == 2 {
        b.add_edge(0, 1);
        return b.build();
    }
    for v in 0..n {
        b.add_edge(v, (v + 1) % n);
    }
    b.build()
}

/// The complete graph `K_n` (the congested-clique topology).
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::with_capacity(n, n * n.saturating_sub(1) / 2);
    for u in 0..n {
        for v in (u + 1)..n {
            b.add_edge(u, v);
        }
    }
    b.build()
}

/// Barbell graph: two `K_k` cliques joined by a path of `bridge` extra nodes
/// (`bridge = 0` joins them by a single edge). Mixing time `Θ(k³)`-ish — the
/// classic slow-mixing control.
pub fn barbell(k: usize, bridge: usize) -> Result<Graph> {
    if k < 2 {
        return Err(GraphError::InvalidParameters {
            reason: "barbell needs k >= 2".into(),
        });
    }
    let n = 2 * k + bridge;
    let mut b = GraphBuilder::new(n);
    for u in 0..k {
        for v in (u + 1)..k {
            b.add_edge(u, v);
        }
    }
    let off = k + bridge;
    for u in 0..k {
        for v in (u + 1)..k {
            b.add_edge(off + u, off + v);
        }
    }
    // Path: node k-1 — k — k+1 — … — k+bridge-1 — off.
    let mut prev = k - 1;
    for i in 0..bridge {
        b.add_edge(prev, k + i);
        prev = k + i;
    }
    b.add_edge(prev, off);
    Ok(b.build())
}

/// Lollipop graph: a `K_k` clique with a path of `tail` nodes attached.
pub fn lollipop(k: usize, tail: usize) -> Result<Graph> {
    if k < 2 {
        return Err(GraphError::InvalidParameters {
            reason: "lollipop needs k >= 2".into(),
        });
    }
    let n = k + tail;
    let mut b = GraphBuilder::new(n);
    for u in 0..k {
        for v in (u + 1)..k {
            b.add_edge(u, v);
        }
    }
    let mut prev = k - 1;
    for i in 0..tail {
        b.add_edge(prev, k + i);
        prev = k + i;
    }
    Ok(b.build())
}

/// Dumbbell of expanders: two `d`-regular random graphs on `k` nodes each,
/// connected by `bridges` random edges. With few bridges this has large
/// mixing time but small diameter — it separates `τ_mix` from `D` in the
/// experiments.
pub fn dumbbell_expanders<R: Rng>(
    k: usize,
    d: usize,
    bridges: usize,
    rng: &mut R,
) -> Result<Graph> {
    if bridges == 0 {
        return Err(GraphError::InvalidParameters {
            reason: "need at least one bridge".into(),
        });
    }
    let g1 = random_regular(k, d, rng)?;
    let g2 = random_regular(k, d, rng)?;
    let mut b = GraphBuilder::new(2 * k);
    for (_, u, v) in g1.edges() {
        b.add_edge(u.index(), v.index());
    }
    for (_, u, v) in g2.edges() {
        b.add_edge(k + u.index(), k + v.index());
    }
    for _ in 0..bridges {
        let u = rng.random_range(0..k);
        let v = rng.random_range(0..k);
        b.add_edge(u, k + v);
    }
    Ok(b.build())
}

/// The Margulis–Gabber–Galil expander on `m² ` nodes: node `(x, y)` of
/// `Z_m × Z_m` connects to `(x±y, y)`, `(x±y+1, y)`, `(x, y±x)` and
/// `(x, y±x+1)` (all mod `m`). A *deterministic* constant-degree expander
/// (spectral gap bounded away from 0 for every `m`) — the classical
/// explicit construction, useful as a derandomized control next to the
/// random families.
///
/// The result is an 8-regular multigraph (self-loops/parallels occur for
/// small `m`, consistent with the usual definition).
pub fn margulis_expander(m: usize) -> Result<Graph> {
    if m < 2 {
        return Err(GraphError::InvalidParameters {
            reason: "margulis needs m >= 2".into(),
        });
    }
    let n = m * m;
    let id = |x: usize, y: usize| (x % m) * m + (y % m);
    let mut b = GraphBuilder::with_capacity(n, 4 * n);
    for x in 0..m {
        for y in 0..m {
            let v = id(x, y);
            // Undirected edges added once per generator (4 per node).
            b.add_edge(v, id(x + y, y));
            b.add_edge(v, id(x + y + 1, y));
            b.add_edge(v, id(x, y + x));
            b.add_edge(v, id(x, y + x + 1));
        }
    }
    Ok(b.build())
}

/// Chung–Lu random graph with the given expected degree sequence: pair
/// `(u, v)` is an edge with probability `min(1, w_u·w_v / Σw)`.
///
/// Degrees concentrate around `w_v`; used to generate heterogeneous-degree
/// networks with a prescribed shape (e.g. heavy-tailed) for the
/// degree-proportional load experiments.
pub fn chung_lu<R: Rng>(weights: &[f64], rng: &mut R) -> Result<Graph> {
    let n = weights.len();
    if weights.iter().any(|&w| w < 0.0 || !w.is_finite()) {
        return Err(GraphError::InvalidParameters {
            reason: "Chung-Lu weights must be finite and non-negative".into(),
        });
    }
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return Ok(GraphBuilder::new(n).build());
    }
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            let p = (weights[u] * weights[v] / total).min(1.0);
            if p > 0.0 && rng.random_bool(p) {
                b.add_edge(u, v);
            }
        }
    }
    Ok(b.build())
}

/// Barabási–Albert preferential attachment: starts from a clique on
/// `attach + 1` nodes; each new node attaches to `attach` distinct existing
/// nodes chosen proportionally to degree.
pub fn preferential_attachment<R: Rng>(n: usize, attach: usize, rng: &mut R) -> Result<Graph> {
    if attach == 0 || n < attach + 1 {
        return Err(GraphError::InvalidParameters {
            reason: format!("need n >= attach + 1 > 1, got n = {n}, attach = {attach}"),
        });
    }
    let mut b = GraphBuilder::new(n);
    // Repeated-endpoints urn: sampling a uniform element of `urn` samples a
    // node proportionally to its degree.
    let mut urn: Vec<u32> = Vec::new();
    for u in 0..=attach {
        for v in (u + 1)..=attach {
            b.add_edge(u, v);
            urn.push(u as u32);
            urn.push(v as u32);
        }
    }
    for v in (attach + 1)..n {
        let mut targets = HashSet::with_capacity(attach);
        while targets.len() < attach {
            let t = urn[rng.random_range(0..urn.len())];
            targets.insert(t);
        }
        for t in targets {
            b.add_edge(v, t as usize);
            urn.push(v as u32);
            urn.push(t);
        }
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xA17)
    }

    #[test]
    fn pair_index_enumerates_upper_triangle() {
        let n = 5;
        let mut seen = Vec::new();
        for k in 0..(n * (n - 1) / 2) {
            seen.push(pair_from_index(n, k));
        }
        let expect: Vec<_> = (0..n)
            .flat_map(|u| ((u + 1)..n).map(move |v| (u, v)))
            .collect();
        assert_eq!(seen, expect);
    }

    #[test]
    fn erdos_renyi_edge_count_concentrates() {
        let mut r = rng();
        let n = 400;
        let p = 0.05;
        let g = erdos_renyi(n, p, &mut r).unwrap();
        let expect = (n * (n - 1) / 2) as f64 * p;
        let got = g.edge_count() as f64;
        assert!(
            (got - expect).abs() < 0.2 * expect,
            "got {got}, expected ~{expect}"
        );
    }

    #[test]
    fn erdos_renyi_extremes() {
        let mut r = rng();
        assert_eq!(erdos_renyi(10, 0.0, &mut r).unwrap().edge_count(), 0);
        assert_eq!(erdos_renyi(10, 1.0, &mut r).unwrap().edge_count(), 45);
        assert!(erdos_renyi(10, 1.5, &mut r).is_err());
    }

    #[test]
    fn connected_er_is_connected() {
        let mut r = rng();
        let g = connected_erdos_renyi(100, 0.08, 50, &mut r).unwrap();
        assert!(g.is_connected());
    }

    #[test]
    fn random_regular_degrees_exact() {
        let mut r = rng();
        for &(n, d) in &[(10, 3), (50, 4), (64, 8), (101, 4)] {
            let g = random_regular(n, d, &mut r).unwrap();
            assert_eq!(g.edge_count(), n * d / 2);
            for v in g.nodes() {
                assert_eq!(g.degree(v), d, "n={n} d={d} v={v:?}");
            }
            // Simple: no self-loops, no parallel edges.
            let mut set = std::collections::HashSet::new();
            for (_, u, v) in g.edges() {
                assert_ne!(u, v);
                assert!(set.insert((u.min(v), u.max(v))));
            }
        }
    }

    #[test]
    fn random_regular_rejects_bad_parameters() {
        let mut r = rng();
        assert!(random_regular(5, 3, &mut r).is_err()); // odd n*d
        assert!(random_regular(4, 4, &mut r).is_err()); // d >= n
        assert_eq!(random_regular(5, 0, &mut r).unwrap().edge_count(), 0);
    }

    #[test]
    fn random_out_union_degree_bounds() {
        let mut r = rng();
        let (n, k) = (200, 5);
        let g = random_out_union(n, k, &mut r).unwrap();
        for v in g.nodes() {
            assert!(g.degree(v) >= 1, "isolated node");
        }
        // Average degree close to 2k (minus collision loss).
        let avg = g.volume() as f64 / n as f64;
        assert!(avg > 1.5 * k as f64 && avg < 2.2 * k as f64, "avg = {avg}");
    }

    #[test]
    fn hypercube_structure() {
        let g = hypercube(4);
        assert_eq!(g.len(), 16);
        assert_eq!(g.edge_count(), 32);
        assert!(g.nodes().all(|v| g.degree(v) == 4));
        assert_eq!(crate::traversal::diameter_exact(&g), Some(4));
    }

    #[test]
    fn torus_structure() {
        let g = torus_2d(4, 5);
        assert_eq!(g.len(), 20);
        assert!(g.nodes().all(|v| g.degree(v) == 4));
        assert!(g.is_connected());
    }

    #[test]
    fn ring_structure() {
        let g = ring(7);
        assert_eq!(g.edge_count(), 7);
        assert!(g.nodes().all(|v| g.degree(v) == 2));
        assert_eq!(crate::traversal::diameter_exact(&g), Some(3));
        assert_eq!(ring(2).edge_count(), 1);
    }

    #[test]
    fn complete_structure() {
        let g = complete(6);
        assert_eq!(g.edge_count(), 15);
        assert_eq!(crate::traversal::diameter_exact(&g), Some(1));
    }

    #[test]
    fn barbell_and_lollipop_shapes() {
        let g = barbell(5, 3).unwrap();
        assert_eq!(g.len(), 13);
        assert!(g.is_connected());
        assert_eq!(g.edge_count(), 2 * 10 + 4);
        let l = lollipop(4, 6).unwrap();
        assert_eq!(l.len(), 10);
        assert!(l.is_connected());
        assert_eq!(crate::traversal::diameter_exact(&l), Some(7));
    }

    #[test]
    fn dumbbell_is_connected_with_small_diameter() {
        let mut r = rng();
        let g = dumbbell_expanders(64, 6, 2, &mut r).unwrap();
        assert_eq!(g.len(), 128);
        assert!(g.is_connected());
        let d = crate::traversal::diameter_exact(&g).unwrap();
        assert!(
            d < 20,
            "expander dumbbell should have small diameter, got {d}"
        );
    }

    #[test]
    fn preferential_attachment_degrees() {
        let mut r = rng();
        let g = preferential_attachment(300, 3, &mut r).unwrap();
        assert!(g.is_connected());
        // Every non-seed node has degree >= attach.
        for v in 4usize..300 {
            assert!(g.degree(NodeId::from(v)) >= 3);
        }
        // Hubs exist: max degree well above attach.
        assert!(g.max_degree() > 12);
    }

    #[test]
    fn margulis_is_8_regular_and_expanding() {
        let g = margulis_expander(8).unwrap();
        assert_eq!(g.len(), 64);
        // 8-regular counting self-loops twice and parallels.
        assert!(g.nodes().all(|v| g.degree(v) == 8));
        assert!(g.is_connected());
        let gap = crate::expansion::spectral_gap_lazy(&g, 600).unwrap();
        assert!(gap > 0.02, "Margulis gap {gap} too small");
        // Deterministic: no RNG involved.
        assert_eq!(g, margulis_expander(8).unwrap());
        assert!(margulis_expander(1).is_err());
    }

    #[test]
    fn chung_lu_matches_expected_degrees() {
        let mut r = rng();
        let n = 300;
        let weights: Vec<f64> = (0..n).map(|i| if i < 10 { 30.0 } else { 5.0 }).collect();
        let g = chung_lu(&weights, &mut r).unwrap();
        let hub_avg: f64 = (0..10usize)
            .map(|i| g.degree(NodeId::from(i)) as f64)
            .sum::<f64>()
            / 10.0;
        let leaf_avg: f64 = (10..n as usize)
            .map(|i| g.degree(NodeId::from(i)) as f64)
            .sum::<f64>()
            / (n - 10) as f64;
        assert!((hub_avg - 30.0).abs() < 10.0, "hub avg {hub_avg}");
        assert!((leaf_avg - 5.0).abs() < 2.0, "leaf avg {leaf_avg}");
        assert!(chung_lu(&[1.0, f64::NAN], &mut r).is_err());
        assert_eq!(chung_lu(&[0.0; 4], &mut r).unwrap().edge_count(), 0);
    }

    #[test]
    fn generators_deterministic_given_seed() {
        let g1 = random_regular(40, 4, &mut StdRng::seed_from_u64(9)).unwrap();
        let g2 = random_regular(40, 4, &mut StdRng::seed_from_u64(9)).unwrap();
        assert_eq!(g1, g2);
        let e1 = erdos_renyi(60, 0.1, &mut StdRng::seed_from_u64(5)).unwrap();
        let e2 = erdos_renyi(60, 0.1, &mut StdRng::seed_from_u64(5)).unwrap();
        assert_eq!(e1, e2);
    }
}
