//! Immutable CSR multigraph.

use crate::{EdgeId, GraphError, NodeId, Result};

/// An undirected multigraph in compressed-sparse-row form.
///
/// * Node ids are dense `0..n`, edge ids dense `0..m`.
/// * Parallel edges are allowed (each keeps its own [`EdgeId`]).
/// * A self-loop `{v, v}` contributes **2** to `degree(v)` and appears twice
///   in `v`'s adjacency list, following the usual random-walk convention in
///   which the stationary distribution is proportional to the degree.
///
/// The structure is immutable once built; use [`GraphBuilder`] (or
/// [`Graph::from_edges`]) to construct one. Immutability is deliberate: the
/// CONGEST simulator, the walk engine and the hierarchical embedding all
/// share references to the same base graph for the lifetime of an
/// experiment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Graph {
    /// CSR offsets, length `n + 1`.
    offsets: Vec<usize>,
    /// Flattened adjacency: `(neighbor, edge id)` pairs, length `2m`.
    adjacency: Vec<(u32, u32)>,
    /// Endpoints per edge id, length `m`.
    endpoints: Vec<(u32, u32)>,
}

impl Graph {
    /// Builds a graph with `n` nodes from an explicit edge list.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] if any endpoint is `>= n`.
    ///
    /// # Examples
    ///
    /// ```
    /// use amt_graphs::Graph;
    /// let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
    /// assert_eq!(g.len(), 3);
    /// assert_eq!(g.edge_count(), 2);
    /// ```
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Result<Self> {
        let mut b = GraphBuilder::new(n);
        for &(u, v) in edges {
            b.try_add_edge(u, v)?;
        }
        Ok(b.build())
    }

    /// Number of nodes `n`.
    #[inline]
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Returns `true` if the graph has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of undirected edges `m` (self-loops and parallels included).
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.endpoints.len()
    }

    /// Degree of `v`: number of incident edge endpoints (self-loops count 2).
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.offsets[v.index() + 1] - self.offsets[v.index()]
    }

    /// The maximum degree Δ of the graph, or 0 for the empty graph.
    pub fn max_degree(&self) -> usize {
        (0..self.len())
            .map(|v| self.degree(NodeId::from(v)))
            .max()
            .unwrap_or(0)
    }

    /// The minimum degree of the graph, or 0 for the empty graph.
    pub fn min_degree(&self) -> usize {
        (0..self.len())
            .map(|v| self.degree(NodeId::from(v)))
            .min()
            .unwrap_or(0)
    }

    /// Sum of degrees, `2m`; the total volume of the graph.
    #[inline]
    pub fn volume(&self) -> usize {
        self.adjacency.len()
    }

    /// Iterates over `(neighbor, edge)` pairs incident to `v`.
    ///
    /// Neighbors appear in insertion order; a self-loop at `v` yields the
    /// pair `(v, e)` twice.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> NeighborIter<'_> {
        NeighborIter {
            inner: self.adjacency[self.offsets[v.index()]..self.offsets[v.index() + 1]].iter(),
        }
    }

    /// The `i`-th incident `(neighbor, edge)` pair of `v` (0-based port number).
    ///
    /// # Panics
    ///
    /// Panics if `i >= degree(v)`.
    #[inline]
    pub fn neighbor_at(&self, v: NodeId, i: usize) -> (NodeId, EdgeId) {
        let (w, e) = self.adjacency[self.offsets[v.index()] + i];
        (NodeId(w), EdgeId(e))
    }

    /// Both endpoints of edge `e`, in the order they were inserted.
    #[inline]
    pub fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        let (u, v) = self.endpoints[e.index()];
        (NodeId(u), NodeId(v))
    }

    /// The endpoint of `e` that is not `v` (for a self-loop, returns `v`).
    ///
    /// # Panics
    ///
    /// Panics if `v` is not an endpoint of `e`.
    #[inline]
    pub fn other_endpoint(&self, e: EdgeId, v: NodeId) -> NodeId {
        let (a, b) = self.endpoints(e);
        if a == v {
            b
        } else if b == v {
            a
        } else {
            panic!("{v:?} is not an endpoint of {e:?}")
        }
    }

    /// Iterates over all node ids `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.len()).map(NodeId::from)
    }

    /// Iterates over `(EdgeId, u, v)` for all edges.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, NodeId, NodeId)> + '_ {
        self.endpoints
            .iter()
            .enumerate()
            .map(|(i, &(u, v))| (EdgeId::from(i), NodeId(u), NodeId(v)))
    }

    /// Returns `true` if the graph is connected (the empty graph is not).
    pub fn is_connected(&self) -> bool {
        crate::traversal::is_connected(self)
    }

    /// Asserts connectivity, for algorithms that require it.
    ///
    /// # Errors
    ///
    /// [`GraphError::Empty`] for the empty graph, [`GraphError::Disconnected`]
    /// otherwise when not connected.
    pub fn require_connected(&self) -> Result<()> {
        if self.is_empty() {
            return Err(GraphError::Empty);
        }
        if !self.is_connected() {
            return Err(GraphError::Disconnected);
        }
        Ok(())
    }
}

/// Iterator over the `(neighbor, edge)` pairs incident to a node.
///
/// Produced by [`Graph::neighbors`].
#[derive(Clone, Debug)]
pub struct NeighborIter<'a> {
    inner: std::slice::Iter<'a, (u32, u32)>,
}

impl Iterator for NeighborIter<'_> {
    type Item = (NodeId, EdgeId);

    #[inline]
    fn next(&mut self) -> Option<Self::Item> {
        self.inner.next().map(|&(w, e)| (NodeId(w), EdgeId(e)))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl ExactSizeIterator for NeighborIter<'_> {}

/// Incremental builder for [`Graph`].
///
/// # Examples
///
/// ```
/// use amt_graphs::GraphBuilder;
/// let mut b = GraphBuilder::new(4);
/// let e = b.add_edge(0, 1);
/// b.add_edge(1, 2);
/// let g = b.build();
/// assert_eq!(g.endpoints(e), (0u32.into(), 1u32.into()));
/// ```
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(u32, u32)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `n` nodes and no edges yet.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Creates a builder with pre-allocated capacity for `m` edges.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::with_capacity(m),
        }
    }

    /// Number of nodes the built graph will have.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds an undirected edge `{u, v}` and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `u >= n` or `v >= n`; use [`GraphBuilder::try_add_edge`] for
    /// a fallible variant.
    pub fn add_edge(&mut self, u: usize, v: usize) -> EdgeId {
        self.try_add_edge(u, v).expect("edge endpoint out of range")
    }

    /// Adds an undirected edge `{u, v}`, validating the endpoints.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] if an endpoint is `>= n`.
    pub fn try_add_edge(&mut self, u: usize, v: usize) -> Result<EdgeId> {
        for &x in &[u, v] {
            if x >= self.n {
                return Err(GraphError::NodeOutOfRange { node: x, n: self.n });
            }
        }
        let id = EdgeId::from(self.edges.len());
        self.edges.push((u as u32, v as u32));
        Ok(id)
    }

    /// Returns `true` if an edge `{u, v}` already exists (linear scan; meant
    /// for generators that must avoid parallel edges on small degree counts).
    pub fn contains_edge(&self, u: usize, v: usize) -> bool {
        let (u, v) = (u as u32, v as u32);
        self.edges
            .iter()
            .any(|&(a, b)| (a, b) == (u, v) || (a, b) == (v, u))
    }

    /// Finalizes the CSR representation.
    pub fn build(self) -> Graph {
        let n = self.n;
        let mut deg = vec![0usize; n];
        for &(u, v) in &self.edges {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for d in &deg {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut adjacency = vec![(0u32, 0u32); acc];
        for (i, &(u, v)) in self.edges.iter().enumerate() {
            let e = i as u32;
            adjacency[cursor[u as usize]] = (v, e);
            cursor[u as usize] += 1;
            adjacency[cursor[v as usize]] = (u, e);
            cursor[v as usize] += 1;
        }
        Graph {
            offsets,
            adjacency,
            endpoints: self.edges,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> Graph {
        Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap()
    }

    #[test]
    fn basic_counts() {
        let g = path3();
        assert_eq!(g.len(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.volume(), 4);
        assert_eq!(g.degree(NodeId(0)), 1);
        assert_eq!(g.degree(NodeId(1)), 2);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.min_degree(), 1);
    }

    #[test]
    fn neighbors_report_edge_ids() {
        let g = path3();
        let nbrs: Vec<_> = g.neighbors(NodeId(1)).collect();
        assert_eq!(nbrs, vec![(NodeId(0), EdgeId(0)), (NodeId(2), EdgeId(1))]);
        assert_eq!(g.neighbor_at(NodeId(1), 1), (NodeId(2), EdgeId(1)));
    }

    #[test]
    fn self_loop_counts_twice() {
        let g = Graph::from_edges(2, &[(0, 0), (0, 1)]).unwrap();
        assert_eq!(g.degree(NodeId(0)), 3);
        assert_eq!(g.volume(), 4);
        let loops: Vec<_> = g
            .neighbors(NodeId(0))
            .filter(|&(w, _)| w == NodeId(0))
            .collect();
        assert_eq!(loops.len(), 2);
        assert_eq!(g.other_endpoint(EdgeId(0), NodeId(0)), NodeId(0));
    }

    #[test]
    fn parallel_edges_keep_distinct_ids() {
        let g = Graph::from_edges(2, &[(0, 1), (0, 1)]).unwrap();
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.degree(NodeId(0)), 2);
        let ids: Vec<_> = g.neighbors(NodeId(0)).map(|(_, e)| e).collect();
        assert_eq!(ids, vec![EdgeId(0), EdgeId(1)]);
    }

    #[test]
    fn out_of_range_edge_is_rejected() {
        let err = Graph::from_edges(2, &[(0, 5)]).unwrap_err();
        assert_eq!(err, GraphError::NodeOutOfRange { node: 5, n: 2 });
    }

    #[test]
    fn other_endpoint_resolves_both_directions() {
        let g = path3();
        assert_eq!(g.other_endpoint(EdgeId(0), NodeId(0)), NodeId(1));
        assert_eq!(g.other_endpoint(EdgeId(0), NodeId(1)), NodeId(0));
    }

    #[test]
    #[should_panic]
    fn other_endpoint_panics_for_non_incident() {
        let g = path3();
        let _ = g.other_endpoint(EdgeId(0), NodeId(2));
    }

    #[test]
    fn edges_iterator_yields_all() {
        let g = path3();
        let all: Vec<_> = g.edges().collect();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0], (EdgeId(0), NodeId(0), NodeId(1)));
    }

    #[test]
    fn require_connected_reports_errors() {
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap();
        assert_eq!(g.require_connected().unwrap_err(), GraphError::Disconnected);
        let e = GraphBuilder::new(0).build();
        assert_eq!(e.require_connected().unwrap_err(), GraphError::Empty);
        assert!(path3().require_connected().is_ok());
    }
}
