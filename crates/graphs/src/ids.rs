//! Strongly typed node and edge identifiers.

use std::fmt;

/// Identifier of a node in a [`crate::Graph`].
///
/// Node ids are dense: a graph with `n` nodes uses ids `0..n`. The newtype
/// prevents accidental mixing of node ids, edge ids and raw indices, which
/// the simulator crates rely on heavily.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u32);

/// Identifier of an undirected edge in a [`crate::Graph`].
///
/// Edge ids are dense (`0..m`) and stable across the lifetime of the graph;
/// both endpoints observe the same id, which lets the CONGEST simulator
/// account per-edge congestion and lets weighted graphs break weight ties
/// canonically.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct EdgeId(pub u32);

impl NodeId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<usize> for NodeId {
    fn from(v: usize) -> Self {
        NodeId(u32::try_from(v).expect("node index exceeds u32::MAX"))
    }
}

impl From<u32> for EdgeId {
    fn from(v: u32) -> Self {
        EdgeId(v)
    }
}

impl From<usize> for EdgeId {
    fn from(v: usize) -> Self {
        EdgeId(u32::try_from(v).expect("edge index exceeds u32::MAX"))
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let id = NodeId::from(17usize);
        assert_eq!(id.index(), 17);
        assert_eq!(format!("{id:?}"), "n17");
        assert_eq!(format!("{id}"), "17");
    }

    #[test]
    fn edge_id_roundtrip() {
        let id = EdgeId::from(3u32);
        assert_eq!(id.index(), 3);
        assert_eq!(format!("{id:?}"), "e3");
    }

    #[test]
    fn ids_order_by_value() {
        assert!(NodeId(1) < NodeId(2));
        assert!(EdgeId(0) < EdgeId(9));
    }
}
