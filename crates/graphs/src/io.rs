//! Plain-text edge-list serialization.
//!
//! The format is the de-facto standard of graph repositories (SNAP,
//! Network Repository): one `u v [w]` edge per line, `#` comments, blank
//! lines ignored. Node count is `max id + 1` unless a `# nodes: n` header
//! raises it (isolated trailing nodes would otherwise be lost).

use crate::{Graph, GraphBuilder, GraphError, Result, WeightedGraph};
use std::io::{BufRead, Write};

/// Writes `g` as an edge list (with a `# nodes:` header).
///
/// # Errors
///
/// Propagates I/O errors from `out`.
pub fn write_edge_list<W: Write>(g: &Graph, mut out: W) -> std::io::Result<()> {
    writeln!(out, "# nodes: {}", g.len())?;
    for (_, u, v) in g.edges() {
        writeln!(out, "{} {}", u.0, v.0)?;
    }
    Ok(())
}

/// Writes `wg` as a weighted edge list (`u v w` per line).
///
/// # Errors
///
/// Propagates I/O errors from `out`.
pub fn write_weighted_edge_list<W: Write>(wg: &WeightedGraph, mut out: W) -> std::io::Result<()> {
    writeln!(out, "# nodes: {}", wg.len())?;
    for (e, u, v) in wg.graph().edges() {
        writeln!(out, "{} {} {}", u.0, v.0, wg.weight(e))?;
    }
    Ok(())
}

/// Parses an edge list; weights (third column) are ignored if present.
///
/// # Errors
///
/// [`GraphError::InvalidParameters`] on malformed lines or I/O failure.
pub fn read_edge_list<R: BufRead>(input: R) -> Result<Graph> {
    let (edges, nodes) = parse(input)?;
    let mut b = GraphBuilder::with_capacity(nodes, edges.len());
    for (u, v, _) in edges {
        b.try_add_edge(u, v)?;
    }
    Ok(b.build())
}

/// Parses a weighted edge list; a missing third column defaults to weight 1.
///
/// # Errors
///
/// [`GraphError::InvalidParameters`] on malformed lines or I/O failure.
pub fn read_weighted_edge_list<R: BufRead>(input: R) -> Result<WeightedGraph> {
    let (edges, nodes) = parse(input)?;
    let mut b = GraphBuilder::with_capacity(nodes, edges.len());
    let mut weights = Vec::with_capacity(edges.len());
    for (u, v, w) in edges {
        b.try_add_edge(u, v)?;
        weights.push(w.unwrap_or(1));
    }
    WeightedGraph::new(b.build(), weights)
}

#[allow(clippy::type_complexity)]
fn parse<R: BufRead>(input: R) -> Result<(Vec<(usize, usize, Option<u64>)>, usize)> {
    let bad = |line_no: usize, line: &str| GraphError::InvalidParameters {
        reason: format!("edge-list line {line_no}: cannot parse {line:?}"),
    };
    let mut edges = Vec::new();
    let mut nodes = 0usize;
    for (i, line) in input.lines().enumerate() {
        let line = line.map_err(|e| GraphError::InvalidParameters {
            reason: format!("I/O error reading edge list: {e}"),
        })?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix('#') {
            if let Some(n) = rest.trim().strip_prefix("nodes:") {
                nodes = nodes.max(n.trim().parse::<usize>().map_err(|_| bad(i + 1, trimmed))?);
            }
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let u: usize = parts
            .next()
            .ok_or_else(|| bad(i + 1, trimmed))?
            .parse()
            .map_err(|_| bad(i + 1, trimmed))?;
        let v: usize = parts
            .next()
            .ok_or_else(|| bad(i + 1, trimmed))?
            .parse()
            .map_err(|_| bad(i + 1, trimmed))?;
        let w: Option<u64> = match parts.next() {
            Some(tok) => Some(tok.parse().map_err(|_| bad(i + 1, trimmed))?),
            None => None,
        };
        if parts.next().is_some() {
            return Err(bad(i + 1, trimmed));
        }
        nodes = nodes.max(u + 1).max(v + 1);
        edges.push((u, v, w));
    }
    Ok((edges, nodes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn unweighted_roundtrip() {
        let g = generators::hypercube(4);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list(&buf[..]).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn weighted_roundtrip() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = generators::random_regular(20, 4, &mut rng).unwrap();
        let wg = WeightedGraph::with_random_weights(g, 500, &mut rng);
        let mut buf = Vec::new();
        write_weighted_edge_list(&wg, &mut buf).unwrap();
        let back = read_weighted_edge_list(&buf[..]).unwrap();
        assert_eq!(back, wg);
    }

    #[test]
    fn comments_blanks_and_header_are_handled() {
        let text = "# a comment\n# nodes: 6\n\n0 1\n1 2 7\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.len(), 6); // header raises beyond max id + 1
        assert_eq!(g.edge_count(), 2);
        let wg = read_weighted_edge_list(text.as_bytes()).unwrap();
        assert_eq!(wg.weight(0u32.into()), 1); // default
        assert_eq!(wg.weight(1u32.into()), 7);
    }

    #[test]
    fn malformed_lines_are_rejected_with_line_numbers() {
        for bad in ["0\n", "a b\n", "0 1 2 3\n", "0 1 x\n"] {
            let err = read_edge_list(bad.as_bytes())
                .err()
                .unwrap_or_else(|| panic!("{bad:?} must fail"));
            assert!(err.to_string().contains("line 1"), "{err}");
        }
    }

    #[test]
    fn isolated_max_node_preserved_via_header() {
        let g = Graph::from_edges(5, &[(0, 1)]).unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list(&buf[..]).unwrap();
        assert_eq!(back.len(), 5);
    }
}
