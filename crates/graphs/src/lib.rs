//! Graph substrate for the almost-mixing-time reproduction.
//!
//! This crate provides the static, immutable graph types that every other
//! crate in the workspace builds on:
//!
//! * [`Graph`] — an undirected (multi)graph in CSR form with stable
//!   [`EdgeId`]s, supporting self-loops and parallel edges (needed for the
//!   2Δ-regularized multigraph of Definition 2.2 of the paper).
//! * [`WeightedGraph`] — a [`Graph`] plus `u64` edge weights with a
//!   canonical unique-weight order (weight, then [`EdgeId`]) so that the
//!   minimum spanning tree is always unique, as the paper assumes.
//! * [`generators`] — the graph families used by the experiments:
//!   Erdős–Rényi, random regular, hypercube, torus, ring, complete graph,
//!   barbell/lollipop (slow-mixing controls), dumbbell expanders and
//!   preferential attachment.
//! * [`traversal`] — BFS, connected components, diameter, BFS trees and
//!   shortest paths.
//! * [`expansion`] — edge expansion `h(G)` and conductance `φ(G)` (exact by
//!   enumeration for tiny graphs, spectral estimates otherwise) and the
//!   spectral toolkit (second eigenvalue of the lazy-walk matrix by power
//!   iteration).
//! * [`partitioning`] — the Fiedler-vector sweep cut (the constructive side
//!   of Cheeger's inequality), used to locate sparse cuts, and the k-way
//!   spectral [`partitioning::Placement`] consumed by the threaded CONGEST
//!   executor to minimize cross-shard edges.
//! * [`io`] — plain-text edge-list reading/writing (SNAP-style).
//!
//! All randomized constructions take an explicit [`rand::Rng`] so that every
//! experiment in the workspace is reproducible from a seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod graph;
mod ids;
mod weighted;

pub mod expansion;
pub mod generators;
pub mod io;
pub mod partitioning;
pub mod traversal;

pub use error::GraphError;
pub use graph::{Graph, GraphBuilder, NeighborIter};
pub use ids::{EdgeId, NodeId};
pub use weighted::{EdgeWeight, WeightedGraph};

/// Convenient result alias used throughout this crate.
pub type Result<T> = std::result::Result<T, GraphError>;
