//! Spectral cut heuristics: the Fiedler-vector sweep.
//!
//! The proof of Cheeger's inequality is constructive: sorting nodes by the
//! second eigenvector of the (normalized) Laplacian and sweeping over
//! prefix cuts finds a cut of conductance `≤ √(2·gap)`. The experiments use
//! this to *locate* the sparse cuts whose existence the spectral estimates
//! promise (e.g. the dumbbell bridge), and the min-cut tests use it as an
//! independent upper-bound witness for `h(G)`.

use crate::{expansion, Graph, NodeId};

/// Result of a sweep cut.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepCut {
    /// One side of the best prefix cut.
    pub side: Vec<NodeId>,
    /// Its conductance `e(S, V∖S) / min(vol S, vol V∖S)`.
    pub conductance: f64,
    /// Its edge expansion `e(S, V∖S) / min(|S|, |V∖S|)`.
    pub expansion: f64,
    /// Number of cut edges.
    pub cut_edges: usize,
}

/// Finds a low-conductance cut by the Fiedler sweep: power-iterate the
/// second eigenvector of the lazy walk matrix, sort nodes by their entry,
/// and take the best prefix cut.
///
/// Returns `None` for graphs with fewer than 2 nodes or isolated nodes
/// (where the spectral machinery is undefined).
///
/// # Examples
///
/// ```
/// use amt_graphs::{generators, partitioning};
/// // A barbell's sparse cut is its bridge.
/// let g = generators::barbell(6, 0).unwrap();
/// let cut = partitioning::fiedler_sweep_cut(&g, 400).unwrap();
/// assert_eq!(cut.cut_edges, 1);
/// ```
pub fn fiedler_sweep_cut(g: &Graph, power_iters: usize) -> Option<SweepCut> {
    let n = g.len();
    if n < 2 || g.min_degree() == 0 {
        return None;
    }
    let order = fiedler_order(g, power_iters)?;
    // Sweep: maintain cut size and volume incrementally.
    let mut in_s = vec![false; n];
    let total_vol = g.volume();
    let mut vol = 0usize;
    let mut cut = 0isize;
    let mut best: Option<(f64, usize)> = None; // (conductance, prefix len)
    for (prefix, &v) in order.iter().enumerate().take(n - 1) {
        in_s[v.index()] = true;
        vol += g.degree(v);
        for (w, _) in g.neighbors(v) {
            if w == v {
                continue;
            }
            cut += if in_s[w.index()] { -1 } else { 1 };
        }
        let denom = vol.min(total_vol - vol);
        if denom == 0 {
            continue;
        }
        let phi = cut as f64 / denom as f64;
        if best.is_none_or(|(b, _)| phi < b) {
            best = Some((phi, prefix + 1));
        }
    }
    let (_, len) = best?;
    let side: Vec<NodeId> = order[..len].to_vec();
    let mut flags = vec![false; n];
    for v in &side {
        flags[v.index()] = true;
    }
    let cut_edges = expansion::cut_size(g, &flags);
    let vol_s = expansion::side_volume(g, &flags);
    let size_s = side.len().min(n - side.len());
    Some(SweepCut {
        conductance: cut_edges as f64 / vol_s.min(total_vol - vol_s).max(1) as f64,
        expansion: cut_edges as f64 / size_s.max(1) as f64,
        cut_edges,
        side,
    })
}

/// Nodes sorted by their entry in the (approximate) second eigenvector of
/// the lazy walk matrix.
fn fiedler_order(g: &Graph, power_iters: usize) -> Option<Vec<NodeId>> {
    let n = g.len();
    let sqrt_deg: Vec<f64> = g.nodes().map(|v| (g.degree(v) as f64).sqrt()).collect();
    let norm_top: f64 = sqrt_deg.iter().map(|d| d * d).sum::<f64>().sqrt();
    let top: Vec<f64> = sqrt_deg.iter().map(|d| d / norm_top).collect();
    let mut x: Vec<f64> = (0..n)
        .map(|i| (i as f64 * 0.618_033_988 + 0.3).sin())
        .collect();
    let mut y = vec![0.0f64; n];
    for _ in 0..power_iters {
        // y = ½(I + D^{-1/2} A D^{-1/2}) x, deflated against `top`.
        y.iter_mut().for_each(|v| *v = 0.0);
        for (_, u, v) in g.edges() {
            let (ui, vi) = (u.index(), v.index());
            if ui == vi {
                y[ui] += 2.0 * x[ui] / (sqrt_deg[ui] * sqrt_deg[ui]);
            } else {
                y[ui] += x[vi] / (sqrt_deg[ui] * sqrt_deg[vi]);
                y[vi] += x[ui] / (sqrt_deg[ui] * sqrt_deg[vi]);
            }
        }
        for i in 0..n {
            y[i] = 0.5 * (x[i] + y[i]);
        }
        let dot: f64 = y.iter().zip(&top).map(|(a, b)| a * b).sum();
        for (v, t) in y.iter_mut().zip(&top) {
            *v -= dot * t;
        }
        let norm = y.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm < 1e-300 {
            return None;
        }
        for v in y.iter_mut() {
            *v /= norm;
        }
        std::mem::swap(&mut x, &mut y);
    }
    // Convert back from the symmetrized space: f = D^{-1/2} x.
    let mut order: Vec<NodeId> = g.nodes().collect();
    order.sort_by(|a, b| {
        let fa = x[a.index()] / sqrt_deg[a.index()];
        let fb = x[b.index()] / sqrt_deg[b.index()];
        fa.partial_cmp(&fb).expect("finite eigenvector entries")
    });
    Some(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sweep_finds_the_dumbbell_bridge() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = generators::dumbbell_expanders(24, 4, 1, &mut rng).unwrap();
        let cut = fiedler_sweep_cut(&g, 400).unwrap();
        assert_eq!(cut.cut_edges, 1, "must isolate the single bridge");
        assert_eq!(cut.side.len().min(48 - cut.side.len()), 24);
    }

    #[test]
    fn sweep_on_barbell_cuts_the_path() {
        let g = generators::barbell(8, 2).unwrap();
        let cut = fiedler_sweep_cut(&g, 600).unwrap();
        assert_eq!(cut.cut_edges, 1, "cut = {cut:?}");
    }

    #[test]
    fn sweep_conductance_respects_cheeger_upper_bound() {
        for g in [
            generators::hypercube(5),
            generators::torus_2d(6, 6),
            generators::ring(30),
        ] {
            let gap = expansion::spectral_gap_lazy(&g, 500).unwrap();
            let cut = fiedler_sweep_cut(&g, 500).unwrap();
            let bound = (2.0 * 2.0 * gap).sqrt(); // non-lazy gap = 2·lazy gap
            assert!(
                cut.conductance <= bound + 1e-6,
                "sweep conductance {} above Cheeger bound {bound}",
                cut.conductance
            );
        }
    }

    #[test]
    fn sweep_side_realizes_reported_values() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = generators::connected_erdos_renyi(40, 0.15, 50, &mut rng).unwrap();
        let cut = fiedler_sweep_cut(&g, 400).unwrap();
        let mut flags = vec![false; g.len()];
        for v in &cut.side {
            flags[v.index()] = true;
        }
        assert_eq!(expansion::cut_size(&g, &flags), cut.cut_edges);
        assert!(!cut.side.is_empty() && cut.side.len() < g.len());
    }

    #[test]
    fn degenerate_inputs_return_none() {
        assert!(fiedler_sweep_cut(&crate::GraphBuilder::new(1).build(), 100).is_none());
        let isolated = Graph::from_edges(3, &[(0, 1)]).unwrap();
        assert!(fiedler_sweep_cut(&isolated, 100).is_none());
    }
}
