//! Spectral cut heuristics: the Fiedler-vector sweep and k-way placement.
//!
//! The proof of Cheeger's inequality is constructive: sorting nodes by the
//! second eigenvector of the (normalized) Laplacian and sweeping over
//! prefix cuts finds a cut of conductance `≤ √(2·gap)`. The experiments use
//! this to *locate* the sparse cuts whose existence the spectral estimates
//! promise (e.g. the dumbbell bridge), and the min-cut tests use it as an
//! independent upper-bound witness for `h(G)`.
//!
//! [`Placement`] extends the sweep into a k-way node→shard map via
//! recursive spectral bisection with size-balance caps; the threaded
//! CONGEST executor consumes it to keep cross-shard edges (and therefore
//! cross-worker message traffic) low.

use crate::{expansion, GraphError, Result};
use crate::{Graph, NodeId};

/// Result of a sweep cut.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepCut {
    /// One side of the best prefix cut.
    pub side: Vec<NodeId>,
    /// Its conductance `e(S, V∖S) / min(vol S, vol V∖S)`.
    pub conductance: f64,
    /// Its edge expansion `e(S, V∖S) / min(|S|, |V∖S|)`.
    pub expansion: f64,
    /// Number of cut edges.
    pub cut_edges: usize,
}

/// Finds a low-conductance cut by the Fiedler sweep: power-iterate the
/// second eigenvector of the lazy walk matrix, sort nodes by their entry,
/// and take the best prefix cut.
///
/// Returns `None` for graphs with fewer than 2 nodes or isolated nodes
/// (where the spectral machinery is undefined).
///
/// # Examples
///
/// ```
/// use amt_graphs::{generators, partitioning};
/// // A barbell's sparse cut is its bridge.
/// let g = generators::barbell(6, 0).unwrap();
/// let cut = partitioning::fiedler_sweep_cut(&g, 400).unwrap();
/// assert_eq!(cut.cut_edges, 1);
/// ```
pub fn fiedler_sweep_cut(g: &Graph, power_iters: usize) -> Option<SweepCut> {
    let n = g.len();
    if n < 2 || g.min_degree() == 0 {
        return None;
    }
    let order = fiedler_order(g, power_iters)?;
    // Sweep: maintain cut size and volume incrementally. The self-loop
    // convention is shared with `expansion::{cut_size, side_volume}`: a
    // loop contributes 2 to its node's degree (and hence to volume) but
    // never crosses a cut.
    let mut in_s = vec![false; n];
    let total_vol = g.volume();
    let mut vol = 0usize;
    let mut cut = 0isize;
    // (conductance, prefix len, cut, vol) at the best prefix.
    let mut best: Option<(f64, usize, isize, usize)> = None;
    for (prefix, &v) in order.iter().enumerate().take(n - 1) {
        in_s[v.index()] = true;
        vol += g.degree(v);
        for (w, _) in g.neighbors(v) {
            if w == v {
                continue;
            }
            cut += if in_s[w.index()] { -1 } else { 1 };
        }
        let denom = vol.min(total_vol - vol);
        if denom == 0 {
            continue;
        }
        let phi = cut as f64 / denom as f64;
        if best.is_none_or(|(b, ..)| phi < b) {
            best = Some((phi, prefix + 1, cut, vol));
        }
    }
    let (conductance, len, best_cut, best_vol) = best?;
    let side: Vec<NodeId> = order[..len].to_vec();
    // The reported conductance IS the phi that selected the prefix; the
    // incremental state must agree exactly with an independent recount.
    if cfg!(debug_assertions) {
        let mut flags = vec![false; n];
        for v in &side {
            flags[v.index()] = true;
        }
        debug_assert_eq!(best_cut as usize, expansion::cut_size(g, &flags));
        debug_assert_eq!(best_vol, expansion::side_volume(g, &flags));
    }
    let cut_edges = best_cut as usize;
    let size_s = len.min(n - len);
    Some(SweepCut {
        conductance,
        expansion: cut_edges as f64 / size_s.max(1) as f64,
        cut_edges,
        side,
    })
}

/// An explicit node→shard map for `k`-way partitioned execution.
///
/// The threaded CONGEST executor uses a `Placement` to decide which worker
/// owns each node. Shard ids are dense in `0..shards`; shards may be empty.
/// Placements are part of a run's configuration: the simulator's
/// determinism contract says every observable is byte-identical for any
/// placement, while wall-clock and cross-worker traffic depend on it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Placement {
    shard_of: Vec<u32>,
    shards: usize,
}

impl Placement {
    /// The historical contiguous-range placement: `ceil(n / shards)`-sized
    /// chunks of ascending node ids. Trailing shards may be empty when
    /// `shards` does not divide `n`.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn contiguous(n: usize, shards: usize) -> Placement {
        assert!(shards > 0, "a placement needs at least one shard");
        let chunk = n.div_ceil(shards).max(1);
        Placement {
            shard_of: (0..n).map(|v| (v / chunk) as u32).collect(),
            shards,
        }
    }

    /// Builds a placement from an explicit per-node shard assignment.
    ///
    /// Returns [`GraphError::InvalidParameters`] if `shards == 0` or any
    /// entry is `>= shards`.
    pub fn from_shard_of(shard_of: Vec<u32>, shards: usize) -> Result<Placement> {
        if shards == 0 {
            return Err(GraphError::InvalidParameters {
                reason: "a placement needs at least one shard".to_string(),
            });
        }
        if let Some(&bad) = shard_of.iter().find(|&&s| s as usize >= shards) {
            return Err(GraphError::InvalidParameters {
                reason: format!("shard id {bad} out of range for {shards} shards"),
            });
        }
        Ok(Placement { shard_of, shards })
    }

    /// Spectral `k`-way placement by recursive bisection over the Fiedler
    /// order, minimizing cross-shard edges subject to a size-balance cap.
    ///
    /// Each bisection orders the subset by the (approximate) Fiedler vector
    /// of its induced subgraph and picks the prefix split with the fewest
    /// internal cut edges inside a ±⅛ window around the proportional split
    /// point, so even skewed degree distributions (Chung–Lu, preferential
    /// attachment) produce shards within a constant factor of `n / k`.
    /// Nodes with no internal edges (including isolated nodes) are ordered
    /// deterministically by id. The result is a pure function of
    /// `(g, shards, power_iters)`.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn spectral(g: &Graph, shards: usize, power_iters: usize) -> Placement {
        assert!(shards > 0, "a placement needs at least one shard");
        let n = g.len();
        let mut shard_of = vec![0u32; n];
        let mut next_shard = 0u32;
        let subset: Vec<u32> = (0..n as u32).collect();
        bisect(
            g,
            subset,
            shards,
            power_iters,
            &mut next_shard,
            &mut shard_of,
        );
        debug_assert_eq!(next_shard as usize, shards);
        Placement { shard_of, shards }
    }

    /// Number of nodes covered by this placement.
    pub fn len(&self) -> usize {
        self.shard_of.len()
    }

    /// Whether the placement covers zero nodes.
    pub fn is_empty(&self) -> bool {
        self.shard_of.is_empty()
    }

    /// Number of shards (including empty ones).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning node `v`.
    pub fn shard(&self, v: NodeId) -> usize {
        self.shard_of[v.index()] as usize
    }

    /// The raw node→shard map, indexed by node id.
    pub fn shard_of(&self) -> &[u32] {
        &self.shard_of
    }

    /// Node count per shard.
    pub fn shard_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.shards];
        for &s in &self.shard_of {
            sizes[s as usize] += 1;
        }
        sizes
    }

    /// Whether shard ids are nondecreasing in node id — i.e. every shard is
    /// a contiguous id range. Executors can splice such shards back by
    /// concatenation instead of a per-node merge.
    pub fn is_id_monotone(&self) -> bool {
        self.shard_of.windows(2).all(|w| w[0] <= w[1])
    }

    /// Per-edge flags marking edges whose endpoints live in different
    /// shards. Self-loops are never cross-shard. Indexed by `EdgeId`.
    ///
    /// # Panics
    ///
    /// Panics if `g.len() != self.len()`.
    pub fn cross_edge_flags(&self, g: &Graph) -> Vec<bool> {
        assert_eq!(g.len(), self.len(), "placement built for a different graph");
        g.edges()
            .map(|(_, u, v)| self.shard_of[u.index()] != self.shard_of[v.index()])
            .collect()
    }

    /// Number of edges crossing between shards.
    pub fn cross_edge_count(&self, g: &Graph) -> usize {
        self.cross_edge_flags(g).iter().filter(|&&c| c).count()
    }

    /// Human-readable per-shard labels for telemetry and health tables:
    /// shard index, node count, and either the covered id span
    /// (`ids 0..=511`) when the shard is a single contiguous run, or
    /// `scattered` when its ids interleave with other shards'.
    pub fn shard_labels(&self) -> Vec<String> {
        let mut lo = vec![u32::MAX; self.shards];
        let mut hi = vec![0u32; self.shards];
        let mut count = vec![0usize; self.shards];
        for (v, &s) in self.shard_of.iter().enumerate() {
            let s = s as usize;
            lo[s] = lo[s].min(v as u32);
            hi[s] = hi[s].max(v as u32);
            count[s] += 1;
        }
        (0..self.shards)
            .map(|s| {
                if count[s] == 0 {
                    format!("s{s} (empty)")
                } else if (hi[s] - lo[s]) as usize + 1 == count[s] {
                    format!("s{s} ({}n, ids {}..={})", count[s], lo[s], hi[s])
                } else {
                    format!("s{s} ({}n, scattered)", count[s])
                }
            })
            .collect()
    }
}

/// Recursively assigns `k` shard ids to `subset`, consuming exactly `k`
/// ids from `next_shard` (empty subsets burn their ids so shard ids stay
/// dense and the total count is exact).
fn bisect(
    g: &Graph,
    subset: Vec<u32>,
    k: usize,
    power_iters: usize,
    next_shard: &mut u32,
    shard_of: &mut [u32],
) {
    if k == 1 {
        for v in &subset {
            shard_of[*v as usize] = *next_shard;
        }
        *next_shard += 1;
        return;
    }
    if subset.is_empty() {
        *next_shard += k as u32;
        return;
    }
    let k_left = k / 2;
    let k_right = k - k_left;
    if subset.len() == 1 {
        // One node, several shards: the node goes left, the rest burn.
        shard_of[subset[0] as usize] = *next_shard;
        *next_shard += k as u32;
        return;
    }
    let order = subset_spectral_order(g, subset, power_iters);
    let split = best_balanced_split(g, &order, k_left, k);
    let right = order[split..].to_vec();
    let left = {
        let mut l = order;
        l.truncate(split);
        l
    };
    bisect(g, left, k_left, power_iters, next_shard, shard_of);
    bisect(g, right, k_right, power_iters, next_shard, shard_of);
}

/// Orders `subset` by the approximate Fiedler vector of its induced
/// subgraph (self-loops dropped; edges leaving the subset ignored). Nodes
/// with no internal edges sort by id among themselves; ties always break
/// by id so the order is deterministic.
fn subset_spectral_order(g: &Graph, subset: Vec<u32>, power_iters: usize) -> Vec<u32> {
    let len = subset.len();
    if len <= 2 {
        let mut s = subset;
        s.sort_unstable();
        return s;
    }
    // Local index map: global node id -> position in `subset`.
    let mut local = vec![u32::MAX; g.len()];
    for (i, &v) in subset.iter().enumerate() {
        local[v as usize] = i as u32;
    }
    // Induced adjacency in local indices, one entry per edge instance.
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); len];
    for &v in &subset {
        let li = local[v as usize] as usize;
        for (w, _) in g.neighbors(NodeId(v)) {
            if w.0 == v {
                continue;
            }
            let lw = local[w.index()];
            if lw != u32::MAX {
                adj[li].push(lw);
            }
        }
    }
    // Degree-0 (within the subset) nodes get weight 1: they contribute
    // nothing to the quadratic form but keep the arithmetic finite.
    let sqrt_deg: Vec<f64> = adj.iter().map(|a| (a.len().max(1) as f64).sqrt()).collect();
    let norm_top: f64 = sqrt_deg.iter().map(|d| d * d).sum::<f64>().sqrt();
    let top: Vec<f64> = sqrt_deg.iter().map(|d| d / norm_top).collect();
    let mut x: Vec<f64> = (0..len)
        .map(|i| (i as f64 * 0.618_033_988 + 0.3).sin())
        .collect();
    let mut y = vec![0.0f64; len];
    let mut degenerate = false;
    for _ in 0..power_iters {
        // y = ½(I + D^{-1/2} A D^{-1/2}) x, deflated against `top`.
        y.iter_mut().for_each(|v| *v = 0.0);
        for (i, nbrs) in adj.iter().enumerate() {
            for &j in nbrs {
                y[i] += x[j as usize] / (sqrt_deg[i] * sqrt_deg[j as usize]);
            }
        }
        for i in 0..len {
            y[i] = 0.5 * (x[i] + y[i]);
        }
        let dot: f64 = y.iter().zip(&top).map(|(a, b)| a * b).sum();
        for (v, t) in y.iter_mut().zip(&top) {
            *v -= dot * t;
        }
        let norm = y.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm < 1e-300 {
            degenerate = true;
            break;
        }
        for v in y.iter_mut() {
            *v /= norm;
        }
        std::mem::swap(&mut x, &mut y);
    }
    let mut order = subset;
    if degenerate {
        order.sort_unstable();
        return order;
    }
    order.sort_by(|&a, &b| {
        let fa = x[local[a as usize] as usize] / sqrt_deg[local[a as usize] as usize];
        let fb = x[local[b as usize] as usize] / sqrt_deg[local[b as usize] as usize];
        fa.partial_cmp(&fb)
            .expect("finite eigenvector entries")
            .then(a.cmp(&b))
    });
    order
}

/// Picks the prefix length splitting `order` into `k_left : k - k_left`
/// shares: the fewest internal cut edges within a ±⅛ balance window around
/// the proportional point (ties: closest to proportional, then shorter).
fn best_balanced_split(g: &Graph, order: &[u32], k_left: usize, k: usize) -> usize {
    let len = order.len();
    let target = (len * k_left) / k;
    let slack = (len / 8).max(1);
    let lo = target.saturating_sub(slack).max(1);
    let hi = (target + slack).min(len - 1);
    let mut local = vec![u32::MAX; g.len()];
    for (i, &v) in order.iter().enumerate() {
        local[v as usize] = i as u32;
    }
    let mut cut = 0isize;
    let mut best = (isize::MAX, usize::MAX, lo); // (cut, |pos - target|, pos)
    for (prefix, &v) in order.iter().enumerate().take(hi) {
        for (w, _) in g.neighbors(NodeId(v)) {
            if w.0 == v {
                continue;
            }
            let lw = local[w.index()];
            if lw == u32::MAX {
                continue;
            }
            cut += if (lw as usize) <= prefix { -1 } else { 1 };
        }
        let pos = prefix + 1;
        if pos < lo {
            continue;
        }
        let key = (cut, pos.abs_diff(target), pos);
        if key < best {
            best = key;
        }
    }
    best.2
}

/// Nodes sorted by their entry in the (approximate) second eigenvector of
/// the lazy walk matrix.
fn fiedler_order(g: &Graph, power_iters: usize) -> Option<Vec<NodeId>> {
    let n = g.len();
    let sqrt_deg: Vec<f64> = g.nodes().map(|v| (g.degree(v) as f64).sqrt()).collect();
    let norm_top: f64 = sqrt_deg.iter().map(|d| d * d).sum::<f64>().sqrt();
    let top: Vec<f64> = sqrt_deg.iter().map(|d| d / norm_top).collect();
    let mut x: Vec<f64> = (0..n)
        .map(|i| (i as f64 * 0.618_033_988 + 0.3).sin())
        .collect();
    let mut y = vec![0.0f64; n];
    for _ in 0..power_iters {
        // y = ½(I + D^{-1/2} A D^{-1/2}) x, deflated against `top`.
        y.iter_mut().for_each(|v| *v = 0.0);
        for (_, u, v) in g.edges() {
            let (ui, vi) = (u.index(), v.index());
            if ui == vi {
                y[ui] += 2.0 * x[ui] / (sqrt_deg[ui] * sqrt_deg[ui]);
            } else {
                y[ui] += x[vi] / (sqrt_deg[ui] * sqrt_deg[vi]);
                y[vi] += x[ui] / (sqrt_deg[ui] * sqrt_deg[vi]);
            }
        }
        for i in 0..n {
            y[i] = 0.5 * (x[i] + y[i]);
        }
        let dot: f64 = y.iter().zip(&top).map(|(a, b)| a * b).sum();
        for (v, t) in y.iter_mut().zip(&top) {
            *v -= dot * t;
        }
        let norm = y.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm < 1e-300 {
            return None;
        }
        for v in y.iter_mut() {
            *v /= norm;
        }
        std::mem::swap(&mut x, &mut y);
    }
    // Convert back from the symmetrized space: f = D^{-1/2} x.
    let mut order: Vec<NodeId> = g.nodes().collect();
    order.sort_by(|a, b| {
        let fa = x[a.index()] / sqrt_deg[a.index()];
        let fb = x[b.index()] / sqrt_deg[b.index()];
        fa.partial_cmp(&fb).expect("finite eigenvector entries")
    });
    Some(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shard_labels_report_spans_and_scatter() {
        let labels = Placement::contiguous(8, 2).shard_labels();
        assert_eq!(labels, vec!["s0 (4n, ids 0..=3)", "s1 (4n, ids 4..=7)"]);
        // Interleaved (even/odd) shards have no contiguous span.
        let interleaved =
            Placement::from_shard_of(vec![0, 1, 0, 1, 0, 1], 2).expect("valid placement");
        assert_eq!(
            interleaved.shard_labels(),
            vec!["s0 (3n, scattered)", "s1 (3n, scattered)"]
        );
        // Empty shards are labelled, not skipped.
        let sparse = Placement::from_shard_of(vec![0, 0], 2).expect("valid placement");
        assert_eq!(sparse.shard_labels()[1], "s1 (empty)");
    }

    #[test]
    fn sweep_finds_the_dumbbell_bridge() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = generators::dumbbell_expanders(24, 4, 1, &mut rng).unwrap();
        let cut = fiedler_sweep_cut(&g, 400).unwrap();
        assert_eq!(cut.cut_edges, 1, "must isolate the single bridge");
        assert_eq!(cut.side.len().min(48 - cut.side.len()), 24);
    }

    #[test]
    fn sweep_on_barbell_cuts_the_path() {
        let g = generators::barbell(8, 2).unwrap();
        let cut = fiedler_sweep_cut(&g, 600).unwrap();
        assert_eq!(cut.cut_edges, 1, "cut = {cut:?}");
    }

    #[test]
    fn sweep_conductance_respects_cheeger_upper_bound() {
        for g in [
            generators::hypercube(5),
            generators::torus_2d(6, 6),
            generators::ring(30),
        ] {
            let gap = expansion::spectral_gap_lazy(&g, 500).unwrap();
            let cut = fiedler_sweep_cut(&g, 500).unwrap();
            let bound = (2.0 * 2.0 * gap).sqrt(); // non-lazy gap = 2·lazy gap
            assert!(
                cut.conductance <= bound + 1e-6,
                "sweep conductance {} above Cheeger bound {bound}",
                cut.conductance
            );
        }
    }

    #[test]
    fn sweep_side_realizes_reported_values() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = generators::connected_erdos_renyi(40, 0.15, 50, &mut rng).unwrap();
        let cut = fiedler_sweep_cut(&g, 400).unwrap();
        let mut flags = vec![false; g.len()];
        for v in &cut.side {
            flags[v.index()] = true;
        }
        assert_eq!(expansion::cut_size(&g, &flags), cut.cut_edges);
        assert!(!cut.side.is_empty() && cut.side.len() < g.len());
    }

    #[test]
    fn degenerate_inputs_return_none() {
        assert!(fiedler_sweep_cut(&crate::GraphBuilder::new(1).build(), 100).is_none());
        let isolated = Graph::from_edges(3, &[(0, 1)]).unwrap();
        assert!(fiedler_sweep_cut(&isolated, 100).is_none());
    }

    /// Two triangles joined by a bridge, with self-loops piled onto one
    /// side. Loops count (twice) in volume and never in the cut, in both
    /// the incremental sweep and the final report — so the reported
    /// conductance must equal an independent `expansion::` recount, and
    /// adding loops must leave the cut edges alone while shrinking phi.
    #[test]
    fn sweep_conductance_is_consistent_under_self_loops() {
        let edges = [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (0, 3)];
        let plain = Graph::from_edges(6, &edges).unwrap();
        let mut looped_edges = edges.to_vec();
        looped_edges.extend([(0, 0), (1, 1), (3, 3), (4, 4)]);
        let looped = Graph::from_edges(6, &looped_edges).unwrap();

        let cut_plain = fiedler_sweep_cut(&plain, 400).unwrap();
        let cut_looped = fiedler_sweep_cut(&looped, 400).unwrap();
        assert_eq!(cut_plain.cut_edges, 1, "must find the bridge");
        assert_eq!(cut_looped.cut_edges, 1, "self-loops must not join the cut");

        for (g, cut) in [(&plain, &cut_plain), (&looped, &cut_looped)] {
            let mut flags = vec![false; g.len()];
            for v in &cut.side {
                flags[v.index()] = true;
            }
            let cut_edges = expansion::cut_size(g, &flags);
            let vol_s = expansion::side_volume(g, &flags);
            let denom = vol_s.min(g.volume() - vol_s);
            assert_eq!(cut.cut_edges, cut_edges);
            assert_eq!(
                cut.conductance,
                cut_edges as f64 / denom as f64,
                "reported conductance must equal the recomputed one exactly"
            );
        }
        // Two loops per side add 4 to each side's volume (loops count
        // twice), so min-side volume grows from 7 to 11 at the same cut.
        assert!(
            cut_looped.conductance < cut_plain.conductance,
            "loops grow the denominator: {} !< {}",
            cut_looped.conductance,
            cut_plain.conductance
        );
    }

    #[test]
    fn contiguous_placement_matches_chunk_arithmetic() {
        let p = Placement::contiguous(10, 4);
        assert_eq!(p.shards(), 4);
        assert_eq!(p.shard_of(), &[0, 0, 0, 1, 1, 1, 2, 2, 2, 3]);
        assert_eq!(p.shard_sizes(), vec![3, 3, 3, 1]);
        assert!(p.is_id_monotone());
        // More shards than nodes: trailing shards are empty.
        let p = Placement::contiguous(3, 8);
        assert_eq!(p.shards(), 8);
        assert_eq!(p.shard_sizes(), vec![1, 1, 1, 0, 0, 0, 0, 0]);
    }

    #[test]
    fn explicit_placement_validates_shard_ids() {
        assert!(Placement::from_shard_of(vec![0, 2, 1], 3).is_ok());
        assert!(Placement::from_shard_of(vec![0, 3], 3).is_err());
        assert!(Placement::from_shard_of(vec![], 0).is_err());
        let p = Placement::from_shard_of(vec![1, 0, 0, 1], 2).unwrap();
        assert!(!p.is_id_monotone());
        assert_eq!(p.shard_sizes(), vec![2, 2]);
    }

    #[test]
    fn spectral_placement_isolates_dumbbell_halves() {
        let mut rng = StdRng::seed_from_u64(5);
        let k = 32;
        let plain = generators::dumbbell_expanders(k, 4, 2, &mut rng).unwrap();
        // Interleave the halves across the id range (even ids = half A,
        // odd ids = half B) so id order carries no structure — the regime
        // contiguous sharding gets arbitrarily wrong.
        let mut b = crate::GraphBuilder::new(plain.len());
        let relabel = |v: NodeId| {
            if v.index() < k {
                2 * v.index()
            } else {
                2 * (v.index() - k) + 1
            }
        };
        for (_, u, v) in plain.edges() {
            b.add_edge(relabel(u), relabel(v));
        }
        let g = b.build();
        let spectral = Placement::spectral(&g, 2, 400);
        let contiguous = Placement::contiguous(g.len(), 2);
        assert_eq!(spectral.len(), g.len());
        assert_eq!(spectral.shards(), 2);
        let s = spectral.cross_edge_count(&g);
        let c = contiguous.cross_edge_count(&g);
        assert!(s < c, "spectral cut {s} not below contiguous cut {c}");
        assert!(s <= 6, "spectral cut {s} should be close to the 2 bridges");
        let sizes = spectral.shard_sizes();
        assert!(sizes.iter().all(|&z| z >= 24), "unbalanced: {sizes:?}");
    }

    #[test]
    fn spectral_placement_balances_skewed_degrees() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 256;
        // Heavy-tailed Chung–Lu weights plus preferential attachment: the
        // skewed-degree stress cases named by the balance-cap requirement.
        let weights: Vec<f64> = (0..n).map(|v| 8.0 / ((v + 1) as f64).sqrt()).collect();
        let cl = generators::chung_lu(&weights, &mut rng).unwrap();
        let pa = generators::preferential_attachment(n, 3, &mut rng).unwrap();
        for g in [cl, pa] {
            for k in [2usize, 4, 8] {
                let p = Placement::spectral(&g, k, 200);
                let sizes = p.shard_sizes();
                assert_eq!(sizes.iter().sum::<usize>(), g.len());
                let cap = 2 * g.len().div_ceil(k);
                assert!(
                    sizes.iter().all(|&z| z <= cap),
                    "k = {k}: shard sizes {sizes:?} exceed balance cap {cap}"
                );
            }
        }
    }

    #[test]
    fn spectral_placement_is_deterministic_and_handles_isolated_nodes() {
        // Disconnected graph with isolated nodes and a self-loop: the
        // partitioner must stay finite and deterministic.
        let g = Graph::from_edges(9, &[(0, 1), (1, 2), (4, 5), (5, 6), (7, 7)]).unwrap();
        let a = Placement::spectral(&g, 3, 150);
        let b = Placement::spectral(&g, 3, 150);
        assert_eq!(a, b, "spectral placement must be deterministic");
        assert_eq!(a.shard_sizes().iter().sum::<usize>(), 9);
    }

    #[test]
    fn cross_edge_flags_ignore_self_loops() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (1, 1)]).unwrap();
        let p = Placement::from_shard_of(vec![0, 0, 1, 1], 2).unwrap();
        assert_eq!(p.cross_edge_flags(&g), vec![false, true, false, false]);
        assert_eq!(p.cross_edge_count(&g), 1);
    }
}
