//! Breadth-first traversal utilities: distances, components, BFS trees,
//! diameter, and path extraction.

use crate::{EdgeId, Graph, NodeId};
use std::collections::VecDeque;

/// Distance value used to mark unreachable nodes in [`bfs_distances`].
pub const UNREACHABLE: u32 = u32::MAX;

/// Single-source BFS distances; unreachable nodes get [`UNREACHABLE`].
pub fn bfs_distances(g: &Graph, source: NodeId) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; g.len()];
    let mut queue = VecDeque::new();
    dist[source.index()] = 0;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let d = dist[v.index()];
        for (w, _) in g.neighbors(v) {
            if dist[w.index()] == UNREACHABLE {
                dist[w.index()] = d + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// A rooted BFS tree: for each node its parent and the connecting edge
/// (`None` at the root and at unreachable nodes), plus depths.
#[derive(Clone, Debug)]
pub struct BfsTree {
    /// The root the tree was grown from.
    pub root: NodeId,
    /// `parent[v]` is `Some((parent, edge))` for reachable non-root `v`.
    pub parent: Vec<Option<(NodeId, EdgeId)>>,
    /// BFS depth per node; [`UNREACHABLE`] when not reachable.
    pub depth: Vec<u32>,
}

impl BfsTree {
    /// Height of the tree: the maximum finite depth.
    pub fn height(&self) -> u32 {
        self.depth
            .iter()
            .copied()
            .filter(|&d| d != UNREACHABLE)
            .max()
            .unwrap_or(0)
    }

    /// The path of nodes from `v` up to the root (inclusive on both ends).
    ///
    /// Returns `None` if `v` is unreachable from the root.
    pub fn path_to_root(&self, v: NodeId) -> Option<Vec<NodeId>> {
        if self.depth[v.index()] == UNREACHABLE {
            return None;
        }
        let mut path = vec![v];
        let mut cur = v;
        while let Some((p, _)) = self.parent[cur.index()] {
            path.push(p);
            cur = p;
        }
        Some(path)
    }

    /// Children lists derived from the parent pointers.
    pub fn children(&self) -> Vec<Vec<NodeId>> {
        let mut ch = vec![Vec::new(); self.parent.len()];
        for (i, p) in self.parent.iter().enumerate() {
            if let Some((parent, _)) = p {
                ch[parent.index()].push(NodeId::from(i));
            }
        }
        ch
    }
}

/// Grows a BFS tree from `root`.
pub fn bfs_tree(g: &Graph, root: NodeId) -> BfsTree {
    let mut parent = vec![None; g.len()];
    let mut depth = vec![UNREACHABLE; g.len()];
    let mut queue = VecDeque::new();
    depth[root.index()] = 0;
    queue.push_back(root);
    while let Some(v) = queue.pop_front() {
        for (w, e) in g.neighbors(v) {
            if w != v && depth[w.index()] == UNREACHABLE {
                depth[w.index()] = depth[v.index()] + 1;
                parent[w.index()] = Some((v, e));
                queue.push_back(w);
            }
        }
    }
    BfsTree {
        root,
        parent,
        depth,
    }
}

/// A shortest (minimum-hop) path from `from` to `to` as a node sequence
/// (both endpoints included), or `None` if disconnected.
pub fn shortest_path(g: &Graph, from: NodeId, to: NodeId) -> Option<Vec<NodeId>> {
    let tree = bfs_tree(g, from);
    let mut p = tree.path_to_root(to)?;
    p.reverse();
    Some(p)
}

/// Returns `true` if the graph is connected; the empty graph is not.
pub fn is_connected(g: &Graph) -> bool {
    if g.is_empty() {
        return false;
    }
    bfs_distances(g, NodeId(0))
        .iter()
        .all(|&d| d != UNREACHABLE)
}

/// Connected components: returns `(component_id_per_node, component_count)`.
/// Component ids are dense and ordered by smallest contained node.
pub fn connected_components(g: &Graph) -> (Vec<u32>, usize) {
    let mut comp = vec![u32::MAX; g.len()];
    let mut next = 0u32;
    let mut queue = VecDeque::new();
    for s in 0..g.len() {
        if comp[s] != u32::MAX {
            continue;
        }
        comp[s] = next;
        queue.push_back(NodeId::from(s));
        while let Some(v) = queue.pop_front() {
            for (w, _) in g.neighbors(v) {
                if comp[w.index()] == u32::MAX {
                    comp[w.index()] = next;
                    queue.push_back(w);
                }
            }
        }
        next += 1;
    }
    (comp, next as usize)
}

/// Exact diameter by all-pairs BFS: `O(n·m)`. Returns `None` when the graph
/// is disconnected or empty.
pub fn diameter_exact(g: &Graph) -> Option<u32> {
    if !is_connected(g) {
        return None;
    }
    let mut diam = 0;
    for v in g.nodes() {
        let ecc = bfs_distances(g, v).into_iter().max().unwrap_or(0);
        diam = diam.max(ecc);
    }
    Some(diam)
}

/// Double-sweep lower bound on the diameter: one BFS from `start`, a second
/// from the farthest node found. Exact on trees, a good lower bound in
/// general, `O(m)`. Returns `None` when disconnected or empty.
pub fn diameter_double_sweep(g: &Graph, start: NodeId) -> Option<u32> {
    if !is_connected(g) {
        return None;
    }
    let d1 = bfs_distances(g, start);
    let far = d1
        .iter()
        .enumerate()
        .max_by_key(|&(_, d)| *d)
        .map(|(i, _)| NodeId::from(i))?;
    let d2 = bfs_distances(g, far);
    d2.into_iter().max()
}

/// Multi-source BFS: distance to the *nearest* source per node
/// ([`UNREACHABLE`] when no source reaches it), plus the nearest source id.
pub fn multi_source_bfs(g: &Graph, sources: &[NodeId]) -> (Vec<u32>, Vec<Option<NodeId>>) {
    let mut dist = vec![UNREACHABLE; g.len()];
    let mut owner: Vec<Option<NodeId>> = vec![None; g.len()];
    let mut queue = VecDeque::new();
    for &s in sources {
        if dist[s.index()] != 0 || owner[s.index()].is_none() {
            dist[s.index()] = 0;
            owner[s.index()] = Some(s);
            queue.push_back(s);
        }
    }
    while let Some(v) = queue.pop_front() {
        let d = dist[v.index()];
        for (w, _) in g.neighbors(v) {
            if dist[w.index()] == UNREACHABLE {
                dist[w.index()] = d + 1;
                owner[w.index()] = owner[v.index()];
                queue.push_back(w);
            }
        }
    }
    (dist, owner)
}

/// Eccentricity of every node (max BFS distance), `O(n·m)`; entries are
/// [`UNREACHABLE`] on disconnected graphs. `radius = min`, `diameter = max`.
pub fn eccentricities(g: &Graph) -> Vec<u32> {
    g.nodes()
        .map(|v| {
            let d = bfs_distances(g, v);
            if d.contains(&UNREACHABLE) {
                UNREACHABLE
            } else {
                d.into_iter().max().unwrap_or(0)
            }
        })
        .collect()
}

/// The radius (minimum eccentricity) and a center node realizing it, or
/// `None` when disconnected or empty.
pub fn radius_and_center(g: &Graph) -> Option<(u32, NodeId)> {
    let ecc = eccentricities(g);
    ecc.iter()
        .enumerate()
        .filter(|&(_, &e)| e != UNREACHABLE)
        .min_by_key(|&(_, &e)| e)
        .map(|(i, &e)| (e, NodeId::from(i)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> Graph {
        let edges: Vec<_> = (0..n - 1).map(|i| (i, i + 1)).collect();
        Graph::from_edges(n, &edges).unwrap()
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = path_graph(5);
        let d = bfs_distances(&g, NodeId(0));
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn unreachable_marked() {
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap();
        let d = bfs_distances(&g, NodeId(0));
        assert_eq!(d[2], UNREACHABLE);
    }

    #[test]
    fn bfs_tree_structure() {
        let g = path_graph(4);
        let t = bfs_tree(&g, NodeId(1));
        assert_eq!(t.height(), 2);
        assert_eq!(t.parent[0], Some((NodeId(1), EdgeId(0))));
        assert_eq!(
            t.path_to_root(NodeId(3)).unwrap(),
            vec![NodeId(3), NodeId(2), NodeId(1)]
        );
        let ch = t.children();
        assert_eq!(ch[1], vec![NodeId(0), NodeId(2)]);
    }

    #[test]
    fn shortest_path_endpoints_inclusive() {
        let g = path_graph(4);
        let p = shortest_path(&g, NodeId(0), NodeId(3)).unwrap();
        assert_eq!(p, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
        assert_eq!(
            shortest_path(&g, NodeId(2), NodeId(2)).unwrap(),
            vec![NodeId(2)]
        );
    }

    #[test]
    fn components_counted_and_labeled() {
        let g = Graph::from_edges(5, &[(0, 1), (2, 3)]).unwrap();
        let (comp, k) = connected_components(&g);
        assert_eq!(k, 3);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[2], comp[3]);
        assert_ne!(comp[0], comp[2]);
        assert_ne!(comp[4], comp[0]);
    }

    #[test]
    fn diameter_of_path_and_cycle() {
        assert_eq!(diameter_exact(&path_graph(6)), Some(5));
        let cyc = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]).unwrap();
        assert_eq!(diameter_exact(&cyc), Some(3));
        assert_eq!(diameter_double_sweep(&path_graph(6), NodeId(2)), Some(5));
    }

    #[test]
    fn diameter_none_when_disconnected() {
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap();
        assert_eq!(diameter_exact(&g), None);
        assert_eq!(diameter_double_sweep(&g, NodeId(0)), None);
    }

    #[test]
    fn multi_source_bfs_assigns_nearest_source() {
        let g = path_graph(7);
        let (dist, owner) = multi_source_bfs(&g, &[NodeId(0), NodeId(6)]);
        assert_eq!(dist, vec![0, 1, 2, 3, 2, 1, 0]);
        assert_eq!(owner[1], Some(NodeId(0)));
        assert_eq!(owner[5], Some(NodeId(6)));
        // No sources → everything unreachable.
        let (d2, o2) = multi_source_bfs(&g, &[]);
        assert!(d2.iter().all(|&d| d == UNREACHABLE));
        assert!(o2.iter().all(Option::is_none));
    }

    #[test]
    fn eccentricities_radius_center() {
        let g = path_graph(5);
        let ecc = eccentricities(&g);
        assert_eq!(ecc, vec![4, 3, 2, 3, 4]);
        let (r, c) = radius_and_center(&g).unwrap();
        assert_eq!(r, 2);
        assert_eq!(c, NodeId(2));
        let disc = Graph::from_edges(3, &[(0, 1)]).unwrap();
        assert_eq!(radius_and_center(&disc), None);
    }

    #[test]
    fn self_loops_do_not_enter_bfs_tree() {
        let g = Graph::from_edges(2, &[(0, 0), (0, 1)]).unwrap();
        let t = bfs_tree(&g, NodeId(0));
        assert_eq!(t.parent[1], Some((NodeId(0), EdgeId(1))));
        assert_eq!(t.height(), 1);
    }
}
