//! Weighted graphs with a canonical unique-weight order.

use crate::{EdgeId, Graph, GraphError, NodeId, Result};
use rand::{Rng, RngExt};

/// The weight of an edge together with its id.
///
/// The paper (like most of the MST literature) assumes distinct edge weights
/// so that the MST is unique. Rather than requiring callers to provide
/// distinct weights, we compare `(weight, EdgeId)` lexicographically; since
/// edge ids are unique, so is the induced total order, and the MST under
/// this order is the canonical MST of the weighted graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeWeight {
    /// The raw weight.
    pub weight: u64,
    /// Tie-breaking edge id.
    pub edge: EdgeId,
}

impl EdgeWeight {
    /// Creates the canonical `(weight, edge)` pair.
    pub fn new(weight: u64, edge: EdgeId) -> Self {
        EdgeWeight { weight, edge }
    }
}

/// An undirected weighted (multi)graph: a [`Graph`] plus one `u64` weight
/// per edge.
///
/// # Examples
///
/// ```
/// use amt_graphs::{Graph, WeightedGraph};
/// let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]).unwrap();
/// let wg = WeightedGraph::new(g, vec![5, 3, 9]).unwrap();
/// assert_eq!(wg.weight(1u32.into()), 3);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WeightedGraph {
    graph: Graph,
    weights: Vec<u64>,
}

impl WeightedGraph {
    /// Wraps a graph with one weight per edge.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::WeightCountMismatch`] if `weights.len()`
    /// differs from `graph.edge_count()`.
    pub fn new(graph: Graph, weights: Vec<u64>) -> Result<Self> {
        if weights.len() != graph.edge_count() {
            return Err(GraphError::WeightCountMismatch {
                edges: graph.edge_count(),
                weights: weights.len(),
            });
        }
        Ok(WeightedGraph { graph, weights })
    }

    /// Assigns independent uniform weights in `1..=max_weight` to every edge.
    pub fn with_random_weights<R: Rng>(graph: Graph, max_weight: u64, rng: &mut R) -> Self {
        let weights = (0..graph.edge_count())
            .map(|_| rng.random_range(1..=max_weight))
            .collect();
        WeightedGraph { graph, weights }
    }

    /// The underlying unweighted graph.
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The raw weight of edge `e`.
    #[inline]
    pub fn weight(&self, e: EdgeId) -> u64 {
        self.weights[e.index()]
    }

    /// The canonical totally ordered weight of edge `e` (ties broken by id).
    #[inline]
    pub fn canonical_weight(&self, e: EdgeId) -> EdgeWeight {
        EdgeWeight::new(self.weights[e.index()], e)
    }

    /// All raw weights, indexed by edge id.
    #[inline]
    pub fn weights(&self) -> &[u64] {
        &self.weights
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.graph.len()
    }

    /// Returns `true` if the graph has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.graph.is_empty()
    }

    /// Number of edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }

    /// Sum of the weights of the given edge set (e.g. a spanning tree).
    pub fn total_weight(&self, edges: &[EdgeId]) -> u64 {
        edges.iter().map(|e| self.weight(*e)).sum()
    }

    /// The minimum-canonical-weight edge incident to `v` whose other
    /// endpoint satisfies `pred`, if any. Used pervasively by Boruvka-style
    /// algorithms ("lightest outgoing edge").
    pub fn min_incident_edge<F>(&self, v: NodeId, mut pred: F) -> Option<(EdgeId, NodeId)>
    where
        F: FnMut(NodeId) -> bool,
    {
        let mut best: Option<(EdgeWeight, NodeId)> = None;
        for (w, e) in self.graph.neighbors(v) {
            if w != v && pred(w) {
                let cw = self.canonical_weight(e);
                if best.is_none_or(|(b, _)| cw < b) {
                    best = Some((cw, w));
                }
            }
        }
        best.map(|(cw, w)| (cw.edge, w))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> WeightedGraph {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]).unwrap();
        WeightedGraph::new(g, vec![5, 3, 9]).unwrap()
    }

    #[test]
    fn weights_by_edge_id() {
        let wg = triangle();
        assert_eq!(wg.weight(EdgeId(0)), 5);
        assert_eq!(wg.weight(EdgeId(2)), 9);
        assert_eq!(wg.total_weight(&[EdgeId(0), EdgeId(1)]), 8);
    }

    #[test]
    fn mismatched_weight_count_rejected() {
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        let err = WeightedGraph::new(g, vec![1, 2]).unwrap_err();
        assert_eq!(
            err,
            GraphError::WeightCountMismatch {
                edges: 1,
                weights: 2
            }
        );
    }

    #[test]
    fn canonical_weights_break_ties_by_id() {
        let g = Graph::from_edges(2, &[(0, 1), (0, 1)]).unwrap();
        let wg = WeightedGraph::new(g, vec![7, 7]).unwrap();
        assert!(wg.canonical_weight(EdgeId(0)) < wg.canonical_weight(EdgeId(1)));
    }

    #[test]
    fn min_incident_edge_respects_predicate() {
        let wg = triangle();
        // From node 0: edge 0 (w=5) to node 1, edge 2 (w=9) to node 2.
        let (e, w) = wg.min_incident_edge(NodeId(0), |_| true).unwrap();
        assert_eq!((e, w), (EdgeId(0), NodeId(1)));
        let (e, w) = wg.min_incident_edge(NodeId(0), |x| x == NodeId(2)).unwrap();
        assert_eq!((e, w), (EdgeId(2), NodeId(2)));
        assert!(wg.min_incident_edge(NodeId(0), |_| false).is_none());
    }

    #[test]
    fn min_incident_edge_ignores_self_loops() {
        let g = Graph::from_edges(2, &[(0, 0), (0, 1)]).unwrap();
        let wg = WeightedGraph::new(g, vec![1, 100]).unwrap();
        let (e, _) = wg.min_incident_edge(NodeId(0), |_| true).unwrap();
        assert_eq!(e, EdgeId(1));
    }

    #[test]
    fn random_weights_in_range() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let wg = WeightedGraph::with_random_weights(g, 10, &mut rng);
        assert!(wg.weights().iter().all(|&w| (1..=10).contains(&w)));
    }
}
