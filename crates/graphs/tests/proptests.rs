//! Property-based tests for the graph substrate.

use amt_graphs::{expansion, generators, traversal, Graph, GraphBuilder, NodeId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: an arbitrary (possibly disconnected) graph as `(n, edges)`.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..24).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..60)
            .prop_map(move |edges| Graph::from_edges(n, &edges).expect("endpoints in range"))
    })
}

/// Strategy: a connected graph (random tree + extras).
fn arb_connected() -> impl Strategy<Value = Graph> {
    (3usize..24, any::<u64>()).prop_map(|(n, seed)| {
        use rand::RngExt;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = GraphBuilder::new(n);
        for v in 1..n {
            b.add_edge(v, rng.random_range(0..v));
        }
        for _ in 0..n / 2 {
            b.add_edge(rng.random_range(0..n), rng.random_range(0..n));
        }
        b.build()
    })
}

proptest! {
    #[test]
    fn csr_degree_sum_is_twice_edges(g in arb_graph()) {
        let total: usize = g.nodes().map(|v| g.degree(v)).sum();
        prop_assert_eq!(total, 2 * g.edge_count());
        prop_assert_eq!(total, g.volume());
    }

    #[test]
    fn adjacency_is_symmetric(g in arb_graph()) {
        for (e, u, v) in g.edges() {
            prop_assert!(g.neighbors(u).any(|(w, f)| f == e && w == v));
            prop_assert!(g.neighbors(v).any(|(w, f)| f == e && w == u));
        }
    }

    #[test]
    fn neighbor_at_matches_iterator(g in arb_graph()) {
        for v in g.nodes() {
            for (i, pair) in g.neighbors(v).enumerate() {
                prop_assert_eq!(g.neighbor_at(v, i), pair);
            }
        }
    }

    #[test]
    fn bfs_distances_satisfy_edge_relaxation(g in arb_connected()) {
        let dist = traversal::bfs_distances(&g, NodeId(0));
        for (_, u, v) in g.edges() {
            let (du, dv) = (dist[u.index()], dist[v.index()]);
            prop_assert!(du.abs_diff(dv) <= 1, "edge endpoints differ by > 1");
        }
    }

    #[test]
    fn double_sweep_lower_bounds_exact_diameter(g in arb_connected()) {
        let exact = traversal::diameter_exact(&g).expect("connected");
        let sweep = traversal::diameter_double_sweep(&g, NodeId(0)).expect("connected");
        prop_assert!(sweep <= exact);
        prop_assert!(2 * sweep >= exact, "double sweep is a 2-approximation");
    }

    #[test]
    fn bfs_tree_depths_equal_distances(g in arb_connected()) {
        let tree = traversal::bfs_tree(&g, NodeId(0));
        let dist = traversal::bfs_distances(&g, NodeId(0));
        for v in g.nodes() {
            prop_assert_eq!(tree.depth[v.index()], dist[v.index()]);
        }
    }

    #[test]
    fn components_partition_the_nodes(g in arb_graph()) {
        let (comp, k) = traversal::connected_components(&g);
        prop_assert!(k >= 1);
        prop_assert!(comp.iter().all(|&c| (c as usize) < k));
        // Edges never cross components.
        for (_, u, v) in g.edges() {
            prop_assert_eq!(comp[u.index()], comp[v.index()]);
        }
    }

    #[test]
    fn spectral_gap_within_unit_interval(g in arb_connected()) {
        let gap = expansion::spectral_gap_lazy(&g, 300).expect("connected, no isolated");
        prop_assert!((-1e-9..=1.0).contains(&gap), "gap = {gap}");
    }

    #[test]
    fn cheeger_bracket_brackets_exact_conductance(g in arb_connected()) {
        if g.len() <= 16 {
            if let Some(phi) = expansion::conductance_exact(&g) {
                let (lo, hi) = expansion::conductance_spectral_bounds(&g, 600).expect("connected");
                prop_assert!(lo <= phi + 1e-6, "lower {lo} > phi {phi}");
                prop_assert!(phi <= hi + 1e-6, "phi {phi} > upper {hi}");
            }
        }
    }

    #[test]
    fn regular_generator_always_regular(n in 6usize..40, d in 2usize..5, seed in any::<u64>()) {
        prop_assume!((n * d) % 2 == 0);
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::random_regular(n, d, &mut rng).expect("feasible");
        for v in g.nodes() {
            prop_assert_eq!(g.degree(v), d);
        }
        // Simple: no loops, no parallels.
        let mut seen = std::collections::HashSet::new();
        for (_, u, v) in g.edges() {
            prop_assert!(u != v);
            prop_assert!(seen.insert((u.min(v), u.max(v))));
        }
    }

    #[test]
    fn erdos_renyi_respects_p_bounds(n in 2usize..50, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let empty = generators::erdos_renyi(n, 0.0, &mut rng).expect("valid p");
        prop_assert_eq!(empty.edge_count(), 0);
        let full = generators::erdos_renyi(n, 1.0, &mut rng).expect("valid p");
        prop_assert_eq!(full.edge_count(), n * (n - 1) / 2);
    }

    #[test]
    fn cut_size_is_symmetric_in_complement(g in arb_graph(), mask in any::<u32>()) {
        let in_s: Vec<bool> = (0..g.len()).map(|i| (mask >> (i % 32)) & 1 == 1).collect();
        let flipped: Vec<bool> = in_s.iter().map(|&b| !b).collect();
        prop_assert_eq!(expansion::cut_size(&g, &in_s), expansion::cut_size(&g, &flipped));
        prop_assert_eq!(
            expansion::side_volume(&g, &in_s) + expansion::side_volume(&g, &flipped),
            g.volume()
        );
    }
}
