//! Θ(log n)-wise independent hashing and the β-ary partition labeling.
//!
//! §3.1.2 of the paper partitions the virtual nodes recursively into β parts
//! per level, using a Θ(log n)-wise independent hash function shared by all
//! nodes (its `Θ(log² n)` seed bits are broadcast once). This gives both
//! properties the construction needs:
//!
//! * **(P1) near-uniformity** — limited-independence Chernoff bounds
//!   (Schmidt–Siegel–Srinivasan) give `Θ(m/β^p)` nodes per depth-`p` part;
//! * **(P2) locality** — any node can compute any other node's full label
//!   sequence from its id alone.
//!
//! [`KWiseHash`] implements the textbook construction: a random polynomial
//! of degree `k−1` over the prime field `GF(2⁶¹−1)`, evaluated at the key.
//! Any `k` distinct keys receive exactly uniform, independent values.
//! [`PartitionHash`] maps hash values to leaves of the β-ary tree of depth
//! `k_levels` and exposes per-level labels and part indices.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod tabulation;

pub use tabulation::TabulationHash;

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

/// The Mersenne prime `2⁶¹ − 1` used as the hash field modulus.
pub const FIELD_PRIME: u64 = (1 << 61) - 1;

/// Multiplication in `GF(2⁶¹−1)`.
#[inline]
fn mul_mod(a: u64, b: u64) -> u64 {
    let prod = u128::from(a) * u128::from(b);
    // Fast Mersenne reduction: split at bit 61.
    let lo = (prod & u128::from(FIELD_PRIME)) as u64;
    let hi = (prod >> 61) as u64;
    let mut s = lo + hi;
    if s >= FIELD_PRIME {
        s -= FIELD_PRIME;
    }
    s
}

#[inline]
fn add_mod(a: u64, b: u64) -> u64 {
    let s = a + b; // both < 2^61, no overflow
    if s >= FIELD_PRIME {
        s - FIELD_PRIME
    } else {
        s
    }
}

/// A `k`-wise independent hash function: a uniformly random polynomial of
/// degree `k − 1` over `GF(2⁶¹−1)`.
///
/// For any `k` distinct keys, the tuple of hash values is exactly uniform
/// over the field — the classical polynomial construction cited by the
/// paper (Alon–Spencer). The seed costs `k·61 = Θ(k log n)` shared random
/// bits, matching the paper's `Θ(log² n)` for `k = Θ(log n)`.
///
/// # Examples
///
/// ```
/// use amt_kwise::KWiseHash;
/// let h = KWiseHash::from_seed(8, 42);
/// assert_eq!(h.eval(17), h.eval(17));
/// assert_eq!(h.independence(), 8);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KWiseHash {
    coeffs: Vec<u64>,
}

impl KWiseHash {
    /// Draws a random degree-`(k−1)` polynomial from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn from_seed(k: usize, seed: u64) -> Self {
        assert!(k > 0, "independence parameter k must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        Self::from_rng(k, &mut rng)
    }

    /// Draws a random degree-`(k−1)` polynomial from an existing RNG.
    pub fn from_rng<R: Rng>(k: usize, rng: &mut R) -> Self {
        assert!(k > 0, "independence parameter k must be positive");
        let coeffs = (0..k).map(|_| rng.random_range(0..FIELD_PRIME)).collect();
        KWiseHash { coeffs }
    }

    /// The independence parameter `k`.
    pub fn independence(&self) -> usize {
        self.coeffs.len()
    }

    /// Number of shared random bits the seed represents (`k · 61`).
    pub fn seed_bits(&self) -> usize {
        self.coeffs.len() * 61
    }

    /// Evaluates the polynomial at `x` (reduced into the field first).
    pub fn eval(&self, x: u64) -> u64 {
        let x = x % FIELD_PRIME;
        let mut acc = 0u64;
        for &c in self.coeffs.iter().rev() {
            acc = add_mod(mul_mod(acc, x), c);
        }
        acc
    }
}

/// The β-ary partition labeling of §3.1.2: maps ids to leaves of a β-ary
/// tree of depth `levels`, via a shared [`KWiseHash`].
///
/// Level-`p` labels (`1 ≤ p ≤ levels`) are the base-β digits of the leaf
/// index, most significant first, so label prefixes identify the nested
/// parts `A_i ⊃ B_{ji} ⊃ …` of the hierarchy.
///
/// # Examples
///
/// ```
/// use amt_kwise::PartitionHash;
/// let p = PartitionHash::new(4, 3, 8, 42);
/// let leaf = p.leaf(17);
/// assert!(leaf < 64);
/// // Labels are the base-4 digits of the leaf, most significant first.
/// let rebuilt = p.labels(17).iter().fold(0, |acc, &l| acc * 4 + u64::from(l));
/// assert_eq!(rebuilt, leaf);
/// ```
#[derive(Clone, Debug)]
pub struct PartitionHash {
    hash: KWiseHash,
    beta: u32,
    levels: u32,
    leaf_count: u64,
}

impl PartitionHash {
    /// Creates a partition hash with branching `beta`, depth `levels`, and
    /// `independence`-wise independent placement, seeded by `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `beta < 2`, `levels == 0`, or `beta^levels` overflows `u64`
    /// or is not far below the field size (`≥ 2⁵⁰`), which would make the
    /// modulo bias non-negligible.
    pub fn new(beta: u32, levels: u32, independence: usize, seed: u64) -> Self {
        assert!(beta >= 2, "beta must be at least 2");
        assert!(levels >= 1, "levels must be at least 1");
        let leaf_count = (0..levels).try_fold(1u64, |acc, _| acc.checked_mul(u64::from(beta)));
        let leaf_count = leaf_count.expect("beta^levels overflows u64");
        assert!(
            leaf_count < (1 << 50),
            "beta^levels too close to field size"
        );
        PartitionHash {
            hash: KWiseHash::from_seed(independence, seed),
            beta,
            levels,
            leaf_count,
        }
    }

    /// Branching factor β.
    pub fn beta(&self) -> u32 {
        self.beta
    }

    /// Depth of the partition tree.
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// Total number of leaves `β^levels`.
    pub fn leaf_count(&self) -> u64 {
        self.leaf_count
    }

    /// Number of shared random bits behind this partition.
    pub fn seed_bits(&self) -> usize {
        self.hash.seed_bits()
    }

    /// The leaf index of `id`, in `0..leaf_count`.
    pub fn leaf(&self, id: u64) -> u64 {
        self.hash.eval(id) % self.leaf_count
    }

    /// The level-`p` label of `id` (`p` in `1..=levels`), in `0..beta`.
    ///
    /// # Panics
    ///
    /// Panics if `level` is 0 or exceeds `levels`.
    pub fn label_at(&self, id: u64, level: u32) -> u32 {
        assert!(
            (1..=self.levels).contains(&level),
            "level {level} out of range"
        );
        let leaf = self.leaf(id);
        let shift = self.levels - level;
        let mut v = leaf;
        for _ in 0..shift {
            v /= u64::from(self.beta);
        }
        (v % u64::from(self.beta)) as u32
    }

    /// The full label sequence `(ℓ₁, …, ℓ_levels)` of `id`.
    pub fn labels(&self, id: u64) -> Vec<u32> {
        (1..=self.levels).map(|p| self.label_at(id, p)).collect()
    }

    /// The index of the depth-`p` part containing `id`: the integer formed
    /// by the first `p` labels (0 at depth 0, i.e. the whole set).
    pub fn part_at(&self, id: u64, depth: u32) -> u64 {
        assert!(depth <= self.levels, "depth {depth} out of range");
        let mut v = self.leaf(id);
        for _ in 0..(self.levels - depth) {
            v /= u64::from(self.beta);
        }
        v
    }

    /// Number of parts at `depth`: `β^depth`.
    pub fn parts_at(&self, depth: u32) -> u64 {
        (0..depth).fold(1u64, |acc, _| acc * u64::from(self.beta))
    }
}

/// Chooses the paper's parameters for `n` elements: `β` as the power of two
/// nearest `2^√(log n · log log n)` (clamped to `[2, 2¹⁶]`) and depth
/// `⌈log_β(n / log n)⌉` so bottom parts have `Θ(log n)` elements.
///
/// Returns `(beta, levels)`; `levels ≥ 1` always.
pub fn paper_parameters(n: usize) -> (u32, u32) {
    let n = n.max(4) as f64;
    let log_n = n.log2();
    let beta_exp = (log_n * log_n.log2().max(1.0))
        .sqrt()
        .round()
        .clamp(1.0, 16.0);
    let mut beta = 2f64.powf(beta_exp) as u32;
    // Keep a single level meaningful on small inputs: β at most n/8.
    while beta > 2 && f64::from(beta) > n / 8.0 {
        beta /= 2;
    }
    let beta = beta.max(2);
    let target = (n / log_n).max(2.0);
    let mut levels = (target.log2() / f64::from(beta).log2()).round().max(1.0) as u32;
    // Clamp so expected bottom parts keep at least ~4 elements.
    while levels > 1 && f64::from(beta).powi(levels as i32) > n / 4.0 {
        levels -= 1;
    }
    (beta, levels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn field_arithmetic_sane() {
        assert_eq!(mul_mod(FIELD_PRIME - 1, 1), FIELD_PRIME - 1);
        assert_eq!(mul_mod(FIELD_PRIME - 1, FIELD_PRIME - 1), 1); // (-1)² = 1
        assert_eq!(add_mod(FIELD_PRIME - 1, 1), 0);
        assert_eq!(mul_mod(0, 12345), 0);
        // Associativity spot check.
        let (a, b, c) = (
            0x1234_5678_9abc_u64,
            0x0fed_cba9_8765_u64,
            0x1111_2222_3333_u64,
        );
        assert_eq!(mul_mod(mul_mod(a, b), c), mul_mod(a, mul_mod(b, c)));
    }

    #[test]
    fn hash_is_deterministic_and_seed_sensitive() {
        let h1 = KWiseHash::from_seed(6, 1);
        let h2 = KWiseHash::from_seed(6, 1);
        let h3 = KWiseHash::from_seed(6, 2);
        assert_eq!(h1.eval(999), h2.eval(999));
        assert_ne!(
            (0..32).map(|x| h1.eval(x)).collect::<Vec<_>>(),
            (0..32).map(|x| h3.eval(x)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn degree_one_is_constant() {
        let h = KWiseHash::from_seed(1, 5);
        assert_eq!(h.eval(0), h.eval(1_000_000));
    }

    #[test]
    fn pairwise_independence_empirically() {
        // Over many seeds, P[h(a) mod 2 = h(b) mod 2] ≈ 1/2 for fixed a ≠ b.
        let mut agree = 0u64;
        let trials = 4000;
        for seed in 0..trials {
            let h = KWiseHash::from_seed(2, seed);
            if (h.eval(3) % 2) == (h.eval(77) % 2) {
                agree += 1;
            }
        }
        let frac = agree as f64 / trials as f64;
        assert!((frac - 0.5).abs() < 0.05, "agreement fraction {frac}");
    }

    #[test]
    fn partition_labels_consistent_with_leaf() {
        let p = PartitionHash::new(8, 4, 8, 99);
        for id in 0..200u64 {
            let leaf = p.leaf(id);
            let labels = p.labels(id);
            let rebuilt = labels.iter().fold(0u64, |acc, &l| acc * 8 + u64::from(l));
            assert_eq!(rebuilt, leaf, "id {id}");
            assert!(labels.iter().all(|&l| l < 8));
            // part_at is the label prefix.
            assert_eq!(p.part_at(id, 0), 0);
            assert_eq!(p.part_at(id, 2), labels[0] as u64 * 8 + labels[1] as u64);
            assert_eq!(p.part_at(id, 4), leaf);
        }
    }

    #[test]
    fn partition_near_uniform_p1() {
        // (P1): with k = Θ(log n) independence, all parts at every level
        // are within a constant factor of m/β^p.
        let p = PartitionHash::new(4, 3, 16, 7);
        let m = 64 * 100u64;
        for depth in 1..=3u32 {
            let mut counts: HashMap<u64, u64> = HashMap::new();
            for id in 0..m {
                *counts.entry(p.part_at(id, depth)).or_insert(0) += 1;
            }
            let parts = p.parts_at(depth);
            assert_eq!(
                counts.len() as u64,
                parts,
                "every part non-empty at depth {depth}"
            );
            let expect = m as f64 / parts as f64;
            for (&part, &c) in &counts {
                assert!(
                    (c as f64) > 0.5 * expect && (c as f64) < 1.6 * expect,
                    "depth {depth} part {part}: {c} vs expected {expect}"
                );
            }
        }
    }

    #[test]
    fn parameter_rules_are_sane() {
        for &n in &[16usize, 256, 4096, 1 << 16, 1 << 20] {
            let (beta, levels) = paper_parameters(n);
            assert!(beta >= 2);
            assert!(levels >= 1);
            // Bottom parts should hold around log n elements.
            let leaf_count = (0..levels).fold(1u64, |a, _| a * u64::from(beta));
            let per_leaf = n as f64 / leaf_count as f64;
            assert!(
                per_leaf < 64.0 * (n as f64).log2(),
                "n={n}: β={beta}, levels={levels}, per-leaf {per_leaf}"
            );
        }
        // β grows with n (the 2^√(log n log log n) shape).
        let (b_small, _) = paper_parameters(256);
        let (b_big, _) = paper_parameters(1 << 20);
        assert!(b_big >= b_small);
    }

    #[test]
    fn seed_bits_match_theta_log_squared() {
        let p = PartitionHash::new(16, 3, 32, 0);
        assert_eq!(p.seed_bits(), 32 * 61);
    }

    #[test]
    #[should_panic(expected = "level 0 out of range")]
    fn label_level_zero_panics() {
        let p = PartitionHash::new(4, 2, 4, 0);
        let _ = p.label_at(5, 0);
    }

    #[test]
    #[should_panic(expected = "beta must be at least 2")]
    fn beta_one_rejected() {
        let _ = PartitionHash::new(1, 2, 4, 0);
    }
}
