//! Simple tabulation hashing — the practical alternative to polynomial
//! k-wise independence.
//!
//! Simple tabulation (Zobrist; analyzed by Pătraşcu–Thorup) is only
//! 3-independent, yet obeys Chernoff-style concentration for balls-in-bins
//! — the property the partition actually needs. It trades the polynomial
//! family's `Θ(log² n)` seed bits for `8·256` table words of local state
//! (derived from a short shared seed via a PRG, so the *broadcast* cost is
//! unchanged) and evaluates with 8 XORs instead of `k` multiplications.
//! The experiments use it as a speed/quality comparison point.

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

/// Simple tabulation hash over 64-bit keys: XOR of 8 per-byte tables.
#[derive(Clone)]
pub struct TabulationHash {
    tables: Box<[[u64; 256]; 8]>,
}

impl std::fmt::Debug for TabulationHash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TabulationHash {{ 8×256 tables }}")
    }
}

impl TabulationHash {
    /// Derives the tables from a short seed (the shared-randomness model:
    /// the seed is what gets broadcast; tables expand locally).
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Self::from_rng(&mut rng)
    }

    /// Derives the tables from an existing RNG.
    pub fn from_rng<R: Rng>(rng: &mut R) -> Self {
        let mut tables = Box::new([[0u64; 256]; 8]);
        for table in tables.iter_mut() {
            for slot in table.iter_mut() {
                *slot = rng.random();
            }
        }
        TabulationHash { tables }
    }

    /// Hashes a 64-bit key.
    #[inline]
    pub fn eval(&self, x: u64) -> u64 {
        let mut acc = 0u64;
        for (i, table) in self.tables.iter().enumerate() {
            acc ^= table[((x >> (8 * i)) & 0xFF) as usize];
        }
        acc
    }

    /// Hashes into `0..buckets`.
    ///
    /// # Panics
    ///
    /// Panics if `buckets == 0`.
    #[inline]
    pub fn bucket(&self, x: u64, buckets: u64) -> u64 {
        assert!(buckets > 0, "buckets must be positive");
        // Multiply-shift avoids modulo bias for power-of-two-ish ranges.
        ((u128::from(self.eval(x)) * u128::from(buckets)) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a = TabulationHash::from_seed(1);
        let b = TabulationHash::from_seed(1);
        let c = TabulationHash::from_seed(2);
        assert_eq!(a.eval(12345), b.eval(12345));
        let same = (0..64u64).filter(|&x| a.eval(x) == c.eval(x)).count();
        assert!(
            same < 4,
            "different seeds should disagree, {same} collisions"
        );
    }

    #[test]
    fn buckets_are_balanced() {
        let h = TabulationHash::from_seed(7);
        let buckets = 16u64;
        let m = 8000u64;
        let mut counts: HashMap<u64, u64> = HashMap::new();
        for x in 0..m {
            let b = h.bucket(x, buckets);
            assert!(b < buckets);
            *counts.entry(b).or_insert(0) += 1;
        }
        let expect = m as f64 / buckets as f64;
        for (&b, &c) in &counts {
            assert!(
                (c as f64) > 0.7 * expect && (c as f64) < 1.3 * expect,
                "bucket {b}: {c} vs ≈{expect}"
            );
        }
    }

    #[test]
    fn all_byte_positions_matter() {
        let h = TabulationHash::from_seed(3);
        for byte in 0..8 {
            let x = 0u64;
            let y = 1u64 << (8 * byte);
            assert_ne!(h.eval(x), h.eval(y), "byte {byte} ignored");
        }
    }

    #[test]
    fn pairwise_collision_rate_is_uniform() {
        // Over many seeds, P[h(a) mod 2 == h(b) mod 2] ≈ 1/2.
        let mut agree = 0u32;
        let trials = 2000;
        for seed in 0..trials as u64 {
            let h = TabulationHash::from_seed(seed);
            if (h.eval(5) ^ h.eval(77)) & 1 == 0 {
                agree += 1;
            }
        }
        let frac = f64::from(agree) / f64::from(trials);
        assert!((frac - 0.5).abs() < 0.05, "{frac}");
    }

    #[test]
    #[should_panic(expected = "buckets must be positive")]
    fn zero_buckets_panics() {
        let _ = TabulationHash::from_seed(0).bucket(1, 0);
    }
}
