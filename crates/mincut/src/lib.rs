//! Minimum-cut approximation via tree packing with the MST black box.
//!
//! §4 of the paper states that plugging the almost-mixing-time MST routine
//! into the framework of Ghaffari–Haeupler [31] yields a `(1+ε)`-approximate
//! min cut in `τ_mix · 2^O(√(log n log log n))` rounds, deferring details to
//! the (unpublished) full version. Per DESIGN.md substitution 1, we
//! implement the classical **greedy spanning-tree packing** (Karger/Thorup):
//!
//! 1. pack `k = O(log n / ε²)` spanning trees, each a minimum spanning tree
//!    under the current edge loads — every tree is **one invocation of the
//!    MST black box** (centralized Kruskal, or the paper's distributed
//!    algorithm with measured rounds);
//! 2. evaluate every **1-respecting cut** of every packed tree (the cut
//!    induced by removing one tree edge) and return the best.
//!
//! One-respecting evaluation gives a `(2+ε)` worst-case guarantee (exact
//! 2-respecting evaluation tightens it to `1+ε`); on the experiment
//! families it is near-exact, and every result is validated against the
//! exact [`stoer_wagner`] reference.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod packing;
mod sampling;
mod stoer_wagner;

pub use packing::{tree_packing_min_cut, MinCutResult, MstOracle};
pub use sampling::{karger_estimate, SampledCut};
pub use stoer_wagner::stoer_wagner;

/// Errors produced by the min-cut algorithms.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum MinCutError {
    /// The input graph failed a structural requirement.
    Graph(amt_graphs::GraphError),
    /// The distributed MST oracle failed.
    Mst(String),
    /// `trees == 0` or another bad parameter.
    InvalidParameters {
        /// Description of the violated constraint.
        reason: String,
    },
}

impl std::fmt::Display for MinCutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MinCutError::Graph(e) => write!(f, "input graph unsuitable: {e}"),
            MinCutError::Mst(e) => write!(f, "MST oracle failed: {e}"),
            MinCutError::InvalidParameters { reason } => write!(f, "invalid parameters: {reason}"),
        }
    }
}

impl std::error::Error for MinCutError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MinCutError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<amt_graphs::GraphError> for MinCutError {
    fn from(e: amt_graphs::GraphError) -> Self {
        MinCutError::Graph(e)
    }
}

/// Result alias for min-cut operations.
pub type Result<T> = std::result::Result<T, MinCutError>;
