//! Greedy tree packing + 1-respecting cut evaluation.

use crate::{MinCutError, Result};
use amt_embedding::Hierarchy;
use amt_graphs::{EdgeId, Graph, NodeId, WeightedGraph};
use amt_mst::{reference, AlmostMixingMst};

/// How spanning trees are produced during the packing.
pub enum MstOracle<'h, 'g> {
    /// Centralized Kruskal (no round accounting) — for correctness studies.
    Centralized,
    /// The paper's distributed MST on a pre-built hierarchy; every packed
    /// tree charges its measured base rounds.
    AlmostMixing(&'h Hierarchy<'g>, u64),
}

/// Result of [`tree_packing_min_cut`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MinCutResult {
    /// The best 1-respecting cut value found.
    pub value: u64,
    /// One side of that cut.
    pub side: Vec<NodeId>,
    /// Trees packed (= MST black-box invocations).
    pub trees_packed: u32,
    /// Measured base rounds (0 with the centralized oracle).
    pub rounds: u64,
}

/// Packs `trees` spanning trees greedily (each an MST under the current
/// edge loads) and returns the best 1-respecting cut across all of them,
/// evaluated with the given per-edge `capacities`.
///
/// With `trees = Θ(log n / ε²)` this is the classical Karger/Thorup
/// approximation; see the crate docs for the guarantee discussion.
///
/// # Examples
///
/// ```
/// use amt_graphs::generators;
/// use amt_mincut::{tree_packing_min_cut, MstOracle};
/// let g = generators::ring(10);
/// let r = tree_packing_min_cut(&g, &vec![1; 10], 4, &MstOracle::Centralized).unwrap();
/// assert_eq!(r.value, 2); // a cycle's min cut
/// ```
///
/// # Errors
///
/// * [`MinCutError::Graph`] on disconnected/empty input;
/// * [`MinCutError::InvalidParameters`] if `trees == 0` or capacity count
///   mismatches;
/// * [`MinCutError::Mst`] if the distributed oracle fails.
pub fn tree_packing_min_cut(
    g: &Graph,
    capacities: &[u64],
    trees: u32,
    oracle: &MstOracle<'_, '_>,
) -> Result<MinCutResult> {
    g.require_connected()?;
    if trees == 0 {
        return Err(MinCutError::InvalidParameters {
            reason: "trees must be ≥ 1".into(),
        });
    }
    if capacities.len() != g.edge_count() {
        return Err(MinCutError::InvalidParameters {
            reason: format!(
                "{} capacities for {} edges",
                capacities.len(),
                g.edge_count()
            ),
        });
    }
    let mut load = vec![0u64; g.edge_count()];
    let mut best: Option<(u64, Vec<NodeId>)> = None;
    let mut rounds = 0u64;
    for t in 0..trees {
        // Packing weight: load normalized by capacity (scaled to integers).
        let weights: Vec<u64> = load
            .iter()
            .zip(capacities)
            .map(|(&l, &c)| (l << 16).checked_div(c).unwrap_or(u64::MAX >> 1))
            .collect();
        let wg = WeightedGraph::new(g.clone(), weights).expect("validated length");
        let tree = match oracle {
            MstOracle::Centralized => reference::kruskal(&wg)
                .ok_or(MinCutError::Graph(amt_graphs::GraphError::Disconnected))?,
            MstOracle::AlmostMixing(h, seed) => {
                let out = AlmostMixingMst::new(h)
                    .run(&wg, seed ^ u64::from(t))
                    .map_err(|e| MinCutError::Mst(e.to_string()))?;
                rounds += out.rounds;
                out.tree_edges
            }
        };
        for &e in &tree {
            load[e.index()] += 1;
        }
        let (val, side) = best_one_respecting_cut(g, capacities, &tree);
        if best.as_ref().is_none_or(|(b, _)| val < *b) {
            best = Some((val, side));
        }
    }
    let (value, side) = best.expect("trees ≥ 1");
    Ok(MinCutResult {
        value,
        side,
        trees_packed: trees,
        rounds,
    })
}

/// The minimum 1-respecting cut of spanning tree `tree`: for every tree
/// edge, the capacity of the cut separating the subtree below it.
///
/// Evaluated by rooting the tree and noting that a graph edge `(u, v)`
/// crosses the cut of tree edge `e` iff `e` lies on the tree path `u…v`;
/// path increments with LCA subtraction and a subtree-sum sweep price all
/// cuts in `O(m·h + n)`.
fn best_one_respecting_cut(g: &Graph, capacities: &[u64], tree: &[EdgeId]) -> (u64, Vec<NodeId>) {
    let n = g.len();
    // Children/parent structure of the tree, rooted at 0.
    let mut adj: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n]; // (peer, edge)
    for &e in tree {
        let (u, v) = g.endpoints(e);
        adj[u.index()].push((v.0, e.0));
        adj[v.index()].push((u.0, e.0));
    }
    let mut parent: Vec<Option<(u32, u32)>> = vec![None; n];
    let mut depth = vec![0u32; n];
    let mut order = Vec::with_capacity(n);
    let mut stack = vec![0u32];
    let mut seen = vec![false; n];
    seen[0] = true;
    while let Some(v) = stack.pop() {
        order.push(v);
        for &(w, e) in &adj[v as usize] {
            if !seen[w as usize] {
                seen[w as usize] = true;
                parent[w as usize] = Some((v, e));
                depth[w as usize] = depth[v as usize] + 1;
                stack.push(w);
            }
        }
    }
    debug_assert_eq!(order.len(), n, "tree must span the graph");

    // diff[v] accumulates path endpoints; LCA gets −2·w.
    let mut diff = vec![0i64; n];
    let mut in_tree = vec![false; g.edge_count()];
    for &e in tree {
        in_tree[e.index()] = true;
    }
    for (e, u, v) in g.edges() {
        if u == v || in_tree[e.index()] {
            continue;
        }
        let w = capacities[e.index()] as i64;
        diff[u.index()] += w;
        diff[v.index()] += w;
        let l = lca(&parent, &depth, u.0, v.0);
        diff[l as usize] -= 2 * w;
    }
    // Subtree sums in reverse DFS order.
    let mut cover = diff;
    for &v in order.iter().rev() {
        if let Some((p, _)) = parent[v as usize] {
            cover[p as usize] += cover[v as usize];
        }
    }
    // Cut of tree edge above v = cover[v] + capacity of the tree edge.
    let mut best_v = None;
    let mut best_val = u64::MAX;
    for v in 1..n {
        if let Some((_, e)) = parent[v] {
            let val = cover[v].max(0) as u64 + capacities[e as usize];
            if val < best_val {
                best_val = val;
                best_v = Some(v as u32);
            }
        }
    }
    let root_of_side = best_v.expect("n ≥ 2 trees have at least one edge");
    // Collect the subtree below the best edge.
    let mut side = Vec::new();
    let mut stack = vec![root_of_side];
    let mut mark = vec![false; n];
    mark[root_of_side as usize] = true;
    while let Some(v) = stack.pop() {
        side.push(NodeId(v));
        for &(w, _) in &adj[v as usize] {
            if !mark[w as usize] && parent[w as usize].map(|(p, _)| p) == Some(v) {
                mark[w as usize] = true;
                stack.push(w);
            }
        }
    }
    (best_val, side)
}

fn lca(parent: &[Option<(u32, u32)>], depth: &[u32], mut a: u32, mut b: u32) -> u32 {
    while depth[a as usize] > depth[b as usize] {
        a = parent[a as usize].expect("deeper node has parent").0;
    }
    while depth[b as usize] > depth[a as usize] {
        b = parent[b as usize].expect("deeper node has parent").0;
    }
    while a != b {
        a = parent[a as usize].expect("walking to root").0;
        b = parent[b as usize].expect("walking to root").0;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stoer_wagner;
    use amt_graphs::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn unit(g: &Graph) -> Vec<u64> {
        vec![1; g.edge_count()]
    }

    #[test]
    fn finds_the_bridge() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)])
            .unwrap();
        let caps = unit(&g);
        let r = tree_packing_min_cut(&g, &caps, 4, &MstOracle::Centralized).unwrap();
        assert_eq!(r.value, 1);
        assert_eq!(r.trees_packed, 4);
        let mut ids: Vec<u32> = r.side.iter().map(|v| v.0).collect();
        ids.sort_unstable();
        assert!(ids == vec![0, 1, 2] || ids == vec![3, 4, 5]);
    }

    #[test]
    fn one_respecting_never_beats_exact_and_is_close() {
        let mut rng = StdRng::seed_from_u64(3);
        for i in 0..8 {
            let g = generators::connected_erdos_renyi(24, 0.2, 50, &mut rng).unwrap();
            let caps = unit(&g);
            let exact = stoer_wagner(&g, &caps).unwrap().0;
            let r = tree_packing_min_cut(&g, &caps, 12, &MstOracle::Centralized).unwrap();
            assert!(r.value >= exact, "case {i}: {} < exact {exact}", r.value);
            assert!(
                r.value <= 3 * exact.max(1),
                "case {i}: {} far above exact {exact}",
                r.value
            );
            // The reported side must actually realize the reported value.
            let mut in_s = vec![false; g.len()];
            for v in &r.side {
                in_s[v.index()] = true;
            }
            let real: u64 = g
                .edges()
                .filter(|&(_, u, v)| in_s[u.index()] != in_s[v.index()])
                .map(|(e, _, _)| caps[e.index()])
                .sum();
            assert_eq!(real, r.value, "case {i}: side does not match value");
        }
    }

    #[test]
    fn ring_cut_found_exactly() {
        let g = generators::ring(12);
        let caps = unit(&g);
        let r = tree_packing_min_cut(&g, &caps, 6, &MstOracle::Centralized).unwrap();
        assert_eq!(r.value, 2);
    }

    #[test]
    fn capacities_steer_the_cut() {
        // Triangle with one cheap corner.
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]).unwrap();
        let caps = vec![1, 1, 10];
        let r = tree_packing_min_cut(&g, &caps, 4, &MstOracle::Centralized).unwrap();
        let exact = stoer_wagner(&g, &caps).unwrap().0;
        assert_eq!(r.value, exact);
        assert_eq!(exact, 2);
    }

    #[test]
    fn parameter_validation() {
        let g = generators::ring(6);
        assert!(matches!(
            tree_packing_min_cut(&g, &unit(&g), 0, &MstOracle::Centralized),
            Err(MinCutError::InvalidParameters { .. })
        ));
        assert!(matches!(
            tree_packing_min_cut(&g, &[1, 2], 3, &MstOracle::Centralized),
            Err(MinCutError::InvalidParameters { .. })
        ));
        let disc = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(matches!(
            tree_packing_min_cut(&disc, &[1, 1], 3, &MstOracle::Centralized),
            Err(MinCutError::Graph(_))
        ));
    }

    #[test]
    fn distributed_oracle_charges_rounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = generators::random_regular(32, 4, &mut rng).unwrap();
        let mut cfg = amt_embedding::HierarchyConfig::auto(&g, 20, 9);
        cfg.beta = 4;
        cfg.levels = 1;
        cfg.overlay_degree = 5;
        cfg.level0_walks = 10;
        let h = Hierarchy::build(&g, cfg).unwrap();
        let caps = unit(&g);
        let exact = stoer_wagner(&g, &caps).unwrap().0;
        let r = tree_packing_min_cut(&g, &caps, 3, &MstOracle::AlmostMixing(&h, 7)).unwrap();
        assert!(r.rounds > 0, "distributed packing must cost rounds");
        assert!(r.value >= exact);
        assert!(r.value <= 3 * exact.max(1));
    }
}
