//! Karger's skeleton sampling: estimate the min cut from a sparse random
//! subgraph.
//!
//! The min-cut routines the paper builds on (Ghaffari–Kuhn [32],
//! Nanongkai–Su [57]) rest on Karger's sampling theorem: if every edge is
//! kept independently with probability `p ≥ c·ln n / (ε²·λ)` (where `λ` is
//! the min cut), then **every** cut of the skeleton has value within
//! `(1 ± ε)` of `p` times its original value, w.h.p. Sampling with a
//! doubling guess for `λ` therefore estimates the min cut from a much
//! sparser graph — the sparsification step a distributed algorithm runs
//! before the expensive exact computation.
//!
//! [`karger_estimate`] implements the guess-and-double loop; tests validate
//! the `(1 ± ε)` bracket against exact Stoer–Wagner across families.

use crate::{stoer_wagner, MinCutError, Result};
use amt_graphs::{Graph, GraphBuilder};
use rand::{Rng, RngExt};

/// Result of a sampling-based min-cut estimation.
#[derive(Clone, Debug, PartialEq)]
pub struct SampledCut {
    /// The estimate `min_cut(skeleton) / p`.
    pub estimate: f64,
    /// The sampling probability that was accepted.
    pub p: f64,
    /// Edges in the accepted skeleton.
    pub skeleton_edges: usize,
    /// Doubling iterations used.
    pub guesses: u32,
}

/// Estimates the (unit-capacity) min cut by Karger sampling with a
/// *downward* guess: starting from the upper bound `λ ≤ min degree`, the
/// guess is refined toward the skeleton's rescaled min cut. Each guess
/// samples with `p = min(1, c·ln n/(ε²·λ_guess))`, `c = 3`; if the rescaled
/// estimate is consistent with the guess (at least half of it), `p` was
/// large enough for Karger concentration and the estimate is returned;
/// otherwise the guess drops and `p` grows, bottoming out at `p = 1`
/// (exact).
///
/// # Errors
///
/// [`MinCutError::Graph`] for graphs with fewer than 2 nodes or
/// disconnected input; [`MinCutError::InvalidParameters`] for
/// `epsilon ∉ (0, 1)`.
pub fn karger_estimate<R: Rng>(g: &Graph, epsilon: f64, rng: &mut R) -> Result<SampledCut> {
    if !(0.0..1.0).contains(&epsilon) || epsilon == 0.0 {
        return Err(MinCutError::InvalidParameters {
            reason: format!("epsilon = {epsilon} not in (0, 1)"),
        });
    }
    g.require_connected()?;
    let n = g.len() as f64;
    let c = 3.0;
    let mut guess = (g.min_degree() as f64).max(1.0); // λ ≤ min degree
    let mut guesses = 0u32;
    loop {
        guesses += 1;
        let p = (c * n.ln() / (epsilon * epsilon * guess)).min(1.0);
        let skeleton = sample_skeleton(g, p, rng);
        let caps = vec![1u64; skeleton.edge_count()];
        let sk_cut = match stoer_wagner(&skeleton, &caps) {
            Some((v, _)) => v as f64,
            None => 0.0,
        };
        let estimate = sk_cut / p;
        // Accept when the skeleton is exact (p = 1) or the estimate is
        // consistent with the guess (λ really is around the guess, so the
        // sampling density was sufficient); otherwise λ is smaller than
        // guessed — drop the guess and densify.
        if p >= 1.0 || estimate >= 0.5 * guess {
            return Ok(SampledCut {
                estimate,
                p,
                skeleton_edges: skeleton.edge_count(),
                guesses,
            });
        }
        guess = (guess / 2.0).max(estimate).max(1.0);
    }
}

/// Keeps each edge independently with probability `p` (node set unchanged).
fn sample_skeleton<R: Rng>(g: &Graph, p: f64, rng: &mut R) -> Graph {
    let mut b = GraphBuilder::new(g.len());
    for (_, u, v) in g.edges() {
        if rng.random_bool(p.clamp(0.0, 1.0)) {
            b.add_edge(u.index(), v.index());
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use amt_graphs::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exact_when_p_hits_one() {
        // Sparse graph: p stays 1 and the estimate is exact.
        let g = generators::ring(20);
        let mut rng = StdRng::seed_from_u64(1);
        let r = karger_estimate(&g, 0.5, &mut rng).unwrap();
        assert_eq!(r.estimate, 2.0);
        assert_eq!(r.p, 1.0);
    }

    #[test]
    fn dense_graphs_get_sparsified_within_epsilon() {
        let eps = 0.3;
        for (g, seed) in [
            (generators::complete(48), 2u64),
            (generators::hypercube(7), 3u64),
            (
                generators::random_regular(96, 16, &mut StdRng::seed_from_u64(9)).unwrap(),
                4u64,
            ),
        ] {
            let caps = vec![1u64; g.edge_count()];
            let exact = stoer_wagner(&g, &caps).unwrap().0 as f64;
            let mut rng = StdRng::seed_from_u64(seed);
            let r = karger_estimate(&g, eps, &mut rng).unwrap();
            assert!(
                r.estimate >= (1.0 - 2.0 * eps) * exact && r.estimate <= (1.0 + 2.0 * eps) * exact,
                "estimate {} vs exact {exact} (n = {})",
                r.estimate,
                g.len()
            );
        }
    }

    #[test]
    fn skeleton_is_actually_sparser_on_dense_inputs() {
        // Sparsification needs ε²·λ > c·ln n: K128 (λ = 127) at ε = 0.5.
        let g = generators::complete(128);
        let mut rng = StdRng::seed_from_u64(7);
        let r = karger_estimate(&g, 0.5, &mut rng).unwrap();
        assert!(r.p < 1.0, "dense input must be sampled, p = {}", r.p);
        assert!(
            r.skeleton_edges < g.edge_count(),
            "skeleton {} vs original {}",
            r.skeleton_edges,
            g.edge_count()
        );
        let exact = 127.0;
        assert!(
            (r.estimate - exact).abs() <= 1.0 * exact,
            "estimate {}",
            r.estimate
        );
    }

    #[test]
    fn parameter_validation() {
        let g = generators::ring(8);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(karger_estimate(&g, 0.0, &mut rng).is_err());
        assert!(karger_estimate(&g, 1.5, &mut rng).is_err());
        let disc = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(matches!(
            karger_estimate(&disc, 0.3, &mut rng),
            Err(MinCutError::Graph(_))
        ));
    }

    #[test]
    fn sampling_probability_reflects_epsilon() {
        // Tighter ε ⇒ denser skeleton.
        let g = generators::complete(128);
        let mut rng1 = StdRng::seed_from_u64(11);
        let loose = karger_estimate(&g, 0.5, &mut rng1).unwrap();
        let mut rng2 = StdRng::seed_from_u64(11);
        let tight = karger_estimate(&g, 0.15, &mut rng2).unwrap();
        assert!(tight.p >= loose.p, "tight {} vs loose {}", tight.p, loose.p);
    }
}
