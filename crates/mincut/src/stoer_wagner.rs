//! Exact global minimum cut (Stoer–Wagner), the centralized reference.

use amt_graphs::{Graph, NodeId};

/// Exact global min cut of `g` with per-edge capacities (parallel edges and
/// their capacities merge; self-loops are ignored).
///
/// Returns `(cut value, one side of the cut)`, or `None` when `n < 2` or
/// the graph is disconnected (infinite families of zero cuts are not
/// interesting — callers get the honest `(0, component)` answer instead
/// when disconnected? No: disconnected graphs return the zero cut with one
/// component as the side).
///
/// # Examples
///
/// ```
/// use amt_graphs::Graph;
/// use amt_mincut::stoer_wagner;
/// // Two triangles joined by one bridge: min cut = 1.
/// let g = Graph::from_edges(6, &[(0,1),(1,2),(0,2),(3,4),(4,5),(3,5),(2,3)]).unwrap();
/// let (value, side) = stoer_wagner(&g, &vec![1; 7]).unwrap();
/// assert_eq!(value, 1);
/// assert_eq!(side.len(), 3);
/// ```
///
/// # Panics
///
/// Panics if `capacities.len() != g.edge_count()`.
pub fn stoer_wagner(g: &Graph, capacities: &[u64]) -> Option<(u64, Vec<NodeId>)> {
    assert_eq!(capacities.len(), g.edge_count(), "one capacity per edge");
    let n = g.len();
    if n < 2 {
        return None;
    }
    // Dense capacity matrix with parallel edges merged.
    let mut w = vec![vec![0u64; n]; n];
    for (e, u, v) in g.edges() {
        if u != v {
            w[u.index()][v.index()] += capacities[e.index()];
            w[v.index()][u.index()] += capacities[e.index()];
        }
    }
    // `groups[i]` = original nodes currently contracted into supernode i.
    let mut groups: Vec<Vec<u32>> = (0..n as u32).map(|v| vec![v]).collect();
    let mut active: Vec<usize> = (0..n).collect();
    let mut best: Option<(u64, Vec<NodeId>)> = None;

    while active.len() > 1 {
        // Maximum-adjacency (minimum-cut-phase) order.
        let mut in_a = vec![false; n];
        let mut weight_to_a = vec![0u64; n];
        let first = active[0];
        in_a[first] = true;
        for &x in &active {
            if x != first {
                weight_to_a[x] = w[first][x];
            }
        }
        let mut order = vec![first];
        while order.len() < active.len() {
            let &next = active
                .iter()
                .filter(|&&x| !in_a[x])
                .max_by_key(|&&x| (weight_to_a[x], std::cmp::Reverse(x)))
                .expect("active nodes remain");
            in_a[next] = true;
            order.push(next);
            for &x in &active {
                if !in_a[x] {
                    weight_to_a[x] += w[next][x];
                }
            }
        }
        let t = *order.last().expect("order nonempty");
        let s = order[order.len() - 2];
        let cut_of_phase = weight_to_a[t];
        let side: Vec<NodeId> = groups[t].iter().map(|&v| NodeId(v)).collect();
        if best.as_ref().is_none_or(|(b, _)| cut_of_phase < *b) {
            best = Some((cut_of_phase, side));
        }
        // Contract t into s.
        let t_group = std::mem::take(&mut groups[t]);
        groups[s].extend(t_group);
        for &x in &active {
            if x != s && x != t {
                w[s][x] += w[t][x];
                w[x][s] = w[s][x];
            }
        }
        active.retain(|&x| x != t);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use amt_graphs::generators;

    fn unit_caps(g: &Graph) -> Vec<u64> {
        vec![1; g.edge_count()]
    }

    #[test]
    fn bridge_graph_has_cut_one() {
        // Two triangles joined by one edge.
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)])
            .unwrap();
        let (val, side) = stoer_wagner(&g, &unit_caps(&g)).unwrap();
        assert_eq!(val, 1);
        let mut ids: Vec<u32> = side.iter().map(|v| v.0).collect();
        ids.sort_unstable();
        assert!(
            ids == vec![0, 1, 2] || ids == vec![3, 4, 5],
            "side = {ids:?}"
        );
    }

    #[test]
    fn cycle_has_cut_two() {
        let g = generators::ring(9);
        let (val, _) = stoer_wagner(&g, &unit_caps(&g)).unwrap();
        assert_eq!(val, 2);
    }

    #[test]
    fn complete_graph_cut_is_n_minus_one() {
        let g = generators::complete(7);
        let (val, side) = stoer_wagner(&g, &unit_caps(&g)).unwrap();
        assert_eq!(val, 6);
        assert_eq!(side.len(), 1);
    }

    #[test]
    fn hypercube_cut_is_dimension() {
        let g = generators::hypercube(4);
        let (val, _) = stoer_wagner(&g, &unit_caps(&g)).unwrap();
        assert_eq!(val, 4);
    }

    #[test]
    fn capacities_are_respected() {
        // Path 0-1-2 with capacities 5 and 3: min cut = 3.
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let (val, side) = stoer_wagner(&g, &[5, 3]).unwrap();
        assert_eq!(val, 3);
        assert_eq!(side.len(), 1);
    }

    #[test]
    fn parallel_edges_merge() {
        let g = Graph::from_edges(2, &[(0, 1), (0, 1), (0, 1)]).unwrap();
        let (val, _) = stoer_wagner(&g, &[1, 1, 1]).unwrap();
        assert_eq!(val, 3);
    }

    #[test]
    fn self_loops_ignored_and_small_graphs_rejected() {
        let g = Graph::from_edges(2, &[(0, 0), (0, 1)]).unwrap();
        let (val, _) = stoer_wagner(&g, &[100, 2]).unwrap();
        assert_eq!(val, 2);
        let single = amt_graphs::GraphBuilder::new(1).build();
        assert!(stoer_wagner(&single, &[]).is_none());
    }

    #[test]
    fn disconnected_graph_has_zero_cut() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let (val, _) = stoer_wagner(&g, &[1, 1]).unwrap();
        assert_eq!(val, 0);
    }

    #[test]
    fn brute_force_agreement_on_random_graphs() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(7);
        for i in 0..10 {
            let g = generators::connected_erdos_renyi(10, 0.4, 50, &mut rng).unwrap();
            let caps = unit_caps(&g);
            let (val, _) = stoer_wagner(&g, &caps).unwrap();
            // Brute force over all cuts.
            let n = g.len();
            let mut best = u64::MAX;
            for mask in 1u32..(1 << (n - 1)) {
                let mut in_s = vec![false; n];
                for (b, flag) in in_s.iter_mut().enumerate().take(n).skip(1) {
                    *flag = (mask >> (b - 1)) & 1 == 1;
                }
                let cut = g
                    .edges()
                    .filter(|&(_, u, v)| in_s[u.index()] != in_s[v.index()])
                    .count() as u64;
                best = best.min(cut);
            }
            assert_eq!(val, best, "case {i}");
        }
    }
}
