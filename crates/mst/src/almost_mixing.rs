//! The paper's MST algorithm (§4): Boruvka with head/tail coins, virtual
//! trees, and all communication executed as permutation-routing instances
//! on the hierarchical embedding.
//!
//! Per iteration:
//!
//! 1. every node exchanges its fragment id with its neighbors (1 round);
//! 2. the minimum-weight outgoing edge of each component is aggregated by a
//!    level-synchronized **upcast** on the component's virtual tree `T(C)` —
//!    one routing instance per tree level, all components in parallel;
//! 3. the result plus the component's head/tail coin is **downcast** the
//!    same way;
//! 4. tail components whose minimum outgoing edge leads to a head component
//!    merge into it (star merges), adding the edge to the MST;
//! 5. the virtual trees are re-joined and re-balanced by the **token wave**
//!    of Lemma 4.1, one routing instance per wave level, and the new
//!    fragment ids are downcast.
//!
//! The three Lemma 4.1 invariants (tree depth `O(log² n)`, virtual degree
//! `≤ d_G(v)·O(log n)`, known parents) are tracked in [`IterationStats`]
//! and asserted by the test-suite and by experiment E12.

use crate::{MstError, Result};
use amt_embedding::Hierarchy;
use amt_graphs::{EdgeId, EdgeWeight, NodeId, WeightedGraph};
use amt_routing::{EmulationMode, HierarchicalRouter, RouterConfig};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::BTreeMap;

/// Per-iteration measurements (the Lemma 4.1 invariant witnesses).
#[derive(Clone, Debug, Default)]
pub struct IterationStats {
    /// Components before this iteration.
    pub components_before: usize,
    /// Components after the merges.
    pub components_after: usize,
    /// Tail components merged into heads.
    pub merges: usize,
    /// Measured base rounds spent on routing during this iteration.
    pub routing_rounds: u64,
    /// Tree levels processed by the upcast (= max virtual-tree depth).
    pub upcast_steps: u32,
    /// Maximum virtual-tree depth after the merges.
    pub max_tree_depth: u32,
    /// Maximum over nodes of `virtual degree / d_G(v)` after the merges
    /// (Lemma 4.1 bounds this by `O(log n)`).
    pub max_degree_ratio: f64,
    /// Permutation-routing instances issued this iteration (upcast +
    /// downcast + balancing-wave + relabel steps).
    pub routing_instances: u32,
}

/// Outcome of [`AlmostMixingMst::run`].
#[derive(Clone, Debug)]
pub struct AmtMstOutcome {
    /// The MST edges (sorted by id); equal to Kruskal's canonical MST.
    pub tree_edges: Vec<EdgeId>,
    /// Total tree weight.
    pub total_weight: u64,
    /// Measured base rounds of the MST computation (excluding hierarchy
    /// construction, reported separately).
    pub rounds: u64,
    /// Base rounds spent building the hierarchy (copied from its stats).
    pub hierarchy_build_rounds: u64,
    /// Boruvka iterations executed.
    pub iterations: u32,
    /// Total permutation-routing instances issued.
    pub routing_instances: u32,
    /// Per-iteration measurements.
    pub per_iteration: Vec<IterationStats>,
}

/// A pending balancing token of Lemma 4.1.
#[derive(Clone, Copy, Debug)]
struct Token {
    creation: u32,
    pos: u32,
    alive: bool,
}

/// The paper's MST algorithm bound to a hierarchy.
pub struct AlmostMixingMst<'h, 'g> {
    router: HierarchicalRouter<'h, 'g>,
    iteration_cap: u32,
    instances: std::cell::Cell<u32>,
}

impl<'h, 'g> AlmostMixingMst<'h, 'g> {
    /// Creates the algorithm on a built hierarchy, pricing emulation by
    /// exact recursive store-and-forward expansion (tight measured rounds).
    pub fn new(hierarchy: &'h Hierarchy<'g>) -> Self {
        let n = hierarchy.base().len();
        Self::with_router_config(
            hierarchy,
            RouterConfig {
                emulation: EmulationMode::Exact,
                ..RouterConfig::for_n(n)
            },
        )
    }

    /// Creates the algorithm with an explicit router configuration (e.g.
    /// the conservative [`EmulationMode::Factored`] pricing).
    pub fn with_router_config(hierarchy: &'h Hierarchy<'g>, rc: RouterConfig) -> Self {
        let n = hierarchy.base().len();
        AlmostMixingMst {
            router: HierarchicalRouter::with_config(hierarchy, rc),
            iteration_cap: 20 + 10 * (n.max(2) as f64).log2().ceil() as u32,
            instances: std::cell::Cell::new(0),
        }
    }

    /// Computes the MST of `wg`, which must be the graph the hierarchy was
    /// built on.
    ///
    /// # Errors
    ///
    /// * [`MstError::Graph`] if `wg` is disconnected or does not match the
    ///   hierarchy's base graph;
    /// * [`MstError::Route`] if the permutation router fails;
    /// * [`MstError::TooManyIterations`] if the coin sequence exceeds the
    ///   iteration cap (probability `≪ 1/n²` at the default cap).
    pub fn run(&self, wg: &WeightedGraph, seed: u64) -> Result<AmtMstOutcome> {
        let g = wg.graph();
        g.require_connected()?;
        let h = self.router.hierarchy();
        if g.len() != h.base().len() || g.edge_count() != h.base().edge_count() {
            return Err(MstError::Graph(amt_graphs::GraphError::InvalidParameters {
                reason: "weighted graph does not match the hierarchy's base graph".into(),
            }));
        }
        let n = g.len();
        let mut rng = StdRng::seed_from_u64(seed);
        self.instances.set(0);

        // Virtual-tree state (Lemma 4.1): parent pointers, children lists,
        // depths, and fragment labels.
        let mut comp: Vec<u32> = (0..n as u32).collect();
        let mut parent: Vec<Option<u32>> = vec![None; n];
        let mut children: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut depth: Vec<u32> = vec![0; n];

        let mut tree_edges: Vec<EdgeId> = Vec::with_capacity(n - 1);
        let mut rounds = 0u64;
        let mut per_iteration = Vec::new();
        let mut iterations = 0u32;

        loop {
            let components_before = count_distinct(&comp);
            if components_before <= 1 {
                break;
            }
            if iterations >= self.iteration_cap {
                return Err(MstError::TooManyIterations {
                    cap: self.iteration_cap,
                });
            }
            iterations += 1;
            let iter_instances_before = self.instances.get();
            let mut it = IterationStats {
                components_before,
                ..Default::default()
            };

            // (1) Fragment-id exchange with all neighbors: one round.
            rounds += 1;
            it.routing_rounds += 0;

            // (2) Minimum outgoing edge per component (content computed
            // centrally; communication charged by the upcast below).
            let mut best: BTreeMap<u32, (EdgeWeight, EdgeId, u32, u32)> = BTreeMap::new();
            for v in g.nodes() {
                let cv = comp[v.index()];
                if let Some((e, w)) = wg.min_incident_edge(v, |x| comp[x.index()] != cv) {
                    let cw = wg.canonical_weight(e);
                    let entry = best.entry(cv).or_insert((cw, e, v.0, w.0));
                    if cw < entry.0 {
                        *entry = (cw, e, v.0, w.0);
                    }
                }
            }

            // (3) Upcast + downcast over the virtual trees, one routing
            // instance per level (all components in parallel).
            let max_d = depth.iter().copied().max().unwrap_or(0);
            it.upcast_steps = max_d;
            for s in (1..=max_d).rev() {
                let reqs = level_edges(&parent, &depth, s);
                it.routing_rounds += self.route_pairs(&reqs, &mut rng)?;
            }
            for s in 1..=max_d {
                let reqs = level_edges_down(&parent, &depth, s);
                it.routing_rounds += self.route_pairs(&reqs, &mut rng)?;
            }

            // (4) Head/tail coins and star merges.
            let mut coin: BTreeMap<u32, bool> = BTreeMap::new();
            for &c in comp.iter() {
                coin.entry(c).or_insert_with(|| rng.random_bool(0.5));
            }
            // head component → [(tail root, mst edge, landing node v_i)]
            let mut stars: BTreeMap<u32, Vec<(u32, EdgeId, u32)>> = BTreeMap::new();
            for (&c, &(_, e, _u, v)) in &best {
                let target = comp[v as usize];
                if !coin[&c] && coin[&target] {
                    stars.entry(target).or_default().push((c, e, v));
                }
            }

            let mut token_sites: Vec<u32> = Vec::new();
            for (_, tails) in stars.iter() {
                for &(tail_root, e, v_i) in tails {
                    tree_edges.push(e);
                    it.merges += 1;
                    // Attach the tail tree's root below v_i ∈ C₀.
                    parent[tail_root as usize] = Some(v_i);
                    children[v_i as usize].push(tail_root);
                    if !token_sites.contains(&v_i) {
                        token_sites.push(v_i);
                    }
                }
            }

            // (5) Lemma 4.1 token wave over the (old) head trees, all heads
            // in parallel; one routing instance per wave level.
            it.routing_rounds += self.balance_wave(
                &token_sites,
                &mut parent,
                &mut children,
                &depth,
                max_d,
                &mut rng,
            )?;

            // Relabel merged components and recompute depths.
            relabel_and_recompute(&mut comp, &parent, &children, &mut depth);

            // (6) Downcast the new fragment ids over the new trees.
            let new_max_d = depth.iter().copied().max().unwrap_or(0);
            for s in 1..=new_max_d {
                let reqs = level_edges_down(&parent, &depth, s);
                it.routing_rounds += self.route_pairs(&reqs, &mut rng)?;
            }

            it.components_after = count_distinct(&comp);
            it.routing_instances = self.instances.get() - iter_instances_before;
            it.max_tree_depth = new_max_d;
            it.max_degree_ratio = g
                .nodes()
                .map(|v| {
                    let vd = children[v.index()].len() + usize::from(parent[v.index()].is_some());
                    vd as f64 / g.degree(v).max(1) as f64
                })
                .fold(0.0, f64::max);
            rounds += it.routing_rounds;
            per_iteration.push(it);
        }

        tree_edges.sort_unstable();
        tree_edges.dedup();
        Ok(AmtMstOutcome {
            total_weight: wg.total_weight(&tree_edges),
            tree_edges,
            rounds,
            hierarchy_build_rounds: self.router.hierarchy().stats.total_base_rounds,
            iterations,
            routing_instances: self.instances.get(),
            per_iteration,
        })
    }

    /// One routing instance for a batch of `(from, to)` node pairs.
    fn route_pairs(&self, reqs: &[(u32, u32)], rng: &mut StdRng) -> Result<u64> {
        if reqs.is_empty() {
            return Ok(0);
        }
        self.instances.set(self.instances.get() + 1);
        let pairs: Vec<(NodeId, NodeId)> =
            reqs.iter().map(|&(a, b)| (NodeId(a), NodeId(b))).collect();
        let out = self.router.route(&pairs, rng.random())?;
        Ok(out.total_base_rounds)
    }

    /// The balancing token wave of Lemma 4.1 (see module docs). Returns the
    /// measured routing rounds. `depth` is the tree depth *before* the
    /// merges (the wave runs on the old head trees; freshly attached tail
    /// subtrees hold no tokens).
    fn balance_wave(
        &self,
        token_sites: &[u32],
        parent: &mut [Option<u32>],
        children: &mut [Vec<u32>],
        depth: &[u32],
        max_d: u32,
        rng: &mut StdRng,
    ) -> Result<u64> {
        let mut tokens: Vec<Token> = token_sites
            .iter()
            .map(|&v| Token {
                creation: v,
                pos: v,
                alive: true,
            })
            .collect();
        let mut rounds = 0u64;
        for s in (1..=max_d).rev() {
            // Tokens sitting at depth s move to their parents.
            let moving: Vec<usize> = tokens
                .iter()
                .enumerate()
                .filter(|(_, t)| {
                    t.alive && depth[t.pos as usize] == s && parent[t.pos as usize].is_some()
                })
                .map(|(i, _)| i)
                .collect();
            if moving.is_empty() {
                continue;
            }
            let reqs: Vec<(u32, u32)> = moving
                .iter()
                .map(|&i| {
                    let p = parent[tokens[i].pos as usize].expect("filtered on parent");
                    (tokens[i].pos, p)
                })
                .collect();
            rounds += self.route_pairs(&reqs, rng)?;

            // Group arrivals by destination; stationary tokens already at a
            // destination join the merge group there.
            let mut arrivals: BTreeMap<u32, Vec<(usize, u32)>> = BTreeMap::new();
            for &i in &moving {
                let via = tokens[i].pos;
                let dest = parent[via as usize].expect("filtered on parent");
                arrivals.entry(dest).or_default().push((i, via));
            }
            for (&dest, group) in arrivals.iter() {
                let stationary: Vec<usize> = tokens
                    .iter()
                    .enumerate()
                    .filter(|(i, t)| {
                        t.alive && t.pos == dest && !group.iter().any(|&(gi, _)| gi == *i)
                    })
                    .map(|(i, _)| i)
                    .collect();
                if group.len() + stationary.len() == 1 {
                    // A lone token just moves up.
                    let (i, _) = group[0];
                    tokens[i].pos = dest;
                    continue;
                }
                // Merge: re-parent creation points that are not already
                // children of the merge node under the child they arrived
                // through, then spawn a fresh token at the merge node.
                for &(i, via) in group {
                    let w = tokens[i].creation;
                    if w != dest && w != via && parent[w as usize] != Some(dest) {
                        if let Some(old) = parent[w as usize] {
                            children[old as usize].retain(|&c| c != w);
                        }
                        parent[w as usize] = Some(via);
                        children[via as usize].push(w);
                    }
                    tokens[i].alive = false;
                }
                for i in stationary {
                    tokens[i].alive = false;
                }
                tokens.push(Token {
                    creation: dest,
                    pos: dest,
                    alive: true,
                });
            }
        }
        Ok(rounds)
    }
}

/// `(child, parent)` pairs at tree depth `s` (upcast direction).
fn level_edges(parent: &[Option<u32>], depth: &[u32], s: u32) -> Vec<(u32, u32)> {
    parent
        .iter()
        .enumerate()
        .filter_map(|(v, p)| p.filter(|_| depth[v] == s).map(|p| (v as u32, p)))
        .collect()
}

/// `(parent, child)` pairs reaching depth `s` (downcast direction).
fn level_edges_down(parent: &[Option<u32>], depth: &[u32], s: u32) -> Vec<(u32, u32)> {
    parent
        .iter()
        .enumerate()
        .filter_map(|(v, p)| p.filter(|_| depth[v] == s).map(|p| (p, v as u32)))
        .collect()
}

fn count_distinct(comp: &[u32]) -> usize {
    let mut seen: Vec<u32> = comp.to_vec();
    seen.sort_unstable();
    seen.dedup();
    seen.len()
}

/// After merges and balancing: recompute depths by BFS from the roots over
/// the children lists, and relabel every node with its root's id.
fn relabel_and_recompute(
    comp: &mut [u32],
    parent: &[Option<u32>],
    children: &[Vec<u32>],
    depth: &mut [u32],
) {
    let n = comp.len();
    let mut visited = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    for r in 0..n {
        if parent[r].is_none() {
            depth[r] = 0;
            comp[r] = r as u32;
            visited[r] = true;
            queue.push_back(r as u32);
            while let Some(v) = queue.pop_front() {
                for &c in &children[v as usize] {
                    debug_assert!(!visited[c as usize], "virtual tree contains a cycle");
                    visited[c as usize] = true;
                    depth[c as usize] = depth[v as usize] + 1;
                    comp[c as usize] = r as u32;
                    queue.push_back(c);
                }
            }
        }
    }
    debug_assert!(visited.iter().all(|&b| b), "orphaned virtual-tree node");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use amt_embedding::HierarchyConfig;
    use amt_graphs::generators;

    fn build(n: usize, deg: usize, seed: u64) -> (WeightedGraph, HierarchyConfig) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::random_regular(n, deg, &mut rng).unwrap();
        let mut cfg = HierarchyConfig::auto(&g, 25, seed);
        cfg.beta = 4;
        cfg.levels = 1;
        cfg.overlay_degree = 5;
        cfg.level0_walks = 10;
        let wg = WeightedGraph::with_random_weights(g, 1000, &mut rng);
        (wg, cfg)
    }

    #[test]
    fn computes_the_canonical_mst() {
        let (wg, cfg) = build(48, 4, 101);
        let h = Hierarchy::build(wg.graph(), cfg).unwrap();
        let alg = AlmostMixingMst::new(&h);
        let out = alg.run(&wg, 7).unwrap();
        assert_eq!(out.tree_edges.len(), 47);
        assert!(reference::verify_mst(&wg, &out.tree_edges));
        assert_eq!(out.tree_edges, reference::kruskal(&wg).unwrap());
        assert!(out.rounds > 0);
        assert!(out.iterations >= 1);
    }

    #[test]
    fn iteration_stats_witness_lemma_4_1() {
        let (wg, cfg) = build(64, 6, 103);
        let h = Hierarchy::build(wg.graph(), cfg).unwrap();
        let alg = AlmostMixingMst::new(&h);
        let out = alg.run(&wg, 9).unwrap();
        let n = wg.len() as f64;
        let log2n = n.log2();
        for (i, st) in out.per_iteration.iter().enumerate() {
            assert!(st.components_after <= st.components_before, "iter {i}");
            // Depth O(log² n) with an explicit constant.
            assert!(
                f64::from(st.max_tree_depth) <= 4.0 * log2n * log2n,
                "iter {i}: depth {} too deep",
                st.max_tree_depth
            );
            // Virtual degree ratio O(log n).
            assert!(
                st.max_degree_ratio <= 4.0 * log2n,
                "iter {i}: degree ratio {}",
                st.max_degree_ratio
            );
        }
        // Components must eventually reach 1.
        assert_eq!(out.per_iteration.last().unwrap().components_after, 1);
    }

    #[test]
    fn coin_merges_shrink_components_geometrically_on_average() {
        let (wg, cfg) = build(96, 4, 107);
        let h = Hierarchy::build(wg.graph(), cfg).unwrap();
        let alg = AlmostMixingMst::new(&h);
        let out = alg.run(&wg, 13).unwrap();
        // O(log n) iterations with a generous constant.
        assert!(
            out.iterations <= 8 * (96f64.log2().ceil() as u32),
            "took {} iterations",
            out.iterations
        );
    }

    #[test]
    fn disconnected_input_rejected() {
        let (wg, cfg) = build(48, 4, 109);
        let h = Hierarchy::build(wg.graph(), cfg).unwrap();
        let g2 = amt_graphs::Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let wg2 = WeightedGraph::new(g2, vec![1, 2]).unwrap();
        let alg = AlmostMixingMst::new(&h);
        assert!(matches!(alg.run(&wg2, 0), Err(MstError::Graph(_))));
        drop(wg);
    }

    #[test]
    fn deterministic_given_seed() {
        let (wg, cfg) = build(48, 4, 113);
        let h = Hierarchy::build(wg.graph(), cfg).unwrap();
        let alg = AlmostMixingMst::new(&h);
        let a = alg.run(&wg, 5).unwrap();
        let b = alg.run(&wg, 5).unwrap();
        assert_eq!(a.tree_edges, b.tree_edges);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn works_on_non_regular_graphs() {
        let mut rng = StdRng::seed_from_u64(115);
        let g = generators::preferential_attachment(60, 3, &mut rng).unwrap();
        let mut cfg = HierarchyConfig::auto(&g, 20, 115);
        cfg.beta = 4;
        cfg.levels = 1;
        cfg.overlay_degree = 5;
        cfg.level0_walks = 10;
        let wg = WeightedGraph::with_random_weights(g, 500, &mut rng);
        let h = Hierarchy::build(wg.graph(), cfg).unwrap();
        let out = AlmostMixingMst::new(&h).run(&wg, 3).unwrap();
        assert!(reference::verify_mst(&wg, &out.tree_edges));
    }
}
