//! Baseline: Boruvka with fragment flooding in the raw CONGEST simulator
//! (GHS flavor, the pre-sublinear-era algorithm).
//!
//! Per iteration, every fragment floods its minimum-weight outgoing edge
//! along its forest edges until agreement (≈ fragment diameter rounds),
//! merges, and floods the new fragment label the same way. Worst case
//! `O(n log n)` rounds (e.g. on paths); the experiments contrast this with
//! the almost-mixing-time algorithm on expanders.

use crate::{reference::UnionFind, MstError, Result};
use amt_congest::{
    bits_for_value, class, Ctx, Metrics, PhaseTimings, ProfileConfig, Protocol, RunConfig,
    Simulator, TrafficClass, TrafficProfile,
};
use amt_graphs::{EdgeId, WeightedGraph};
use std::collections::HashSet;
use std::time::Instant;

/// Outcome of the CONGEST Boruvka baseline.
#[derive(Clone, Debug)]
pub struct CongestMstOutcome {
    /// The MST edges (sorted); equal to the canonical Kruskal MST.
    pub tree_edges: Vec<EdgeId>,
    /// Total tree weight.
    pub total_weight: u64,
    /// Measured CONGEST rounds over all iterations.
    pub rounds: u64,
    /// Boruvka iterations executed.
    pub iterations: u32,
    /// Total messages sent.
    pub messages: u64,
    /// Host wall-clock time per stage (`"candidate_flood"`,
    /// `"label_flood"`, `"merge"` entries, accumulated over iterations).
    pub wall: PhaseTimings,
}

/// Flooding protocol restricted to a set of active ports: every node floods
/// the minimum `u64` value it has seen.
struct MinFlood {
    active_ports: Vec<usize>,
    value: u64,
    fresh: bool,
    /// Traffic class this flood's messages are attributed to (candidate
    /// floods vs. label floods).
    class: TrafficClass,
}

impl Protocol for MinFlood {
    type Message = u64;

    // Purely mail-driven: an empty-inbox round improves nothing and sends
    // nothing, so skipped rounds are no-ops and the active-set engine can
    // step only nodes holding mail (label settling is exactly the sparse
    // phase ROADMAP item 1 targets).
    const SPARSE_AWARE: bool = true;

    fn init(&mut self, ctx: &mut Ctx<'_, u64>) {
        if self.fresh {
            self.fresh = false;
            for p in self.active_ports.clone() {
                ctx.send_classed(p, self.value, self.class);
            }
        }
    }

    fn round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &[(usize, u64)]) {
        let mut improved = false;
        for &(_, v) in inbox {
            if v < self.value {
                self.value = v;
                improved = true;
            }
        }
        if improved {
            for p in self.active_ports.clone() {
                ctx.send_classed(p, self.value, self.class);
            }
        }
    }
}

/// Floods per-node initial `u64` values to minima over the subgraph whose
/// edges are in `active`, returning the converged values, metrics, and —
/// when `profile` is set — the flood's traffic profile. Messages are
/// attributed to `class`.
pub(crate) fn min_flood(
    wg: &WeightedGraph,
    active: &HashSet<EdgeId>,
    init: &[u64],
    seed: u64,
    threads: usize,
    class: TrafficClass,
    profile: Option<ProfileConfig>,
) -> Result<(Vec<u64>, Metrics, Option<TrafficProfile>)> {
    let g = wg.graph();
    let nodes = g
        .nodes()
        .map(|v| MinFlood {
            active_ports: g
                .neighbors(v)
                .enumerate()
                .filter(|(_, (_, e))| active.contains(e))
                .map(|(p, _)| p)
                .collect(),
            value: init[v.index()],
            fresh: true,
            class,
        })
        .collect();
    let mut sim = Simulator::new(g, nodes, seed)?;
    if let Some(pc) = profile {
        sim = sim.with_profile(pc);
    }
    // Candidate values carry (weight, edge id); allow the wider encoding —
    // still O(log n) bits for polynomially bounded weights.
    let cfg = RunConfig {
        budget_factor: 24,
        ..RunConfig::default()
    }
    .with_threads(threads);
    let metrics = sim.run(&cfg)?;
    let prof = sim.take_profile();
    Ok((sim.nodes().iter().map(|p| p.value).collect(), metrics, prof))
}

/// Encodes a `(canonical weight, edge)` candidate as one orderable `u64`.
pub(crate) fn encode(wg: &WeightedGraph, e: EdgeId) -> u64 {
    let bits = bits_for_value(wg.edge_count() as u64) + 1;
    (wg.weight(e) << bits) | u64::from(e.0)
}

pub(crate) fn decode_edge(wg: &WeightedGraph, v: u64) -> EdgeId {
    let bits = bits_for_value(wg.edge_count() as u64) + 1;
    EdgeId((v & ((1 << bits) - 1)) as u32)
}

/// Runs the baseline; weights must satisfy `weight · 2m < 2^63` (checked).
///
/// # Errors
///
/// [`MstError::Graph`] on disconnected input, [`MstError::Congest`] on
/// simulator violations, [`MstError::TooManyIterations`] as a bug guard.
pub fn run(wg: &WeightedGraph, seed: u64) -> Result<CongestMstOutcome> {
    run_with(wg, seed, 0)
}

/// [`run`] with an explicit simulator worker-thread count (`0` = the
/// process default). Outcome and metrics are byte-identical for every
/// `threads` value — the simulator's determinism contract.
///
/// # Errors
///
/// As [`run`].
pub fn run_with(wg: &WeightedGraph, seed: u64, threads: usize) -> Result<CongestMstOutcome> {
    let (out, _) = run_instrumented(wg, seed, threads, None)?;
    Ok(out)
}

/// [`run_with`] with opt-in traffic profiling: when `profile` is set, the
/// returned [`TrafficProfile`] accumulates every flood's traffic across
/// iterations (candidate floods under [`class::MST_FLOOD`], label floods
/// under [`class::MST_LABEL`]), with totals summing exactly to the
/// outcome's message count. Profiling never changes the outcome.
///
/// # Errors
///
/// As [`run`].
pub fn run_instrumented(
    wg: &WeightedGraph,
    seed: u64,
    threads: usize,
    profile: Option<ProfileConfig>,
) -> Result<(CongestMstOutcome, Option<TrafficProfile>)> {
    let g = wg.graph();
    g.require_connected()?;
    let n = g.len();
    let bits = bits_for_value(wg.edge_count() as u64) + 1;
    if let Some(max_w) = wg.weights().iter().max() {
        assert!(
            max_w.leading_zeros() as usize > bits,
            "weights too large for the candidate encoding"
        );
    }
    let mut comp: Vec<u64> = (0..n as u64).collect();
    let mut forest: HashSet<EdgeId> = HashSet::new();
    let mut tree_edges: Vec<EdgeId> = Vec::new();
    let mut metrics = Metrics::default();
    let mut iterations = 0u32;
    let mut wall = PhaseTimings::new();
    let mut total_profile: Option<TrafficProfile> = None;
    let absorb = |total: &mut Option<TrafficProfile>, p: Option<TrafficProfile>, at: u64| {
        if let Some(p) = p {
            total
                .get_or_insert_with(|| TrafficProfile::empty(p.edge_count()))
                .absorb(&p, at);
        }
    };
    let cap = 2 * (n.max(2) as f64).log2().ceil() as u32 + 10;

    while comp.iter().collect::<HashSet<_>>().len() > 1 {
        if iterations >= cap {
            return Err(MstError::TooManyIterations { cap });
        }
        iterations += 1;

        // Fragment-id exchange (1 round) so nodes know outgoing edges.
        metrics.rounds += 1;

        // Each node's candidate: its minimum outgoing edge.
        let t0 = Instant::now();
        let init: Vec<u64> = g
            .nodes()
            .map(|v| {
                wg.min_incident_edge(v, |w| comp[w.index()] != comp[v.index()])
                    .map_or(u64::MAX, |(e, _)| encode(wg, e))
            })
            .collect();
        let at = metrics.rounds;
        let (vals, m1, p1) = min_flood(
            wg,
            &forest,
            &init,
            seed ^ u64::from(iterations),
            threads,
            class::MST_FLOOD,
            profile,
        )?;
        metrics = metrics.then(m1);
        absorb(&mut total_profile, p1, at);
        wall.record("candidate_flood", t0.elapsed());

        // Merge along every fragment's minimum outgoing edge.
        let t0 = Instant::now();
        let mut uf = UnionFind::new(n);
        for &e in &forest {
            let (u, v) = g.endpoints(e);
            uf.union(u.index(), v.index());
        }
        let mut chosen: HashSet<EdgeId> = HashSet::new();
        for v in g.nodes() {
            if vals[v.index()] != u64::MAX {
                chosen.insert(decode_edge(wg, vals[v.index()]));
            }
        }
        let mut merged = false;
        for &e in &chosen {
            let (u, v) = g.endpoints(e);
            if uf.union(u.index(), v.index()) {
                forest.insert(e);
                tree_edges.push(e);
                merged = true;
            }
        }
        debug_assert!(merged, "an iteration must merge at least one fragment");
        wall.record("merge", t0.elapsed());

        // Flood new fragment labels (min node id) over the grown forest.
        let t0 = Instant::now();
        let label_init: Vec<u64> = (0..n as u64).collect();
        let at = metrics.rounds;
        let (labels, m2, p2) = min_flood(
            wg,
            &forest,
            &label_init,
            seed ^ 0xF00D ^ u64::from(iterations),
            threads,
            class::MST_LABEL,
            profile,
        )?;
        metrics = metrics.then(m2);
        absorb(&mut total_profile, p2, at);
        comp = labels;
        wall.record("label_flood", t0.elapsed());
    }

    tree_edges.sort_unstable();
    Ok((
        CongestMstOutcome {
            total_weight: wg.total_weight(&tree_edges),
            tree_edges,
            rounds: metrics.rounds,
            iterations,
            messages: metrics.messages,
            wall,
        },
        total_profile,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use amt_graphs::{generators, Graph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matches_kruskal_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(21);
        for i in 0..5 {
            let g = generators::connected_erdos_renyi(48, 0.12, 50, &mut rng).unwrap();
            let wg = WeightedGraph::with_random_weights(g, 1000, &mut rng);
            let out = run(&wg, i).unwrap();
            assert_eq!(out.tree_edges, reference::kruskal(&wg).unwrap(), "case {i}");
            assert!(out.rounds > 0);
            assert!(out.iterations <= 10);
        }
    }

    #[test]
    fn slow_on_paths_fast_on_expanders() {
        let mut rng = StdRng::seed_from_u64(22);
        let n = 128;
        let path_edges: Vec<_> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let path = Graph::from_edges(n, &path_edges).unwrap();
        let wgp = WeightedGraph::with_random_weights(path, 1000, &mut rng);
        let exp = generators::random_regular(n, 6, &mut rng).unwrap();
        let wge = WeightedGraph::with_random_weights(exp, 1000, &mut rng);
        let rp = run(&wgp, 1).unwrap();
        let re = run(&wge, 1).unwrap();
        assert!(reference::verify_mst(&wgp, &rp.tree_edges));
        assert!(reference::verify_mst(&wge, &re.tree_edges));
        assert!(
            rp.rounds > 2 * re.rounds,
            "path {} rounds should far exceed expander {}",
            rp.rounds,
            re.rounds
        );
    }

    #[test]
    fn rejects_disconnected() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let wg = WeightedGraph::new(g, vec![1, 2]).unwrap();
        assert!(matches!(run(&wg, 0), Err(MstError::Graph(_))));
    }

    #[test]
    fn candidate_encoding_roundtrips() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]).unwrap();
        let wg = WeightedGraph::new(g, vec![10, 20, 30]).unwrap();
        for (e, _, _) in wg.graph().edges() {
            assert_eq!(decode_edge(&wg, encode(&wg, e)), e);
        }
        // Ordering by encoded value matches canonical weight order.
        assert!(encode(&wg, EdgeId(0)) < encode(&wg, EdgeId(1)));
    }
}
