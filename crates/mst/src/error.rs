//! Error type for MST computations.

use std::fmt;

/// Errors produced by the distributed MST algorithms.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum MstError {
    /// The input graph failed a structural requirement.
    Graph(amt_graphs::GraphError),
    /// The underlying permutation router failed.
    Route(amt_routing::RouteError),
    /// The CONGEST simulator reported a model violation.
    Congest(amt_congest::CongestError),
    /// The algorithm exceeded its iteration budget without connecting the
    /// forest (indicates a bug or an adversarial coin sequence beyond the
    /// budget; practically unreachable).
    TooManyIterations {
        /// The configured iteration cap.
        cap: u32,
    },
}

impl fmt::Display for MstError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MstError::Graph(e) => write!(f, "input graph unsuitable: {e}"),
            MstError::Route(e) => write!(f, "routing failed: {e}"),
            MstError::Congest(e) => write!(f, "CONGEST execution failed: {e}"),
            MstError::TooManyIterations { cap } => {
                write!(f, "forest not connected after {cap} Boruvka iterations")
            }
        }
    }
}

impl std::error::Error for MstError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MstError::Graph(e) => Some(e),
            MstError::Route(e) => Some(e),
            MstError::Congest(e) => Some(e),
            _ => None,
        }
    }
}

impl From<amt_graphs::GraphError> for MstError {
    fn from(e: amt_graphs::GraphError) -> Self {
        MstError::Graph(e)
    }
}

impl From<amt_routing::RouteError> for MstError {
    fn from(e: amt_routing::RouteError) -> Self {
        MstError::Route(e)
    }
}

impl From<amt_congest::CongestError> for MstError {
    fn from(e: amt_congest::CongestError) -> Self {
        MstError::Congest(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: MstError = amt_graphs::GraphError::Disconnected.into();
        assert!(e.to_string().contains("not connected"));
        assert!(std::error::Error::source(&e).is_some());
        let e = MstError::TooManyIterations { cap: 64 };
        assert!(e.to_string().contains("64"));
    }
}
